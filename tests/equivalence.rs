//! Property-based cross-implementation equivalence — the strongest oracle
//! available for a CFPQ engine (DESIGN.md §7).
//!
//! On random weak-CNF grammars and random graphs, the following must
//! produce identical relations for every nonterminal:
//!
//! * Algorithm 1 on all four Boolean engines (dense/sparse ×
//!   serial/parallel),
//! * the paper-literal set-matrix form,
//! * the semi-naive delta variant,
//! * Hellings' worklist algorithm,
//! * and (for the start nonterminal, on the original grammar) GLL.
//!
//! On word chains, everything must additionally agree with CYK and
//! Valiant.

use cfpq::baselines::{gll::GllSolver, hellings::solve_hellings, valiant::valiant_parse};
use cfpq::core::relational::{solve_on_engine, solve_set_matrix, Strategy};
use cfpq::grammar::cyk::CykTable;
use cfpq::grammar::random::{random_wcnf, sample_word, RandomGrammarConfig};
use cfpq::graph::generators;
use cfpq::prelude::*;
use proptest::prelude::*;

/// Builds a random graph whose labels are the grammar's terminals.
fn graph_for(grammar: &Wcnf, n_nodes: usize, n_edges: usize, seed: u64) -> Graph {
    let names: Vec<String> = grammar
        .symbols
        .terms()
        .map(|(_, name)| name.to_owned())
        .collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    generators::random_graph(n_nodes, n_edges, &refs, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_solvers_agree_on_random_instances(
        grammar_seed in 0u64..500,
        graph_seed in 0u64..500,
        n_nodes in 2usize..10,
        n_edges in 1usize..28,
    ) {
        let g = random_wcnf(grammar_seed, RandomGrammarConfig::default());
        let graph = graph_for(&g, n_nodes, n_edges, graph_seed);

        let dense = solve_on_engine(&DenseEngine, &graph, &g);
        let sparse = solve_on_engine(&SparseEngine, &graph, &g);
        let dense_par = solve_on_engine(&ParDenseEngine::new(Device::new(3)), &graph, &g);
        let sparse_par = solve_on_engine(&ParSparseEngine::new(Device::new(2)), &graph, &g);
        let tiled = solve_on_engine(&TiledEngine::new(Device::new(2)), &graph, &g);
        let adaptive = solve_on_engine(&AdaptiveEngine::new(Device::new(2)), &graph, &g);
        let delta = FixpointSolver::new(&SparseEngine)
            .strategy(Strategy::Delta)
            .solve(&graph, &g);
        let masked = FixpointSolver::new(&SparseEngine).solve(&graph, &g);
        let masked_par =
            FixpointSolver::new(&ParSparseEngine::new(Device::new(2))).solve(&graph, &g);
        let set_matrix = solve_set_matrix(&graph, &g, false);
        let hellings = solve_hellings(&graph, &g);

        for i in 0..g.n_nts() {
            let nt = Nt(i as u32);
            let expect = dense.pairs(nt);
            prop_assert_eq!(sparse.pairs(nt), expect.clone(), "sparse vs dense");
            prop_assert_eq!(dense_par.pairs(nt), expect.clone(), "dense-par vs dense");
            prop_assert_eq!(sparse_par.pairs(nt), expect.clone(), "sparse-par vs dense");
            prop_assert_eq!(tiled.pairs(nt), expect.clone(), "tiled vs dense");
            prop_assert_eq!(adaptive.pairs(nt), expect.clone(), "adaptive vs dense");
            prop_assert_eq!(delta.pairs(nt), expect.clone(), "delta vs dense");
            prop_assert_eq!(masked.pairs(nt), expect.clone(), "masked-delta vs dense");
            prop_assert_eq!(
                masked_par.pairs(nt),
                expect.clone(),
                "masked-delta-par vs dense"
            );
            prop_assert_eq!(set_matrix.pairs(nt), expect.clone(), "set-matrix vs dense");
            prop_assert_eq!(hellings.pairs(nt), expect, "hellings vs dense");
        }
    }

    #[test]
    fn single_path_index_matches_relational(
        grammar_seed in 0u64..200,
        graph_seed in 0u64..200,
        n_nodes in 2usize..8,
        n_edges in 1usize..20,
    ) {
        let g = random_wcnf(grammar_seed, RandomGrammarConfig::default());
        let graph = graph_for(&g, n_nodes, n_edges, graph_seed);
        let rel = solve_on_engine(&SparseEngine, &graph, &g);
        let sp = solve_single_path(&graph, &g);
        for i in 0..g.n_nts() {
            let nt = Nt(i as u32);
            let sp_pairs: Vec<(u32, u32)> = sp
                .pairs_with_lengths(nt)
                .into_iter()
                .map(|(a, b, _)| (a, b))
                .collect();
            prop_assert_eq!(sp_pairs, rel.pairs(nt));
        }
    }

    #[test]
    fn extracted_witnesses_are_valid(
        grammar_seed in 0u64..120,
        graph_seed in 0u64..120,
    ) {
        use cfpq::core::single_path::validate_witness;
        let g = random_wcnf(grammar_seed, RandomGrammarConfig::default());
        let graph = graph_for(&g, 6, 14, graph_seed);
        let sp = solve_single_path(&graph, &g);
        for i in 0..g.n_nts() {
            let nt = Nt(i as u32);
            for (a, b, len) in sp.pairs_with_lengths(nt) {
                let path = extract_path(&sp, &graph, &g, nt, a, b)
                    .expect("every indexed pair must yield a witness");
                prop_assert_eq!(path.len() as u32, len);
                prop_assert!(validate_witness(&path, &graph, &g, nt, a, b));
            }
        }
    }

    #[test]
    fn chain_graphs_match_cyk_and_valiant(
        grammar_seed in 0u64..200,
        word_seed in 0u64..200,
    ) {
        let g = random_wcnf(grammar_seed, RandomGrammarConfig::default());
        let Some(word) = sample_word(&g, g.start, 20, word_seed) else {
            return Ok(());
        };
        if word.is_empty() || word.len() > 10 {
            return Ok(());
        }
        let names: Vec<&str> = word.iter().map(|t| g.symbols.term_name(*t)).collect();
        let graph = generators::word_chain(&names);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let cyk = CykTable::build(&g, &word);
        let val = valiant_parse(&g, &word);
        for i in 0..word.len() {
            for j in (i + 1)..=word.len() {
                for k in 0..g.n_nts() {
                    let nt = Nt(k as u32);
                    let expect = cyk.get(j - i - 1, i, nt);
                    prop_assert_eq!(
                        idx.contains(nt, i as u32, j as u32), expect,
                        "algorithm1 vs CYK at ({}, {})", i, j
                    );
                    prop_assert_eq!(
                        val.contains(i as u32, j as u32, nt), expect,
                        "valiant vs CYK at ({}, {})", i, j
                    );
                }
            }
        }
    }

    #[test]
    fn gll_matches_matrix_on_start_nonterminal(
        graph_seed in 0u64..150,
        n_nodes in 2usize..9,
        n_edges in 1usize..24,
    ) {
        // GLL consumes the original grammar; compare R_S only.
        let cfg = Cfg::parse("S -> a S b | a b | S S").unwrap();
        let wcnf = cfg.to_wcnf(cfpq::grammar::cnf::CnfOptions::default()).unwrap();
        let graph = generators::random_graph(n_nodes, n_edges, &["a", "b"], graph_seed);
        let store = GllSolver::new(&cfg, &graph).solve(&graph, cfg.start.unwrap());
        let idx = solve_on_engine(&SparseEngine, &graph, &wcnf);
        let s_cfg = cfg.symbols.get_nt("S").unwrap();
        let s_wcnf = wcnf.symbols.get_nt("S").unwrap();
        prop_assert_eq!(store.pairs(s_cfg), idx.pairs(s_wcnf));
    }
}

#[test]
fn four_engines_agree_on_paper_example_and_generated_graph() {
    // The §4.3 worked example: every Boolean engine must report the
    // paper's Fig. 9 answer R_S = {(0,0), (0,2), (1,2)} — and, on a
    // generated graph, all four must agree pair-for-pair.
    let wcnf = cfpq::grammar::queries::fig4_normal_form()
        .to_wcnf(cfpq::grammar::cnf::CnfOptions::default())
        .unwrap();
    let expected_start = vec![(0u32, 0u32), (0, 2), (1, 2)];

    let instances = [
        (generators::paper_example(), Some(expected_start)),
        (
            generators::random_graph(12, 30, &["a", "b"], 0xE05_EED),
            None,
        ),
    ];
    for (graph, expect) in instances {
        let dense = solve_on_engine(&DenseEngine, &graph, &wcnf);
        let sparse = solve_on_engine(&SparseEngine, &graph, &wcnf);
        let dense_par = solve_on_engine(&ParDenseEngine::new(Device::new(2)), &graph, &wcnf);
        let sparse_par = solve_on_engine(&ParSparseEngine::new(Device::new(3)), &graph, &wcnf);
        let tiled = solve_on_engine(&TiledEngine::new(Device::new(2)), &graph, &wcnf);
        let adaptive = solve_on_engine(&AdaptiveEngine::new(Device::new(2)), &graph, &wcnf);

        let reference = dense.pairs(wcnf.start);
        if let Some(expect) = expect {
            assert_eq!(reference, expect, "Fig. 9 R_S on the dense engine");
        }
        assert_eq!(sparse.pairs(wcnf.start), reference, "sparse vs dense");
        assert_eq!(dense_par.pairs(wcnf.start), reference, "dense-par vs dense");
        assert_eq!(
            sparse_par.pairs(wcnf.start),
            reference,
            "sparse-par vs dense"
        );
        assert_eq!(tiled.pairs(wcnf.start), reference, "tiled vs dense");
        assert_eq!(adaptive.pairs(wcnf.start), reference, "adaptive vs dense");
    }
}

#[test]
fn engines_agree_on_every_builtin_query_and_dataset_sample() {
    // Deterministic integration sweep: both queries on the two smallest
    // ontology datasets across all backends.
    use cfpq::grammar::queries;
    use cfpq::graph::ontology;
    for query in [queries::query1(), queries::query2()] {
        for name in ["skos", "generations"] {
            let graph = ontology::dataset(name).unwrap().to_graph();
            let reference = solve(&graph, &query, Backend::Sparse).unwrap();
            for backend in [
                Backend::Dense,
                Backend::DensePar { workers: 2 },
                Backend::SparsePar { workers: 4 },
                Backend::SetMatrix,
            ] {
                let ans = solve(&graph, &query, backend).unwrap();
                assert_eq!(
                    ans.start_pairs(),
                    reference.start_pairs(),
                    "{name} / {}",
                    backend.name()
                );
            }
        }
    }
}
