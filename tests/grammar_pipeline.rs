//! Integration tests for the grammar pipeline: CNF normalization must
//! preserve the language (checked via CYK on sampled member words and on
//! near-miss mutations), across randomly generated *general* grammars
//! with ε-rules, unit rules and long rules.

use cfpq::grammar::cnf::CnfOptions;
use cfpq::grammar::cyk::cyk_recognize;
use cfpq::grammar::{Cfg, Term};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random general CFG (with ε/unit/long rules) as DSL text.
fn random_general_cfg(seed: u64) -> Cfg {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_nts = rng.gen_range(2..5usize);
    let n_terms = rng.gen_range(1..4usize);
    let nts: Vec<String> = (0..n_nts).map(|i| format!("N{i}")).collect();
    let terms: Vec<String> = (0..n_terms).map(|i| format!("t{i}")).collect();
    let mut text = String::new();
    // Ensure N0 has at least one production.
    let n_rules = rng.gen_range(n_nts..n_nts * 3);
    for r in 0..n_rules {
        let lhs = if r < n_nts {
            &nts[r]
        } else {
            &nts[rng.gen_range(0..n_nts)]
        };
        let len = rng.gen_range(0..5usize);
        let mut rhs: Vec<&str> = Vec::new();
        for _ in 0..len {
            if rng.gen_bool(0.5) {
                rhs.push(&nts[rng.gen_range(0..n_nts)]);
            } else {
                rhs.push(&terms[rng.gen_range(0..n_terms)]);
            }
        }
        if rhs.is_empty() {
            text.push_str(&format!("{lhs} -> eps\n"));
        } else {
            text.push_str(&format!("{lhs} -> {}\n", rhs.join(" ")));
        }
    }
    Cfg::parse(&text).expect("generated text parses")
}

/// Derives a random word from the general grammar by bounded expansion;
/// `None` if the budget runs out.
fn derive_word(cfg: &Cfg, seed: u64, budget: usize) -> Option<Vec<Term>> {
    use cfpq::grammar::cfg::Symbol;
    let mut rng = StdRng::seed_from_u64(seed);
    let start = cfg.start?;
    let by_lhs: Vec<Vec<usize>> = {
        let mut v = vec![Vec::new(); cfg.symbols.n_nts()];
        for (i, p) in cfg.productions.iter().enumerate() {
            v[p.lhs.index()].push(i);
        }
        v
    };
    let mut word = Vec::new();
    let mut stack = vec![Symbol::N(start)];
    let mut steps = 0;
    while let Some(sym) = stack.pop() {
        steps += 1;
        if steps > budget {
            return None;
        }
        match sym {
            Symbol::T(t) => word.push(t),
            Symbol::N(nt) => {
                let rules = &by_lhs[nt.index()];
                if rules.is_empty() {
                    return None;
                }
                // Prefer shorter productions near the budget.
                let pick = if steps * 2 > budget {
                    *rules
                        .iter()
                        .min_by_key(|&&r| cfg.productions[r].rhs.len())
                        .unwrap()
                } else {
                    rules[rng.gen_range(0..rules.len())]
                };
                for s in cfg.productions[pick].rhs.iter().rev() {
                    stack.push(*s);
                }
            }
        }
    }
    Some(word)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn normalization_preserves_membership(seed in 0u64..3000) {
        let cfg = random_general_cfg(seed);
        let Ok(wcnf) = cfg.to_wcnf(CnfOptions::default()) else {
            return Ok(());
        };
        let start = wcnf.start;
        // Sampled member words must be accepted post-normalization.
        for w_seed in 0..6u64 {
            if let Some(word) = derive_word(&cfg, seed ^ (w_seed + 1), 60) {
                if word.len() <= 10 {
                    // Map terms: same symbol table indices survive normalization.
                    prop_assert!(
                        cyk_recognize(&wcnf, start, &word),
                        "derived word {:?} rejected (seed {})",
                        word, seed
                    );
                }
            }
        }
    }

    #[test]
    fn normalization_preserves_language_exhaustively(seed in 0u64..600) {
        // The strongest pipeline check: enumerate L(G) up to length L by
        // brute-force derivation on the ORIGINAL grammar (ε/unit/long
        // rules intact), then test EVERY word over Σ of length ≤ L
        // against CYK on the normalized grammar. Positives and negatives
        // both covered, exhaustively.
        const L: usize = 4;
        let cfg = random_general_cfg(seed);
        let Ok(wcnf) = cfg.to_wcnf(CnfOptions::default()) else {
            return Ok(());
        };
        let start = cfg.start.unwrap();
        let language = cfg.bounded_language(start, L);
        let n_terms = cfg.symbols.n_terms();
        // All words over the alphabet up to length L.
        let mut words: Vec<Vec<Term>> = vec![vec![]];
        let mut frontier: Vec<Vec<Term>> = vec![vec![]];
        for _ in 0..L {
            let mut next = Vec::new();
            for w in &frontier {
                for t in 0..n_terms {
                    let mut w2 = w.clone();
                    w2.push(Term(t as u32));
                    next.push(w2);
                }
            }
            words.extend(next.iter().cloned());
            frontier = next;
        }
        for word in &words {
            prop_assert_eq!(
                cyk_recognize(&wcnf, wcnf.start, word),
                language.contains(word),
                "CNF disagrees with brute-force derivation on {:?} (seed {})",
                word, seed
            );
        }
    }

    #[test]
    fn useless_removal_never_changes_start_language(seed in 0u64..800) {
        let cfg = random_general_cfg(seed);
        let (Ok(keep), Ok(drop)) = (
            cfg.to_wcnf(CnfOptions::default()),
            cfg.to_wcnf(CnfOptions { remove_useless: true }),
        ) else {
            return Ok(());
        };
        for w_seed in 0..4u64 {
            if let Some(word) = derive_word(&cfg, seed ^ (w_seed + 77), 50) {
                if word.len() <= 8 {
                    prop_assert_eq!(
                        cyk_recognize(&keep, keep.start, &word),
                        cyk_recognize(&drop, drop.start, &word),
                        "useless-symbol removal changed L(G_S)"
                    );
                }
            }
        }
    }
}

#[test]
fn dyck_language_deep_checks() {
    // Exhaustive membership over all bracket strings of length <= 8.
    let wcnf = Cfg::parse("S -> S S | ( S ) | ( )")
        .unwrap()
        .to_wcnf(CnfOptions::default())
        .unwrap();
    let s = wcnf.symbols.get_nt("S").unwrap();
    let open = wcnf.symbols.get_term("(").unwrap();
    let close = wcnf.symbols.get_term(")").unwrap();

    fn is_balanced(word: &[bool]) -> bool {
        // true = open
        if word.is_empty() {
            return false; // our Dyck grammar excludes eps
        }
        let mut depth = 0i32;
        for &b in word {
            depth += if b { 1 } else { -1 };
            if depth < 0 {
                return false;
            }
        }
        depth == 0
    }

    for len in 1..=8usize {
        for mask in 0..(1u32 << len) {
            let bools: Vec<bool> = (0..len).map(|i| mask >> i & 1 == 1).collect();
            let word: Vec<Term> = bools
                .iter()
                .map(|&b| if b { open } else { close })
                .collect();
            assert_eq!(
                cyk_recognize(&wcnf, s, &word),
                is_balanced(&bools),
                "word mask {mask:b} len {len}"
            );
        }
    }
}
