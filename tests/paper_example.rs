//! Paper-exactness tests: the worked example of §4.3, Figures 5–9,
//! replayed cell by cell with the exact nonterminal identities of the
//! paper's Fig. 4 grammar.

use cfpq::grammar::cnf::CnfOptions;
use cfpq::grammar::queries;
use cfpq::graph::generators;
use cfpq::prelude::*;

/// Asserts that a snapshot matrix equals a figure, given as rows of cell
/// contents (nonterminal names, `""` = empty).
fn assert_matrix(
    snapshot: &cfpq::matrix::SetMatrix,
    wcnf: &Wcnf,
    figure: &[&[&[&str]]],
    label: &str,
) {
    for (i, row) in figure.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            let mut expect: Vec<Nt> = cell
                .iter()
                .map(|name| {
                    wcnf.symbols
                        .get_nt(name)
                        .unwrap_or_else(|| panic!("nt {name}"))
                })
                .collect();
            expect.sort_unstable();
            let got = snapshot.cell(i as u32, j as u32);
            assert_eq!(got, expect, "{label}: cell ({i},{j})");
        }
    }
}

#[test]
fn figures_5_to_9_replay() {
    let wcnf = queries::fig4_normal_form()
        .to_wcnf(CnfOptions::default())
        .unwrap();
    let graph = generators::paper_example();
    let result = solve_set_matrix(&graph, &wcnf, true);

    // §4.3: "k = 6 since T6 = T5".
    assert_eq!(result.iterations, 6, "fixpoint reached at k = 6");
    assert!(result.snapshots.len() >= 7);

    // Fig. 6: T0.
    assert_matrix(
        &result.snapshots[0],
        &wcnf,
        &[
            &[&["S1"], &["S3"], &[]],
            &[&[], &[], &["S3"]],
            &[&["S2"], &[], &["S4"]],
        ],
        "T0 (Fig. 6)",
    );

    // Fig. 7: T1 = T0 ∪ (T0 × T0) — S appears at (1,2).
    assert_matrix(
        &result.snapshots[1],
        &wcnf,
        &[
            &[&["S1"], &["S3"], &[]],
            &[&[], &[], &["S", "S3"]],
            &[&["S2"], &[], &["S4"]],
        ],
        "T1 (Fig. 7)",
    );

    // Fig. 8: T2 .. T5.
    assert_matrix(
        &result.snapshots[2],
        &wcnf,
        &[
            &[&["S1"], &["S3"], &[]],
            &[&["S5"], &[], &["S", "S3", "S6"]],
            &[&["S2"], &[], &["S4"]],
        ],
        "T2 (Fig. 8)",
    );
    assert_matrix(
        &result.snapshots[3],
        &wcnf,
        &[
            &[&["S1"], &["S3"], &["S"]],
            &[&["S5"], &[], &["S", "S3", "S6"]],
            &[&["S2"], &[], &["S4"]],
        ],
        "T3 (Fig. 8)",
    );
    assert_matrix(
        &result.snapshots[4],
        &wcnf,
        &[
            &[&["S1", "S5"], &["S3"], &["S", "S6"]],
            &[&["S5"], &[], &["S", "S3", "S6"]],
            &[&["S2"], &[], &["S4"]],
        ],
        "T4 (Fig. 8)",
    );
    assert_matrix(
        &result.snapshots[5],
        &wcnf,
        &[
            &[&["S", "S1", "S5"], &["S3"], &["S", "S6"]],
            &[&["S5"], &[], &["S", "S3", "S6"]],
            &[&["S2"], &[], &["S4"]],
        ],
        "T5 (Fig. 8)",
    );
    // T6 = T5 (the fixpoint test).
    assert_eq!(result.snapshots[6], result.snapshots[5], "T6 = T5");

    // Fig. 9: the context-free relations.
    let nt = |name: &str| wcnf.symbols.get_nt(name).unwrap();
    assert_eq!(result.pairs(nt("S")), vec![(0, 0), (0, 2), (1, 2)]);
    assert_eq!(result.pairs(nt("S1")), vec![(0, 0)]);
    assert_eq!(result.pairs(nt("S2")), vec![(2, 0)]);
    assert_eq!(result.pairs(nt("S3")), vec![(0, 1), (1, 2)]);
    assert_eq!(result.pairs(nt("S4")), vec![(2, 2)]);
    assert_eq!(result.pairs(nt("S5")), vec![(0, 0), (1, 0)]);
    assert_eq!(result.pairs(nt("S6")), vec![(0, 2), (1, 2)]);
}

#[test]
fn example_path_from_section_4_3() {
    // "after the first loop iteration, non-terminal S is added ... row
    // index i = 1 and column index j = 2 ... such a path consists of two
    // edges with labels type_r and type, and thus S =>* type_r type".
    let grammar = queries::query1();
    let wcnf = grammar.to_wcnf(CnfOptions::default()).unwrap();
    let graph = generators::paper_example();
    let s = wcnf.symbols.get_nt("S").unwrap();

    let index = solve_single_path(&graph, &wcnf);
    assert_eq!(index.length(s, 1, 2), Some(2), "two-edge witness");
    let path = extract_path(&index, &graph, &wcnf, s, 1, 2).unwrap();
    let labels: Vec<&str> = path.iter().map(|e| graph.label_name(e.label)).collect();
    assert_eq!(labels, vec!["type_r", "type"]);
}

#[test]
fn all_backends_and_baselines_agree_on_the_example() {
    let grammar = queries::query1();
    let graph = generators::paper_example();
    let expect = vec![(0, 0), (0, 2), (1, 2)];

    for backend in [
        Backend::Dense,
        Backend::DensePar { workers: 3 },
        Backend::Sparse,
        Backend::SparsePar { workers: 3 },
        Backend::SetMatrix,
    ] {
        let ans = solve(&graph, &grammar, backend).unwrap();
        assert_eq!(ans.start_pairs(), expect.as_slice(), "{}", backend.name());
    }

    // Baselines.
    let wcnf = grammar.to_wcnf(CnfOptions::default()).unwrap();
    let s_wcnf = wcnf.symbols.get_nt("S").unwrap();
    let hellings = cfpq::baselines::hellings::solve_hellings(&graph, &wcnf);
    assert_eq!(hellings.pairs(s_wcnf), expect);

    let s_cfg = grammar.symbols.get_nt("S").unwrap();
    let gll = cfpq::baselines::gll::solve_gll(&graph, &grammar);
    assert_eq!(gll.pairs(s_cfg), expect);
}
