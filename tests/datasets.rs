//! Integration tests over the evaluation datasets: the invariants the
//! harness relies on when regenerating Tables 1 and 2.

use cfpq::grammar::queries;
use cfpq::graph::ontology;
use cfpq::prelude::*;

#[test]
fn repeat_scales_results_exactly_8x() {
    // The paper's g1/g2/g3 rows have #results exactly 8x their base
    // ontologies' — the property that pins down disjoint-copy semantics.
    // Verified here on the smallest base to keep the test fast.
    let q1 = queries::query1();
    let base = ontology::dataset("skos").unwrap().to_graph();
    let base_count = solve(&base, &q1, Backend::Sparse).unwrap().start_count();
    assert!(base_count > 0);
    let repeated = base.repeat(8);
    let repeated_count = solve(&repeated, &q1, Backend::Sparse)
        .unwrap()
        .start_count();
    assert_eq!(repeated_count, 8 * base_count);
}

#[test]
fn queries_give_consistent_counts_across_backends_on_travel() {
    let graph = ontology::dataset("travel").unwrap().to_graph();
    for q in [queries::query1(), queries::query2()] {
        let counts: Vec<usize> = [
            Backend::Dense,
            Backend::Sparse,
            Backend::SparsePar { workers: 3 },
        ]
        .into_iter()
        .map(|b| solve(&graph, &q, b).unwrap().start_count())
        .collect();
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[1], counts[2]);
    }
}

#[test]
fn q1_results_are_symmetric_on_rdf_graphs() {
    // Same-generation is symmetric by construction on graphs closed
    // under edge inversion: if x subClassOf_r ... subClassOf y then the
    // mirrored path relates y to x.
    let graph = ontology::dataset("univ-bench").unwrap().to_graph();
    let ans = solve(&graph, &queries::query1(), Backend::Sparse).unwrap();
    let pairs: std::collections::BTreeSet<(u32, u32)> = ans.start_pairs().iter().copied().collect();
    for &(i, j) in &pairs {
        assert!(pairs.contains(&(j, i)), "missing mirror of ({i},{j})");
    }
}

#[test]
fn q2_only_involves_subclass_edges() {
    // Q2's alphabet is {subClassOf, subClassOf_r}: deleting all type and
    // padding triples must not change the answer.
    let full = ontology::dataset("funding").unwrap();
    let mut trimmed = cfpq::graph::TripleSet::new();
    for (s, p, o) in full.iter() {
        if p == "subClassOf" {
            trimmed.add(s, p, o);
        }
    }
    let q2 = queries::query2();
    let full_count = solve(&full.to_graph(), &q2, Backend::Sparse)
        .unwrap()
        .start_count();
    let trimmed_count = solve(&trimmed.to_graph(), &q2, Backend::Sparse)
        .unwrap()
        .start_count();
    assert_eq!(full_count, trimmed_count);
}

#[test]
fn baselines_match_on_generations_dataset() {
    let cfg = queries::query1();
    let wcnf = cfg
        .to_wcnf(cfpq::grammar::cnf::CnfOptions::default())
        .unwrap();
    let graph = ontology::dataset("generations").unwrap().to_graph();

    let matrix = solve(&graph, &cfg, Backend::Sparse).unwrap();
    let hellings = cfpq::baselines::hellings::solve_hellings(&graph, &wcnf);
    let gll = cfpq::baselines::gll::solve_gll(&graph, &cfg);

    let s_wcnf = wcnf.symbols.get_nt("S").unwrap();
    let s_cfg = cfg.symbols.get_nt("S").unwrap();
    assert_eq!(matrix.start_pairs(), hellings.pairs(s_wcnf).as_slice());
    assert_eq!(matrix.start_pairs(), gll.pairs(s_cfg).as_slice());
}
