//! Differential oracles for the non-matrix baselines on *general*
//! grammars (ε-rules, unit rules, long rules — the territory the matrix
//! solvers never see because they require weak CNF).
//!
//! Strategy: encode a short word as a chain graph; then for every span
//! `(i, j)` of the chain, GLL's and RSM's answer for `(S, i, j)` must
//! equal brute-force membership of `word[i..j]` in `L(G_S)` as computed
//! by [`Cfg::bounded_language`] on the original grammar. This covers ε
//! (empty spans), unit chains and long rules end to end.

use cfpq::baselines::{gll::solve_gll, rsm::solve_rsm_cfg};
use cfpq::graph::generators;
use cfpq::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random general CFG over at most 3 terminals with ε/unit/long rules.
fn random_general_cfg(seed: u64) -> Cfg {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_nts = rng.gen_range(2..4usize);
    let n_terms = rng.gen_range(1..4usize);
    let nts: Vec<String> = (0..n_nts).map(|i| format!("N{i}")).collect();
    let terms: Vec<String> = (0..n_terms).map(|i| format!("t{i}")).collect();
    let mut text = String::new();
    let n_rules = rng.gen_range(n_nts..n_nts * 3);
    for r in 0..n_rules {
        let lhs = if r < n_nts {
            &nts[r]
        } else {
            &nts[rng.gen_range(0..n_nts)]
        };
        let len = rng.gen_range(0..4usize);
        let mut rhs: Vec<&str> = Vec::new();
        for _ in 0..len {
            if rng.gen_bool(0.45) {
                rhs.push(&nts[rng.gen_range(0..n_nts)]);
            } else {
                rhs.push(&terms[rng.gen_range(0..n_terms)]);
            }
        }
        if rhs.is_empty() {
            text.push_str(&format!("{lhs} -> eps\n"));
        } else {
            text.push_str(&format!("{lhs} -> {}\n", rhs.join(" ")));
        }
    }
    Cfg::parse(&text).expect("generated grammar parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn gll_and_rsm_match_brute_force_on_all_chain_spans(
        grammar_seed in 0u64..2000,
        word_len in 0usize..5,
        word_seed in 0u64..100,
    ) {
        let cfg = random_general_cfg(grammar_seed);
        let start = cfg.start.unwrap();
        let n_terms = cfg.symbols.n_terms();
        if n_terms == 0 {
            // Grammar used no terminal at all (only ε/nonterminal rules);
            // no chain can be built.
            return Ok(());
        }

        // A random word over the grammar's alphabet (not necessarily a
        // member — negatives matter).
        let mut rng = StdRng::seed_from_u64(word_seed);
        let word: Vec<u32> = (0..word_len).map(|_| rng.gen_range(0..n_terms) as u32).collect();
        let names: Vec<String> = word
            .iter()
            .map(|&t| cfg.symbols.term_name(Term(t)).to_owned())
            .collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let graph = if name_refs.is_empty() {
            // A single node, no edges: only the ε span exists.
            Graph::new(1)
        } else {
            generators::word_chain(&name_refs)
        };

        let gll = solve_gll(&graph, &cfg);
        let rsm = solve_rsm_cfg(&graph, &cfg);
        // Brute-force language up to the word length.
        let language = cfg.bounded_language(start, word.len());

        for i in 0..=word.len() {
            for j in i..=word.len() {
                let span: Vec<Term> = word[i..j].iter().map(|&t| Term(t)).collect();
                let expect = language.contains(&span);
                prop_assert_eq!(
                    gll.contains(start, i as u32, j as u32),
                    expect,
                    "GLL span ({}, {}) grammar seed {}", i, j, grammar_seed
                );
                prop_assert_eq!(
                    rsm.contains(start, i as u32, j as u32),
                    expect,
                    "RSM span ({}, {}) grammar seed {}", i, j, grammar_seed
                );
            }
        }
    }
}

#[test]
fn gll_and_rsm_agree_on_cyclic_graphs_with_general_grammars() {
    // On cyclic graphs there is no simple brute-force oracle, but the two
    // independent implementations must agree with each other.
    for seed in 0..30u64 {
        let cfg = random_general_cfg(seed);
        let start = cfg.start.unwrap();
        let names: Vec<String> = cfg.symbols.terms().map(|(_, n)| n.to_owned()).collect();
        if names.is_empty() {
            continue; // terminal-free grammar: no labeled graph to build
        }
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let graph = generators::random_graph(6, 14, &refs, seed ^ 0xF00D);
        let gll = solve_gll(&graph, &cfg);
        let rsm = solve_rsm_cfg(&graph, &cfg);
        assert_eq!(
            gll.pairs(start),
            rsm.pairs(start),
            "GLL vs RSM divergence on seed {seed}"
        );
    }
}
