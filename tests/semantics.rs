//! Integration tests for the non-relational semantics: single-path
//! witness extraction at scale, all-path enumeration, and the
//! conjunctive-grammar upper approximation.

use cfpq::core::all_paths::{enumerate_paths, EnumLimits};
use cfpq::core::conjunctive::{anbncn, solve_conjunctive};
use cfpq::core::relational::solve_on_engine;
use cfpq::core::single_path::validate_witness;
use cfpq::grammar::cnf::CnfOptions;
use cfpq::grammar::queries;
use cfpq::graph::{generators, ontology};
use cfpq::prelude::*;

#[test]
fn every_single_path_witness_on_skos_validates() {
    // The §5 semantics on a real-ish dataset: extract a witness for every
    // same-generation pair and re-derive its label word.
    let wcnf = queries::query1().to_wcnf(CnfOptions::default()).unwrap();
    let graph = ontology::dataset("skos").unwrap().to_graph();
    let s = wcnf.symbols.get_nt("S").unwrap();
    let index = solve_single_path(&graph, &wcnf);
    let pairs = index.pairs_with_lengths(s);
    assert!(!pairs.is_empty());
    for (i, j, len) in pairs {
        let path = extract_path(&index, &graph, &wcnf, s, i, j)
            .unwrap_or_else(|e| panic!("({i},{j}): {e}"));
        assert_eq!(path.len() as u32, len);
        assert!(validate_witness(&path, &graph, &wcnf, s, i, j));
    }
}

#[test]
fn witness_lengths_are_even_for_same_generation() {
    // Q1 derivations always pair an up-edge with a down-edge, so witness
    // lengths are even — a semantic regression check on the length
    // bookkeeping of §5.
    let wcnf = queries::query1().to_wcnf(CnfOptions::default()).unwrap();
    let graph = ontology::dataset("travel").unwrap().to_graph();
    let s = wcnf.symbols.get_nt("S").unwrap();
    let index = solve_single_path(&graph, &wcnf);
    for (i, j, len) in index.pairs_with_lengths(s) {
        assert_eq!(len % 2, 0, "odd witness length {len} at ({i},{j})");
    }
}

#[test]
fn all_paths_on_binary_tree_counts_descend_ascend_pairs() {
    // On a binary tree with down/up edges and grammar S -> down S up |
    // down up, node 0's S-loops descend k levels and come back: the
    // number of distinct length-2k witnesses from the root equals the
    // number of depth-k descendants (each gives a unique down-path...
    // with per-level binary choice: 2^k paths of length 2k? No — each
    // witness is a down-path to some node and straight back, so exactly
    // #nodes at depth k).
    let grammar = Cfg::parse("S -> down S up | down up").unwrap();
    let wcnf = grammar.to_wcnf(CnfOptions::default()).unwrap();
    let s = wcnf.symbols.get_nt("S").unwrap();
    let graph = generators::binary_tree(3, "down", "up");
    let rel = solve_on_engine(&SparseEngine, &graph, &wcnf);
    assert!(rel.contains(s, 0, 0));
    let page = enumerate_paths(
        &rel,
        &graph,
        &wcnf,
        s,
        0,
        0,
        EnumLimits {
            max_len: 6,
            max_paths: 1000,
        },
    );
    assert!(page.exhausted, "1000-path cap was not hit");
    // Witness of length 2: down to a child and back (2 children);
    // length 4: down 2 and back (4 grandchildren); length 6: 8.
    let mut by_len = std::collections::BTreeMap::new();
    for p in &page.paths {
        *by_len.entry(p.len()).or_insert(0usize) += 1;
        assert!(validate_witness(p, &graph, &wcnf, s, 0, 0));
    }
    assert_eq!(by_len.get(&2), Some(&2));
    assert_eq!(by_len.get(&4), Some(&4));
    assert_eq!(by_len.get(&6), Some(&8));
}

#[test]
fn conjunctive_anbncn_on_graph_with_multiple_chains() {
    // Two chains sharing endpoints: one spells a b c (member), the other
    // a b b c (a^1 b^2 c^1, not a member).
    let g = anbncn();
    let s = g.symbols.get_nt("S").unwrap();
    let mut graph = Graph::new(0);
    // Chain 1: 0 -a-> 1 -b-> 2 -c-> 3
    graph.add_edge_named(0, "a", 1);
    graph.add_edge_named(1, "b", 2);
    graph.add_edge_named(2, "c", 3);
    // Chain 2: 0 -a-> 4 -b-> 5 -b-> 6 -c-> 3
    graph.add_edge_named(0, "a", 4);
    graph.add_edge_named(4, "b", 5);
    graph.add_edge_named(5, "b", 6);
    graph.add_edge_named(6, "c", 3);
    let idx = solve_conjunctive(&SparseEngine, &graph, &g);
    assert!(idx.contains(s, 0, 3), "abc path satisfies a^n b^n c^n");
    // The relation only contains pairs justified by *some* conjunct pair;
    // (0,3) comes from the valid chain. No pair can start mid-chain.
    assert!(!idx.contains(s, 1, 3));
    assert!(!idx.contains(s, 4, 3));
}

#[test]
fn conjunctive_is_upper_approximation_on_merged_cycles() {
    // On a single node with a/b/c self loops, the projections each accept
    // (0,0); the conjunctive result may accept it too (upper
    // approximation of an undecidable exact answer) but must stay within
    // every projection.
    let g = anbncn();
    let s = g.symbols.get_nt("S").unwrap();
    let mut graph = Graph::new(1);
    for l in ["a", "b", "c"] {
        graph.add_edge_named(0, l, 0);
    }
    let conj = solve_conjunctive(&SparseEngine, &graph, &g);
    for pick in 0..2 {
        let proj = g.projection(pick);
        let rel = solve_on_engine(&SparseEngine, &graph, &proj);
        for (i, j) in conj.pairs(s) {
            assert!(
                rel.contains(s, i, j),
                "projection {pick} must contain ({i},{j})"
            );
        }
    }
    // Here the approximation does report (0,0): a b c is realizable as a
    // cycle and both conjuncts hold — and indeed a true witness (a b c)
    // exists, so this is not even spurious.
    assert!(conj.contains(s, 0, 0));
}
