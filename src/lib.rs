//! # cfpq
//!
//! A from-scratch Rust reproduction of **Azimov & Grigorev, "Context-Free
//! Path Querying by Matrix Multiplication" (EDBT 2018)** — evaluation of
//! context-free path queries over edge-labeled graphs by reducing them to
//! matrix transitive closure.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`grammar`] — CFGs, the grammar DSL, CNF normalization, CYK;
//! * [`graph`] — edge-labeled digraphs, triple loading, dataset
//!   generators;
//! * [`matrix`] — Boolean/set-valued matrix kernels and the parallel
//!   device;
//! * [`core`] — Algorithm 1 (relational semantics), single-path
//!   semantics, all-path enumeration, conjunctive extension, and the
//!   unified compiled-query pipeline lowering NFA-form RPQs and CFGs
//!   onto the same fixpoint solver;
//! * [`service`] — the concurrent query service: snapshot-isolated
//!   epochs over a shared [`core::session::GraphIndex`], a multi-queue
//!   scheduler batching requests per grammar, shared closure caching
//!   with incremental epoch repair, and a typed failure contract
//!   (panic isolation, deadlines, backpressure) with a deterministic
//!   fault-injection harness in [`service::faults`];
//! * [`baselines`] — Hellings' algorithm, GLL-for-graphs, Valiant's
//!   string parser.
//!
//! ## Quickstart
//!
//! ```
//! use cfpq::prelude::*;
//!
//! // The worked example of the paper, §4.3.
//! let grammar = cfpq::grammar::queries::query1();
//! let graph = cfpq::graph::generators::paper_example();
//! let answer = cfpq::core::solve(&graph, &grammar, Backend::Sparse).unwrap();
//! assert_eq!(answer.start_pairs(), &[(0, 0), (0, 2), (1, 2)]); // Fig. 9, R_S
//! ```

pub use cfpq_baselines as baselines;
pub use cfpq_core as core;
pub use cfpq_grammar as grammar;
pub use cfpq_graph as graph;
pub use cfpq_matrix as matrix;
pub use cfpq_obs as obs;
pub use cfpq_service as service;

/// Commonly used items in one import.
pub mod prelude {
    pub use cfpq_core::all_paths::{
        enumerate_paths, EnumLimits, PageRequest, PathEnumerator, PathPage,
    };
    pub use cfpq_core::compile::{CompiledQuery, QueryKind};
    pub use cfpq_core::query::{solve, solve_with, Backend, QueryAnswer};
    pub use cfpq_core::regular::{solve_regular, Nfa};
    pub use cfpq_core::relational::{
        solve_on_engine, solve_set_matrix, FixpointSolver, SolveStats, Strategy,
    };
    pub use cfpq_core::session::{
        AllPathsId, CfpqSession, GraphIndex, PreparedQuery, QueryId, SessionError, SinglePathId,
    };
    pub use cfpq_core::single_path::{
        extract_path, solve_single_path, validate_witness, SinglePathSolver,
    };
    pub use cfpq_grammar::{Cfg, Nt, Term, Wcnf};
    pub use cfpq_graph::{Graph, TripleSet};
    pub use cfpq_matrix::{
        AdaptiveEngine, BoolEngine, DenseEngine, Device, KernelCounters, LenEngine, ParDenseEngine,
        ParSparseEngine, Parallelism, SparseEngine, TiledEngine,
    };
    pub use cfpq_obs::{MetricsRegistry, NoopRecorder, Recorder, SpanCollector};
    // The service's query handles keep their own names (`cfpq::service::
    // QueryId` vs the session's `QueryId` above), so only the
    // unambiguous types are in the prelude.
    pub use cfpq_service::{
        Backoff, CfpqService, QueryTrace, ServiceConfig, ServiceError, ServiceStats, Snapshot,
        Ticket, TicketResult,
    };
}
