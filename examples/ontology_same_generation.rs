//! The paper's evaluation workload (§6) in miniature: same-generation
//! queries over RDF-style ontologies.
//!
//! Generates the synthetic stand-ins for several ontology datasets of
//! Tables 1/2 (exact triple counts, see DESIGN.md §3), converts them to
//! graphs with forward + inverse edges, and evaluates Q1 and Q2 on the
//! sparse backend, reporting `#triples`, `#results` and wall time per
//! dataset — the structure of a Table 1/2 row.
//!
//! Run with: `cargo run --release --example ontology_same_generation`

use cfpq::grammar::queries;
use cfpq::graph::ontology;
use cfpq::prelude::*;
use std::time::Instant;

fn main() {
    let q1 = queries::query1();
    let q2 = queries::query2();

    println!(
        "{:<32} {:>8} {:>8} {:>10} {:>8} {:>10}",
        "ontology", "#triples", "Q1 #res", "Q1 (ms)", "Q2 #res", "Q2 (ms)"
    );

    for name in [
        "skos",
        "generations",
        "travel",
        "univ-bench",
        "atom-primitive",
        "biomedical-measure-primitive",
        "foaf",
        "people-pets",
        "funding",
        "wine",
        "pizza",
    ] {
        let triples = ontology::dataset(name).expect("known dataset");
        let graph = triples.to_graph();

        let t0 = Instant::now();
        let a1 = solve(&graph, &q1, Backend::Sparse).expect("Q1 runs");
        let q1_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let a2 = solve(&graph, &q2, Backend::Sparse).expect("Q2 runs");
        let q2_ms = t0.elapsed().as_secs_f64() * 1e3;

        println!(
            "{:<32} {:>8} {:>8} {:>10.1} {:>8} {:>10.1}",
            name,
            triples.len(),
            a1.start_count(),
            q1_ms,
            a2.start_count(),
            q2_ms
        );
    }

    // Demonstrate the g1-style scaled graph: 8 disjoint copies multiply
    // the answer count by exactly 8 (the paper's construction).
    let funding = ontology::dataset("funding").unwrap().to_graph();
    let base = solve(&funding, &q1, Backend::Sparse).unwrap().start_count();
    let g1 = funding.repeat(8);
    let scaled = solve(&g1, &q1, Backend::SparsePar { workers: 0 })
        .unwrap()
        .start_count();
    println!(
        "\nfunding Q1 results: {base}; g1 = 8 x funding: {scaled} (exactly 8x: {})",
        scaled == 8 * base
    );
}
