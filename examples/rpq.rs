//! Regular path queries on the unified compiled pipeline: build an NFA,
//! prepare it through a session exactly like a grammar, and watch the
//! same masked semi-naive fixpoint serve it — cold solve, incremental
//! repair after `add_edges`, and the triangulation against the
//! product-graph oracle and the equivalent right-linear grammar.
//!
//! Run with: `cargo run --release --example rpq`

use cfpq::core::CompiledQuery;
use cfpq::graph::ontology;
use cfpq::prelude::*;

fn main() {
    // The transitive-subclass RPQ `subClassOf+` as a two-state NFA.
    let nfa = Nfa::plus("subClassOf");

    // Under the hood, `prepare_regular` compiles the NFA through the
    // same RSM lowering CFPQ grammars use: one box, whose states become
    // nonterminals of a weak-CNF "state grammar".
    let compiled = CompiledQuery::from_nfa(&nfa);
    println!(
        "compiled `subClassOf+`: {} state nonterminals, {} label nonterminals, kind {:?}",
        compiled.n_state_nts(),
        compiled.n_label_nts(),
        compiled.kind(),
    );

    // One session, one materialized label-matrix index — the RPQ is
    // prepared and served exactly like a context-free query.
    let dataset = ontology::dataset("funding").expect("funding profile");
    let graph = dataset.to_graph();
    let mut session = CfpqSession::new(SparseEngine, &graph);
    let rpq = session.prepare_regular(&nfa);
    let answer = session.evaluate(rpq);
    let cold = session.last_run(rpq).expect("ran").clone();
    println!(
        "cold solve: |R| = {} ({} products, {} sweeps)",
        answer.start_count(),
        cold.stats.products_computed,
        cold.sweeps,
    );

    // The differential oracle — the standalone product-graph evaluator —
    // and the same language as a right-linear grammar under Algorithm 1
    // must answer byte-identically.
    let oracle = solve_regular(&SparseEngine, &graph, &nfa);
    assert_eq!(answer.start_pairs(), oracle.pairs());
    let grammar = Cfg::parse("S -> subClassOf S | subClassOf").expect("parses");
    let cfpq = solve(&graph, &grammar, Backend::Sparse).expect("solves");
    assert_eq!(answer.start_pairs(), cfpq.start_pairs());
    println!("oracle and regular-grammar CFPQ agree.");

    // The graph evolves; the compiled RPQ repairs incrementally like
    // any other prepared query.
    let top = 0u32;
    let fresh = (graph.n_nodes() - 1) as u32;
    let inserted = session.add_edges(&[(fresh, "subClassOf", top)]);
    let repaired = session.evaluate(rpq);
    let repair = session.last_run(rpq).expect("ran").clone();
    assert!(repair.incremental, "second evaluation must be a repair");
    println!(
        "inserted {inserted} edge(s); repair: |R| = {} ({} products vs {} cold)",
        repaired.start_count(),
        repair.stats.products_computed,
        cold.stats.products_computed,
    );

    // Cross-check the repair against the oracle on the updated graph.
    let mut updated = graph.clone();
    updated.add_edge_named(fresh, "subClassOf", top);
    assert_eq!(
        repaired.start_pairs(),
        solve_regular(&SparseEngine, &updated, &nfa).pairs()
    );
    println!("matches the product-graph oracle on the updated graph.");
}
