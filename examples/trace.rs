//! End-to-end tracing walkthrough: run a query workload through the
//! service with a [`SpanCollector`] installed, print the five slowest
//! spans, and export the whole trace for chrome://tracing.
//!
//! ```text
//! cargo run --release --example trace [-- trace.json]
//! ```
//!
//! Open the written file in Chrome (`chrome://tracing` → Load) or
//! <https://ui.perfetto.dev> to see the hierarchy: the `"epoch.publish"`
//! span covering every `"query.repair"`, worker `"batch"` spans covering
//! `"solve"` → `"sweep"` → `"kernel"` spans, and root `"ticket"` spans
//! carrying each request's wait-vs-run breakdown.

use cfpq::prelude::*;
use std::sync::Arc;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace.json".to_owned());

    // The paper's same-generation query on a bundled ontology graph.
    let grammar = cfpq::grammar::queries::query1();
    let graph = cfpq::graph::ontology::dataset("skos")
        .expect("bundled dataset")
        .to_graph();

    // Build the service with a collector: every layer's spans — service,
    // session, solver, kernels — land in this one recorder.
    let collector = Arc::new(SpanCollector::new());
    let service = CfpqService::with_observability(
        SparseEngine,
        &graph,
        ServiceConfig::new(2),
        collector.clone(),
    );
    let q = service.prepare(&grammar).expect("query normalizes");

    // A little workload: a cold wave, an epoch publish, a repaired wave.
    let fresh_node = graph.stats().n_nodes as u32;
    for wave in 0..2 {
        if wave == 1 {
            // An edge to an unseen node is new by construction, so this
            // publishes exactly one repaired epoch.
            service.add_edges(&[(0, "subClassOf", fresh_node)]);
        }
        let tickets: Vec<Ticket> = (0..4)
            .map(|_| service.enqueue(q, vec![]).expect("registered"))
            .collect();
        for t in tickets {
            let answer = t.wait().expect("no faults here");
            if let Some(trace) = answer.trace {
                eprintln!(
                    "ticket span {:?}: waited {}us, ran {}us in a batch of {}",
                    trace.span, trace.wait_us, trace.run_us, trace.batch_size
                );
            }
        }
    }
    let metrics = service.metrics();
    drop(service); // joins the workers; every span is closed now

    // The profile: where did the time go?
    println!("top 5 slowest spans:");
    for span in collector.top_slowest(5) {
        let attrs: Vec<String> = span.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!(
            "  {:>8}us  {:<14} {}",
            span.dur_us,
            span.name,
            attrs.join(" ")
        );
    }
    println!(
        "\nticket wait p99: {}us, queue depth max: {}",
        metrics.histogram("cfpq_ticket_wait_us").quantile(0.99),
        metrics.gauge("cfpq_queue_depth_max").get()
    );

    // Export for chrome://tracing.
    let json = collector.chrome_trace_json();
    let events = cfpq::obs::validate_chrome_trace(&json).expect("export is well-formed");
    std::fs::write(&out_path, json).expect("write trace file");
    println!("wrote {events} trace events to {out_path}");
}
