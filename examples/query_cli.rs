//! A small command-line CFPQ runner — the shape of tool a graph-database
//! user would actually invoke:
//!
//! ```text
//! cargo run --release --example query_cli -- \
//!     data/university.triples data/same_generation.grammar [backend] [strategy] \
//!     [--threads N] [--trace PATH]
//! ```
//!
//! Loads an RDF-style triple file, a grammar in the DSL, evaluates the
//! query w.r.t. relational semantics and prints the start-nonterminal
//! relation with node names, plus graph statistics. The fixpoint
//! strategy defaults to `masked-delta` (the fast pipeline); pass
//! `naive`, `batched` or `delta` to compare the ablations.
//! `--threads N` caps the process's thread budget (the
//! [`Parallelism`] knob): the parallel backends size their kernel
//! device from it instead of grabbing every available core.
//! `--trace PATH` runs the solve under a [`SpanCollector`], prints the
//! five slowest spans, and writes a chrome://tracing JSON to `PATH`.

use cfpq::prelude::*;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--threads N` / `--trace PATH` may appear anywhere; strip them
    // before the positional arguments are read.
    let mut budget = Parallelism::auto();
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let Some(n) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) else {
            eprintln!("--threads needs a number");
            return ExitCode::from(2);
        };
        budget = Parallelism::new(n);
        args.drain(i..i + 2);
    }
    let mut trace_path: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--trace") {
        let Some(p) = args.get(i + 1) else {
            eprintln!("--trace needs a path");
            return ExitCode::from(2);
        };
        trace_path = Some(p.clone());
        args.drain(i..i + 2);
    }
    let (triples_path, grammar_path) = match args.as_slice() {
        [t, g, ..] => (t.clone(), g.clone()),
        _ => {
            // Default to the bundled sample so `cargo run --example
            // query_cli` works out of the box.
            (
                "data/university.triples".to_owned(),
                "data/same_generation.grammar".to_owned(),
            )
        }
    };
    let backend = match args.get(2).map(String::as_str) {
        None | Some("sparse") => Backend::Sparse,
        Some("dense") => Backend::Dense,
        Some("sparse-par") => Backend::SparsePar {
            workers: budget.total(),
        },
        Some("dense-par") => Backend::DensePar {
            workers: budget.total(),
        },
        Some("set-matrix") => Backend::SetMatrix,
        Some(other) => {
            eprintln!("unknown backend `{other}` (dense|sparse|dense-par|sparse-par|set-matrix)");
            return ExitCode::from(2);
        }
    };
    let strategy = match args.get(3).map(String::as_str) {
        None => Strategy::default(),
        Some(name) => match Strategy::ALL.into_iter().find(|s| s.name() == name) {
            Some(s) => s,
            None => {
                let known: Vec<&str> = Strategy::ALL.iter().map(|s| s.name()).collect();
                eprintln!("unknown strategy `{name}` ({})", known.join("|"));
                return ExitCode::from(2);
            }
        },
    };

    let triples_text = match std::fs::read_to_string(&triples_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {triples_path}: {e}");
            return ExitCode::from(1);
        }
    };
    let triples = match TripleSet::parse(&triples_text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{triples_path}: {e}");
            return ExitCode::from(1);
        }
    };
    let grammar_text = match std::fs::read_to_string(&grammar_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {grammar_path}: {e}");
            return ExitCode::from(1);
        }
    };
    let grammar = match Cfg::parse(&grammar_text) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("{grammar_path}: {e}");
            return ExitCode::from(1);
        }
    };

    let graph = triples.to_graph();
    let stats = graph.stats();
    eprintln!(
        "graph: {} nodes, {} edges, {} labels, {} SCCs (largest {})",
        stats.n_nodes, stats.n_edges, stats.n_labels, stats.n_sccs, stats.largest_scc
    );

    // With --trace, the whole solve runs under a collector: the solver's
    // "solve"/"sweep" spans and every engine's "kernel" spans land in
    // one exportable trace.
    let collector = trace_path.as_ref().map(|_| Arc::new(SpanCollector::new()));
    let _install = collector
        .as_ref()
        .map(|c| cfpq::obs::install(Arc::clone(c) as Arc<dyn Recorder>));

    let started = std::time::Instant::now();
    let answer = match cfpq::core::solve_with(&graph, &grammar, backend, strategy) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("query failed: {e}");
            return ExitCode::from(1);
        }
    };
    if let (Some(path), Some(collector)) = (&trace_path, &collector) {
        eprintln!("top 5 slowest spans:");
        for span in collector.top_slowest(5) {
            let attrs: Vec<String> = span.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            eprintln!(
                "  {:>8}us  {:<8} {}",
                span.dur_us,
                span.name,
                attrs.join(" ")
            );
        }
        let json = collector.chrome_trace_json();
        match cfpq::obs::validate_chrome_trace(&json) {
            Ok(events) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::from(1);
                }
                eprintln!("wrote {events} trace events to {path}");
            }
            Err(e) => {
                eprintln!("trace export failed validation: {e}");
                return ExitCode::from(1);
            }
        }
    }
    // SetMatrix has no strategy knob; don't attribute one to it.
    let strategy_note = if backend == Backend::SetMatrix {
        String::new()
    } else {
        format!(" ({})", strategy.name())
    };
    eprintln!(
        "backend {}{} answered in {:.2?} ({} fixpoint iterations)",
        answer.backend,
        strategy_note,
        started.elapsed(),
        answer.iterations
    );

    // Node ids follow the triple file's interning order; rebuild names.
    let mut names: Vec<String> = Vec::new();
    {
        let mut seen = std::collections::HashSet::new();
        for (s, _, o) in triples.iter() {
            for n in [s, o] {
                if seen.insert(n.to_owned()) {
                    names.push(n.to_owned());
                }
            }
        }
    }
    println!("R_{} ({} pairs):", answer.start, answer.start_count());
    for &(i, j) in answer.start_pairs() {
        println!("  {} -> {}", names[i as usize], names[j as usize]);
    }
    ExitCode::SUCCESS
}
