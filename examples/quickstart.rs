//! Quickstart: the paper's worked example (§4.3), end to end.
//!
//! Builds the 3-node graph of Fig. 5, runs the same-generation query
//! (Fig. 3 / Fig. 10) with the paper-literal set-matrix backend, and
//! prints the full iteration trace (Fig. 6–8) plus the final context-free
//! relations (Fig. 9).
//!
//! Run with: `cargo run --release --example quickstart`

use cfpq::grammar::cnf::CnfOptions;
use cfpq::grammar::queries;
use cfpq::graph::generators;
use cfpq::prelude::*;

fn main() {
    // The example grammar, already in the paper's normal form (Fig. 4).
    let grammar = queries::fig4_normal_form();
    let wcnf = grammar.to_wcnf(CnfOptions::default()).expect("normalizes");
    println!("Grammar G' (Fig. 4):\n{wcnf}");

    // The input graph of Fig. 5.
    let graph = generators::paper_example();
    println!("Input graph (Fig. 5): {graph}");
    for e in graph.edges() {
        println!("  {} --{}--> {}", e.from, graph.label_name(e.label), e.to);
    }

    // Algorithm 1 with per-iteration snapshots (set-matrix backend).
    let result = solve_set_matrix(&graph, &wcnf, true);
    println!(
        "\nTransitive closure reached fixpoint after {} iterations (paper: k = 6).",
        result.iterations
    );
    for (i, snapshot) in result.snapshots.iter().enumerate() {
        println!("T{i} =\n{}", snapshot.render(&wcnf.symbols));
    }

    // The context-free relations R_A (Fig. 9).
    println!("Context-free relations (Fig. 9):");
    for (nt, name) in wcnf.symbols.nts() {
        let pairs = result.pairs(nt);
        let rendered: Vec<String> = pairs.iter().map(|(i, j)| format!("({i},{j})")).collect();
        println!("  R_{name} = {{{}}}", rendered.join(", "));
    }

    // The same answer through the high-level API on every backend.
    println!("\nCross-checking all backends on R_S:");
    for backend in [
        Backend::Dense,
        Backend::DensePar { workers: 0 },
        Backend::Sparse,
        Backend::SparsePar { workers: 0 },
        Backend::SetMatrix,
    ] {
        let ans = solve(&graph, &grammar, backend).expect("query runs");
        println!(
            "  {:10} -> R_S = {:?} ({} iterations)",
            ans.backend,
            ans.start_pairs(),
            ans.iterations
        );
        assert_eq!(ans.start_pairs(), &[(0, 0), (0, 2), (1, 2)], "Fig. 9 R_S");
    }
    println!("\nAll backends agree with Fig. 9.");

    // Every fixpoint strategy reaches the same closure; the default
    // (masked-delta) just launches less kernel work to get there.
    println!("\nFixpoint strategies on the sparse backend:");
    for strategy in Strategy::ALL {
        let idx = FixpointSolver::new(&SparseEngine)
            .strategy(strategy)
            .solve(&graph, &wcnf);
        println!(
            "  {:12} -> {} sweeps, {} products computed, {} skipped",
            strategy.name(),
            idx.iterations,
            idx.stats.products_computed,
            idx.stats.products_skipped
        );
        assert_eq!(idx.pairs(wcnf.start), vec![(0, 0), (0, 2), (1, 2)]);
    }
}
