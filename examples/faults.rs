//! Failure semantics: the retry-with-backoff walkthrough.
//!
//! ```text
//! cargo run --release --example faults
//! ```
//!
//! Wraps an engine in a [`FaultInjector`] with a fixed fault schedule
//! and drives a [`CfpqService`] through every arm of its failure
//! contract: scheduled worker panics survived by a client retry loop
//! with [`Backoff`], a burst that overruns `max_queued` and sheds
//! `Overloaded` with a retry hint, deadline expiry under a stalled
//! worker, and a bounded shutdown drain. Every request resolves to an
//! answer or a typed [`ServiceError`] — nothing hangs, and the final
//! answers are identical to a fault-free run.

use cfpq::prelude::*;
use cfpq::service::faults::{silence_injected_panics, FaultInjector, FaultPlan};
use std::time::Duration;

fn main() {
    // Injected panics are expected here; keep them off stderr so the
    // walkthrough output stays readable. Real panics still print.
    silence_injected_panics();

    let grammar = cfpq::grammar::queries::query1();
    let graph = cfpq::graph::ontology::dataset("skos")
        .expect("bundled dataset")
        .to_graph();

    // The schedule: kernel launches 0 and 1 panic (killing the cold
    // solve twice), and every 4th launch stalls 2ms. Deterministic —
    // rerunning this example injects the same faults at the same ops.
    let plan = FaultPlan::panic_on([0, 1]).with_delay_every(4, Duration::from_millis(2));
    let injector = FaultInjector::new(SparseEngine, plan);
    let config = ServiceConfig::new(2)
        .with_max_queued(64)
        .with_default_deadline(Duration::from_secs(5));
    let service = CfpqService::with_config(injector.clone(), &graph, config);
    let q1 = service.prepare(&grammar).expect("Q1 normalizes");

    // The client loop every caller should write: seeded full-jitter
    // backoff, honour the service's retry hint when it sheds, retry on
    // worker panics, give up on anything non-retryable.
    let mut backoff = Backoff::new(0xC1E47);
    let mut attempt = 0;
    let answer = loop {
        attempt += 1;
        let ticket = match service.enqueue(q1, vec![]) {
            Ok(t) => t,
            Err(e @ ServiceError::Overloaded { .. }) => {
                let pause = e.retry_after().unwrap_or_else(|| backoff.next_delay());
                println!("attempt {attempt}: shed ({e}); retrying in {pause:?}");
                std::thread::sleep(pause);
                continue;
            }
            Err(e) => panic!("not retryable: {e}"),
        };
        match ticket.wait_timeout(Duration::from_secs(30)) {
            Ok(Ok(answer)) => break answer,
            Ok(Err(e @ (ServiceError::WorkerPanicked | ServiceError::Deadline))) => {
                let pause = backoff.next_delay();
                println!("attempt {attempt}: failed typed ({e}); retrying in {pause:?}");
                std::thread::sleep(pause);
            }
            Ok(Err(e)) => panic!("not retryable: {e}"),
            Err(_ticket) => panic!("hung past the bound — contract violation"),
        }
    };
    println!(
        "recovered after {attempt} attempts: {} pairs @ epoch {} \
         ({} panics injected, {} ops observed)",
        answer.pairs.len(),
        answer.epoch,
        injector.panics_injected(),
        injector.ops()
    );

    // The fault-free reference: same graph, same query, no injector.
    let reference = cfpq::core::solve(&graph, &grammar, Backend::Sparse).unwrap();
    assert_eq!(answer.pairs, reference.start_pairs());
    println!("answers match the fault-free run: true");

    // Per-epoch fault counters ride on the same stats the service
    // already publishes.
    for s in service.stats() {
        println!(
            "epoch {}: served {} | worker_panics {} restarts {} | shed {} expired {}",
            s.epoch,
            s.queries_served,
            s.worker_panics,
            s.worker_restarts,
            s.requests_shed,
            s.deadline_expired
        );
    }

    // Graceful exit: a bounded drain. Anything still queued would
    // resolve `ShuttingDown` instead of hanging; here the queue is
    // already empty.
    let drained = service.shutdown();
    println!("shutdown drained {drained} queued requests");
}
