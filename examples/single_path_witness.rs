//! Single-path query semantics (§5): not just *whether* nodes are
//! related, but an actual witness path whose labels derive from the
//! query nonterminal.
//!
//! Uses the same-generation query on a small class hierarchy and extracts
//! a witness for every answer pair, re-validating each against the
//! grammar (Theorem 5 in action). Also demonstrates the bounded all-path
//! enumeration (§7 future-work semantics) on a cyclic graph.
//!
//! Run with: `cargo run --release --example single_path_witness`

use cfpq::core::all_paths::{enumerate_paths, EnumLimits};
use cfpq::core::single_path::validate_witness;
use cfpq::grammar::cnf::CnfOptions;
use cfpq::grammar::queries;
use cfpq::prelude::*;

fn main() {
    // A small ontology: c1, c2 subclass of c0; instances typed into them.
    let triples = TripleSet::parse(
        "c1 subClassOf c0\n\
         c2 subClassOf c0\n\
         i1 type c1\n\
         i2 type c2\n\
         i3 type c1\n",
    )
    .expect("triples parse");
    let graph = triples.to_graph();

    let grammar = queries::query1();
    let wcnf = grammar.to_wcnf(CnfOptions::default()).expect("normalizes");
    let s = wcnf.symbols.get_nt("S").expect("S exists");

    println!("Graph: {graph}");

    // §5: length-annotated closure.
    let index = solve_single_path(&graph, &wcnf);
    let answers = index.pairs_with_lengths(s);
    println!("Same-generation pairs with witness lengths:");
    for &(i, j, len) in &answers {
        let path = extract_path(&index, &graph, &wcnf, s, i, j).expect("witness extraction");
        assert_eq!(path.len() as u32, len);
        assert!(validate_witness(&path, &graph, &wcnf, s, i, j));
        let labels: Vec<&str> = path.iter().map(|e| graph.label_name(e.label)).collect();
        println!("  ({i}, {j}) len {len}: {}", labels.join(" "));
    }
    println!(
        "All {} witnesses validated against the grammar.",
        answers.len()
    );

    // §7 future work: all-path semantics, bounded, on a cyclic graph.
    let mut cyclic = Graph::new(1);
    cyclic.add_edge_named(0, "subClassOf_r", 0);
    cyclic.add_edge_named(0, "subClassOf", 0);
    let rel = FixpointSolver::new(&SparseEngine).solve(&cyclic, &wcnf);
    let page = enumerate_paths(
        &rel,
        &cyclic,
        &wcnf,
        s,
        0,
        0,
        EnumLimits {
            max_len: 6,
            max_paths: 10,
        },
    );
    println!(
        "\nCyclic graph (self loops): {} distinct witnesses of length <= 6 for (S, 0, 0):",
        page.paths.len()
    );
    for p in &page.paths {
        let labels: Vec<&str> = p.iter().map(|e| cyclic.label_name(e.label)).collect();
        println!("  {}", labels.join(" "));
        assert!(validate_witness(p, &cyclic, &wcnf, s, 0, 0));
    }
    // Truncation is explicit: `exhausted` distinguishes "that's all of
    // them" from "the caps cut the stream".
    println!(
        "{}",
        if page.exhausted {
            "Complete: no further witnesses within the length bound."
        } else {
            "Truncated by the path cap: page on for more witnesses."
        }
    );
}
