//! CFL-reachability for static analysis — the §3 motivation.
//!
//! Program-analysis problems (points-to analysis, field-sensitive data
//! flow) reduce to Dyck-language reachability over program graphs: an
//! object flows to a variable only along paths whose call/return or
//! load/store edges are properly balanced. This example builds a random
//! "program graph" with matched `open`/`close` edge pairs plus noise
//! edges and computes balanced-parentheses reachability with Algorithm 1.
//!
//! Run with: `cargo run --release --example dyck_reachability`

use cfpq::graph::{generators, Graph};
use cfpq::prelude::*;
use std::time::Instant;

fn build_program_graph(n_nodes: usize, seed: u64) -> Graph {
    // `(`/`)` model call/return, `e` models intraprocedural flow that the
    // query treats as irrelevant noise.
    generators::random_graph(n_nodes, n_nodes * 3, &["(", ")", "e"], seed)
}

fn main() {
    // Dyck-1 without the empty word: balanced, non-empty bracket strings.
    let grammar = Cfg::parse("S -> S S | ( S ) | ( )").expect("grammar parses");

    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>10}",
        "nodes", "edges", "#balanced", "sparse (ms)", "iters"
    );
    for n in [50usize, 100, 200, 400] {
        let graph = build_program_graph(n, 0xD1CE + n as u64);
        let t0 = Instant::now();
        let ans = solve(&graph, &grammar, Backend::Sparse).expect("query runs");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:>8} {:>8} {:>10} {:>12.1} {:>10}",
            graph.n_nodes(),
            graph.n_edges(),
            ans.start_count(),
            ms,
            ans.iterations
        );
    }

    // Sanity: hand-checkable instance. 0 -( 1 -( 2 -) 3 -) 4 is balanced
    // from 0 to 4 and from 1 to 3, nowhere else.
    let chain = generators::word_chain(&["(", "(", ")", ")"]);
    let ans = solve(&chain, &grammar, Backend::Dense).expect("query runs");
    println!("\nchain \"(())\": balanced pairs = {:?}", ans.start_pairs());
    assert_eq!(ans.start_pairs(), &[(0, 4), (1, 3)]);

    // And a witness path for the outer balance via single-path semantics.
    let wcnf = grammar
        .to_wcnf(cfpq::grammar::cnf::CnfOptions::default())
        .expect("normalizes");
    let index = solve_single_path(&chain, &wcnf);
    let s = wcnf.symbols.get_nt("S").expect("S exists");
    let path = extract_path(&index, &chain, &wcnf, s, 0, 4).expect("witness exists");
    let labels: Vec<&str> = path.iter().map(|e| chain.label_name(e.label)).collect();
    println!("witness 0->4: {}", labels.join(" "));
}
