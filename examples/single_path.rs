//! Single-path queries (§5) on the engine pipeline: the length-annotated
//! closure answers *which* pairs are related **and** hands back a
//! witness path per pair, on any of the four matrix engines — including
//! ε-witnesses on nullable grammars (the relational `nullable_diagonal`
//! semantics), and incremental repair of the length closure inside a
//! `CfpqSession`.
//!
//! Run with: `cargo run --release --example single_path`

use cfpq::core::relational::SolveOptions;
use cfpq::core::single_path::{extract_path, solve_single_path_oracle};
use cfpq::grammar::cnf::CnfOptions;
use cfpq::prelude::*;

fn main() {
    // A nullable grammar: S matches balanced a…b nests, *including the
    // empty one* — exactly the grammar class the seed-era solver
    // answered differently from the relational index.
    let grammar = Cfg::parse("S -> a S b | eps").expect("grammar parses");
    let wcnf = grammar.to_wcnf(CnfOptions::default()).expect("normalizes");
    let s = wcnf.symbols.get_nt("S").expect("S exists");
    let options = SolveOptions {
        nullable_diagonal: true,
    };

    let mut graph = Graph::new(5);
    graph.add_edge_named(0, "a", 1);
    graph.add_edge_named(1, "a", 2);
    graph.add_edge_named(2, "b", 3);

    // Engine-backed masked semi-naive length closure (pick any engine).
    let index = SinglePathSolver::new(&SparseEngine)
        .options(options)
        .solve(&graph, &wcnf);
    println!("Single-path answers over the truncated chain:");
    for (i, j, len) in index.pairs_with_lengths(s) {
        let path = extract_path(&index, &graph, &wcnf, s, i, j).expect("witness extracts");
        assert_eq!(path.len() as u32, len);
        assert!(validate_witness(&path, &graph, &wcnf, s, i, j));
        let labels: Vec<&str> = path.iter().map(|e| graph.label_name(e.label)).collect();
        println!(
            "  ({i}, {j}) len {len}: {}",
            if labels.is_empty() {
                "ε (the empty path)".to_owned()
            } else {
                labels.join(" ")
            }
        );
    }

    // The same pairs the relational index reports — §5 rides on the same
    // kernels, so the two semantics can never disagree.
    let relational = FixpointSolver::new(&SparseEngine)
        .options(options)
        .solve(&graph, &wcnf);
    assert_eq!(index.pairs(s), relational.pairs(s));

    // The naive O(n³) oracle agrees too (it is the test reference; the
    // engine pipeline exists because it is dramatically faster at scale
    // — see BENCH_pr4.json for the g3 numbers).
    let oracle = solve_single_path_oracle(&graph, &wcnf, options);
    assert_eq!(index.pairs(s), oracle.pairs(s));

    // Sessions serve single-path queries incrementally: complete the
    // chain and the cached length closure repairs itself from the one
    // new edge instead of re-solving.
    let mut session = CfpqSession::new(SparseEngine, &graph);
    let q = session.prepare_single_path_query(
        cfpq::core::session::PreparedQuery::new(&grammar)
            .expect("prepares")
            .options(options),
    );
    let before = session.evaluate_single_path(q).count(s);
    session.add_edges(&[(3, "b", 4)]);
    graph.add_edge_named(3, "b", 4);
    let idx = session.evaluate_single_path(q);
    println!(
        "\nAfter add_edges: {} -> {} pairs (repair: {:?} products)",
        before,
        idx.count(s),
        session
            .last_single_path_run(q)
            .unwrap()
            .stats
            .products_computed
    );
    assert!(session.last_single_path_run(q).unwrap().incremental);
    // a a b b now spans (0, 4); its witness extracts from the repaired
    // closure.
    let idx = session.single_path_index(q).unwrap();
    let path = extract_path(idx, &graph, &wcnf, s, 0, 4).expect("witness extracts");
    assert!(validate_witness(&path, &graph, &wcnf, s, 0, 4));
    let labels: Vec<&str> = path.iter().map(|e| graph.label_name(e.label)).collect();
    println!("witness for (0, 4): {}", labels.join(" "));
}
