//! Sessions & incremental updates: index a graph once, evaluate several
//! prepared queries against it, then stream edges in and watch the
//! session repair its cached closures instead of re-solving.
//!
//! Run with: `cargo run --release --example incremental`

use cfpq::grammar::queries;
use cfpq::graph::ontology;
use cfpq::prelude::*;

fn main() {
    // One persistent index over the funding ontology graph...
    let dataset = ontology::dataset("funding").expect("funding profile");
    let graph = dataset.to_graph();
    let mut session = CfpqSession::new(SparseEngine, &graph);
    println!(
        "indexed {} nodes / {} edges across {} label matrices",
        session.index().n_nodes(),
        session.index().n_edges(),
        session.index().n_labels(),
    );

    // ...serving both evaluation queries. Normalization runs once per
    // grammar, here, not once per evaluate call.
    let q1 = session.prepare(&queries::query1()).expect("Q1 prepares");
    let q2 = session.prepare(&queries::query2()).expect("Q2 prepares");
    let a1 = session.evaluate(q1);
    let a2 = session.evaluate(q2);
    let cold = session.last_run(q1).expect("ran").clone();
    println!(
        "cold solves: Q1 |R_S| = {} ({} products), Q2 |R_S| = {}",
        a1.start_count(),
        cold.stats.products_computed,
        a2.start_count(),
    );

    // The graph evolves: link the two ends of the class DAG with a
    // fresh subClassOf edge (plus its RDF inverse, as §6 loads them).
    let top = 0u32;
    let fresh = (graph.n_nodes() - 1) as u32;
    let inserted = session.add_edges(&[(fresh, "subClassOf", top), (top, "subClassOf_r", fresh)]);
    println!("\ninserted {inserted} new edges");

    // Re-query: the cached closure is repaired semi-naively from just
    // the new entries — same answers a from-scratch solve would give,
    // at a fraction of the kernel work.
    let b1 = session.evaluate(q1);
    let repair = session.last_run(q1).expect("ran").clone();
    assert!(repair.incremental, "second evaluation must be a repair");
    println!(
        "incremental re-query: Q1 |R_S| = {} ({} products vs {} cold, {} sweeps)",
        b1.start_count(),
        repair.stats.products_computed,
        cold.stats.products_computed,
        repair.sweeps,
    );
    assert!(repair.stats.products_computed < cold.stats.products_computed);

    // Cross-check against the one-shot facade on the updated graph.
    let mut updated = graph.clone();
    updated.add_edge_named(fresh, "subClassOf", top);
    updated.add_edge_named(top, "subClassOf_r", fresh);
    let scratch = solve(&updated, &queries::query1(), Backend::Sparse).expect("solves");
    assert_eq!(b1.start_pairs(), scratch.start_pairs());
    println!("matches a from-scratch solve of the updated graph.");
}
