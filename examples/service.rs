//! Serving queries concurrently: the `cfpq-service` walkthrough.
//!
//! ```text
//! cargo run --release --example service
//! ```
//!
//! Spins up a [`CfpqService`] over an ontology graph with one
//! [`Parallelism`] budget split between the scheduler workers and the
//! kernel device, fires a burst of client requests through the
//! multi-queue scheduler, publishes an edge update, and shows (a)
//! snapshot isolation — a reader pinned to the old epoch keeps its
//! answers — and (b) the per-epoch [`ServiceStats`]: the update was a
//! cheap incremental repair, and batched requests shared one cached
//! closure.

use cfpq::prelude::*;
use cfpq::service::ServiceConfig;

fn main() {
    // One thread budget for the whole process: 2 scheduler workers, the
    // rest (if any) to the kernel pool — never oversubscribed.
    let budget = Parallelism::new(4);
    let (config, device) = ServiceConfig::from_parallelism(budget, 2);
    println!(
        "budget: {} threads -> {} scheduler workers + {}-worker device",
        budget.total(),
        config.workers,
        device.n_workers()
    );

    let graph = cfpq::graph::ontology::dataset("skos")
        .expect("bundled dataset")
        .to_graph();
    let service = CfpqService::with_config(ParSparseEngine::new(device), &graph, config);
    let q1 = service
        .prepare(&cfpq::grammar::queries::query1())
        .expect("Q1 normalizes");

    // A burst of concurrent clients: each enqueues a request and waits
    // on its ticket. All requests share one grammar, so the scheduler
    // batches them and a single cold solve serves the entire burst.
    std::thread::scope(|s| {
        for client in 0..8 {
            let service = &service;
            s.spawn(move || {
                let ticket = service.enqueue(q1, vec![]).expect("q1 is registered");
                let answer = ticket.wait().expect("no faults in this walkthrough");
                println!(
                    "client {client}: {} pairs @ epoch {}",
                    answer.pairs.len(),
                    answer.epoch
                );
            });
        }
    });

    // Pin a snapshot, then update the graph: the snapshot is immutable,
    // the new epoch repairs the cached closure instead of re-solving.
    let before = service.snapshot();
    let pairs_before = before.evaluate(q1).start_count();
    let inserted = service.add_edges(&[(0, "subClassOf", 1), (1, "subClassOf", 2)]);
    let after = service.snapshot();
    println!(
        "update: {inserted} new edges, epoch {} -> {}",
        before.epoch(),
        after.epoch()
    );
    println!(
        "R_S: {} pairs on the old snapshot (unchanged: {}), {} on the new epoch",
        before.evaluate(q1).start_count(),
        before.evaluate(q1).start_count() == pairs_before,
        after.evaluate(q1).start_count()
    );

    println!("\nper-epoch stats:");
    for s in service.stats() {
        println!(
            "  epoch {}: served {:>3}  hits {:>3}  cold {} ({} products)  \
             repairs {} ({} products)  publish {:.2} ms",
            s.epoch,
            s.queries_served,
            s.cache_hits,
            s.cold_solves,
            s.cold_products,
            s.repairs,
            s.repair_products,
            s.publish_ms
        );
    }
}
