//! Offline stand-in for the `proptest` crate (see `shims/README.md`).
//!
//! Implements the slice of proptest this workspace uses:
//!
//! * the [`proptest!`] macro over `fn name(pat in strategy, ...)` items
//!   with an optional `#![proptest_config(...)]` header,
//! * [`Strategy`] for half-open integer ranges, tuples of strategies and
//!   [`collection::vec`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! * [`ProptestConfig`] with `with_cases`.
//!
//! Differences from the real crate: cases are sampled from a
//! deterministic RNG (no shrinking, no failure persistence). The seed is
//! `ProptestConfig::rng_seed` (default `0xCF9C_5EED`) mixed with the
//! test name, so every CI run replays the same cases; set the
//! `CFPQ_PROPTEST_SEED` environment variable to explore other streams.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::Range;

/// Test-case failure raised by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure with a rendered message.
    Fail(String),
    /// Input rejected by the test body (kept for API parity).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure from any displayable message.
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError::Fail(msg.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result type the generated test bodies produce.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-`proptest!`-block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Base RNG seed; mixed with the test name per test function.
    pub rng_seed: u64,
}

impl ProptestConfig {
    /// Config running `cases` cases with the default fixed seed.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }

    /// Config with an explicit base seed.
    pub fn with_cases_and_seed(cases: u32, rng_seed: u64) -> Self {
        ProptestConfig { cases, rng_seed }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            rng_seed: 0xCF9C_5EED,
        }
    }
}

/// The RNG driving case generation. Deterministic; see crate docs.
pub struct TestRng(StdRng);

impl TestRng {
    /// Derives the per-test RNG from the config seed and the test name,
    /// honouring the `CFPQ_PROPTEST_SEED` override.
    pub fn for_test(config: &ProptestConfig, test_name: &str) -> Self {
        let base = std::env::var("CFPQ_PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(config.rng_seed);
        // FNV-1a over the test name keeps distinct tests on distinct streams.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(base ^ h))
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of values for property tests (no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        let lo = self.start as u32;
        let hi = self.end as u32;
        assert!(lo < hi, "empty range strategy");
        char::from_u32(rng.0.gen_range(lo..hi)).unwrap_or(self.start)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_strategy_for_tuple!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` values with a length drawn from
    /// `len` (half-open, as in the real crate).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                (self.len.clone()).generate(rng)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Name-compatible module alias: lets `prop::collection::vec(...)` work
/// after `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
}

/// The usual glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

/// Asserts a condition inside a `proptest!` body, returning a
/// [`TestCaseError`] (not panicking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            left, right, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}: `{:?}` != `{:?}`",
            format!($($fmt)+), left, right
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: both sides equal `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{}: both sides equal `{:?}`",
            format!($($fmt)+), left
        );
    }};
}

/// Declares deterministic property tests. Supports the subset of the
/// real macro's grammar this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(0u64..5, 0..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(&config, stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                #[allow(unreachable_code)]
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err(e) => panic!(
                        "proptest `{}` failed at case {}/{}: {}\n(deterministic; re-run reproduces — see shims/README.md)",
                        stringify!($name), case + 1, config.cases, e
                    ),
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let cfg = ProptestConfig::default();
        let mut rng = TestRng::for_test(&cfg, "ranges_generate_in_bounds");
        for _ in 0..200 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let cfg = ProptestConfig::default();
        let mut rng = TestRng::for_test(&cfg, "vec_strategy_respects_len");
        for _ in 0..100 {
            let v = collection::vec((0u32..5, 0u32..5), 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = ProptestConfig::default();
        let mut a = TestRng::for_test(&cfg, "same-name");
        let mut b = TestRng::for_test(&cfg, "same-name");
        let va: Vec<u64> = (0..16).map(|_| (0u64..1000).generate(&mut a)).collect();
        let vb: Vec<u64> = (0..16).map(|_| (0u64..1000).generate(&mut b)).collect();
        assert_eq!(va, vb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_smoke(x in 0u32..10, pairs in collection::vec((0u32..4, 0u32..4), 0..6)) {
            prop_assert!(x < 10);
            for (a, b) in pairs {
                prop_assert!(a < 4 && b < 4, "pair out of range: ({}, {})", a, b);
            }
            if x == 3 {
                return Ok(());
            }
            prop_assert_ne!(x, 10);
        }
    }
}
