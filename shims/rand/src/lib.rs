//! Offline stand-in for the `rand` crate (see `shims/README.md`).
//!
//! Provides the exact API slice the workspace uses: `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over half-open
//! integer ranges and [`Rng::gen_bool`]. The generator core is
//! SplitMix64 — deterministic across runs and platforms.

use std::ops::Range;

/// Seedable random generators (the single constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen_range` can sample from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Maps a uniform `u64` into `lo..hi`.
    fn from_uniform(lo: Self, hi: Self, raw: u64) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn from_uniform(lo: Self, hi: Self, raw: u64) -> Self {
                debug_assert!(lo < hi);
                let span = (hi as u128) - (lo as u128);
                lo + ((raw as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn from_uniform(lo: Self, hi: Self, raw: u64) -> Self {
                debug_assert!(lo < hi);
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (raw as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

/// The subset of `rand::Rng` the workspace calls.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from the half-open range `lo..hi`. Panics on an
    /// empty range, like the real crate.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(
            range.start < range.end,
            "cannot sample empty range in gen_range"
        );
        let raw = self.next_u64();
        T::from_uniform(range.start, range.end, raw)
    }

    /// Bernoulli sample: `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 high bits -> uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64 core;
    /// the stream differs from the real ChaCha-based `StdRng`, which is
    /// fine for every caller in this workspace).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..1u32);
            assert_eq!(w, 0);
            let s = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
