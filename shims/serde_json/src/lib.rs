//! Offline stand-in for the `serde_json` crate (see `shims/README.md`).
//!
//! Prints the [`serde::Value`] trees produced by the `serde` shim as
//! JSON text: [`to_value`], [`to_string`], [`to_string_pretty`] and the
//! [`json!`] macro (object/array/expression forms).

use std::fmt::Write as _;

pub use serde::Value;

/// Error type for API parity; the shim's serializers are total.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Pretty-printed JSON text (two-space indent, like the real crate).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Value`] from JSON-like syntax: `json!({ "k": v, ... })`,
/// `json!([a, b])`, `json!(null)` or any serializable expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = json!({ "a": 1u32, "b": [true, false], "c": "x\"y", "n": json!(null) });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":1,"b":[true,false],"c":"x\"y","n":null}"#
        );
        assert_eq!(
            to_string(&Value::Array(vec![Value::Null, Value::UInt(2)])).unwrap(),
            "[null,2]"
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = json!({ "rows": [1u32] });
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"rows\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn option_and_float() {
        let none: Option<f64> = None;
        assert_eq!(to_string(&none).unwrap(), "null");
        assert_eq!(to_string(&12.5f64).unwrap(), "12.5");
    }
}
