//! Offline stand-in for `serde_derive` (see `shims/README.md`).
//!
//! Implements `#[derive(Serialize)]` for structs with named fields by
//! walking the raw token stream (no `syn`/`quote` available offline).
//! The generated impl renders the struct as an insertion-ordered
//! `serde::Value::Object`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (name, generics, body) =
        parse_struct(&tokens).unwrap_or_else(|msg| panic!("#[derive(Serialize)] shim: {msg}"));
    if !generics.is_empty() {
        panic!("#[derive(Serialize)] shim supports only non-generic structs");
    }
    let fields =
        named_fields(&body).unwrap_or_else(|msg| panic!("#[derive(Serialize)] shim: {msg}"));

    let pushes: String = fields
        .iter()
        .map(|f| {
            format!("entries.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));")
        })
        .collect();
    let impl_src = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\n\
                 ::serde::Value::Object(entries)\n\
             }}\n\
         }}"
    );
    impl_src.parse().expect("generated Serialize impl parses")
}

/// Finds `struct <Name> <generics?> { ... }`, skipping attributes and
/// visibility. Returns (name, generic tokens, brace-group tokens).
fn parse_struct(tokens: &[TokenTree]) -> Result<(String, Vec<TokenTree>, Vec<TokenTree>), String> {
    let mut i = 0;
    // Skip attributes (`#[...]`) and any `pub`, `pub(...)` prefix.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => i += 1,
        other => return Err(format!("expected `struct`, found {other:?}")),
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        other => return Err(format!("expected struct name, found {other:?}")),
    };
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            while let Some(tt) = tokens.get(i) {
                if let TokenTree::Punct(p) = tt {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        _ => {}
                    }
                }
                generics.push(tt.clone());
                i += 1;
                if depth == 0 {
                    break;
                }
            }
        }
    }
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Ok((name, generics, g.stream().into_iter().collect()))
        }
        other => Err(format!(
            "only structs with named fields are supported, found {other:?}"
        )),
    }
}

/// Extracts field names from the tokens of a named-field struct body.
fn named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut expect_name = true;
    let mut i = 0;
    while i < body.len() {
        match &body[i] {
            // Skip field attributes like doc comments.
            TokenTree::Punct(p) if p.as_char() == '#' && expect_name => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if expect_name && id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = body.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            TokenTree::Ident(id) if expect_name => {
                fields.push(id.to_string());
                expect_name = false;
                i += 1;
                continue;
            }
            TokenTree::Punct(p) => {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => expect_name = true,
                    _ => {}
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    if fields.is_empty() {
        return Err("struct has no named fields".to_owned());
    }
    Ok(fields)
}
