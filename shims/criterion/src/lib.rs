//! Offline stand-in for the `criterion` crate (see `shims/README.md`).
//!
//! Provides the API slice the bench targets use — [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size`/`warm_up_time`/
//! `measurement_time`, [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark runs
//! one warm-up call plus one timed call and prints the wall-clock time;
//! the point of the shim is that `cargo bench --no-run` compiles the
//! bench targets and `cargo bench` produces indicative numbers offline.

use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Measurement markers, mirroring `criterion::measurement`.
pub mod measurement {
    /// Wall-clock time (the only measurement the shim supports).
    pub struct WallTime;
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirrors `Criterion::configure_from_args` (no-op here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: PhantomData,
        }
    }

    /// Registers and immediately runs a single benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.into(), &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    _parent: PhantomData<(&'a mut Criterion, M)>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Accepted for API parity; the shim always runs one sample.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity; the shim warms up with one call.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API parity; the shim times one call.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Registers and immediately runs a benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, &mut f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one(name: &str, f: &mut impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters > 0 {
        let per_iter = bencher.elapsed / bencher.iters;
        println!(
            "bench {name:<50} {per_iter:>12.2?}/iter ({} iters)",
            bencher.iters
        );
    } else {
        println!("bench {name:<50} (no iterations recorded)");
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Runs `routine` once warm-up + once timed (the shim's sampling
    /// policy), recording the timed call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let _ = black_box(routine());
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        let _ = black_box(out);
    }
}

/// Opaque value sink, mirroring `criterion::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a runner function, mirroring
/// `criterion::criterion_group!` (plain list form).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` invoking the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("group");
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        let mut calls = 0u32;
        group.bench_function("sum", |b| {
            b.iter(|| {
                calls += 1;
                (0..100u64).sum::<u64>()
            })
        });
        group.finish();
        assert!(calls >= 2, "warm-up + timed call");
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs_targets() {
        benches();
    }

    #[test]
    fn top_level_bench_function_runs() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("direct", |b| b.iter(|| ran = true));
        assert!(ran);
    }
}
