//! Ablation benches for the design choices DESIGN.md calls out — not
//! experiments from the paper, but measurements of the knobs the paper's
//! four implementations differ in:
//!
//! * `backends`: paper-literal set matrix vs Boolean decomposition
//!   (dense, sparse) vs the worklist baselines (Hellings, GLL) on the
//!   classic two-cycle worst case;
//! * `threads`: device scaling of the parallel backends (1/2/4/8
//!   workers) — the "acceleration from the GPU increases with graph
//!   size" axis;
//! * `delta`: the paper's full `T ∪ T×T` squaring loop vs the semi-naive
//!   variant that multiplies only newly-discovered entries;
//! * `scaling`: Dyck-1 reachability as graph size grows (chain vs cycle
//!   topology).

use cfpq_baselines::{gll::solve_gll, hellings::solve_hellings};
use cfpq_core::relational::{solve_on_engine, solve_set_matrix, FixpointSolver, Strategy};
use cfpq_grammar::cnf::CnfOptions;
use cfpq_grammar::Cfg;
use cfpq_graph::generators;
use cfpq_graph::ontology::evaluation_suite;
use cfpq_matrix::{DenseEngine, Device, ParSparseEngine, SparseEngine};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
}

fn bench_backends(c: &mut Criterion) {
    let cfg = Cfg::parse("S -> a S b | a b").unwrap();
    let wcnf = cfg.to_wcnf(CnfOptions::default()).unwrap();
    let graph = generators::two_cycles(40, 27);

    let mut group = c.benchmark_group("ablation-backends");
    configure(&mut group);
    group.bench_function("set-matrix", |b| {
        b.iter(|| solve_set_matrix(&graph, &wcnf, false))
    });
    group.bench_function("dense", |b| {
        b.iter(|| solve_on_engine(&DenseEngine, &graph, &wcnf))
    });
    group.bench_function("sparse", |b| {
        b.iter(|| solve_on_engine(&SparseEngine, &graph, &wcnf))
    });
    group.bench_function("hellings", |b| b.iter(|| solve_hellings(&graph, &wcnf)));
    group.bench_function("gll", |b| b.iter(|| solve_gll(&graph, &cfg)));
    group.finish();
}

fn bench_threads(c: &mut Criterion) {
    // Use g1 (the 8x funding graph): its S-products exceed the kernels'
    // offload thresholds, so worker count actually matters. On funding-
    // sized graphs the thresholds keep every kernel inline and the curve
    // is flat by design.
    let cfg = cfpq_grammar::queries::query1();
    let wcnf = cfg.to_wcnf(CnfOptions::default()).unwrap();
    let suite = evaluation_suite();
    let g1 = &suite.iter().find(|d| d.name == "g1").unwrap().graph;

    let mut group = c.benchmark_group("ablation-threads");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(4));
    for workers in [1usize, 2, 4] {
        group.bench_function(format!("sparse-par/{workers}"), |b| {
            let e = ParSparseEngine::new(Device::new(workers));
            b.iter(|| solve_on_engine(&e, g1, &wcnf))
        });
        group.bench_function(format!("sparse-par-batched/{workers}"), |b| {
            // The §7 multi-device decomposition: one kernel per rule.
            let e = ParSparseEngine::new(Device::new(workers));
            b.iter(|| {
                FixpointSolver::new(&e)
                    .strategy(Strategy::Batched)
                    .solve(g1, &wcnf)
            })
        });
    }
    group.finish();
}

fn bench_delta(c: &mut Criterion) {
    let cfg = cfpq_grammar::queries::query1();
    let wcnf = cfg.to_wcnf(CnfOptions::default()).unwrap();
    let suite = evaluation_suite();

    let mut group = c.benchmark_group("ablation-delta");
    configure(&mut group);
    for name in ["funding", "wine"] {
        let g = &suite.iter().find(|d| d.name == name).unwrap().graph;
        group.bench_function(format!("{name}/naive"), |b| {
            b.iter(|| solve_on_engine(&SparseEngine, g, &wcnf))
        });
        group.bench_function(format!("{name}/delta"), |b| {
            b.iter(|| {
                FixpointSolver::new(&SparseEngine)
                    .strategy(Strategy::Delta)
                    .solve(g, &wcnf)
            })
        });
    }
    group.finish();

    // The full strategy ladder on one representative dataset: what each
    // step (batching, semi-naive Δ, masking) buys on the same input.
    let mut group = c.benchmark_group("ablation-strategy");
    configure(&mut group);
    let funding = &suite.iter().find(|d| d.name == "funding").unwrap().graph;
    for strategy in Strategy::ALL {
        group.bench_function(format!("funding/{}", strategy.name()), |b| {
            b.iter(|| {
                FixpointSolver::new(&SparseEngine)
                    .strategy(strategy)
                    .solve(funding, &wcnf)
            })
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let cfg = Cfg::parse("S -> S S | ( S ) | ( )").unwrap();
    let wcnf = cfg.to_wcnf(CnfOptions::default()).unwrap();

    let mut group = c.benchmark_group("scaling-dyck");
    configure(&mut group);
    for n in [64usize, 128, 256, 512] {
        let graph = generators::random_graph(n, 3 * n, &["(", ")", "e"], 0xD1CE + n as u64);
        group.bench_function(format!("sparse/{n}"), |b| {
            b.iter(|| solve_on_engine(&SparseEngine, &graph, &wcnf))
        });
        group.bench_function(format!("sparse-par/{n}"), |b| {
            let e = ParSparseEngine::new(Device::host_parallel());
            b.iter(|| solve_on_engine(&e, &graph, &wcnf))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_backends,
    bench_threads,
    bench_delta,
    bench_scaling
);
criterion_main!(benches);
