//! Kernel-level Criterion benches for the masked multiplication path —
//! the per-operation counterpart of the solver-level ablations.
//!
//! Measures, per representation:
//!
//! * `multiply` vs `multiply_masked` as the complement mask grows — the
//!   masked kernel's whole point is that a denser mask means *less*
//!   output to materialize, so its time should fall while the unmasked
//!   product stays flat;
//! * `multiply` + `difference` vs the fused `multiply_masked` — what the
//!   engine-default fallback costs against the real kernels;
//! * batched masked products on the parallel device — the §7 "one
//!   kernel per rule" overlap the `MaskedDelta` sweep relies on;
//! * tiled vs dense vs CSR products across densities — where each
//!   representation's crossover sits, on uniform random structure and
//!   on the clustered block-diagonal structure the tiled backend
//!   targets.

use cfpq_matrix::{BoolEngine, CsrMatrix, DenseBitMatrix, Device, ParSparseEngine, TiledBitMatrix};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
}

/// Deterministic pseudo-random pair list (no external RNG in benches).
fn random_pairs(n: usize, count: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    (0..count)
        .map(|_| (next() % n as u32, next() % n as u32))
        .collect()
}

fn bench_dense_masked(c: &mut Criterion) {
    let n = 512usize;
    let a = DenseBitMatrix::from_pairs(n, &random_pairs(n, 4 * n, 0xA));
    let b = DenseBitMatrix::from_pairs(n, &random_pairs(n, 4 * n, 0xB));

    let mut group = c.benchmark_group("kernel-dense");
    configure(&mut group);
    group.bench_function("multiply", |bch| bch.iter(|| a.multiply(&b)));
    for mask_factor in [1usize, 8, 64] {
        let mask = DenseBitMatrix::from_pairs(n, &random_pairs(n, mask_factor * n, 0xC));
        group.bench_function(format!("masked/mask-nnz-{}", mask.nnz()), |bch| {
            bch.iter(|| a.multiply_masked(&b, &mask))
        });
        group.bench_function(format!("mul-then-diff/mask-nnz-{}", mask.nnz()), |bch| {
            bch.iter(|| a.multiply(&b).difference(&mask))
        });
    }
    group.finish();
}

fn bench_sparse_masked(c: &mut Criterion) {
    let n = 2048usize;
    let a = CsrMatrix::from_pairs(n, &random_pairs(n, 8 * n, 0x1));
    let b = CsrMatrix::from_pairs(n, &random_pairs(n, 8 * n, 0x2));

    let mut group = c.benchmark_group("kernel-sparse");
    configure(&mut group);
    group.bench_function("multiply", |bch| bch.iter(|| a.multiply(&b)));
    for mask_factor in [2usize, 16, 64] {
        let mask = CsrMatrix::from_pairs(n, &random_pairs(n, mask_factor * n, 0x3));
        group.bench_function(format!("masked/mask-nnz-{}", mask.nnz()), |bch| {
            bch.iter(|| a.multiply_masked(&b, &mask))
        });
        group.bench_function(format!("mul-then-diff/mask-nnz-{}", mask.nnz()), |bch| {
            bch.iter(|| a.multiply(&b).difference(&mask))
        });
    }
    group.finish();
}

fn bench_masked_batch(c: &mut Criterion) {
    let n = 1024usize;
    let a = CsrMatrix::from_pairs(n, &random_pairs(n, 8 * n, 0x11));
    let b = CsrMatrix::from_pairs(n, &random_pairs(n, 8 * n, 0x12));
    let mask = CsrMatrix::from_pairs(n, &random_pairs(n, 16 * n, 0x13));
    let jobs: Vec<(&CsrMatrix, &CsrMatrix, Option<&CsrMatrix>)> = (0..8)
        .map(|i| {
            if i % 2 == 0 {
                (&a, &b, Some(&mask))
            } else {
                (&b, &a, None)
            }
        })
        .collect();

    let mut group = c.benchmark_group("kernel-masked-batch");
    configure(&mut group);
    for workers in [1usize, 2, 4] {
        let e = ParSparseEngine::new(Device::new(workers));
        group.bench_function(format!("sparse-par/{workers}"), |bch| {
            bch.iter(|| e.multiply_masked_batch(&jobs))
        });
    }
    group.finish();
}

/// Deterministic pair list confined to 64-aligned blocks: every pair
/// stays inside its node's 64-node block, so the tiled representation
/// stores only diagonal tiles (the clustered regime of the `scale`
/// scenario).
fn clustered_pairs(n: usize, count: usize, seed: u64) -> Vec<(u32, u32)> {
    random_pairs(n, count, seed)
        .into_iter()
        .map(|(u, v)| (u, (u / 64) * 64 + v % 64))
        .collect()
}

fn bench_repr_sweep(c: &mut Criterion) {
    let n = 2048usize;
    let mut group = c.benchmark_group("kernel-repr-sweep");
    configure(&mut group);
    for (shape, gen) in [
        (
            "uniform",
            random_pairs as fn(usize, usize, u64) -> Vec<(u32, u32)>,
        ),
        ("clustered", clustered_pairs),
    ] {
        for row_nnz in [2usize, 16, 48] {
            let pa = gen(n, row_nnz * n, 0x21);
            let pb = gen(n, row_nnz * n, 0x22);
            let da = DenseBitMatrix::from_pairs(n, &pa);
            let db = DenseBitMatrix::from_pairs(n, &pb);
            let ca = CsrMatrix::from_pairs(n, &pa);
            let cb = CsrMatrix::from_pairs(n, &pb);
            let ta = TiledBitMatrix::from_pairs(n, &pa);
            let tb = TiledBitMatrix::from_pairs(n, &pb);
            group.bench_function(format!("dense/{shape}/row-nnz-{row_nnz}"), |bch| {
                bch.iter(|| da.multiply(&db))
            });
            group.bench_function(format!("sparse/{shape}/row-nnz-{row_nnz}"), |bch| {
                bch.iter(|| ca.multiply(&cb))
            });
            group.bench_function(format!("tiled/{shape}/row-nnz-{row_nnz}"), |bch| {
                bch.iter(|| ta.multiply(&tb))
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dense_masked,
    bench_sparse_masked,
    bench_masked_batch,
    bench_repr_sweep
);
criterion_main!(benches);
