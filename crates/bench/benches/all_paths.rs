//! All-path enumeration bench (§7): the memoized streaming enumerator
//! vs the pre-rewrite eager recursive walk on the self-loop Dyck graph,
//! where every even length carries exactly one witness `aⁿbⁿ` and the
//! eager walk re-derives every split from scratch — exponential in the
//! length bound, so the two are compared at a shared feasible bound and
//! only the lazy side runs the `max_len` 64 stress (the workload behind
//! `BENCH_pr6.json`, whose committed numbers come from
//! `reproduce all-paths`).
//!
//! The warm-page sample reuses one `PathEnumerator` across iterations:
//! the per-`(nt, from, to, len)` memo tables persist, so resuming a
//! paged stream costs a table scan, not a re-derivation.

use cfpq_core::all_paths::{
    enumerate_paths, enumerate_paths_eager, EnumLimits, PageRequest, PathEnumerator,
};
use cfpq_core::relational::FixpointSolver;
use cfpq_grammar::cnf::CnfOptions;
use cfpq_grammar::Cfg;
use cfpq_graph::Graph;
use cfpq_matrix::SparseEngine;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_all_paths(c: &mut Criterion) {
    let wcnf = Cfg::parse("S -> a S b | a b")
        .expect("Dyck grammar parses")
        .to_wcnf(CnfOptions::default())
        .expect("Dyck grammar normalizes");
    let s = wcnf.start;
    let mut cyclic = Graph::new(1);
    cyclic.add_edge_named(0, "a", 0);
    cyclic.add_edge_named(0, "b", 0);
    let idx = FixpointSolver::new(&SparseEngine).solve(&cyclic, &wcnf);

    let mut group = c.benchmark_group("all-paths-cyclic");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(4));

    let shared = EnumLimits {
        max_len: 16,
        max_paths: 1000,
    };
    group.bench_function("eager/16", |b| {
        b.iter(|| enumerate_paths_eager(&idx, &cyclic, &wcnf, s, 0, 0, shared))
    });
    group.bench_function("lazy/16", |b| {
        b.iter(|| enumerate_paths(&idx, &cyclic, &wcnf, s, 0, 0, shared))
    });
    group.bench_function("lazy/64", |b| {
        b.iter(|| {
            enumerate_paths(
                &idx,
                &cyclic,
                &wcnf,
                s,
                0,
                0,
                EnumLimits {
                    max_len: 64,
                    max_paths: 1000,
                },
            )
        })
    });

    // Warm paging: pre-fill the memo tables once, then time re-serving
    // the full stream from them.
    let req = PageRequest {
        offset: 0,
        limit: 1000,
        max_len: 64,
    };
    let mut enumerator = PathEnumerator::from_graph(&cyclic, &wcnf);
    let cold = enumerator.page(&idx, s, 0, 0, req);
    assert!(cold.exhausted && cold.paths.len() == 32);
    group.bench_function("warm-page/64", |b| {
        b.iter(|| enumerator.page(&idx, s, 0, 0, req))
    });
    group.finish();
}

criterion_group!(benches, bench_all_paths);
criterion_main!(benches);
