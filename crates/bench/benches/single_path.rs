//! Single-path (§5) bench: the engine-backed masked semi-naive length
//! closure vs the seed-era naive `O(n³)` flat-table oracle on the pizza
//! dataset (Q1), plus a `CfpqSession` single-path repair after a
//! held-out 10-edge batch — the workload behind `BENCH_pr4.json` (whose
//! committed numbers come from `reproduce single-path`, which also
//! covers g3; the oracle's ~10s per g3 solve is too slow to sample
//! here).
//!
//! The repair side clones a pre-solved session per iteration (clone
//! included in the timed region, as in `benches/incremental.rs`),
//! inserts the batch and re-evaluates the length closure.

use cfpq_core::relational::SolveOptions;
use cfpq_core::session::{CfpqSession, PreparedQuery};
use cfpq_core::single_path::{solve_single_path_oracle, SinglePathSolver};
use cfpq_grammar::cnf::CnfOptions;
use cfpq_grammar::queries;
use cfpq_graph::ontology::evaluation_suite;
use cfpq_matrix::{DenseEngine, SparseEngine};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_single_path(c: &mut Criterion) {
    let wcnf = queries::query1()
        .to_wcnf(CnfOptions::default())
        .expect("Q1 normalizes");
    let suite = evaluation_suite();
    let pizza = &suite.iter().find(|d| d.name == "pizza").unwrap().graph;

    let mut group = c.benchmark_group("single-path-pizza");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(4));

    group.bench_function("oracle-naive", |b| {
        b.iter(|| solve_single_path_oracle(pizza, &wcnf, SolveOptions::default()))
    });
    group.bench_function("masked-sparse", |b| {
        b.iter(|| SinglePathSolver::new(&SparseEngine).solve(pizza, &wcnf))
    });
    group.bench_function("masked-dense", |b| {
        b.iter(|| SinglePathSolver::new(&DenseEngine).solve(pizza, &wcnf))
    });

    // Session repair: hold out the last 10 Q1-relevant edges (the edge
    // list ends in inert padding predicates, as in the incremental
    // bench), pre-solve the rest, then time insert + re-evaluate.
    let alphabet: std::collections::HashSet<&str> =
        wcnf.symbols.terms().map(|(_, name)| name).collect();
    let (base, held) = cfpq_bench::hold_out_edges(pizza, 10, |name| alphabet.contains(name));
    let mut template = CfpqSession::new(SparseEngine, &base);
    let id = template.prepare_single_path_query(PreparedQuery::from_wcnf(wcnf.clone()));
    template.evaluate_single_path(id);
    {
        let mut probe = template.clone();
        probe.add_edges(&held);
        probe.evaluate_single_path(id);
        let run = probe.last_single_path_run(id).expect("evaluated");
        assert!(
            run.incremental && run.stats.products_computed > 0,
            "held-out batch must trigger a non-trivial length repair"
        );
    }
    group.bench_function("session-repair/10", |b| {
        b.iter(|| {
            let mut session = template.clone();
            session.add_edges(&held);
            session.evaluate_single_path(id);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_single_path);
criterion_main!(benches);
