//! RPQ bench: the three formulations of a regular path query on the g3
//! dataset — the standalone product-graph oracle (label matrices
//! rebuilt per call, unmasked full-recompute fixpoint), the compiled
//! RSM/Kronecker pipeline (NFA prepared once through a `CfpqSession`,
//! masked semi-naive sweeps against the materialized `GraphIndex`), and
//! the equivalent right-linear grammar under plain Algorithm 1 — the
//! workload behind `BENCH_pr9.json`.
//!
//! The pipeline side clones a session holding the prepared (but
//! unsolved) query per iteration, so every sample pays the cold solve
//! but not the one-time index build or the NFA→RSM→WCNF compilation;
//! that split is the point of the compiled-query design.

use cfpq_core::regular::{solve_regular, Nfa};
use cfpq_core::relational::FixpointSolver;
use cfpq_core::session::CfpqSession;
use cfpq_grammar::cnf::CnfOptions;
use cfpq_grammar::Cfg;
use cfpq_graph::ontology::evaluation_suite;
use cfpq_matrix::SparseEngine;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_rpq(c: &mut Criterion) {
    let suite = evaluation_suite();
    let g3 = &suite.iter().find(|d| d.name == "g3").unwrap().graph;

    for (name, nfa, grammar) in [
        (
            "subClassOf-plus",
            Nfa::plus("subClassOf"),
            Cfg::parse("S -> subClassOf S | subClassOf").unwrap(),
        ),
        (
            "subClassOf-star-type_r",
            Nfa::star_then("subClassOf", "type_r"),
            Cfg::parse("S -> subClassOf S | type_r").unwrap(),
        ),
    ] {
        let mut group = c.benchmark_group(format!("rpq-g3/{name}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(4));

        // The differential oracle: rebuilds label matrices and runs the
        // unmasked product-graph fixpoint on every call.
        group.bench_function("oracle", |b| {
            b.iter(|| solve_regular(&SparseEngine, g3, &nfa))
        });

        // The compiled pipeline: index built and query compiled once,
        // outside the timed region; each sample clones the session and
        // pays exactly one cold masked semi-naive solve.
        let mut template = CfpqSession::new(SparseEngine, g3);
        let id = template.prepare_regular(&nfa);
        {
            // Sanity: the template answers what the oracle answers.
            let mut probe = template.clone();
            assert_eq!(
                probe.evaluate(id).start_pairs(),
                solve_regular(&SparseEngine, g3, &nfa).pairs()
            );
        }
        group.bench_function("pipeline", |b| {
            b.iter(|| {
                let mut session = template.clone();
                session.evaluate(id)
            })
        });

        // The same language as a right-linear grammar under Algorithm 1.
        let wcnf = grammar.to_wcnf(CnfOptions::default()).unwrap();
        group.bench_function("regular-grammar", |b| {
            b.iter(|| FixpointSolver::new(&SparseEngine).solve(g3, &wcnf))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_rpq);
criterion_main!(benches);
