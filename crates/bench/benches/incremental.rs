//! Incremental-update bench: cold from-scratch re-solve vs a
//! `CfpqSession` absorbing an edge batch through `add_edges` and
//! repairing its cached closure semi-naively, at 1/10/100-edge batches
//! on the g3 dataset (the largest graph of the evaluation suite, 8×
//! pizza) — the workload behind `BENCH_pr3.json`.
//!
//! The session side clones a pre-solved session per iteration (so every
//! sample starts from the same converged state), then inserts the batch
//! and re-evaluates; the cold side re-runs the full masked-delta solve
//! on the complete graph. The clone is deliberately *included* in the
//! timed region — even carrying that copy overhead, the repair wins.

use cfpq_core::relational::FixpointSolver;
use cfpq_core::session::{CfpqSession, PreparedQuery};
use cfpq_grammar::cnf::CnfOptions;
use cfpq_grammar::queries;
use cfpq_graph::ontology::evaluation_suite;
use cfpq_matrix::SparseEngine;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_incremental(c: &mut Criterion) {
    let wcnf = queries::query1()
        .to_wcnf(CnfOptions::default())
        .expect("Q1 normalizes");
    let suite = evaluation_suite();
    let g3 = &suite.iter().find(|d| d.name == "g3").unwrap().graph;

    let mut group = c.benchmark_group("incremental-g3");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(4));

    // The baseline an index-less server pays on every update: a full
    // cold solve of the current graph.
    group.bench_function("cold-resolve", |b| {
        b.iter(|| FixpointSolver::new(&SparseEngine).solve(g3, &wcnf))
    });

    // Labels Q1 actually traverses: g3's edge list *ends* in inert
    // padding predicates, so a naive "hold out the suffix" would time a
    // repair that never touches a kernel. Hold out query-relevant edges,
    // exactly as the reproduce harness does.
    let alphabet: std::collections::HashSet<&str> =
        wcnf.symbols.terms().map(|(_, name)| name).collect();

    for batch in [1usize, 10, 100] {
        // Hold out the last `batch` Q1-relevant edges; pre-solve the rest.
        let (base, held) = cfpq_bench::hold_out_edges(g3, batch, |name| alphabet.contains(name));
        let mut template = CfpqSession::new(SparseEngine, &base);
        let id = template.prepare_query(PreparedQuery::from_wcnf(wcnf.clone()));
        template.evaluate(id);

        // Sanity: the repair we are about to time must do real kernel
        // work, or the numbers would only measure clone + insert cost.
        {
            let mut probe = template.clone();
            probe.add_edges(&held);
            probe.evaluate(id);
            let run = probe.last_run(id).expect("evaluated");
            assert!(
                run.incremental && run.stats.products_computed > 0,
                "held-out batch of {batch} must trigger a non-trivial repair"
            );
        }

        group.bench_function(format!("session-add/{batch}"), |b| {
            b.iter(|| {
                let mut session = template.clone();
                session.add_edges(&held);
                session.evaluate(id)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
