//! Criterion bench regenerating Table 1 (Query 1, same-generation) per
//! dataset × implementation.
//!
//! The dense backend (paper: dGPU) is benched only on the smaller
//! ontologies; the paper itself omits dense numbers on g1–g3. The large
//! repeated graphs g1–g3 are benched with the sparse backends and GLL,
//! with a reduced sample count.

use cfpq_baselines::gll::GllSolver;
use cfpq_bench::Query;
use cfpq_core::relational::FixpointSolver;
use cfpq_grammar::cnf::CnfOptions;
use cfpq_graph::ontology::evaluation_suite;
use cfpq_matrix::{Device, ParDenseEngine, ParSparseEngine, SparseEngine};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_table1(c: &mut Criterion) {
    let cfg = Query::Q1.grammar();
    let wcnf = cfg.to_wcnf(CnfOptions::default()).unwrap();
    let start = cfg.start.unwrap();
    let suite = evaluation_suite();

    let mut group = c.benchmark_group("table1");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Small/medium ontologies: all four implementations.
    for name in ["skos", "univ-bench", "foaf", "people-pets", "funding"] {
        let ds = suite.iter().find(|d| d.name == name).unwrap();
        let g = &ds.graph;
        group.bench_function(format!("{name}/gll"), |b| {
            b.iter(|| GllSolver::new(&cfg, g).solve(g, start))
        });
        group.bench_function(format!("{name}/dense-par"), |b| {
            let e = ParDenseEngine::new(Device::host_parallel());
            b.iter(|| FixpointSolver::new(&e).solve(g, &wcnf))
        });
        group.bench_function(format!("{name}/sparse"), |b| {
            b.iter(|| FixpointSolver::new(&SparseEngine).solve(g, &wcnf))
        });
        group.bench_function(format!("{name}/sparse-par"), |b| {
            let e = ParSparseEngine::new(Device::host_parallel());
            b.iter(|| FixpointSolver::new(&e).solve(g, &wcnf))
        });
    }
    group.finish();

    // Large graphs: sparse implementations only (dGPU omitted, as in the
    // paper), fewer samples.
    let mut group = c.benchmark_group("table1-large");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for name in ["wine", "pizza", "g1"] {
        let ds = suite.iter().find(|d| d.name == name).unwrap();
        let g = &ds.graph;
        group.bench_function(format!("{name}/sparse"), |b| {
            b.iter(|| FixpointSolver::new(&SparseEngine).solve(g, &wcnf))
        });
        group.bench_function(format!("{name}/sparse-par"), |b| {
            let e = ParSparseEngine::new(Device::host_parallel());
            b.iter(|| FixpointSolver::new(&e).solve(g, &wcnf))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
