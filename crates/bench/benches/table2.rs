//! Criterion bench regenerating Table 2 (Query 2, adjacent layers) per
//! dataset × implementation. Same structure as `table1.rs`; Q2 touches
//! only `subClassOf`/`subClassOf_r`, so the answer relations are much
//! sparser and absolute times drop accordingly — the shape the paper's
//! Table 2 shows relative to Table 1.

use cfpq_baselines::gll::GllSolver;
use cfpq_bench::Query;
use cfpq_core::relational::FixpointSolver;
use cfpq_grammar::cnf::CnfOptions;
use cfpq_graph::ontology::evaluation_suite;
use cfpq_matrix::{Device, ParDenseEngine, ParSparseEngine, SparseEngine};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_table2(c: &mut Criterion) {
    let cfg = Query::Q2.grammar();
    let wcnf = cfg.to_wcnf(CnfOptions::default()).unwrap();
    let start = cfg.start.unwrap();
    let suite = evaluation_suite();

    let mut group = c.benchmark_group("table2");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for name in ["skos", "univ-bench", "foaf", "people-pets", "funding"] {
        let ds = suite.iter().find(|d| d.name == name).unwrap();
        let g = &ds.graph;
        group.bench_function(format!("{name}/gll"), |b| {
            b.iter(|| GllSolver::new(&cfg, g).solve(g, start))
        });
        group.bench_function(format!("{name}/dense-par"), |b| {
            let e = ParDenseEngine::new(Device::host_parallel());
            b.iter(|| FixpointSolver::new(&e).solve(g, &wcnf))
        });
        group.bench_function(format!("{name}/sparse"), |b| {
            b.iter(|| FixpointSolver::new(&SparseEngine).solve(g, &wcnf))
        });
        group.bench_function(format!("{name}/sparse-par"), |b| {
            let e = ParSparseEngine::new(Device::host_parallel());
            b.iter(|| FixpointSolver::new(&e).solve(g, &wcnf))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("table2-large");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for name in ["wine", "pizza", "g1"] {
        let ds = suite.iter().find(|d| d.name == name).unwrap();
        let g = &ds.graph;
        group.bench_function(format!("{name}/sparse"), |b| {
            b.iter(|| FixpointSolver::new(&SparseEngine).solve(g, &wcnf))
        });
        group.bench_function(format!("{name}/sparse-par"), |b| {
            let e = ParSparseEngine::new(Device::host_parallel());
            b.iter(|| FixpointSolver::new(&e).solve(g, &wcnf))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
