//! # cfpq-bench
//!
//! The evaluation harness reproducing §6 of the paper: Table 1 (Query 1)
//! and Table 2 (Query 2) over the 14-dataset suite, plus ablation
//! utilities shared by the Criterion benches.
//!
//! Column mapping (see DESIGN.md §3 for the GPU substitution):
//!
//! | paper column | this harness |
//! |---|---|
//! | GLL | [`cfpq_baselines::gll`] on the original grammar |
//! | dGPU | dense matrices on the parallel device (`dense-par`) |
//! | sCPU | serial CSR (`sparse`) |
//! | sGPU | CSR on the parallel device (`sparse-par`) |
//!
//! Like the paper ("We omit dGPU performance on graphs g1, g2 and g3
//! since a dense matrix representation leads to a significant performance
//! degradation with the graph size growth"), the dense backend is skipped
//! on g1–g3.
//!
//! All matrix columns run the default masked semi-naive pipeline
//! (`Strategy::MaskedDelta`); each row also times the paper-literal
//! naive loop on the serial CSR backend and reports both runs' kernel
//! counters, so the JSON output doubles as the perf trajectory we hold
//! future changes to (`BENCH_*.json`).

use cfpq_baselines::gll::GllSolver;
use cfpq_core::relational::{FixpointSolver, SolveOptions, SolveStats, Strategy};
use cfpq_core::session::{CfpqSession, PreparedQuery};
use cfpq_core::single_path::{
    extract_path, solve_single_path_oracle, validate_witness, SinglePathSolver,
};
use cfpq_grammar::cnf::CnfOptions;
use cfpq_grammar::{queries, Cfg, Wcnf};
use cfpq_graph::ontology::{evaluation_suite, Dataset};
use cfpq_graph::{generators, Graph};
use cfpq_matrix::{
    AdaptiveEngine, BoolMat, Device, ParDenseEngine, ParSparseEngine, SparseEngine, TiledEngine,
};
use serde::Serialize;
use std::time::Instant;

/// Which of the paper's two evaluation queries to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Query {
    /// Table 1: the same-generation query (Fig. 10).
    Q1,
    /// Table 2: the adjacent-layer query (Fig. 11).
    Q2,
}

impl Query {
    /// The query grammar (original, non-CNF form; what GLL consumes).
    pub fn grammar(self) -> Cfg {
        match self {
            Query::Q1 => queries::query1(),
            Query::Q2 => queries::query2(),
        }
    }

    /// Table name for reports.
    pub fn table_name(self) -> &'static str {
        match self {
            Query::Q1 => "Table 1 (Query 1)",
            Query::Q2 => "Table 2 (Query 2)",
        }
    }
}

/// Kernel-work counters of one fixpoint run, serialized into the
/// `reproduce --json` output so `BENCH_*.json` files carry the perf
/// trajectory (per-sweep nnz, products launched, products avoided).
#[derive(Clone, Debug, Serialize)]
pub struct SweepStats {
    /// Fixpoint sweeps until no change.
    pub sweeps: usize,
    /// Matrix products actually launched.
    pub products_computed: usize,
    /// Products avoided by shared-pair dedup, empty-Δ skipping (delta
    /// strategies only).
    pub products_skipped: usize,
    /// `Σ_A nnz(T_A)` after each sweep.
    pub sweep_nnz: Vec<usize>,
    /// Tile products the tiled kernels skipped (empty tile-rows,
    /// saturated mask tiles); 0 on non-tiled engines.
    pub tiles_skipped: u64,
    /// Representation conversions the adaptive engine performed at its
    /// per-nonterminal per-sweep decision points; 0 elsewhere.
    pub repr_switches: u64,
    /// Per-nonterminal `nnz(T_A)` at the fixpoint — the observable the
    /// adaptive policy decides representations from.
    pub nt_nnz: Vec<usize>,
}

impl SweepStats {
    fn of(iterations: usize, stats: &SolveStats) -> Self {
        Self {
            sweeps: iterations,
            products_computed: stats.products_computed,
            products_skipped: stats.products_skipped,
            sweep_nnz: stats.sweep_nnz.clone(),
            tiles_skipped: stats.tiles_skipped,
            repr_switches: stats.repr_switches,
            nt_nnz: stats.nt_nnz.clone(),
        }
    }
}

/// One row of a reproduced table. The matrix columns run the default
/// [`Strategy::MaskedDelta`] pipeline; `sparse_naive_ms`/`naive` keep
/// the paper-literal loop as the in-row ablation baseline.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Dataset name (skos … g3).
    pub dataset: String,
    /// `#triples` column.
    pub triples: usize,
    /// Graph node count (not in the paper's tables; informative).
    pub nodes: usize,
    /// `#results` column: |R_S| (identical across implementations —
    /// asserted by the harness).
    pub results: usize,
    /// GLL column, milliseconds.
    pub gll_ms: f64,
    /// dGPU column (dense-par), milliseconds; `None` on g1–g3 as in the
    /// paper.
    pub dense_par_ms: Option<f64>,
    /// sCPU column (sparse serial, masked-delta), milliseconds.
    pub sparse_ms: f64,
    /// sGPU column (sparse-par, masked-delta), milliseconds.
    pub sparse_par_ms: f64,
    /// Block-tiled backend (tiled, masked-delta), milliseconds.
    pub tiled_ms: f64,
    /// Adaptive per-nonterminal representation engine, milliseconds.
    pub adaptive_ms: f64,
    /// sCPU with the paper-literal naive loop, milliseconds (ablation).
    pub sparse_naive_ms: f64,
    /// Work counters of the sparse masked-delta run.
    pub masked: SweepStats,
    /// Work counters of the sparse naive run.
    pub naive: SweepStats,
    /// Work counters of the adaptive run (carries the tile-skip and
    /// representation-switch observables).
    pub adaptive: SweepStats,
}

/// Times a closure in milliseconds.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Runs all four implementations of one query on one dataset (plus the
/// paper-literal naive loop as an in-row ablation) and checks they
/// report the same `#results`. Matrix backends run the default
/// [`Strategy::MaskedDelta`] pipeline.
pub fn run_row(query: Query, dataset: &Dataset, device_workers: usize) -> Row {
    let cfg = query.grammar();
    let wcnf: Wcnf = cfg
        .to_wcnf(CnfOptions::default())
        .expect("query normalizes");
    let start_cfg = cfg.start.expect("query has start");
    let start_wcnf = wcnf.start;
    let graph = &dataset.graph;
    let device = || {
        if device_workers == 0 {
            Device::host_parallel()
        } else {
            Device::new(device_workers)
        }
    };

    // GLL on the original grammar.
    let (gll_store, gll_ms) = time_ms(|| GllSolver::new(&cfg, graph).solve(graph, start_cfg));
    let gll_results = gll_store.count(start_cfg);

    // sCPU: serial CSR, default (masked-delta) pipeline.
    let (sparse_idx, sparse_ms) =
        time_ms(|| FixpointSolver::new(&SparseEngine).solve(graph, &wcnf));
    let results = sparse_idx.matrices[start_wcnf.index()].nnz();
    let masked = SweepStats::of(sparse_idx.iterations, &sparse_idx.stats);

    // sCPU with the paper-literal Algorithm 1 loop: the in-row ablation
    // showing what masking + semi-naive evaluation buys.
    let (naive_idx, sparse_naive_ms) = time_ms(|| {
        FixpointSolver::new(&SparseEngine)
            .strategy(Strategy::Naive)
            .solve(graph, &wcnf)
    });
    let naive_results = naive_idx.matrices[start_wcnf.index()].nnz();
    let naive = SweepStats::of(naive_idx.iterations, &naive_idx.stats);

    // sGPU: parallel CSR (per-kernel offload above the work threshold,
    // mirroring CUSPARSE per-multiply offload).
    let engine = ParSparseEngine::new(device());
    let (spar_idx, sparse_par_ms) = time_ms(|| FixpointSolver::new(&engine).solve(graph, &wcnf));
    let spar_results = spar_idx.matrices[start_wcnf.index()].nnz();

    // Block-tiled backend on the same device pool.
    let engine = TiledEngine::new(device());
    let (tiled_idx, tiled_ms) = time_ms(|| FixpointSolver::new(&engine).solve(graph, &wcnf));
    let tiled_results = tiled_idx.matrices[start_wcnf.index()].nnz();

    // Adaptive per-nonterminal representation selection.
    let engine = AdaptiveEngine::new(device());
    let (adaptive_idx, adaptive_ms) = time_ms(|| FixpointSolver::new(&engine).solve(graph, &wcnf));
    let adaptive_results = adaptive_idx.matrices[start_wcnf.index()].nnz();
    let adaptive = SweepStats::of(adaptive_idx.iterations, &adaptive_idx.stats);

    // dGPU: parallel dense; skipped on the large repeated graphs, as in
    // the paper.
    let skip_dense = matches!(dataset.name.as_str(), "g1" | "g2" | "g3");
    let (dense_results, dense_par_ms) = if skip_dense {
        (results, None)
    } else {
        let engine = ParDenseEngine::new(device());
        let (idx, ms) = time_ms(|| FixpointSolver::new(&engine).solve(graph, &wcnf));
        (idx.matrices[start_wcnf.index()].nnz(), Some(ms))
    };

    assert_eq!(
        gll_results, results,
        "GLL vs sparse #results mismatch on {}",
        dataset.name
    );
    assert_eq!(
        naive_results, results,
        "naive vs masked-delta #results mismatch on {}",
        dataset.name
    );
    assert_eq!(
        spar_results, results,
        "sparse-par #results mismatch on {}",
        dataset.name
    );
    assert_eq!(
        dense_results, results,
        "dense-par #results mismatch on {}",
        dataset.name
    );
    assert_eq!(
        tiled_results, results,
        "tiled #results mismatch on {}",
        dataset.name
    );
    assert_eq!(
        adaptive_results, results,
        "adaptive #results mismatch on {}",
        dataset.name
    );

    Row {
        dataset: dataset.name.clone(),
        triples: dataset.triples,
        nodes: graph.n_nodes(),
        results,
        gll_ms,
        dense_par_ms,
        sparse_ms,
        sparse_par_ms,
        tiled_ms,
        adaptive_ms,
        sparse_naive_ms,
        masked,
        naive,
        adaptive,
    }
}

/// Reproduces a full table over the 14-dataset evaluation suite.
pub fn run_table(query: Query, device_workers: usize) -> Vec<Row> {
    evaluation_suite()
        .iter()
        .map(|ds| run_row(query, ds, device_workers))
        .collect()
}

/// Renders rows in the paper's table layout.
pub fn render_table(query: Query, rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}\n", query.table_name()));
    out.push_str(&format!(
        "{:<30} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10} {:>7} {:>7}\n",
        "Ontology",
        "#triples",
        "#results",
        "GLL(ms)",
        "dGPU(ms)",
        "sCPU(ms)",
        "sGPU(ms)",
        "tile(ms)",
        "adpt(ms)",
        "naive(ms)",
        "#prod",
        "#skip"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<30} {:>8} {:>9} {:>9.0} {:>9} {:>9.0} {:>9.0} {:>9.0} {:>9.0} {:>10.0} {:>7} {:>7}\n",
            r.dataset,
            r.triples,
            r.results,
            r.gll_ms,
            r.dense_par_ms
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "—".to_owned()),
            r.sparse_ms,
            r.sparse_par_ms,
            r.tiled_ms,
            r.adaptive_ms,
            r.sparse_naive_ms,
            r.masked.products_computed,
            r.masked.products_skipped,
        ));
    }
    out
}

/// One row of the incremental-update scenario: on one dataset, hold out
/// the last `batch` edges, solve the truncated graph through a
/// [`CfpqSession`], insert the held-out batch via `add_edges`, and
/// re-query — comparing the session's semi-naive repair against a cold
/// from-scratch solve of the full graph. The row asserts result equality
/// and that the repair launched strictly fewer matrix products (the PR's
/// acceptance criterion, re-checked on every `reproduce` run).
#[derive(Clone, Debug, Serialize)]
pub struct IncrementalRow {
    /// Dataset name.
    pub dataset: String,
    /// `"Q1"` or `"Q2"`.
    pub query: String,
    /// Edges held out of the index build and inserted via `add_edges`.
    pub batch: usize,
    /// `|R_S|` on the full graph (identical for both paths — asserted).
    pub results: usize,
    /// Cold from-scratch solve of the full graph, milliseconds.
    pub cold_ms: f64,
    /// Session re-query after `add_edges` (the semi-naive repair),
    /// milliseconds.
    pub incremental_ms: f64,
    /// Wall time of the `add_edges` call itself (shared by the rows of
    /// one batch: the index absorbs the batch once for all queries).
    pub insert_ms: f64,
    /// Products launched by the cold solve.
    pub cold_products: usize,
    /// Products launched by the incremental repair (strictly fewer —
    /// asserted).
    pub incremental_products: usize,
    /// Fixpoint sweeps of the incremental repair.
    pub incremental_sweeps: usize,
}

/// Splits a dataset graph into a truncated base graph plus the last
/// `batch` *query-relevant* held-out edges (ontology graphs end in
/// inert padding predicates — holding only those out would make every
/// repair trivially empty). Shared by the incremental and single-path
/// scenarios and their Criterion benches, so the hold-out policy cannot
/// drift between them. Panics if no relevant edge exists.
pub fn hold_out_edges(
    graph: &Graph,
    batch: usize,
    relevant: impl Fn(&str) -> bool,
) -> (Graph, Vec<(u32, &str, u32)>) {
    let held_idx: std::collections::HashSet<usize> = graph
        .edges()
        .iter()
        .enumerate()
        .rev()
        .filter(|(_, e)| relevant(graph.label_name(e.label)))
        .take(batch)
        .map(|(i, _)| i)
        .collect();
    assert!(!held_idx.is_empty(), "dataset has no query-relevant edges");
    let mut base = Graph::new(graph.n_nodes());
    let mut held: Vec<(u32, &str, u32)> = Vec::with_capacity(held_idx.len());
    for (i, e) in graph.edges().iter().enumerate() {
        if held_idx.contains(&i) {
            held.push((e.from, graph.label_name(e.label), e.to));
        } else {
            base.add_edge_named(e.from, graph.label_name(e.label), e.to);
        }
    }
    (base, held)
}

/// Runs the incremental scenario on one dataset for several batch sizes:
/// per batch size, one session serves both evaluation queries (build
/// index once, run 2 queries, insert the batch, re-query both).
pub fn run_incremental(dataset: &Dataset, batches: &[usize]) -> Vec<IncrementalRow> {
    batches
        .iter()
        .flat_map(|&k| run_incremental_batch(dataset, k))
        .collect()
}

fn run_incremental_batch(dataset: &Dataset, batch: usize) -> Vec<IncrementalRow> {
    assert!(batch >= 1, "the scenario needs at least one held-out edge");
    let graph = &dataset.graph;
    let wcnfs: Vec<(Query, Wcnf)> = [Query::Q1, Query::Q2]
        .into_iter()
        .map(|q| {
            let wcnf = q
                .grammar()
                .to_wcnf(CnfOptions::default())
                .expect("query normalizes");
            (q, wcnf)
        })
        .collect();

    // Hold out the last `batch` edges the queries can actually
    // traverse. With the §6 edge ordering these are type/type_r edges:
    // Q1 performs a real multi-sweep repair while Q2 — whose alphabet
    // the batch never touches — repairs for free, demonstrating that a
    // session only charges the queries an update actually affects.
    let relevant: std::collections::HashSet<String> = wcnfs
        .iter()
        .flat_map(|(_, w)| w.symbols.terms().map(|(_, name)| name.to_owned()))
        .collect();
    let (base, held) = hold_out_edges(graph, batch, |name| relevant.contains(name));
    let batch = held.len();

    // Build the index once; prepare and warm both queries against the
    // truncated graph.
    let mut session = CfpqSession::new(SparseEngine, &base);
    let prepared: Vec<(Query, Wcnf, cfpq_core::session::QueryId)> = wcnfs
        .into_iter()
        .map(|(q, wcnf)| {
            let id = session.prepare_query(PreparedQuery::from_wcnf(wcnf.clone()));
            (q, wcnf, id)
        })
        .collect();
    for (_, _, id) in &prepared {
        session.evaluate(*id);
    }

    // Absorb the held-out edges (once, for every prepared query).
    let (inserted, insert_ms) = time_ms(|| session.add_edges(&held));
    assert_eq!(inserted, batch, "held-out edges are new by construction");

    prepared
        .into_iter()
        .map(|(q, wcnf, id)| {
            let (answer, incremental_ms) = time_ms(|| session.evaluate(id));
            let run = session.last_run(id).expect("query evaluated").clone();
            assert!(run.incremental || batch == 0, "re-query must be a repair");

            let (cold_idx, cold_ms) =
                time_ms(|| FixpointSolver::new(&SparseEngine).solve(graph, &wcnf));
            let cold_results = cold_idx.matrices[wcnf.start.index()].nnz();
            assert_eq!(
                answer.start_count(),
                cold_results,
                "incremental vs cold #results mismatch on {} {:?}",
                dataset.name,
                q
            );
            assert!(
                run.stats.products_computed < cold_idx.stats.products_computed,
                "incremental repair must launch fewer products than a cold solve \
                 ({} vs {}) on {} {:?}",
                run.stats.products_computed,
                cold_idx.stats.products_computed,
                dataset.name,
                q
            );
            IncrementalRow {
                dataset: dataset.name.clone(),
                query: format!("{q:?}"),
                batch,
                results: cold_results,
                cold_ms,
                incremental_ms,
                insert_ms,
                cold_products: cold_idx.stats.products_computed,
                incremental_products: run.stats.products_computed,
                incremental_sweeps: run.sweeps,
            }
        })
        .collect()
}

/// Renders incremental rows as a table.
pub fn render_incremental(rows: &[IncrementalRow]) -> String {
    let mut out = String::new();
    out.push_str("Incremental updates (session add_edges vs cold re-solve)\n");
    out.push_str(&format!(
        "{:<10} {:>3} {:>6} {:>9} {:>9} {:>9} {:>10} {:>10} {:>7}\n",
        "Dataset",
        "Q",
        "batch",
        "#results",
        "cold(ms)",
        "incr(ms)",
        "cold#prod",
        "incr#prod",
        "sweeps"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>3} {:>6} {:>9} {:>9.1} {:>9.1} {:>10} {:>10} {:>7}\n",
            r.dataset,
            r.query,
            r.batch,
            r.results,
            r.cold_ms,
            r.incremental_ms,
            r.cold_products,
            r.incremental_products,
            r.incremental_sweeps,
        ));
    }
    out
}

/// One row of the single-path (§5) scenario on one dataset: the
/// engine-backed masked semi-naive length closure vs the seed-era naive
/// `O(n³)` flat-table oracle on Q1, plus a `CfpqSession` single-path
/// repair after a held-out edge batch. The row asserts (a) identical
/// pair sets across the oracle, the engine pipeline and the relational
/// index, (b) a CYK-validated witness extraction sample, and (c) the
/// repair launching strictly fewer length-kernel products than the cold
/// closure — the PR-4 acceptance criteria, re-checked on every
/// `reproduce` run.
#[derive(Clone, Debug, Serialize)]
pub struct SinglePathRow {
    /// Dataset name.
    pub dataset: String,
    /// `#triples` column.
    pub triples: usize,
    /// Graph node count.
    pub nodes: usize,
    /// `|R_S|` of the single-path index (== relational — asserted).
    pub results: usize,
    /// Naive `O(n³)` flat-table oracle, milliseconds.
    pub oracle_ms: f64,
    /// Engine-backed masked semi-naive length closure (serial CSR),
    /// milliseconds.
    pub masked_ms: f64,
    /// Work counters of the masked length closure.
    pub masked: SweepStats,
    /// Work counters of the oracle run (one "product" per rule-sweep).
    pub oracle: SweepStats,
    /// Edges held out of the session build and re-inserted via
    /// `add_edges`.
    pub batch: usize,
    /// Session single-path re-query after `add_edges` (the semi-naive
    /// length repair), milliseconds.
    pub sp_repair_ms: f64,
    /// Length-kernel products launched by the repair (strictly fewer
    /// than the cold closure — asserted).
    pub sp_repair_products: usize,
    /// Length-kernel products of the cold masked closure.
    pub sp_cold_products: usize,
    /// Fixpoint sweeps of the repair.
    pub sp_repair_sweeps: usize,
}

/// Runs the single-path scenario on one dataset (Q1). With
/// `check_speed`, additionally asserts the engine-backed closure beats
/// the oracle on wall time — enforced on the large full-mode datasets,
/// where the `O(n³)` loop is orders of magnitude behind; tiny smoke
/// graphs only assert correctness.
pub fn run_single_path(dataset: &Dataset, batch: usize, check_speed: bool) -> SinglePathRow {
    let wcnf: Wcnf = queries::query1()
        .to_wcnf(CnfOptions::default())
        .expect("Q1 normalizes");
    let start = wcnf.start;
    let graph = &dataset.graph;

    // The seed-era naive loop (the test oracle) vs the engine pipeline.
    let (oracle_idx, oracle_ms) =
        time_ms(|| solve_single_path_oracle(graph, &wcnf, SolveOptions::default()));
    let (masked_idx, masked_ms) =
        time_ms(|| SinglePathSolver::new(&SparseEngine).solve(graph, &wcnf));
    let results = masked_idx.count(start);
    assert_eq!(
        masked_idx.pairs(start),
        oracle_idx.pairs(start),
        "engine vs oracle pair-set mismatch on {}",
        dataset.name
    );
    let relational = FixpointSolver::new(&SparseEngine).solve(graph, &wcnf);
    assert_eq!(
        masked_idx.pairs(start),
        relational.pairs(start),
        "single-path vs relational pair-set mismatch on {}",
        dataset.name
    );
    if check_speed {
        assert!(
            masked_ms < oracle_ms,
            "engine-backed closure must beat the naive oracle on {} ({masked_ms:.1} vs {oracle_ms:.1} ms)",
            dataset.name
        );
    }
    // Theorem-5 sample: the first recorded witness extracts and
    // re-validates against the grammar.
    if let Some((i, j, len)) = masked_idx.pairs_with_lengths(start).first().copied() {
        let path = extract_path(&masked_idx, graph, &wcnf, start, i, j).expect("witness extracts");
        assert_eq!(path.len() as u32, len, "witness length on {}", dataset.name);
        assert!(
            validate_witness(&path, graph, &wcnf, start, i, j),
            "witness invalid on {}",
            dataset.name
        );
    }

    // Session repair: hold out the last `batch` Q1-relevant edges,
    // cold-solve the rest, insert them back, re-evaluate.
    let alphabet: std::collections::HashSet<&str> =
        wcnf.symbols.terms().map(|(_, name)| name).collect();
    let (base, held) = hold_out_edges(graph, batch, |name| alphabet.contains(name));
    let batch = held.len();
    let mut session = CfpqSession::new(SparseEngine, &base);
    let id = session.prepare_single_path_query(PreparedQuery::from_wcnf(wcnf.clone()));
    session.evaluate_single_path(id);
    session.add_edges(&held);
    let (_, sp_repair_ms) = time_ms(|| {
        session.evaluate_single_path(id);
    });
    let run = session
        .last_single_path_run(id)
        .expect("query evaluated")
        .clone();
    assert!(run.incremental, "re-query must be a repair");
    assert_eq!(
        session.single_path_index(id).expect("solved").count(start),
        results,
        "repaired vs cold #results mismatch on {}",
        dataset.name
    );
    assert!(
        run.stats.products_computed < masked_idx.stats.products_computed,
        "single-path repair must launch fewer length products than a cold solve \
         ({} vs {}) on {}",
        run.stats.products_computed,
        masked_idx.stats.products_computed,
        dataset.name
    );

    SinglePathRow {
        dataset: dataset.name.clone(),
        triples: dataset.triples,
        nodes: graph.n_nodes(),
        results,
        oracle_ms,
        masked_ms,
        masked: SweepStats::of(masked_idx.iterations, &masked_idx.stats),
        oracle: SweepStats::of(oracle_idx.iterations, &oracle_idx.stats),
        batch,
        sp_repair_ms,
        sp_repair_products: run.stats.products_computed,
        sp_cold_products: masked_idx.stats.products_computed,
        sp_repair_sweeps: run.sweeps,
    }
}

/// Renders single-path rows as a table.
pub fn render_single_path(rows: &[SinglePathRow]) -> String {
    let mut out = String::new();
    out.push_str("Single-path §5 (engine-backed length closure vs naive oracle, Q1)\n");
    out.push_str(&format!(
        "{:<10} {:>8} {:>9} {:>10} {:>10} {:>7} {:>6} {:>9} {:>10} {:>10}\n",
        "Dataset",
        "#triples",
        "#results",
        "oracle(ms)",
        "masked(ms)",
        "#prod",
        "batch",
        "repair(ms)",
        "repair#prod",
        "cold#prod"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>8} {:>9} {:>10.1} {:>10.1} {:>7} {:>6} {:>9.1} {:>10} {:>10}\n",
            r.dataset,
            r.triples,
            r.results,
            r.oracle_ms,
            r.masked_ms,
            r.masked.products_computed,
            r.batch,
            r.sp_repair_ms,
            r.sp_repair_products,
            r.sp_cold_products,
        ));
    }
    out
}

/// One row of the concurrent-service scenario on one dataset: a request
/// workload (two waves of `per_query` requests per evaluation query,
/// separated by a held-out `add_edges` batch) served two ways and
/// compared end to end.
///
/// * **Serial loop** — the pre-service status quo: requests arrive from
///   independent callers and each one runs the one-shot solve path
///   (`CfpqSession` is `&mut self` and not shareable across request
///   handlers, so without the service layer every request pays its own
///   closure).
/// * **Service** — one [`cfpq_service::CfpqService`]: requests are enqueued as
///   tickets, the multi-queue scheduler batches the ones sharing a
///   grammar so each batch reuses a single cached closure, and the
///   update publishes one repaired epoch instead of invalidating
///   anything.
///
/// The row asserts the two paths produce **byte-identical per-request
/// answer sets** and records the service's per-epoch counters; with
/// `check_speedup` (full mode, g3 at 4 workers) it also asserts the
/// service throughput is at least 2× the serial loop — the PR's
/// acceptance criterion, re-checked on every `reproduce` run.
#[derive(Clone, Debug, Serialize)]
pub struct ServiceRow {
    /// Dataset name.
    pub dataset: String,
    /// Scheduler worker threads.
    pub workers: usize,
    /// Total requests served (2 queries × 2 waves × `per_query`).
    pub requests: usize,
    /// Edges held out of the build and inserted between the waves.
    pub batch: usize,
    /// `|R_S|` of Q1 on the full graph.
    pub results: usize,
    /// Serial query loop (one-shot solve per request), milliseconds.
    pub serial_ms: f64,
    /// Service wall time for the same workload, milliseconds.
    pub service_ms: f64,
    /// `serial_ms / service_ms`.
    pub speedup: f64,
    /// Epochs the service published (build + one per update batch).
    pub epochs: usize,
    /// Publish latency of the update epoch, milliseconds (readers of the
    /// previous epoch were never blocked during this window).
    pub publish_ms: f64,
    /// Requests answered across all epochs.
    pub queries_served: u64,
    /// Requests answered from an already-solved closure.
    pub cache_hits: u64,
    /// Closures cold-solved across all epochs.
    pub cold_solves: u64,
    /// Products launched by the cold solves.
    pub cold_products: u64,
    /// Closures repaired at epoch publish.
    pub repairs: u64,
    /// Products launched by the repairs (strictly fewer than
    /// `cold_products` — asserted).
    pub repair_products: u64,
}

/// Runs the service scenario on one dataset. See [`ServiceRow`] for the
/// workload shape and what is asserted.
pub fn run_service(
    dataset: &Dataset,
    workers: usize,
    per_query: usize,
    batch: usize,
    check_speedup: bool,
) -> ServiceRow {
    use cfpq_service::{CfpqService, ServiceConfig, Ticket};

    let graph = &dataset.graph;
    let wcnfs: Vec<Wcnf> = [Query::Q1, Query::Q2]
        .into_iter()
        .map(|q| {
            q.grammar()
                .to_wcnf(CnfOptions::default())
                .expect("query normalizes")
        })
        .collect();
    let relevant: std::collections::HashSet<String> = wcnfs
        .iter()
        .flat_map(|w| w.symbols.terms().map(|(_, name)| name.to_owned()))
        .collect();
    let (base, held) = hold_out_edges(graph, batch, |name| relevant.contains(name));
    let batch = held.len();

    // Warmup (untimed): one solve per query so first-touch effects
    // (page cache, allocator growth) don't land on either timed path.
    for wcnf in &wcnfs {
        let _ = FixpointSolver::new(&SparseEngine).solve(&base, wcnf);
    }

    // The serial loop: every request pays its own one-shot solve, wave 1
    // against the truncated graph, wave 2 against the full graph.
    let (serial_answers, serial_ms) = time_ms(|| {
        let mut answers: Vec<Vec<(u32, u32)>> = Vec::new();
        for wave_graph in [&base, graph] {
            for wcnf in &wcnfs {
                for _ in 0..per_query {
                    let idx = FixpointSolver::new(&SparseEngine).solve(wave_graph, wcnf);
                    answers.push(idx.pairs(wcnf.start));
                }
            }
        }
        answers
    });

    // The same workload through the service: enqueue each wave, wait for
    // the tickets, publish the update in between.
    let service = CfpqService::with_config(SparseEngine, &base, ServiceConfig::new(workers));
    let ids: Vec<cfpq_service::QueryId> = wcnfs
        .iter()
        .map(|w| service.prepare_query(PreparedQuery::from_wcnf(w.clone())))
        .collect();
    let (service_answers, service_ms) = time_ms(|| {
        let mut answers: Vec<Vec<(u32, u32)>> = Vec::new();
        for wave in 0..2 {
            if wave == 1 {
                let inserted = service.add_edges(&held);
                assert_eq!(inserted, batch, "held-out edges are new by construction");
            }
            let mut tickets: Vec<Ticket> = Vec::with_capacity(ids.len() * per_query);
            for &id in &ids {
                for _ in 0..per_query {
                    tickets.push(service.enqueue(id, vec![]).expect("id is registered"));
                }
            }
            answers.extend(
                tickets
                    .into_iter()
                    .map(|t| t.wait().expect("no faults injected in this bench").pairs),
            );
        }
        answers
    });

    assert_eq!(
        service_answers, serial_answers,
        "service vs serial answer sets must be byte-identical on {}",
        dataset.name
    );
    let results = serial_answers[per_query * wcnfs.len()].len();

    let stats = service.stats();
    let epochs = stats.len();
    assert_eq!(epochs, 2, "build epoch + one update epoch");
    let publish_ms = stats[1].publish_ms;
    let sum = |f: fn(&cfpq_service::ServiceStats) -> u64| stats.iter().map(f).sum::<u64>();
    let queries_served = sum(|s| s.queries_served);
    let cache_hits = sum(|s| s.cache_hits);
    let cold_solves = sum(|s| s.cold_solves);
    let cold_products = sum(|s| s.cold_products);
    let repairs = sum(|s| s.repairs);
    let repair_products = sum(|s| s.repair_products);
    assert_eq!(queries_served as usize, serial_answers.len());
    assert_eq!(
        repairs,
        wcnfs.len() as u64,
        "every wave-1 closure is repaired at publish, not re-solved"
    );
    assert!(
        repair_products < cold_products,
        "epoch publish must cost less kernel work than the cold solves \
         ({repair_products} vs {cold_products}) on {}",
        dataset.name
    );
    assert!(
        cache_hits > 0,
        "batched requests must share cached closures"
    );

    let speedup = serial_ms / service_ms;
    if check_speedup {
        assert!(
            speedup >= 2.0,
            "service must be ≥2× the serial loop on {} ({serial_ms:.1}ms vs {service_ms:.1}ms)",
            dataset.name
        );
    }

    ServiceRow {
        dataset: dataset.name.clone(),
        workers,
        requests: serial_answers.len(),
        batch,
        results,
        serial_ms,
        service_ms,
        speedup,
        epochs,
        publish_ms,
        queries_served,
        cache_hits,
        cold_solves,
        cold_products,
        repairs,
        repair_products,
    }
}

/// Renders service rows as a table.
pub fn render_service(rows: &[ServiceRow]) -> String {
    let mut out = String::new();
    out.push_str("Concurrent service (multi-queue scheduler vs serial query loop)\n");
    out.push_str(&format!(
        "{:<10} {:>7} {:>8} {:>10} {:>11} {:>8} {:>7} {:>6} {:>10} {:>10} {:>11}\n",
        "Dataset",
        "workers",
        "#req",
        "serial(ms)",
        "service(ms)",
        "speedup",
        "#hits",
        "epochs",
        "pub(ms)",
        "cold#prod",
        "repair#prod"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>7} {:>8} {:>10.1} {:>11.1} {:>7.1}x {:>7} {:>6} {:>10.1} {:>10} {:>11}\n",
            r.dataset,
            r.workers,
            r.requests,
            r.serial_ms,
            r.service_ms,
            r.speedup,
            r.cache_hits,
            r.epochs,
            r.publish_ms,
            r.cold_products,
            r.repair_products,
        ));
    }
    out
}

/// One row of the faults scenario: a deterministic chaos run over one
/// dataset, exercising the service's failure contract end to end.
///
/// Three sub-scenarios, all schedule-driven via
/// [`cfpq_service::faults::FaultInjector`] (no sleeps-and-hope):
///
/// * **Recovery** — scheduled panics kill the first two cold-solve
///   attempts; the client retries on `WorkerPanicked` and the third
///   attempt's answer is asserted byte-identical to a sequential solve.
/// * **Overload + deadlines** — a stall schedule pins the only worker
///   inside a cold solve while a burst overruns `max_queued`: the
///   surplus sheds `Overloaded` at enqueue, the queued remainder expires
///   to `Deadline` at dispatch.
/// * **Shutdown** — a bounded drain under a stalled worker resolves
///   everything still queued to `ShuttingDown`.
#[derive(Clone, Debug, Serialize)]
pub struct FaultsRow {
    /// Dataset name.
    pub dataset: String,
    /// Panics the schedule injected (asserted == 2).
    pub injected_panics: u64,
    /// Worker batches killed by those panics (asserted == injected).
    pub worker_panics: u64,
    /// Workers respawned by their supervisors (converges to
    /// `worker_panics`; asserted).
    pub worker_restarts: u64,
    /// Client retries needed before the recovery answer (== injected).
    pub retries: u64,
    /// Wall time from first enqueue to the recovered answer, ms.
    pub recovered_ms: f64,
    /// Recovered answer matches the sequential solve (asserted).
    pub answers_match: bool,
    /// Burst requests shed `Overloaded` at enqueue (asserted ≥ burst −
    /// max_queued).
    pub requests_shed: u64,
    /// Queued requests that expired to `Deadline` at dispatch.
    pub deadline_expired: u64,
    /// Tickets a zero-bound shutdown resolved to `ShuttingDown`.
    pub shutdown_drained: usize,
}

/// Runs the faults scenario on one dataset. See [`FaultsRow`] for the
/// three sub-scenarios and what each asserts.
pub fn run_faults(dataset: &Dataset) -> FaultsRow {
    use cfpq_service::faults::{silence_injected_panics, FaultInjector, FaultPlan};
    use cfpq_service::{CfpqService, ServiceConfig, ServiceError, ServiceStats, Ticket};
    use std::time::Duration;

    silence_injected_panics();
    let graph = &dataset.graph;
    let wcnf = Query::Q1
        .grammar()
        .to_wcnf(CnfOptions::default())
        .expect("query normalizes");
    let expected = FixpointSolver::new(&SparseEngine)
        .solve(graph, &wcnf)
        .pairs(wcnf.start);
    let total = |svc: &CfpqService<FaultInjector<SparseEngine>>, f: fn(&ServiceStats) -> u64| {
        svc.stats().iter().map(f).sum::<u64>()
    };

    // Recovery: ops 0 and 1 — the first two kernel launches — panic, so
    // the cold solve dies twice and the third client retry lands it.
    let injector = FaultInjector::new(SparseEngine, FaultPlan::panic_on([0, 1]));
    let service = CfpqService::with_config(injector.clone(), graph, ServiceConfig::new(2));
    let q = service.prepare_query(PreparedQuery::from_wcnf(wcnf.clone()));
    let mut retries = 0u64;
    let (pairs, recovered_ms) = time_ms(|| loop {
        match service.enqueue(q, vec![]).expect("q is registered").wait() {
            Ok(a) => break a.pairs,
            Err(ServiceError::WorkerPanicked) => retries += 1,
            Err(e) => panic!("unexpected error in the recovery scenario: {e}"),
        }
    });
    let injected_panics = injector.panics_injected();
    assert_eq!(injected_panics, 2, "the schedule fired exactly twice");
    assert_eq!(retries, injected_panics, "one retry per injected panic");
    let answers_match = pairs == expected;
    assert!(answers_match, "recovered answer diverges from sequential");
    let worker_panics = total(&service, |s| s.worker_panics);
    assert_eq!(worker_panics, injected_panics);
    let deadline = Instant::now() + Duration::from_secs(2);
    while total(&service, |s| s.worker_restarts) < worker_panics {
        assert!(
            Instant::now() < deadline,
            "supervisors must respawn workers"
        );
        std::thread::yield_now();
    }
    let worker_restarts = total(&service, |s| s.worker_restarts);

    // Overload + deadlines: every kernel launch after the first stalls
    // 10ms, pinning the only worker inside the cold solve while the
    // burst lands. max_queued=2 sheds the surplus at enqueue; the two
    // that queued expire at dispatch (deadline 25ms ≪ the stall).
    let injector = FaultInjector::new(
        SparseEngine,
        FaultPlan::none().with_delay_every(1, Duration::from_millis(10)),
    );
    let config = ServiceConfig::new(1)
        .with_max_queued(2)
        .with_default_deadline(Duration::from_millis(25));
    let service = CfpqService::with_config(injector, graph, config);
    let q = service.prepare_query(PreparedQuery::from_wcnf(wcnf.clone()));
    let t0 = service.enqueue(q, vec![]).expect("q is registered");
    std::thread::sleep(Duration::from_millis(50));
    let mut kept: Vec<Ticket> = Vec::new();
    for _ in 0..10 {
        match service.enqueue(q, vec![]) {
            Ok(t) => kept.push(t),
            Err(ServiceError::Overloaded { retry_after, .. }) => {
                assert!(retry_after > Duration::ZERO, "shed with a retry hint");
            }
            Err(e) => panic!("unexpected enqueue error in the overload scenario: {e}"),
        }
    }
    assert!(
        t0.wait().is_ok(),
        "the in-flight request was dispatched before its deadline"
    );
    for t in kept {
        assert_eq!(t.wait(), Err(ServiceError::Deadline));
    }
    let requests_shed = total(&service, |s| s.requests_shed);
    let deadline_expired = total(&service, |s| s.deadline_expired);
    assert!(requests_shed >= 8, "the burst overruns max_queued=2");
    assert_eq!(requests_shed + deadline_expired, 10);

    // Shutdown: stall the worker again on a fresh service, queue three
    // requests behind it, and drain with a zero bound — everything
    // still queued resolves `ShuttingDown`, typed, immediately.
    let injector = FaultInjector::new(
        SparseEngine,
        FaultPlan::none().with_delay_every(1, Duration::from_millis(10)),
    );
    let service = CfpqService::with_config(injector, graph, ServiceConfig::new(1));
    let q = service.prepare_query(PreparedQuery::from_wcnf(wcnf));
    let t0 = service.enqueue(q, vec![]).expect("q is registered");
    std::thread::sleep(Duration::from_millis(30));
    let queued: Vec<Ticket> = (0..3)
        .map(|_| service.enqueue(q, vec![]).expect("q is registered"))
        .collect();
    let shutdown_drained = service.shutdown_within(Duration::ZERO);
    assert_eq!(shutdown_drained, 3, "the zero bound drains the whole queue");
    for t in queued {
        assert_eq!(t.wait(), Err(ServiceError::ShuttingDown));
    }
    assert!(t0.wait().is_ok(), "the in-flight batch runs to completion");
    assert_eq!(
        service.enqueue(q, vec![]).err(),
        Some(ServiceError::ShuttingDown),
        "post-shutdown enqueues are rejected"
    );

    FaultsRow {
        dataset: dataset.name.clone(),
        injected_panics,
        worker_panics,
        worker_restarts,
        retries,
        recovered_ms,
        answers_match,
        requests_shed,
        deadline_expired,
        shutdown_drained,
    }
}

/// Renders the faults rows.
pub fn render_faults(rows: &[FaultsRow]) -> String {
    let mut out = String::new();
    out.push_str("Fault tolerance (scheduled panics, overload shedding, bounded shutdown)\n");
    out.push_str(&format!(
        "{:<16} {:>8} {:>7} {:>8} {:>7} {:>12} {:>6} {:>8} {:>9} {:>8}\n",
        "Dataset",
        "injected",
        "panics",
        "restarts",
        "retries",
        "recover(ms)",
        "match",
        "shed",
        "expired",
        "drained"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>8} {:>7} {:>8} {:>7} {:>12.1} {:>6} {:>8} {:>9} {:>8}\n",
            r.dataset,
            r.injected_panics,
            r.worker_panics,
            r.worker_restarts,
            r.retries,
            r.recovered_ms,
            r.answers_match,
            r.requests_shed,
            r.deadline_expired,
            r.shutdown_drained,
        ));
    }
    out
}

/// One row of the all-paths scenario: the memoized streaming enumerator
/// against the pre-rewrite eager recursive walk on the self-loop Dyck
/// graph (where the eager walk is exponential in the length bound), the
/// PR's lazy-only stress bound, and a paths-ticket service workload
/// whose pages are checked epoch-consistent and CYK-valid under a
/// concurrent `add_edges` batch.
#[derive(Clone, Debug, Serialize)]
pub struct AllPathsRow {
    /// Scenario name.
    pub dataset: String,
    /// Length bound shared by the eager-vs-lazy comparison (the largest
    /// the eager walk can still finish).
    pub shared_max_len: usize,
    /// Eager recursive walk at the shared bound, milliseconds.
    pub eager_ms: f64,
    /// Memoized streaming enumerator at the shared bound, milliseconds.
    pub lazy_ms: f64,
    /// The two walks streamed the same path set (asserted).
    pub lazy_eager_agree: bool,
    /// Length bound of the lazy-only stress run (the eager walk cannot
    /// finish here).
    pub stress_max_len: usize,
    /// Paths the stress run streamed — every one CYK-validated.
    pub paths_yielded: usize,
    /// Stress run wall time, milliseconds.
    pub stress_ms: f64,
    /// Pair pages answered by the service paths tickets.
    pub pages_served: u64,
    /// Witness paths streamed across those pages (service counter).
    pub paths_served: u64,
    /// Pages cut by the tight-quota probe service (service counter;
    /// `> 0` asserted — truncation must be loud, never silent).
    pub pages_truncated: u64,
}

/// Runs the all-paths scenario. See [`AllPathsRow`] for the three parts;
/// `smoke` lowers the eager bound (the eager walk's cost roughly doubles
/// per unit of `max_len`) and the ticket wave size.
pub fn run_all_paths(smoke: bool) -> Vec<AllPathsRow> {
    use cfpq_core::all_paths::{
        enumerate_paths, enumerate_paths_eager, EnumLimits, PageRequest, PathEnumerator,
    };
    use cfpq_graph::Edge;
    use cfpq_service::{CfpqService, PairPaths, ServiceConfig, Ticket};

    let wcnf = Cfg::parse("S -> a S b | a b")
        .expect("Dyck grammar parses")
        .to_wcnf(CnfOptions::default())
        .expect("Dyck grammar normalizes");
    let s = wcnf.start;

    // The stress graph of the acceptance criterion: a/b self loops on
    // one node, so every even length `2..=max_len` carries exactly one
    // witness `aⁿbⁿ` and the eager walk re-derives every split from
    // scratch.
    let mut cyclic = Graph::new(1);
    cyclic.add_edge_named(0, "a", 0);
    cyclic.add_edge_named(0, "b", 0);
    let idx = FixpointSolver::new(&SparseEngine).solve(&cyclic, &wcnf);

    // Eager vs lazy at a bound the eager walk can still finish.
    let shared_max_len = if smoke { 12 } else { 20 };
    let shared = EnumLimits {
        max_len: shared_max_len,
        max_paths: 1000,
    };
    let (eager, eager_ms) =
        time_ms(|| enumerate_paths_eager(&idx, &cyclic, &wcnf, s, 0, 0, shared));
    let (lazy, lazy_ms) = time_ms(|| enumerate_paths(&idx, &cyclic, &wcnf, s, 0, 0, shared));
    assert!(lazy.exhausted, "the path cap cannot bind at these bounds");
    let key = |p: &Vec<Edge>| -> Vec<(u32, u32, u32)> {
        p.iter().map(|e| (e.from, e.label.0, e.to)).collect()
    };
    let mut eager_keys: Vec<_> = eager.iter().map(|p| (p.len(), key(p))).collect();
    eager_keys.sort();
    eager_keys.dedup();
    let lazy_keys: Vec<_> = lazy.paths.iter().map(|p| (p.len(), key(p))).collect();
    let lazy_eager_agree = eager_keys == lazy_keys;
    assert!(
        lazy_eager_agree,
        "eager and lazy walks must stream the same path set"
    );

    // The stress bound, lazy-only: max_len 64 at a 1000-path cap, where
    // the eager walk's split recursion is infeasible (~2⁶⁴ calls).
    let stress_max_len = 64;
    let (stress, stress_ms) = time_ms(|| {
        enumerate_paths(
            &idx,
            &cyclic,
            &wcnf,
            s,
            0,
            0,
            EnumLimits {
                max_len: stress_max_len,
                max_paths: 1000,
            },
        )
    });
    assert!(stress.exhausted, "32 witnesses fit the 1000-path cap");
    assert_eq!(
        stress.paths.len(),
        stress_max_len / 2,
        "one aⁿbⁿ witness per even length"
    );
    for p in &stress.paths {
        assert!(validate_witness(p, &cyclic, &wcnf, s, 0, 0));
    }

    // Paths as a service workload: two waves of paths tickets with an
    // `add_edges` batch racing the first wave. Every answered page must
    // equal a from-scratch enumeration of its *own* epoch's graph —
    // never a mix of two epochs.
    let n = 8u32;
    let mut full = Graph::new(n as usize);
    for v in 0..n - 1 {
        full.add_edge_named(v, "a", v + 1);
        full.add_edge_named(v + 1, "b", v);
    }
    full.add_edge_named(n - 1, "a", n - 1);
    full.add_edge_named(n - 1, "b", n - 1);
    let (base, held) = hold_out_edges(&full, 4, |name| name == "a" || name == "b");

    let req = PageRequest {
        offset: 0,
        limit: 8,
        max_len: 8,
    };
    // Sequential per-epoch reference: the replay interns labels in the
    // same first-appearance order as the service's evolving index, so
    // pages compare by raw label id (as in the linearizability suite).
    let reference = |graph: &Graph| -> Vec<PairPaths> {
        let rel = FixpointSolver::new(&SparseEngine).solve(graph, &wcnf);
        let mut enumerator = PathEnumerator::from_graph(graph, &wcnf);
        rel.pairs(s)
            .into_iter()
            .map(|(i, j)| {
                let page = enumerator.page(&rel, s, i, j, req);
                for p in &page.paths {
                    assert!(validate_witness(p, graph, &wcnf, s, i, j));
                }
                PairPaths {
                    from: i,
                    to: j,
                    paths: page.paths,
                    exhausted: page.exhausted,
                }
            })
            .collect()
    };
    let mut replay = base.clone();
    let mut expected = vec![reference(&replay)];
    for (u, l, v) in &held {
        replay.add_edge_named(*u, l, *v);
    }
    expected.push(reference(&replay));

    let service = CfpqService::with_config(SparseEngine, &base, ServiceConfig::new(2));
    let q = service.prepare_query(PreparedQuery::from_wcnf(wcnf.clone()));
    let per_wave = if smoke { 3 } else { 8 };
    let mut tickets: Vec<Ticket> = (0..per_wave)
        .map(|_| {
            service
                .enqueue_paths(q, vec![], req)
                .expect("q is registered")
        })
        .collect();
    // The update races the first wave: tickets land on whichever epoch
    // was current when the scheduler served their batch.
    let inserted = service.add_edges(&held);
    assert_eq!(
        inserted,
        held.len(),
        "held-out edges are new by construction"
    );
    tickets.extend((0..per_wave).map(|_| {
        service
            .enqueue_paths(q, vec![], req)
            .expect("q is registered")
    }));
    let mut pages_served = 0u64;
    for t in tickets {
        let a = t.wait().expect("no faults injected in this bench");
        let pages = a.paths.expect("paths ticket answers with pages");
        assert_eq!(
            &pages, &expected[a.epoch as usize],
            "paths pages at epoch {} diverge from that epoch's sequential enumeration",
            a.epoch
        );
        pages_served += pages.len() as u64;
    }
    let stats = service.stats();
    let paths_served: u64 = stats.iter().map(|e| e.paths_served).sum();
    assert!(paths_served > 0, "the chain graph has Dyck witnesses");
    assert_eq!(
        stats.iter().map(|e| e.pages_truncated).sum::<u64>(),
        0,
        "the default quota never cuts these small pages"
    );

    // The quota probe: a tight per-request path budget must cut the page
    // and say so — `exhausted: false` plus a bumped truncation counter.
    let probe = CfpqService::with_config(
        SparseEngine,
        &cyclic,
        ServiceConfig::new(1).with_path_quota(2),
    );
    let pq = probe.prepare_query(PreparedQuery::from_wcnf(wcnf.clone()));
    let probe_pages = probe
        .enqueue_paths(pq, vec![], req)
        .expect("pq is registered")
        .wait()
        .expect("no faults injected in this bench")
        .paths
        .expect("paths ticket answers with pages");
    let probe_total: usize = probe_pages.iter().map(|p| p.paths.len()).sum();
    assert!(probe_total <= 2, "quota bounds the streamed paths");
    assert!(
        probe_pages.iter().any(|p| !p.exhausted),
        "a quota-cut page must report exhausted = false"
    );
    let pages_truncated: u64 = probe.stats().iter().map(|e| e.pages_truncated).sum();
    assert!(pages_truncated > 0, "truncation must bump the counter");

    vec![AllPathsRow {
        dataset: "cyclic-dyck".to_owned(),
        shared_max_len,
        eager_ms,
        lazy_ms,
        lazy_eager_agree,
        stress_max_len,
        paths_yielded: stress.paths.len(),
        stress_ms,
        pages_served,
        paths_served,
        pages_truncated,
    }]
}

/// Renders all-paths rows as a table.
pub fn render_all_paths(rows: &[AllPathsRow]) -> String {
    let mut out = String::new();
    out.push_str("All-path enumeration (memoized streaming vs eager recursive walk)\n");
    out.push_str(&format!(
        "{:<12} {:>7} {:>10} {:>9} {:>6} {:>8} {:>7} {:>10} {:>7} {:>8} {:>5}\n",
        "Scenario",
        "len",
        "eager(ms)",
        "lazy(ms)",
        "agree",
        "s-len",
        "#paths",
        "stress(ms)",
        "#pages",
        "#served",
        "#cut",
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>7} {:>10.2} {:>9.2} {:>6} {:>8} {:>7} {:>10.2} {:>7} {:>8} {:>5}\n",
            r.dataset,
            r.shared_max_len,
            r.eager_ms,
            r.lazy_ms,
            r.lazy_eager_agree,
            r.stress_max_len,
            r.paths_yielded,
            r.stress_ms,
            r.pages_served,
            r.paths_served,
            r.pages_truncated,
        ));
    }
    out
}

/// One row of the `scale` scenario: the Dyck query on a clustered block
/// graph (tile-aligned 64-node clusters, [`generators::clustered_blocks`])
/// far beyond the paper's ontology sizes, solved on the parallel-CSR
/// baseline, the block-tiled backend, and the adaptive engine. Each
/// cluster's closure is a handful of dense 64×64 tiles, so the tiled
/// kernels turn the sweep into cache-resident bitwise work while CSR
/// chases per-element pointers. A flat dense matrix is not run at this
/// scale — `n²/8` bytes *per nonterminal* (≈1.3 GB at 102k nodes) —
/// and the row records that skip explicitly.
#[derive(Clone, Debug, Serialize)]
pub struct ScaleRow {
    /// Scenario name (`scale-<n_blocks>x64`).
    pub dataset: String,
    /// Graph node count (`n_blocks × 64`).
    pub nodes: usize,
    /// Graph edge count.
    pub edges: usize,
    /// `|R_S|` (identical across engines — asserted).
    pub results: usize,
    /// Parallel CSR (sparse-par, masked-delta) — the pre-PR best on this
    /// shape — milliseconds.
    pub sparse_par_ms: f64,
    /// Block-tiled backend, milliseconds.
    pub tiled_ms: f64,
    /// Adaptive representation engine, milliseconds.
    pub adaptive_ms: f64,
    /// Flat dense is infeasible at this scale and never run (the skip
    /// the paper applies to g1–g3, an order of magnitude earlier).
    pub dense_skipped: bool,
    /// Work counters of the tiled run.
    pub tiled: SweepStats,
    /// Work counters of the adaptive run (representation decisions).
    pub adaptive: SweepStats,
}

/// Runs the `scale` scenario at `n_blocks` 64-node clusters. With
/// `check_speed` (full mode, ≥100k nodes), asserts the tiled backend
/// beats the parallel-CSR baseline — the PR's acceptance criterion,
/// re-checked on every `reproduce` run; smoke mode only asserts result
/// equality.
pub fn run_scale(n_blocks: usize, device_workers: usize, check_speed: bool) -> ScaleRow {
    let wcnf: Wcnf = Cfg::parse("S -> a S b | a b")
        .expect("Dyck grammar parses")
        .to_wcnf(CnfOptions::default())
        .expect("Dyck grammar normalizes");
    let start = wcnf.start;
    let graph = generators::clustered_blocks(n_blocks, 64, 4, &["a", "b"], 0x5CA1E);
    let device = || {
        if device_workers == 0 {
            Device::host_parallel()
        } else {
            Device::new(device_workers)
        }
    };

    let engine = ParSparseEngine::new(device());
    let (csr_idx, sparse_par_ms) = time_ms(|| FixpointSolver::new(&engine).solve(&graph, &wcnf));
    let results = csr_idx.matrices[start.index()].nnz();

    let engine = TiledEngine::new(device());
    let (tiled_idx, tiled_ms) = time_ms(|| FixpointSolver::new(&engine).solve(&graph, &wcnf));
    assert_eq!(
        tiled_idx.matrices[start.index()].nnz(),
        results,
        "tiled #results mismatch on the scale graph"
    );
    let tiled = SweepStats::of(tiled_idx.iterations, &tiled_idx.stats);

    let engine = AdaptiveEngine::new(device());
    let (adaptive_idx, adaptive_ms) = time_ms(|| FixpointSolver::new(&engine).solve(&graph, &wcnf));
    assert_eq!(
        adaptive_idx.matrices[start.index()].nnz(),
        results,
        "adaptive #results mismatch on the scale graph"
    );
    let adaptive = SweepStats::of(adaptive_idx.iterations, &adaptive_idx.stats);

    if check_speed {
        assert!(
            tiled_ms < sparse_par_ms,
            "the tiled backend must beat parallel CSR on the scale graph \
             ({tiled_ms:.0} vs {sparse_par_ms:.0} ms)"
        );
    }

    ScaleRow {
        dataset: format!("scale-{n_blocks}x64"),
        nodes: graph.n_nodes(),
        edges: graph.n_edges(),
        results,
        sparse_par_ms,
        tiled_ms,
        adaptive_ms,
        dense_skipped: true,
        tiled,
        adaptive,
    }
}

/// Renders scale rows as a table.
pub fn render_scale(rows: &[ScaleRow]) -> String {
    let mut out = String::new();
    out.push_str("Scale (block-tiled vs parallel CSR on clustered 64-node blocks)\n");
    out.push_str(&format!(
        "{:<16} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>6} {:>10} {:>8}\n",
        "Scenario",
        "#nodes",
        "#edges",
        "#results",
        "sGPU(ms)",
        "tile(ms)",
        "adpt(ms)",
        "dense",
        "#tileskip",
        "#switch"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>8} {:>8} {:>9} {:>9.0} {:>9.0} {:>9.0} {:>6} {:>10} {:>8}\n",
            r.dataset,
            r.nodes,
            r.edges,
            r.results,
            r.sparse_par_ms,
            r.tiled_ms,
            r.adaptive_ms,
            if r.dense_skipped { "skip" } else { "run" },
            r.tiled.tiles_skipped,
            r.adaptive.repr_switches,
        ));
    }
    out
}

/// One row of the `rpq` scenario: a regular path query on one dataset,
/// answered by all three formulations the workspace keeps in
/// triangulation — the standalone product-graph oracle, the compiled
/// RSM/Kronecker pipeline (an NFA prepared through a [`CfpqSession`]),
/// and the equivalent right-linear grammar under Algorithm 1 — plus a
/// session repair after a held-out `add_edges` batch. The row asserts
/// byte-identical answers everywhere and that the repair launches
/// strictly fewer products than the pipeline's cold solve.
#[derive(Clone, Debug, Serialize)]
pub struct RpqRow {
    /// Dataset name.
    pub dataset: String,
    /// Human-readable regular expression of the query.
    pub query: String,
    /// `#triples` column.
    pub triples: usize,
    /// Graph node count.
    pub nodes: usize,
    /// `|R|` of the query (identical across formulations — asserted).
    pub results: usize,
    /// Standalone product-graph oracle (rebuilds label matrices per
    /// call), milliseconds.
    pub rpq_oracle_ms: f64,
    /// Compiled pipeline through a session (masked semi-naive fixpoint
    /// on the materialized `GraphIndex`), milliseconds.
    pub rpq_pipeline_ms: f64,
    /// The equivalent right-linear grammar under plain Algorithm 1,
    /// milliseconds.
    pub rpq_grammar_ms: f64,
    /// Work counters of the pipeline's cold solve (the `SolveStats` the
    /// unified path populates for RPQs exactly as it does for CFPQs).
    pub pipeline: SweepStats,
    /// Edges held out of the session build and re-inserted via
    /// `add_edges`.
    pub batch: usize,
    /// Session re-evaluation after the batch (incremental repair),
    /// milliseconds.
    pub rpq_repair_ms: f64,
    /// Products launched by the repair (strictly fewer than the cold
    /// pipeline solve — asserted).
    pub rpq_repair_products: usize,
    /// Products launched by the pipeline's cold solve.
    pub rpq_cold_products: usize,
}

/// The RPQ cases of the `rpq` scenario: `(name, NFA, equivalent
/// right-linear grammar)` over the ontology alphabet.
fn rpq_cases() -> Vec<(&'static str, cfpq_core::regular::Nfa, Cfg)> {
    use cfpq_core::regular::Nfa;
    vec![
        (
            "subClassOf+",
            Nfa::plus("subClassOf"),
            Cfg::parse("S -> subClassOf S | subClassOf").expect("grammar parses"),
        ),
        (
            "subClassOf* type_r",
            Nfa::star_then("subClassOf", "type_r"),
            Cfg::parse("S -> subClassOf S | type_r").expect("grammar parses"),
        ),
    ]
}

/// Runs the `rpq` scenario on one dataset. See [`RpqRow`] for the three
/// formulations and what is asserted. With `check_repair` (full mode,
/// graphs big enough for the cold solve to cost real sweeps), the
/// repair must launch *strictly* fewer products than the cold pipeline
/// solve; tiny smoke graphs — where a cold solve is already a handful
/// of products — only assert it never launches more.
pub fn run_rpq(dataset: &Dataset, batch: usize, check_repair: bool) -> Vec<RpqRow> {
    use cfpq_core::regular::solve_regular;

    let graph = &dataset.graph;
    rpq_cases()
        .into_iter()
        .map(|(name, nfa, grammar)| {
            // The product-graph oracle: independent, full recompute.
            let (oracle, rpq_oracle_ms) =
                time_ms(|| solve_regular(&SparseEngine, graph, &nfa).pairs());

            // The compiled pipeline: NFA → RSM → state grammar, solved
            // by the session's masked semi-naive fixpoint.
            let mut session = CfpqSession::new(SparseEngine, graph);
            let id = session.prepare_regular(&nfa);
            let (answer, rpq_pipeline_ms) = time_ms(|| session.evaluate(id));
            assert_eq!(
                answer.start_pairs(),
                oracle,
                "pipeline vs oracle mismatch on {} {name}",
                dataset.name
            );
            let cold = session.last_run(id).expect("query evaluated").clone();
            assert!(
                cold.stats.products_computed > 0,
                "the pipeline populates SolveStats on {} {name}",
                dataset.name
            );

            // The equivalent right-linear grammar under Algorithm 1.
            let wcnf: Wcnf = grammar
                .to_wcnf(CnfOptions::default())
                .expect("grammar normalizes");
            let (grammar_idx, rpq_grammar_ms) =
                time_ms(|| FixpointSolver::new(&SparseEngine).solve(graph, &wcnf));
            assert_eq!(
                grammar_idx.pairs(wcnf.start),
                oracle,
                "regular-grammar CFPQ vs oracle mismatch on {} {name}",
                dataset.name
            );

            // Session repair after a held-out batch of query-relevant
            // edges: same answer as the full-graph oracle, fewer
            // products than the cold pipeline solve.
            let alphabet: std::collections::HashSet<String> = nfa
                .transitions()
                .iter()
                .map(|(_, l, _)| l.clone())
                .collect();
            let (base, held) = hold_out_edges(graph, batch, |n| alphabet.contains(n));
            let batch = held.len();
            let mut repaired = CfpqSession::new(SparseEngine, &base);
            let rid = repaired.prepare_regular(&nfa);
            repaired.evaluate(rid);
            repaired.add_edges(&held);
            let (repair_answer, rpq_repair_ms) = time_ms(|| repaired.evaluate(rid));
            let run = repaired.last_run(rid).expect("query evaluated").clone();
            assert!(run.incremental, "re-query must be a repair");
            assert_eq!(
                repair_answer.start_pairs(),
                oracle,
                "repaired vs oracle mismatch on {} {name}",
                dataset.name
            );
            assert!(
                run.stats.products_computed <= cold.stats.products_computed,
                "RPQ repair must never launch more products than a cold solve \
                 ({} vs {}) on {} {name}",
                run.stats.products_computed,
                cold.stats.products_computed,
                dataset.name
            );
            if check_repair {
                assert!(
                    run.stats.products_computed < cold.stats.products_computed,
                    "RPQ repair must launch strictly fewer products than a cold solve \
                     ({} vs {}) on {} {name}",
                    run.stats.products_computed,
                    cold.stats.products_computed,
                    dataset.name
                );
            }

            RpqRow {
                dataset: dataset.name.clone(),
                query: name.to_owned(),
                triples: dataset.triples,
                nodes: graph.n_nodes(),
                results: oracle.len(),
                rpq_oracle_ms,
                rpq_pipeline_ms,
                rpq_grammar_ms,
                pipeline: SweepStats::of(cold.sweeps, &cold.stats),
                batch,
                rpq_repair_ms,
                rpq_repair_products: run.stats.products_computed,
                rpq_cold_products: cold.stats.products_computed,
            }
        })
        .collect()
}

/// Renders RPQ rows as a table.
pub fn render_rpq(rows: &[RpqRow]) -> String {
    let mut out = String::new();
    out.push_str("RPQ (compiled RSM pipeline vs product-graph oracle vs regular grammar)\n");
    out.push_str(&format!(
        "{:<12} {:<20} {:>9} {:>10} {:>9} {:>9} {:>7} {:>6} {:>10} {:>10}\n",
        "Dataset",
        "Query",
        "#results",
        "oracle(ms)",
        "pipe(ms)",
        "gram(ms)",
        "#prod",
        "batch",
        "repair(ms)",
        "repair#prod"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:<20} {:>9} {:>10.1} {:>9.1} {:>9.1} {:>7} {:>6} {:>10.1} {:>10}\n",
            r.dataset,
            r.query,
            r.results,
            r.rpq_oracle_ms,
            r.rpq_pipeline_ms,
            r.rpq_grammar_ms,
            r.pipeline.products_computed,
            r.batch,
            r.rpq_repair_ms,
            r.rpq_repair_products,
        ));
    }
    out
}

/// Checks a Prometheus text exposition line by line: comment lines must
/// be well-formed `# HELP <name> <text>` / `# TYPE <name> <type>`
/// directives, every sample line must parse as
/// `name[{label="value",...}] value`, and every sample's base name must
/// have been declared by a preceding `# TYPE` line. Returns how many
/// non-empty lines were validated. This is the checker CI runs against
/// [`cfpq_obs::MetricsRegistry::prometheus_text`] on every `reproduce`
/// run.
pub fn lint_prometheus_text(text: &str) -> Result<usize, String> {
    fn is_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    // A histogram series `x` exposes `x_bucket`/`x_sum`/`x_count`; its
    // TYPE line declares the base name.
    fn base_name(name: &str) -> &str {
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(b) = name.strip_suffix(suffix) {
                return b;
            }
        }
        name
    }
    let mut typed: std::collections::HashSet<&str> = std::collections::HashSet::new();
    let mut checked = 0usize;
    for (no, line) in text.lines().enumerate() {
        let n = no + 1;
        if line.is_empty() {
            continue;
        }
        checked += 1;
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let directive = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            let tail = parts.next().unwrap_or("");
            if !is_name(name) {
                return Err(format!("line {n}: bad metric name {name:?}"));
            }
            match directive {
                "HELP" => {
                    // Escaping leaves no raw backslash-X other than \\ and \n.
                    let mut chars = tail.chars();
                    while let Some(c) = chars.next() {
                        if c == '\\' && !matches!(chars.next(), Some('\\') | Some('n')) {
                            return Err(format!("line {n}: bad HELP escape"));
                        }
                    }
                }
                "TYPE" => {
                    if !matches!(
                        tail,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {n}: bad TYPE {tail:?}"));
                    }
                    if !typed.insert(name) {
                        return Err(format!("line {n}: duplicate TYPE for {name}"));
                    }
                }
                _ => return Err(format!("line {n}: unknown directive {directive:?}")),
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: no sample value"))?;
        if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
            return Err(format!("line {n}: bad sample value {value:?}"));
        }
        let name = match series.split_once('{') {
            Some((name, labels)) => {
                let labels = labels
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unterminated label set"))?;
                // One pass over `k="v",...` with escape-aware quoting.
                let mut rest = labels;
                while !rest.is_empty() {
                    let (key, after) = rest
                        .split_once("=\"")
                        .ok_or_else(|| format!("line {n}: label without =\""))?;
                    if !is_name(key) {
                        return Err(format!("line {n}: bad label name {key:?}"));
                    }
                    let mut close = None;
                    let mut escaped = false;
                    for (i, c) in after.char_indices() {
                        if escaped {
                            if !matches!(c, '\\' | '"' | 'n') {
                                return Err(format!("line {n}: bad label escape"));
                            }
                            escaped = false;
                        } else if c == '\\' {
                            escaped = true;
                        } else if c == '"' {
                            close = Some(i);
                            break;
                        }
                    }
                    let close =
                        close.ok_or_else(|| format!("line {n}: unterminated label value"))?;
                    rest = after[close + 1..].trim_start_matches(',');
                }
                name
            }
            None => series,
        };
        if !is_name(name) {
            return Err(format!("line {n}: bad sample name {name:?}"));
        }
        if !typed.contains(base_name(name)) {
            return Err(format!("line {n}: sample {name} has no TYPE declaration"));
        }
    }
    Ok(checked)
}

/// One row of the observability scenario on one dataset: the zero-cost
/// overhead guard plus a traced service run.
///
/// * **Overhead guard** — Q1 is solved on the sparse masked-delta
///   pipeline twice: with nothing installed, and with the no-op
///   [`cfpq_obs::NoopRecorder`] installed. The two runs must launch the
///   *identical* product count (instrumentation must not change the
///   algorithm), and the no-op run's best-of-N wall time must stay
///   within 5% of the uninstrumented one — the "zero cost when off"
///   contract, re-checked on every `reproduce` run.
/// * **Traced service run** — the same query served through a
///   [`cfpq_service::CfpqService`] built with a
///   [`cfpq_obs::SpanCollector`]: two ticket waves around an `add_edges`
///   epoch publish. The captured span tree must be well-formed and
///   contain the full hierarchy (ticket, batch, epoch-publish, solve,
///   sweep, kernel spans), the chrome://tracing export must round-trip
///   through [`cfpq_obs::validate_chrome_trace`], and the Prometheus
///   exposition must pass [`lint_prometheus_text`].
#[derive(Clone, Debug, Serialize)]
pub struct ObsRow {
    /// Dataset name.
    pub dataset: String,
    /// Q1 products with no recorder installed.
    pub products_plain: usize,
    /// Q1 products under the no-op recorder (asserted equal).
    pub products_noop: usize,
    /// Best-of-N solve wall time, uninstrumented, milliseconds.
    pub plain_ms: f64,
    /// Best-of-N solve wall time under the no-op recorder, milliseconds.
    pub noop_ms: f64,
    /// `noop_ms / plain_ms` (asserted ≤ 1.05 modulo timer noise).
    pub overhead: f64,
    /// Spans the collector captured over the traced service run.
    pub spans: usize,
    /// `"sweep"` spans among them (per-nonterminal Δ-nnz attrs ride on
    /// these).
    pub sweep_spans: usize,
    /// `"kernel"` spans among them (per-product nnz / repr attrs).
    pub kernel_spans: usize,
    /// p99 of the ticket queue-wait histogram, milliseconds.
    pub ticket_wait_p99_ms: f64,
    /// High-water mark of the scheduler queue depth.
    pub queue_depth_max: u64,
    /// Events in the chrome://tracing export (validated by the format
    /// checker).
    pub trace_events: usize,
    /// Non-empty Prometheus exposition lines validated by
    /// [`lint_prometheus_text`].
    pub prometheus_lines: usize,
}

/// Runs the observability scenario on one dataset. See [`ObsRow`] for
/// the two parts and what each asserts.
pub fn run_obs(dataset: &Dataset) -> ObsRow {
    use cfpq_obs::{NoopRecorder, SpanCollector};
    use cfpq_service::{CfpqService, ServiceConfig, Ticket};
    use std::sync::Arc;

    let graph = &dataset.graph;
    let wcnf: Wcnf = Query::Q1
        .grammar()
        .to_wcnf(CnfOptions::default())
        .expect("query normalizes");

    // --- Overhead guard -------------------------------------------------
    let solve = || FixpointSolver::new(&SparseEngine).solve(graph, &wcnf);
    let warm = solve(); // untimed warmup: page cache, allocator growth
    const REPS: usize = 5;
    let mut plain_ms = f64::INFINITY;
    let mut noop_ms = f64::INFINITY;
    let mut products_plain = 0;
    let mut products_noop = 0;
    // Interleave the two configurations so machine drift (thermal,
    // scheduler) hits both evenly; keep the best of each.
    for _ in 0..REPS {
        let (idx, ms) = time_ms(solve);
        products_plain = idx.stats.products_computed;
        plain_ms = plain_ms.min(ms);
        let guard = cfpq_obs::install(Arc::new(NoopRecorder));
        let (idx, ms) = time_ms(solve);
        drop(guard);
        products_noop = idx.stats.products_computed;
        noop_ms = noop_ms.min(ms);
        assert_eq!(idx.pairs(wcnf.start), warm.pairs(wcnf.start));
    }
    assert_eq!(
        products_plain, products_noop,
        "the no-op recorder must not change the kernel schedule on {}",
        dataset.name
    );
    let overhead = noop_ms / plain_ms;
    // Best-of-N makes the comparison stable; the 0.5 ms absolute slack
    // absorbs timer granularity on sub-millisecond solves.
    assert!(
        noop_ms <= plain_ms * 1.05 + 0.5,
        "no-op observability must cost <5% wall time on {} \
         ({plain_ms:.2}ms plain vs {noop_ms:.2}ms noop)",
        dataset.name
    );

    // --- Traced service run ---------------------------------------------
    let relevant: std::collections::HashSet<String> = wcnf
        .symbols
        .terms()
        .map(|(_, name)| name.to_owned())
        .collect();
    let (base, held) = hold_out_edges(graph, 5, |name| relevant.contains(name));
    let collector = Arc::new(SpanCollector::new());
    let service = CfpqService::with_observability(
        SparseEngine,
        &base,
        ServiceConfig::new(2),
        collector.clone(),
    );
    let q = service.prepare_query(PreparedQuery::from_wcnf(wcnf.clone()));
    for wave in 0..2 {
        if wave == 1 {
            assert!(service.add_edges(&held) > 0, "held-out edges are new");
        }
        let tickets: Vec<Ticket> = (0..6)
            .map(|_| service.enqueue(q, vec![]).expect("q is registered"))
            .collect();
        for t in tickets {
            let answer = t.wait().expect("no faults in this scenario");
            let trace = answer.trace.expect("instrumented service attaches traces");
            assert!(!trace.span.is_none(), "ticket span recorded");
        }
    }
    let metrics = service.metrics();
    // Dropping the service joins the workers, so every span (including
    // in-flight batch spans) is closed before the collector is read.
    drop(service);

    let spans = collector.spans();
    cfpq_obs::trace::check_well_formed(&spans).expect("span tree is well-formed");
    let count = |name: &str| spans.iter().filter(|s| s.name == name).count();
    assert!(count("ticket") >= 12, "one span per ticket");
    assert!(count("batch") >= 1, "workers open batch spans");
    assert_eq!(count("epoch.publish"), 1, "one publish span per epoch");
    let sweep_spans = count("sweep");
    let kernel_spans = count("kernel");
    assert!(
        sweep_spans >= 1 && kernel_spans >= 1,
        "solver spans present"
    );

    let trace_json = collector.chrome_trace_json();
    let trace_events =
        cfpq_obs::validate_chrome_trace(&trace_json).expect("chrome trace round-trips");
    let prom = metrics.prometheus_text();
    let prometheus_lines = lint_prometheus_text(&prom).expect("exposition parses");
    let ticket_wait_p99_ms = metrics.histogram("cfpq_ticket_wait_us").quantile(0.99) as f64 / 1e3;
    let queue_depth_max = metrics.gauge("cfpq_queue_depth_max").get();
    assert!(queue_depth_max >= 1, "the waves must have queued requests");

    ObsRow {
        dataset: dataset.name.clone(),
        products_plain,
        products_noop,
        plain_ms,
        noop_ms,
        overhead,
        spans: spans.len(),
        sweep_spans,
        kernel_spans,
        ticket_wait_p99_ms,
        queue_depth_max,
        trace_events,
        prometheus_lines,
    }
}

/// Renders observability rows as a table.
pub fn render_obs(rows: &[ObsRow]) -> String {
    let mut out = String::new();
    out.push_str("Observability (no-op overhead guard + traced service run)\n");
    out.push_str(&format!(
        "{:<10} {:>9} {:>9} {:>9} {:>7} {:>7} {:>8} {:>12} {:>9} {:>9}\n",
        "Dataset",
        "plain(ms)",
        "noop(ms)",
        "overhead",
        "#spans",
        "#sweep",
        "#kernel",
        "wait p99(ms)",
        "depth max",
        "prom ln"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>9.2} {:>9.2} {:>8.2}x {:>7} {:>7} {:>8} {:>12.3} {:>9} {:>9}\n",
            r.dataset,
            r.plain_ms,
            r.noop_ms,
            r.overhead,
            r.spans,
            r.sweep_spans,
            r.kernel_spans,
            r.ticket_wait_p99_ms,
            r.queue_depth_max,
            r.prometheus_lines,
        ));
    }
    out
}

/// A smaller suite for unit tests and smoke benches: the four smallest
/// ontologies.
pub fn small_suite() -> Vec<Dataset> {
    evaluation_suite()
        .into_iter()
        .filter(|d| {
            matches!(
                d.name.as_str(),
                "skos" | "generations" | "travel" | "univ-bench"
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_consistent_across_backends() {
        // run_row asserts GLL == sparse == sparse-par == dense-par result
        // counts internally; run it over the small suite for both queries.
        for ds in small_suite() {
            for q in [Query::Q1, Query::Q2] {
                let row = run_row(q, &ds, 2);
                assert_eq!(row.triples, ds.triples);
                assert!(row.results > 0 || q == Query::Q2, "{} {q:?}", ds.name);
            }
        }
    }

    #[test]
    fn render_produces_all_rows() {
        let ds = small_suite();
        let rows: Vec<Row> = ds.iter().map(|d| run_row(Query::Q1, d, 2)).collect();
        let text = render_table(Query::Q1, &rows);
        for d in &ds {
            assert!(text.contains(&d.name));
        }
        assert!(text.contains("#results"));
    }

    #[test]
    fn incremental_rows_beat_cold_on_small_suite() {
        // run_incremental asserts result equality and the strictly-fewer-
        // products criterion internally; exercise it on the two smallest
        // ontologies at two batch sizes.
        for ds in small_suite().iter().take(2) {
            let rows = run_incremental(ds, &[1, 10]);
            assert_eq!(rows.len(), 4, "2 batch sizes × 2 queries");
            for r in &rows {
                assert!(r.incremental_products < r.cold_products);
                assert!(r.batch == 1 || r.batch == 10);
            }
            let text = render_incremental(&rows);
            assert!(text.contains(&ds.name));
            assert!(text.contains("incr#prod"));
        }
    }

    #[test]
    fn single_path_rows_agree_and_repair_beats_cold() {
        // run_single_path asserts oracle/engine/relational pair-set
        // equality, witness validity, and the fewer-products repair
        // criterion internally; exercise it on the two smallest
        // ontologies.
        for ds in small_suite().iter().take(2) {
            let row = run_single_path(ds, 5, false);
            assert_eq!(row.batch, 5);
            assert!(row.sp_repair_products < row.sp_cold_products);
            assert!(row.results > 0);
            let text = render_single_path(&[row]);
            assert!(text.contains(&ds.name));
            assert!(text.contains("repair#prod"));
        }
    }

    #[test]
    fn service_rows_are_byte_identical_to_serial() {
        // run_service asserts byte-identical answers, the repairs-at-
        // publish invariant and cache-hit sharing internally; exercise
        // it on the two smallest ontologies (no speedup assertion —
        // tiny graphs cannot amortize thread overhead).
        for ds in small_suite().iter().take(2) {
            let row = run_service(ds, 4, 3, 5, false);
            assert_eq!(row.workers, 4);
            assert_eq!(row.requests, 12, "2 queries × 2 waves × 3");
            assert_eq!(row.epochs, 2);
            assert!(row.repair_products < row.cold_products);
            let text = render_service(&[row]);
            assert!(text.contains(&ds.name));
            assert!(text.contains("repair#prod"));
        }
    }

    #[test]
    fn all_paths_rows_agree_and_truncate_loudly() {
        // run_all_paths asserts eager/lazy set equality, CYK validity,
        // epoch-consistent ticket pages, and loud quota truncation
        // internally; exercise the smoke configuration.
        let rows = run_all_paths(true);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.lazy_eager_agree);
        assert_eq!(r.paths_yielded, 32, "one aⁿbⁿ witness per even length");
        assert!(r.pages_served > 0 && r.paths_served > 0);
        assert!(r.pages_truncated > 0);
        let text = render_all_paths(&rows);
        assert!(text.contains("cyclic-dyck"));
        assert!(text.contains("eager(ms)"));
    }

    #[test]
    fn rpq_rows_triangulate_and_repair_beats_cold() {
        // run_rpq asserts oracle/pipeline/grammar answer equality and
        // the fewer-products repair criterion internally; exercise it on
        // the two smallest ontologies.
        for ds in small_suite().iter().take(2) {
            let rows = run_rpq(ds, 10, false);
            assert_eq!(rows.len(), 2, "two RPQ cases per dataset");
            for r in &rows {
                assert!(r.results > 0, "{} {}", ds.name, r.query);
                assert!(r.rpq_repair_products <= r.rpq_cold_products);
                assert!(r.pipeline.products_computed > 0);
            }
            let text = render_rpq(&rows);
            assert!(text.contains(&ds.name));
            assert!(text.contains("subClassOf+"));
        }
    }

    #[test]
    fn scale_rows_agree_across_engines_and_skip_dense() {
        // run_scale asserts tiled/adaptive result equality internally;
        // a tiny 8-block instance keeps the test fast while still
        // crossing tile boundaries. No speed assertion at this size.
        let row = run_scale(8, 2, false);
        assert_eq!(row.nodes, 512);
        assert!(row.results > 0);
        assert!(row.dense_skipped);
        assert!(
            row.adaptive.nt_nnz.iter().sum::<usize>() > 0,
            "the per-nonterminal nnz snapshot must be populated"
        );
        let text = render_scale(&[row]);
        assert!(text.contains("scale-8x64"));
        assert!(text.contains("#tileskip"));
    }

    #[test]
    fn prometheus_linter_accepts_the_real_exposition() {
        // The linter must pass the registry's own output — including a
        // help string with characters that need escaping and a histogram
        // with its _bucket/_sum/_count family.
        let reg = cfpq_obs::MetricsRegistry::new();
        reg.describe("demo_total", "a counter with a \\ and a\nnewline");
        reg.counter("demo_total").add(3);
        reg.gauge("demo_depth").set(7);
        let h = reg.histogram("demo_us");
        for v in [1, 10, 100, 1_000, 10_000] {
            h.observe(v);
        }
        let text = reg.prometheus_text();
        let lines = lint_prometheus_text(&text).expect("registry output lints clean");
        assert!(lines > 5, "exposition has HELP/TYPE + samples");
    }

    #[test]
    fn prometheus_linter_rejects_malformed_exposition() {
        // A sample whose metric family has no TYPE declaration.
        assert!(lint_prometheus_text("orphan_total 3\n").is_err());
        // An illegal metric name.
        assert!(lint_prometheus_text("# TYPE 9bad counter\n9bad 1\n").is_err());
        // A non-numeric value.
        assert!(lint_prometheus_text("# TYPE ok_total counter\nok_total banana\n").is_err());
        // Duplicate TYPE for one family.
        assert!(
            lint_prometheus_text("# TYPE x_total counter\n# TYPE x_total gauge\nx_total 1\n")
                .is_err()
        );
        // An unterminated label value.
        assert!(lint_prometheus_text("# TYPE y_total counter\ny_total{le=\"0.5 1\n").is_err());
        // An unknown TYPE keyword.
        assert!(lint_prometheus_text("# TYPE z_total meter\nz_total 1\n").is_err());
    }

    #[test]
    fn obs_row_guards_overhead_and_round_trips_traces() {
        // run_obs asserts the no-op-recorder overhead bound, span-tree
        // well-formedness, chrome-trace validity, and exposition lint
        // internally; exercise it on the smallest ontology. The absolute
        // slack in the guard keeps sub-millisecond solves from flaking.
        let ds = &small_suite()[0];
        let row = run_obs(ds);
        assert_eq!(row.products_plain, row.products_noop);
        assert!(row.spans > 0 && row.sweep_spans > 0 && row.kernel_spans > 0);
        assert!(row.trace_events >= row.spans);
        assert!(row.prometheus_lines > 0);
        assert!(row.queue_depth_max >= 1);
        let text = render_obs(&[row]);
        assert!(text.contains(&ds.name));
        assert!(text.contains("overhead"));
    }

    #[test]
    fn g_datasets_skip_dense() {
        let suite = evaluation_suite();
        let g1 = suite.iter().find(|d| d.name == "g1").unwrap();
        // Use a trimmed copy of g1 (2 copies of funding instead of 8) to
        // keep the test fast while exercising the skip logic.
        let funding = suite.iter().find(|d| d.name == "funding").unwrap();
        let small_g = Dataset {
            name: "g1".to_owned(),
            triples: g1.triples,
            graph: funding.graph.repeat(2),
        };
        let row = run_row(Query::Q2, &small_g, 2);
        assert!(row.dense_par_ms.is_none(), "dGPU omitted on g1–g3");
    }
}
