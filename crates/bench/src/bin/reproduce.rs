//! Regenerates the paper's evaluation tables end to end.
//!
//! ```text
//! cargo run --release -p cfpq-bench --bin reproduce -- [table1|table2|all] \
//!     [--workers N] [--json PATH] [--smoke]
//! ```
//!
//! Prints each table in the paper's layout and optionally writes the raw
//! rows as JSON (consumed when updating EXPERIMENTS.md and committed as
//! the `BENCH_*.json` perf trajectory: per-sweep nnz, products computed,
//! products skipped by the masked semi-naive pipeline). `#results` is
//! asserted identical across GLL / dGPU / sCPU / sGPU and across the
//! naive vs masked-delta fixpoint strategies, mirroring the paper's "All
//! implementations … have the same #results". `--smoke` restricts the
//! run to the four smallest ontologies — the CI guard that keeps the
//! JSON schema and the kernel pipeline from rotting.

use cfpq_bench::{render_table, run_row, run_table, small_suite, Query};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_owned();
    let mut workers = 0usize;
    let mut json_path: Option<String> = None;
    let mut smoke = false;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "table1" | "table2" | "all" => which = arg,
            "--workers" => {
                workers = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--workers needs a number");
                        std::process::exit(2);
                    }
                };
            }
            "--json" => {
                json_path = match it.next() {
                    Some(p) => Some(p),
                    None => {
                        eprintln!("--json needs a path");
                        std::process::exit(2);
                    }
                };
            }
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: reproduce [table1|table2|all] [--workers N] [--json PATH] [--smoke]"
                );
                std::process::exit(2);
            }
        }
    }

    let queries: Vec<Query> = match which.as_str() {
        "table1" => vec![Query::Q1],
        "table2" => vec![Query::Q2],
        _ => vec![Query::Q1, Query::Q2],
    };

    let mut all_rows = Vec::new();
    for q in queries {
        let rows = if smoke {
            eprintln!("running {} over the smoke suite...", q.table_name());
            small_suite()
                .iter()
                .map(|ds| run_row(q, ds, workers))
                .collect()
        } else {
            eprintln!("running {} over the 14-dataset suite...", q.table_name());
            run_table(q, workers)
        };
        print!("{}", render_table(q, &rows));
        println!();
        all_rows.push((format!("{q:?}"), rows));
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(
            &all_rows
                .iter()
                .map(|(q, rows)| serde_json::json!({ "query": q, "rows": rows }))
                .collect::<Vec<_>>(),
        )
        .expect("rows serialize");
        let mut f = std::fs::File::create(&path).expect("open json output");
        f.write_all(json.as_bytes()).expect("write json output");
        eprintln!("wrote {path}");
    }
}
