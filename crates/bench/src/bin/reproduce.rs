//! Regenerates the paper's evaluation tables end to end, plus the
//! incremental-session scenario.
//!
//! ```text
//! cargo run --release -p cfpq-bench --bin reproduce -- \
//!     [table1|table2|incremental|single-path|service|all-paths|faults|scale|rpq|all] \
//!     [--workers N] [--json PATH] [--smoke]
//! ```
//!
//! Prints each table in the paper's layout and optionally writes the raw
//! rows as JSON (consumed when updating EXPERIMENTS.md and committed as
//! the `BENCH_*.json` perf trajectory: per-sweep nnz, products computed,
//! products skipped by the masked semi-naive pipeline). `#results` is
//! asserted identical across GLL / dGPU / sCPU / sGPU and across the
//! naive vs masked-delta fixpoint strategies, mirroring the paper's "All
//! implementations … have the same #results". `--smoke` restricts the
//! run to the four smallest ontologies — the CI guard that keeps the
//! JSON schema and the kernel pipeline from rotting.
//!
//! The `incremental` scenario (part of `all`) builds one `CfpqSession`
//! index, runs both evaluation queries, inserts a held-out edge batch
//! via `add_edges`, and re-queries: the emitted rows assert that the
//! semi-naive repair launches strictly fewer products than a cold solve
//! of the full graph. Full mode runs g3 at 1/10/100-edge batches (the
//! numbers committed as `BENCH_pr3.json`); smoke mode runs the two
//! smallest ontologies at 1/10.
//!
//! The `single-path` scenario (part of `all`) runs the §5 length
//! closure: the engine-backed masked semi-naive pipeline vs the naive
//! `O(n³)` oracle on Q1, plus a session single-path repair after a
//! held-out batch. Full mode runs pizza and g3 and asserts the engine
//! beats the oracle on wall time (the numbers committed as
//! `BENCH_pr4.json`); smoke mode runs the four smallest ontologies,
//! asserting correctness and the fewer-products repair criterion.
//!
//! The `service` scenario (part of `all`) runs the concurrent query
//! service: a two-wave request workload (an `add_edges` batch between
//! the waves) served by a `CfpqService` with its multi-queue scheduler,
//! against the serial one-shot-solve-per-request loop. Byte-identical
//! per-request answer sets are asserted everywhere; full mode runs g3 at
//! 4 workers and additionally asserts the ≥2× throughput criterion (the
//! numbers committed as `BENCH_pr5.json`), while smoke mode runs the two
//! smallest ontologies without the throughput assertion.
//!
//! The `all-paths` scenario (part of `all`) runs the §7 streaming
//! enumeration: the memoized lazy enumerator vs the pre-rewrite eager
//! recursive walk on the self-loop Dyck graph (eager is exponential in
//! the length bound, so the two are compared at a shared feasible bound
//! and the lazy-only stress runs at `max_len` 64), plus a paths-ticket
//! service workload whose pages are asserted epoch-consistent and
//! CYK-valid under a racing `add_edges` batch, and a tight-quota probe
//! asserting truncation is loud. Full mode raises the eager bound (the
//! numbers committed as `BENCH_pr6.json`); smoke keeps it small.
//!
//! The `faults` scenario (part of `all`) runs the deterministic chaos
//! workload: a `FaultInjector`-wrapped engine executes a fixed fault
//! schedule against the service — scheduled worker panics recovered by
//! client retries (answers asserted byte-identical to sequential),
//! forced overload shedding plus deadline expiry, and a bounded
//! shutdown drain. The emitted rows carry the `worker_panics`,
//! `requests_shed`, and `deadline_expired` counters CI greps for. Fault
//! handling is size-independent, so both modes run small ontologies:
//! smoke the two smallest, full the four-dataset smoke suite (the full
//! rows are part of `BENCH_pr7.json`).
//!
//! The `rpq` scenario (part of `all`) runs regular path queries through
//! the unified compiled pipeline: each RPQ is answered three ways — the
//! standalone product-graph oracle, the NFA compiled through the
//! RSM/Kronecker lowering and solved by a session's masked semi-naive
//! fixpoint, and the equivalent right-linear grammar under plain
//! Algorithm 1 — with byte-identical answers asserted, the pipeline's
//! `SolveStats` emitted per row, and a session repair after a held-out
//! `add_edges` batch. Full mode runs pizza and g3 and asserts the
//! repair launches strictly fewer products than the cold solve (the
//! numbers committed as `BENCH_pr9.json`); smoke runs the two smallest
//! ontologies asserting correctness.
//!
//! The `scale` scenario (part of `all`) leaves the paper's ontology
//! sizes behind: a clustered block graph of tile-aligned 64-node
//! clusters — 1600 blocks (102,400 nodes) in full mode, 32 blocks in
//! smoke — solved on parallel CSR, the block-tiled backend, and the
//! adaptive engine. Full mode asserts the tiled backend beats the CSR
//! baseline (the numbers committed as `BENCH_pr8.json`); flat dense is
//! recorded as skipped (`n²/8` bytes per nonterminal at this size).
//!
//! The `obs` scenario (part of `all`, both modes) holds the
//! observability layer to its contract on g3: the no-op recorder must
//! leave the Q1 kernel schedule and wall time (<5%) unchanged, and a
//! traced service run must yield a well-formed span tree, a valid
//! chrome://tracing export, and a Prometheus exposition that passes
//! `cfpq_bench::lint_prometheus_text` — the JSON rows carry
//! `ticket_wait_p99_ms`, `sweep_spans`, and `queue_depth_max`.

use cfpq_bench::{
    render_all_paths, render_faults, render_incremental, render_obs, render_rpq, render_scale,
    render_service, render_single_path, render_table, run_all_paths, run_faults, run_incremental,
    run_obs, run_row, run_rpq, run_scale, run_service, run_single_path, run_table, small_suite,
    Query,
};
use cfpq_graph::ontology::evaluation_suite;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_owned();
    let mut workers = 0usize;
    let mut json_path: Option<String> = None;
    let mut smoke = false;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "table1" | "table2" | "incremental" | "single-path" | "service" | "all-paths"
            | "faults" | "scale" | "rpq" | "obs" | "all" => which = arg,
            "--workers" => {
                workers = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--workers needs a number");
                        std::process::exit(2);
                    }
                };
            }
            "--json" => {
                json_path = match it.next() {
                    Some(p) => Some(p),
                    None => {
                        eprintln!("--json needs a path");
                        std::process::exit(2);
                    }
                };
            }
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: reproduce [table1|table2|incremental|single-path|service|all-paths|faults|scale|rpq|obs|all] \
                     [--workers N] [--json PATH] [--smoke]"
                );
                std::process::exit(2);
            }
        }
    }

    let queries: Vec<Query> = match which.as_str() {
        "table1" => vec![Query::Q1],
        "table2" => vec![Query::Q2],
        "incremental" | "single-path" | "service" | "all-paths" | "faults" | "scale" | "rpq"
        | "obs" => {
            vec![]
        }
        _ => vec![Query::Q1, Query::Q2],
    };
    let run_incremental_scenario = matches!(which.as_str(), "incremental" | "all");
    let run_single_path_scenario = matches!(which.as_str(), "single-path" | "all");
    let run_service_scenario = matches!(which.as_str(), "service" | "all");
    let run_all_paths_scenario = matches!(which.as_str(), "all-paths" | "all");
    let run_faults_scenario = matches!(which.as_str(), "faults" | "all");
    let run_scale_scenario = matches!(which.as_str(), "scale" | "all");
    let run_rpq_scenario = matches!(which.as_str(), "rpq" | "all");
    let run_obs_scenario = matches!(which.as_str(), "obs" | "all");

    let mut sections: Vec<serde_json::Value> = Vec::new();
    for q in queries {
        let rows = if smoke {
            eprintln!("running {} over the smoke suite...", q.table_name());
            small_suite()
                .iter()
                .map(|ds| run_row(q, ds, workers))
                .collect()
        } else {
            eprintln!("running {} over the 14-dataset suite...", q.table_name());
            run_table(q, workers)
        };
        print!("{}", render_table(q, &rows));
        println!();
        sections.push(serde_json::json!({ "query": format!("{q:?}"), "rows": rows }));
    }

    if run_incremental_scenario {
        // Smoke: two small ontologies at small batches (the CI guard).
        // Full: g3 — the largest graph — at 1/10/100-edge batches; these
        // are the rows committed as BENCH_pr3.json.
        let rows = if smoke {
            eprintln!("running incremental scenario over the smoke suite...");
            small_suite()
                .iter()
                .take(2)
                .flat_map(|ds| run_incremental(ds, &[1, 10]))
                .collect::<Vec<_>>()
        } else {
            eprintln!("running incremental scenario on g3 (1/10/100-edge batches)...");
            let suite = evaluation_suite();
            let g3 = suite.iter().find(|d| d.name == "g3").expect("g3 present");
            run_incremental(g3, &[1, 10, 100])
        };
        print!("{}", render_incremental(&rows));
        println!();
        sections.push(serde_json::json!({ "query": "Incremental", "rows": rows }));
    }

    if run_single_path_scenario {
        // Smoke: the four smallest ontologies, correctness-only (the CI
        // guard — a tiny flat loop can win on a 91-node graph). Full:
        // pizza and g3 with the engine-beats-oracle assertion; these are
        // the rows committed as BENCH_pr4.json.
        let rows = if smoke {
            eprintln!("running single-path scenario over the smoke suite...");
            small_suite()
                .iter()
                .map(|ds| run_single_path(ds, 10, false))
                .collect::<Vec<_>>()
        } else {
            eprintln!("running single-path scenario on pizza and g3 (naive oracle is O(n³) — expect ~10s on g3)...");
            let suite = evaluation_suite();
            ["pizza", "g3"]
                .iter()
                .map(|name| {
                    let ds = suite.iter().find(|d| &d.name == name).expect("dataset");
                    run_single_path(ds, 10, true)
                })
                .collect::<Vec<_>>()
        };
        print!("{}", render_single_path(&rows));
        println!();
        sections.push(serde_json::json!({ "query": "SinglePath", "rows": rows }));
    }

    if run_service_scenario {
        // Smoke: the two smallest ontologies, byte-identical answers and
        // the repair-beats-cold invariant only (tiny graphs cannot
        // amortize thread overhead, so no throughput assertion). Full:
        // g3 at 4 workers with the ≥2× speedup acceptance criterion;
        // these are the rows committed as BENCH_pr5.json.
        let rows = if smoke {
            eprintln!("running service scenario over the smoke suite...");
            small_suite()
                .iter()
                .take(2)
                .map(|ds| run_service(ds, 4, 3, 5, false))
                .collect::<Vec<_>>()
        } else {
            eprintln!("running service scenario on g3 (4 workers, 2 waves of 8 requests/query)...");
            let suite = evaluation_suite();
            let g3 = suite.iter().find(|d| d.name == "g3").expect("g3 present");
            vec![run_service(g3, 4, 8, 10, true)]
        };
        print!("{}", render_service(&rows));
        println!();
        sections.push(serde_json::json!({ "query": "Service", "rows": rows }));
    }

    if run_all_paths_scenario {
        // Self-contained synthetic scenario (no ontology dependence):
        // smoke keeps the eager bound at 12, full raises it to 20 — the
        // eager walk's cost roughly doubles per unit of max_len, so the
        // gap against the memoized enumerator is visible either way.
        // Full-mode rows are the ones committed as BENCH_pr6.json.
        eprintln!("running all-paths scenario (cyclic stress + paths tickets)...");
        let rows = run_all_paths(smoke);
        print!("{}", render_all_paths(&rows));
        println!();
        sections.push(serde_json::json!({ "query": "AllPaths", "rows": rows }));
    }

    if run_faults_scenario {
        // Deterministic chaos on small ontologies (fault handling is
        // size-independent; the stall schedule makes big graphs pure
        // waste). Smoke: the two smallest. Full: the four-dataset smoke
        // suite — the rows committed as part of BENCH_pr7.json.
        let take = if smoke { 2 } else { 4 };
        eprintln!("running faults scenario (scheduled panics, overload, bounded shutdown)...");
        let rows: Vec<_> = small_suite().iter().take(take).map(run_faults).collect();
        print!("{}", render_faults(&rows));
        println!();
        sections.push(serde_json::json!({ "query": "Faults", "rows": rows }));
    }

    if run_scale_scenario {
        // Smoke: 32 tile-aligned blocks (2,048 nodes) — enough to cross
        // tile boundaries and keep CI fast. Full: 1600 blocks (102,400
        // nodes) with the tiled-beats-CSR acceptance criterion; these
        // are the rows committed as BENCH_pr8.json. Flat dense is never
        // run here (n²/8 bytes per nonterminal).
        let n_blocks = if smoke { 32 } else { 1600 };
        eprintln!("running scale scenario ({n_blocks} blocks x 64 nodes)...");
        let rows = vec![run_scale(n_blocks, workers, !smoke)];
        print!("{}", render_scale(&rows));
        println!();
        sections.push(serde_json::json!({ "query": "Scale", "rows": rows }));
    }

    if run_rpq_scenario {
        // Smoke: the two smallest ontologies, triangulation only (a cold
        // solve on a 91-node graph is a handful of products, so the
        // strictly-fewer repair criterion has no headroom). Full: pizza
        // and g3 with the strict repair assertion; these are the rows
        // committed as BENCH_pr9.json.
        let rows = if smoke {
            eprintln!("running rpq scenario over the smoke suite...");
            small_suite()
                .iter()
                .take(2)
                .flat_map(|ds| run_rpq(ds, 10, false))
                .collect::<Vec<_>>()
        } else {
            eprintln!("running rpq scenario on pizza and g3...");
            let suite = evaluation_suite();
            ["pizza", "g3"]
                .iter()
                .flat_map(|name| {
                    let ds = suite.iter().find(|d| &d.name == name).expect("dataset");
                    run_rpq(ds, 10, true)
                })
                .collect::<Vec<_>>()
        };
        print!("{}", render_rpq(&rows));
        println!();
        sections.push(serde_json::json!({ "query": "Rpq", "rows": rows }));
    }

    if run_obs_scenario {
        // Both modes run g3 (the overhead guard needs a solve long
        // enough that 5% is measurable): the no-op recorder must leave
        // the Q1 kernel schedule and wall time unchanged, and the traced
        // service run must produce a well-formed span tree, a valid
        // chrome://tracing export, and a Prometheus exposition that
        // passes the line checker.
        eprintln!("running obs scenario on g3 (no-op overhead guard + traced service run)...");
        let suite = evaluation_suite();
        let g3 = suite.iter().find(|d| d.name == "g3").expect("g3 present");
        let rows = vec![run_obs(g3)];
        print!("{}", render_obs(&rows));
        println!();
        sections.push(serde_json::json!({ "query": "Obs", "rows": rows }));
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&sections).expect("rows serialize");
        let mut f = std::fs::File::create(&path).expect("open json output");
        f.write_all(json.as_bytes()).expect("write json output");
        eprintln!("wrote {path}");
    }
}
