//! Regenerates the paper's evaluation tables end to end.
//!
//! ```text
//! cargo run --release -p cfpq-bench --bin reproduce -- [table1|table2|all] \
//!     [--workers N] [--json PATH]
//! ```
//!
//! Prints each table in the paper's layout and optionally writes the raw
//! rows as JSON (consumed when updating EXPERIMENTS.md). `#results` is
//! asserted identical across GLL / dGPU / sCPU / sGPU, mirroring the
//! paper's "All implementations … have the same #results".

use cfpq_bench::{render_table, run_table, Query};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_owned();
    let mut workers = 0usize;
    let mut json_path: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "table1" | "table2" | "all" => which = arg,
            "--workers" => {
                workers = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--workers needs a number");
                        std::process::exit(2);
                    }
                };
            }
            "--json" => {
                json_path = match it.next() {
                    Some(p) => Some(p),
                    None => {
                        eprintln!("--json needs a path");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: reproduce [table1|table2|all] [--workers N] [--json PATH]");
                std::process::exit(2);
            }
        }
    }

    let queries: Vec<Query> = match which.as_str() {
        "table1" => vec![Query::Q1],
        "table2" => vec![Query::Q2],
        _ => vec![Query::Q1, Query::Q2],
    };

    let mut all_rows = Vec::new();
    for q in queries {
        eprintln!("running {} over the 14-dataset suite...", q.table_name());
        let rows = run_table(q, workers);
        print!("{}", render_table(q, &rows));
        println!();
        all_rows.push((format!("{q:?}"), rows));
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(
            &all_rows
                .iter()
                .map(|(q, rows)| serde_json::json!({ "query": q, "rows": rows }))
                .collect::<Vec<_>>(),
        )
        .expect("rows serialize");
        let mut f = std::fs::File::create(&path).expect("open json output");
        f.write_all(json.as_bytes()).expect("write json output");
        eprintln!("wrote {path}");
    }
}
