//! Device-overhead probe: quick serial-vs-parallel kernel timings on the
//! largest evaluation graph (g3). The EXPERIMENTS.md discussion of the
//! sGPU column was derived from these numbers; run it on your own host to
//! see where the offload thresholds sit:
//!
//! ```text
//! cargo run --release -p cfpq-bench --bin devprobe
//! ```

use cfpq_core::relational::{solve_on_engine, FixpointSolver, Strategy};
use cfpq_grammar::cnf::CnfOptions;
use cfpq_graph::ontology::evaluation_suite;
use cfpq_matrix::{CsrMatrix, Device, ParSparseEngine, SparseEngine};
use std::time::Instant;

fn main() {
    let suite = evaluation_suite();
    let g3 = &suite.iter().find(|d| d.name == "g3").unwrap().graph;
    let q1 = cfpq_grammar::queries::query1()
        .to_wcnf(CnfOptions::default())
        .unwrap();

    let t = Instant::now();
    let idx = solve_on_engine(&SparseEngine, g3, &q1);
    println!("serial solve: {:?} ({} iters)", t.elapsed(), idx.iterations);

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let dev = Device::new(workers);
    let e = ParSparseEngine::new(dev.clone());
    let t = Instant::now();
    let idx = solve_on_engine(&e, g3, &q1);
    println!(
        "par({workers}) solve: {:?} ({} iters)",
        t.elapsed(),
        idx.iterations
    );

    let t = Instant::now();
    let idx = FixpointSolver::new(&e)
        .strategy(Strategy::Batched)
        .solve(g3, &q1);
    println!(
        "par({workers}) batched solve: {:?} ({} iters)",
        t.elapsed(),
        idx.iterations
    );

    let t = Instant::now();
    let idx = FixpointSolver::new(&e).solve(g3, &q1);
    println!(
        "par({workers}) masked-delta solve: {:?} ({} iters, {} products, {} skipped)",
        t.elapsed(),
        idx.iterations,
        idx.stats.products_computed,
        idx.stats.products_skipped
    );

    // Isolated big multiply: the final S matrix squared.
    let s = &idx.matrices[q1.start.index()];
    let t = Instant::now();
    for _ in 0..20 {
        let _ = s.multiply(s);
    }
    println!("serial 20x multiply nnz={}: {:?}", s.nnz(), t.elapsed());
    let t = Instant::now();
    for _ in 0..20 {
        let _ = s.multiply_on(s, &dev);
    }
    println!("par({workers})  20x multiply: {:?}", t.elapsed());

    // Pure dispatch overhead.
    let t = Instant::now();
    for _ in 0..1000 {
        let _ = dev.par_map_ranges(workers, |r| r.len());
    }
    println!("1000 empty dispatches: {:?}", t.elapsed());

    // union cost in the solve loop.
    let z = CsrMatrix::zeros(s.n());
    let t = Instant::now();
    for _ in 0..20 {
        let mut c = s.clone();
        c.union_in_place(&z);
    }
    println!("20x clone+union-with-zero: {:?}", t.elapsed());
}
