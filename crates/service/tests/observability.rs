//! End-to-end observability acceptance: the g3 query served through the
//! service under a [`SpanCollector`], with the full span hierarchy,
//! metrics exposition, and chrome://tracing export asserted — plus a
//! span-tree well-formedness check under the multi-threaded
//! linearizability workload and the stats-folding contract of the
//! registry failure counters.

use cfpq_grammar::{queries, Cfg};
use cfpq_graph::ontology;
use cfpq_matrix::SparseEngine;
use cfpq_obs::trace::check_well_formed;
use cfpq_obs::{validate_chrome_trace, Span, SpanCollector};
use cfpq_service::faults::{silence_injected_panics, FaultInjector, FaultPlan};
use cfpq_service::{CfpqService, ServiceConfig, ServiceError, Ticket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn attr<'a>(span: &'a Span, key: &str) -> Option<&'a cfpq_obs::AttrValue> {
    span.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
}

fn u64_attr(span: &Span, key: &str) -> Option<u64> {
    match attr(span, key) {
        Some(cfpq_obs::AttrValue::U64(v)) => Some(*v),
        _ => None,
    }
}

/// The acceptance test of the observability PR: the paper's Q1 on the
/// g3 graph (pizza ×8), served through the service with a collector
/// installed. Every layer must show up in one well-formed span tree:
///
/// * an `"epoch.publish"` span for the update,
/// * `"ticket"` spans carrying the wait-vs-run breakdown,
/// * ≥1 `"solve"` span (the cold closure),
/// * ≥1 `"sweep"` span with the per-nonterminal Δ-nnz attribute,
/// * ≥1 `"kernel"` span with nnz and repr attributes,
///
/// and the chrome://tracing export must round-trip through the format
/// checker.
#[test]
fn g3_query_produces_the_full_span_hierarchy() {
    let graph = ontology::dataset("pizza")
        .expect("bundled dataset")
        .to_graph()
        .repeat(8); // g3 of the paper's evaluation suite
    let grammar = queries::query1();

    let collector = Arc::new(SpanCollector::new());
    let service = CfpqService::with_observability(
        SparseEngine,
        &graph,
        ServiceConfig::new(2),
        collector.clone(),
    );
    let q = service.prepare(&grammar).unwrap();

    // A cold wave, one published epoch, a repaired wave.
    let fresh = graph.stats().n_nodes as u32;
    for wave in 0..2 {
        if wave == 1 {
            assert!(service.add_edges(&[(0, "subClassOf", fresh)]) > 0);
        }
        let tickets: Vec<Ticket> = (0..4)
            .map(|_| service.enqueue(q, vec![]).unwrap())
            .collect();
        for t in tickets {
            let answer = t.wait().unwrap();
            let trace = answer.trace.expect("instrumented service attaches traces");
            assert!(!trace.span.is_none());
            assert!(trace.batch_size >= 1);
        }
    }
    let metrics = service.metrics();
    drop(service); // joins workers; every span is closed

    let spans = collector.spans();
    check_well_formed(&spans).expect("span tree is well-formed");
    assert_eq!(collector.dropped(), 0, "nothing overflowed the ring");

    let named = |name: &str| spans.iter().filter(|s| s.name == name).collect::<Vec<_>>();
    assert_eq!(named("epoch.publish").len(), 1, "one publish span");
    let publish = named("epoch.publish")[0];
    assert_eq!(u64_attr(publish, "epoch"), Some(1));
    assert!(u64_attr(publish, "repairs").unwrap() >= 1);

    let tickets = named("ticket");
    assert_eq!(tickets.len(), 8, "one span per enqueued request");
    for t in &tickets {
        assert!(attr(t, "wait_us").is_some(), "ticket carries queue wait");
        assert!(attr(t, "run_us").is_some(), "ticket carries batch run");
        assert_eq!(
            attr(t, "outcome"),
            Some(&cfpq_obs::AttrValue::Str("ok")),
            "all tickets resolved cleanly"
        );
    }

    assert!(!named("solve").is_empty(), "cold solve recorded");
    let sweeps = named("sweep");
    assert!(!sweeps.is_empty(), "fixpoint sweeps recorded");
    assert!(
        sweeps.iter().any(|s| matches!(
            attr(s, "delta_nnz"),
            Some(cfpq_obs::AttrValue::Text(t)) if t.contains(':')
        )),
        "masked-delta sweeps carry the per-nonterminal delta-nnz breakdown"
    );
    let kernels = named("kernel");
    assert!(!kernels.is_empty(), "kernel launches recorded");
    assert!(
        kernels
            .iter()
            .any(|k| attr(k, "nnz").is_some() && attr(k, "repr").is_some()),
        "kernel spans carry nnz and repr"
    );

    // Every kernel span must sit under a solve span (possibly through
    // sweep/batch links) — spot-check the parent chain terminates at a
    // known root rather than dangling.
    let by_id: std::collections::HashMap<u64, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    for k in &kernels {
        let mut cur = *k;
        let mut lineage = Vec::new();
        while cur.parent != 0 {
            cur = by_id[&cur.parent];
            lineage.push(cur.name);
        }
        assert!(
            lineage.contains(&"solve"),
            "kernel span must descend from a solve span (got {lineage:?})"
        );
    }

    // The chrome://tracing export round-trips through the checker.
    let events = validate_chrome_trace(&collector.chrome_trace_json())
        .expect("chrome trace export is valid");
    assert_eq!(events, spans.len());

    // Metrics rode along: wait/run histograms saw every ticket, the
    // publish histogram saw the epoch.
    assert_eq!(metrics.histogram("cfpq_ticket_wait_us").count(), 8);
    assert_eq!(metrics.histogram("cfpq_ticket_run_us").count(), 8);
    assert_eq!(metrics.histogram("cfpq_epoch_publish_us").count(), 1);
    assert!(metrics.gauge("cfpq_queue_depth_max").get() >= 1);
}

/// Satellite of the linearizability suite: the same multi-threaded
/// readers-vs-writer workload, but with a collector installed — every
/// span the concurrent run produces must form a well-formed tree (no
/// duplicate ids, no dangling parents, children within parent bounds).
#[test]
fn concurrent_span_tree_is_well_formed() {
    let grammar = Cfg::parse("S -> a S b | a b | S S").unwrap();
    let base = cfpq_graph::generators::random_graph(8, 14, &["a", "b"], 0x5E4_71CE);
    let collector = Arc::new(SpanCollector::new());
    let service = CfpqService::with_observability(
        SparseEngine,
        &base,
        ServiceConfig::new(2),
        collector.clone(),
    );
    let rel = service.prepare(&grammar).unwrap();
    let sp = service.prepare_single_path(&grammar).unwrap();

    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        for r in 0..3 {
            let service = &service;
            let done = &done;
            s.spawn(move || {
                let mut round = r;
                while !done.load(Ordering::Relaxed) {
                    if round % 2 == 0 {
                        let t = service.enqueue(rel, vec![]).unwrap();
                        t.wait().unwrap();
                    } else {
                        let t = service.enqueue_single_path(sp, vec![]).unwrap();
                        t.wait().unwrap();
                    }
                    round += 1;
                }
            });
        }
        for b in 0..4u32 {
            // Fresh nodes make every batch genuinely new.
            let fresh = 100 + b;
            assert!(service.add_edges(&[(0, "a", fresh), (fresh, "b", 1)]) > 0);
        }
        done.store(true, Ordering::Relaxed);
    });
    drop(service);

    let spans = collector.spans();
    assert!(!spans.is_empty());
    check_well_formed(&spans).expect("concurrent span tree is well-formed");
    // Ticket spans start on caller threads and end on worker threads —
    // the cross-thread stitching must have recorded them all with an
    // outcome.
    for t in spans.iter().filter(|s| s.name == "ticket") {
        assert!(attr(t, "outcome").is_some());
    }
}

/// Satellite 2 contract: the registry counters are the single source of
/// truth for failures; `stats()` is a derived per-epoch view. Shed and
/// panic events must show up in both, and per-epoch attribution must sum
/// to the registry totals.
#[test]
fn failure_counters_fold_into_the_registry() {
    silence_injected_panics();
    let grammar = Cfg::parse("S -> a S b | a b").unwrap();
    let base = cfpq_graph::generators::random_graph(8, 14, &["a", "b"], 7);

    // Panic the first kernel launch: the cold solve of epoch 0 dies once,
    // then the retry succeeds.
    let injector = FaultInjector::new(SparseEngine, FaultPlan::panic_on([0]));
    let service =
        CfpqService::with_config(injector, &base, ServiceConfig::new(1).with_max_queued(1));
    let rel = service.prepare(&grammar).unwrap();

    let t = service.enqueue(rel, vec![]).unwrap();
    assert_eq!(t.wait(), Err(ServiceError::WorkerPanicked));
    let t = loop {
        // The queue bound is 1: retry around the worker's take window.
        match service.enqueue(rel, vec![]) {
            Ok(t) => break t,
            Err(ServiceError::Overloaded { .. }) => std::thread::yield_now(),
            Err(e) => panic!("unexpected enqueue error: {e}"),
        }
    };
    assert!(t.wait().is_ok(), "retry after the injected panic succeeds");

    let metrics = service.metrics();
    assert_eq!(metrics.counter("cfpq_worker_panics_total").get(), 1);

    // Publish an epoch, then shed a request against the new epoch by
    // overfilling the bounded queue from a blocked position: enqueue two
    // while the single worker is idle is racy, so force it by shutting
    // the queue down to depth-1 and enqueueing twice back-to-back.
    assert!(service.add_edges(&[(0, "a", 50)]) > 0);
    let mut shed = 0;
    let mut held: Vec<Ticket> = Vec::new();
    for _ in 0..64 {
        match service.enqueue(rel, vec![]) {
            Ok(t) => held.push(t),
            Err(ServiceError::Overloaded { .. }) => {
                shed += 1;
                break;
            }
            Err(e) => panic!("unexpected enqueue error: {e}"),
        }
    }
    for t in held {
        let _ = t.wait();
    }
    assert_eq!(
        metrics.counter("cfpq_requests_shed_total").get(),
        shed,
        "the registry counter is the source of truth"
    );

    // stats() must agree in total with the registry, with the panic
    // attributed to epoch 0 (it happened before the publish).
    let stats = service.stats();
    assert_eq!(stats.len(), 2);
    let total_panics: u64 = stats.iter().map(|s| s.worker_panics).sum();
    let total_shed: u64 = stats.iter().map(|s| s.requests_shed).sum();
    assert_eq!(total_panics, 1);
    assert_eq!(total_shed, shed);
    assert_eq!(stats[0].worker_panics, 1, "panic charged to epoch 0");
    if shed > 0 {
        assert_eq!(stats[1].requests_shed, shed, "shed charged to epoch 1");
    }
}
