//! Fixed-seed linearizability suite for the concurrent query service.
//!
//! N reader threads evaluate prepared queries — relational,
//! single-path, *and* paged all-path enumeration, through direct
//! snapshot reads *and* scheduler tickets — while a writer applies a
//! fixed sequence of `add_edges` batches. Every answer the service
//! hands out is tagged with the epoch it was computed against, and
//! epochs are totally ordered (writers are serialized), so
//! linearizability reduces to: **every observation must equal the
//! sequential answer on the graph state of its epoch**. The suite
//! replays the epoch sequence after the threads join and checks each
//! recorded `(epoch, pairs)` observation against a from-scratch solve of
//! that epoch's graph — and each `(epoch, pages)` paths observation
//! against a from-scratch enumeration — on all four engines.
//!
//! Inputs are generated from a fixed RNG seed (same scheme as the other
//! fixed-seed suites), so CI replays identical interleaving *inputs* on
//! every run; the thread count is tunable via `CFPQ_LIN_THREADS` (the CI
//! stress job bumps it).

use cfpq_core::all_paths::{PageRequest, PathEnumerator};
use cfpq_core::relational::FixpointSolver;
use cfpq_grammar::cnf::CnfOptions;
use cfpq_grammar::{Cfg, Wcnf};
use cfpq_graph::{generators, Graph};
use cfpq_matrix::{DenseEngine, Device, ParDenseEngine, ParSparseEngine, SparseEngine};
use cfpq_service::{CfpqService, PairPaths, ServiceConfig, ServiceEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};

/// Base RNG seed shared with the workspace's other fixed-seed suites.
const RNG_SEED: u64 = 0x5E4_71CE;

/// Reader threads per engine run (the CI stress job raises this).
fn n_readers() -> usize {
    std::env::var("CFPQ_LIN_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// One generated workload: a base graph plus a fixed sequence of update
/// batches (every batch inserts at least one genuinely new edge, so each
/// publishes exactly one epoch).
struct Workload {
    base: Graph,
    batches: Vec<Vec<(u32, String, u32)>>,
}

/// Generates the workload from the fixed seed: a sparse random base
/// graph over labels {a, b} and batches that mix new a/b edges, an edge
/// on a label the grammar never mentions, and an edge naming an unseen
/// node id (exercising node-universe growth mid-service).
fn workload(seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 8usize;
    let base = generators::random_graph(n, 14, &["a", "b"], rng.gen_range(0u64..1 << 32));
    let mut batches: Vec<Vec<(u32, String, u32)>> = Vec::new();
    let mut have: std::collections::HashSet<(u32, String, u32)> = base
        .edges()
        .iter()
        .map(|e| (e.from, base.label_name(e.label).to_owned(), e.to))
        .collect();
    for b in 0..5 {
        let mut batch: Vec<(u32, String, u32)> = Vec::new();
        let batch_size = rng.gen_range(1usize..4);
        while batch.len() < batch_size {
            let label = if rng.gen_bool(0.5) { "a" } else { "b" };
            let edge = (
                rng.gen_range(0u32..n as u32),
                label.to_owned(),
                rng.gen_range(0u32..n as u32),
            );
            if have.insert(edge.clone()) {
                batch.push(edge);
            }
        }
        if b == 2 {
            // A label outside the query alphabet: publishes an epoch
            // whose answers must be unchanged.
            batch.push((0, "padding".to_owned(), 1));
        }
        if b == 3 {
            // An unseen node id: the epoch builder must widen every
            // cached closure.
            batch.push((n as u32 - 1, "b".to_owned(), n as u32 + 2));
        }
        batches.push(batch);
    }
    Workload { base, batches }
}

/// The fixed page bounds every paths-ticket reader uses (small enough
/// to stay far under the default service quota, large enough that pages
/// are usually exhausted).
fn path_req() -> PageRequest {
    PageRequest {
        offset: 0,
        limit: 8,
        max_len: 8,
    }
}

/// The sequential all-path reference: for each epoch, a from-scratch
/// enumeration of every start pair on that epoch's replayed graph. The
/// replay interns labels in the same first-appearance order as the
/// service's evolving index, so pages compare by raw label id.
fn reference_paths(workload: &Workload, wcnf: &Wcnf) -> Vec<Vec<PairPaths>> {
    let mut graph = workload.base.clone();
    let mut expected = Vec::new();
    let mut push_epoch = |graph: &Graph| {
        let rel = FixpointSolver::new(&SparseEngine).solve(graph, wcnf);
        let mut enumerator = PathEnumerator::from_graph(graph, wcnf);
        expected.push(
            rel.pairs(wcnf.start)
                .into_iter()
                .map(|(i, j)| {
                    let page = enumerator.page(&rel, wcnf.start, i, j, path_req());
                    PairPaths {
                        from: i,
                        to: j,
                        paths: page.paths,
                        exhausted: page.exhausted,
                    }
                })
                .collect(),
        );
    };
    push_epoch(&graph);
    for batch in &workload.batches {
        for (u, label, v) in batch {
            graph.add_edge_named(*u, label, *v);
        }
        push_epoch(&graph);
    }
    expected
}

/// The sequential reference: graph states epoch by epoch, solved from
/// scratch.
fn reference_answers(workload: &Workload, wcnf: &Wcnf) -> Vec<Vec<(u32, u32)>> {
    let mut graph = workload.base.clone();
    let mut expected = vec![FixpointSolver::new(&SparseEngine)
        .solve(&graph, wcnf)
        .pairs(wcnf.start)];
    for batch in &workload.batches {
        for (u, label, v) in batch {
            graph.add_edge_named(*u, label, *v);
        }
        expected.push(
            FixpointSolver::new(&SparseEngine)
                .solve(&graph, wcnf)
                .pairs(wcnf.start),
        );
    }
    expected
}

/// Runs the concurrent scenario on one engine and checks every recorded
/// observation against its epoch's sequential answer.
fn check_engine<E: ServiceEngine>(engine: E, workload: &Workload, grammar: &Cfg, wcnf: &Wcnf) {
    let expected = reference_answers(workload, wcnf);
    let expected_paths = reference_paths(workload, wcnf);
    let service = CfpqService::with_config(engine, &workload.base, ServiceConfig::new(2));
    let rel = service.prepare(grammar).unwrap();
    let sp = service.prepare_single_path(grammar).unwrap();

    // (epoch, pairs, what) observations from every reader, plus
    // (epoch, pages) observations from the paths-ticket rounds.
    type Obs = (u64, Vec<(u32, u32)>, &'static str);
    type PathObs = (u64, Vec<PairPaths>);
    let done = AtomicBool::new(false);
    let (observations, path_observations): (Vec<Obs>, Vec<PathObs>) = std::thread::scope(|s| {
        let readers: Vec<_> = (0..n_readers())
            .map(|r| {
                let service = &service;
                let done = &done;
                s.spawn(move || {
                    let mut obs: Vec<Obs> = Vec::new();
                    let mut path_obs: Vec<PathObs> = Vec::new();
                    let mut round = 0usize;
                    // Keep reading until the writer finished, then once
                    // more so the final epoch is always observed.
                    let mut after_done = 0;
                    while after_done < 2 {
                        if done.load(Ordering::Relaxed) {
                            after_done += 1;
                        }
                        match (round + r) % 4 {
                            0 => {
                                let snap = service.snapshot();
                                obs.push((
                                    snap.epoch(),
                                    snap.evaluate(rel).start_pairs().to_vec(),
                                    "snapshot",
                                ));
                            }
                            1 => {
                                let t = service.enqueue(rel, vec![]);
                                let a = t.wait();
                                obs.push((a.epoch, a.pairs, "ticket"));
                            }
                            2 => {
                                let snap = service.snapshot();
                                let idx = snap.evaluate_single_path(sp);
                                obs.push((snap.epoch(), idx.pairs(wcnf.start), "single-path"));
                            }
                            _ => {
                                let t = service.enqueue_paths(rel, vec![], path_req());
                                let a = t.wait();
                                path_obs.push((
                                    a.epoch,
                                    a.paths.expect("paths ticket answers with pages"),
                                ));
                            }
                        }
                        round += 1;
                    }
                    (obs, path_obs)
                })
            })
            .collect();

        // The writer: apply the batches in order, interleaved with the
        // readers above.
        for batch in &workload.batches {
            let edges: Vec<(u32, &str, u32)> =
                batch.iter().map(|(u, l, v)| (*u, l.as_str(), *v)).collect();
            let inserted = service.add_edges(&edges);
            assert!(inserted > 0, "every generated batch publishes an epoch");
        }
        done.store(true, Ordering::Relaxed);

        let mut obs = Vec::new();
        let mut path_obs = Vec::new();
        for r in readers {
            let (o, p) = r.join().expect("reader panicked");
            obs.extend(o);
            path_obs.extend(p);
        }
        (obs, path_obs)
    });

    assert_eq!(
        service.current_epoch(),
        workload.batches.len() as u64,
        "one epoch per batch"
    );
    assert!(!observations.is_empty());
    let mut seen_epochs: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for (epoch, pairs, what) in observations {
        seen_epochs.insert(epoch);
        assert_eq!(
            &pairs, &expected[epoch as usize],
            "{what} observation at epoch {epoch} diverges from the sequential execution"
        );
    }
    // Every paths ticket must have streamed exactly the pages a
    // sequential enumeration of its epoch's graph streams: answered
    // within one epoch (never mixing two), deterministically ordered,
    // truncation flags included.
    for (epoch, pages) in path_observations {
        seen_epochs.insert(epoch);
        assert_eq!(
            &pages, &expected_paths[epoch as usize],
            "paths observation at epoch {epoch} diverges from the sequential enumeration"
        );
    }
    // The post-writer read guarantees the final state was observed.
    assert!(seen_epochs.contains(&(workload.batches.len() as u64)));
}

#[test]
fn concurrent_observations_match_a_sequential_execution() {
    let grammar = Cfg::parse("S -> a S b | a b | S S").unwrap();
    let wcnf = grammar.to_wcnf(CnfOptions::default()).unwrap();
    for case in 0..3u64 {
        let w = workload(RNG_SEED.wrapping_add(case));
        check_engine(SparseEngine, &w, &grammar, &wcnf);
        check_engine(DenseEngine, &w, &grammar, &wcnf);
        check_engine(ParDenseEngine::new(Device::new(2)), &w, &grammar, &wcnf);
        check_engine(ParSparseEngine::new(Device::new(2)), &w, &grammar, &wcnf);
    }
}

#[test]
fn ticket_epochs_are_monotone_per_thread() {
    // A single caller's tickets must never observe epochs going
    // backwards: the scheduler serves each batch against the epoch
    // current at service time, and epochs only advance.
    let grammar = Cfg::parse("S -> a S b | a b").unwrap();
    let w = workload(RNG_SEED ^ 0xABCD);
    let service = CfpqService::with_config(SparseEngine, &w.base, ServiceConfig::new(2));
    let rel = service.prepare(&grammar).unwrap();
    let mut last = 0u64;
    for batch in &w.batches {
        let t = service.enqueue(rel, vec![]);
        let a = t.wait();
        assert!(a.epoch >= last, "epoch went backwards");
        last = a.epoch;
        let edges: Vec<(u32, &str, u32)> =
            batch.iter().map(|(u, l, v)| (*u, l.as_str(), *v)).collect();
        service.add_edges(&edges);
    }
    let final_answer = service.enqueue(rel, vec![]).wait();
    assert_eq!(final_answer.epoch, w.batches.len() as u64);
}
