//! Fixed-seed linearizability suite for the concurrent query service.
//!
//! N reader threads evaluate prepared queries — relational,
//! single-path, NFA-compiled regular path queries, *and* paged
//! all-path enumeration, through direct snapshot reads *and* scheduler
//! tickets — while a writer applies a
//! fixed sequence of `add_edges` batches. Every answer the service
//! hands out is tagged with the epoch it was computed against, and
//! epochs are totally ordered (writers are serialized), so
//! linearizability reduces to: **every observation must equal the
//! sequential answer on the graph state of its epoch**. The suite
//! replays the epoch sequence after the threads join and checks each
//! recorded `(epoch, pairs)` observation against a from-scratch solve of
//! that epoch's graph — and each `(epoch, pages)` paths observation
//! against a from-scratch enumeration — on all four engines.
//!
//! Inputs are generated from a fixed RNG seed (same scheme as the other
//! fixed-seed suites), so CI replays identical interleaving *inputs* on
//! every run; the thread count is tunable via `CFPQ_LIN_THREADS` (the CI
//! stress job bumps it).

use cfpq_core::all_paths::{PageRequest, PathEnumerator};
use cfpq_core::regular::Nfa;
use cfpq_core::relational::FixpointSolver;
use cfpq_core::solve_regular;
use cfpq_grammar::cnf::CnfOptions;
use cfpq_grammar::{Cfg, Wcnf};
use cfpq_graph::{generators, Graph};
use cfpq_matrix::{
    AdaptiveEngine, DenseEngine, Device, ParDenseEngine, ParSparseEngine, SparseEngine, TiledEngine,
};
use cfpq_service::faults::{silence_injected_panics, FaultInjector, FaultPlan};
use cfpq_service::{Backoff, CfpqService, PairPaths, ServiceConfig, ServiceEngine, ServiceError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Base RNG seed shared with the workspace's other fixed-seed suites.
const RNG_SEED: u64 = 0x5E4_71CE;

/// Reader threads per engine run (the CI stress job raises this).
fn n_readers() -> usize {
    std::env::var("CFPQ_LIN_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// One generated workload: a base graph plus a fixed sequence of update
/// batches (every batch inserts at least one genuinely new edge, so each
/// publishes exactly one epoch).
struct Workload {
    base: Graph,
    batches: Vec<Vec<(u32, String, u32)>>,
}

/// Generates the workload from the fixed seed: a sparse random base
/// graph over labels {a, b} and batches that mix new a/b edges, an edge
/// on a label the grammar never mentions, and an edge naming an unseen
/// node id (exercising node-universe growth mid-service).
fn workload(seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 8usize;
    let base = generators::random_graph(n, 14, &["a", "b"], rng.gen_range(0u64..1 << 32));
    let mut batches: Vec<Vec<(u32, String, u32)>> = Vec::new();
    let mut have: std::collections::HashSet<(u32, String, u32)> = base
        .edges()
        .iter()
        .map(|e| (e.from, base.label_name(e.label).to_owned(), e.to))
        .collect();
    for b in 0..5 {
        let mut batch: Vec<(u32, String, u32)> = Vec::new();
        let batch_size = rng.gen_range(1usize..4);
        while batch.len() < batch_size {
            let label = if rng.gen_bool(0.5) { "a" } else { "b" };
            let edge = (
                rng.gen_range(0u32..n as u32),
                label.to_owned(),
                rng.gen_range(0u32..n as u32),
            );
            if have.insert(edge.clone()) {
                batch.push(edge);
            }
        }
        if b == 2 {
            // A label outside the query alphabet: publishes an epoch
            // whose answers must be unchanged.
            batch.push((0, "padding".to_owned(), 1));
        }
        if b == 3 {
            // An unseen node id: the epoch builder must widen every
            // cached closure.
            batch.push((n as u32 - 1, "b".to_owned(), n as u32 + 2));
        }
        batches.push(batch);
    }
    Workload { base, batches }
}

/// The fixed page bounds every paths-ticket reader uses (small enough
/// to stay far under the default service quota, large enough that pages
/// are usually exhausted).
fn path_req() -> PageRequest {
    PageRequest {
        offset: 0,
        limit: 8,
        max_len: 8,
    }
}

/// The sequential all-path reference: for each epoch, a from-scratch
/// enumeration of every start pair on that epoch's replayed graph. The
/// replay interns labels in the same first-appearance order as the
/// service's evolving index, so pages compare by raw label id.
fn reference_paths(workload: &Workload, wcnf: &Wcnf) -> Vec<Vec<PairPaths>> {
    let mut graph = workload.base.clone();
    let mut expected = Vec::new();
    let mut push_epoch = |graph: &Graph| {
        let rel = FixpointSolver::new(&SparseEngine).solve(graph, wcnf);
        let mut enumerator = PathEnumerator::from_graph(graph, wcnf);
        expected.push(
            rel.pairs(wcnf.start)
                .into_iter()
                .map(|(i, j)| {
                    let page = enumerator.page(&rel, wcnf.start, i, j, path_req());
                    PairPaths {
                        from: i,
                        to: j,
                        paths: page.paths,
                        exhausted: page.exhausted,
                    }
                })
                .collect(),
        );
    };
    push_epoch(&graph);
    for batch in &workload.batches {
        for (u, label, v) in batch {
            graph.add_edge_named(*u, label, *v);
        }
        push_epoch(&graph);
    }
    expected
}

/// The sequential RPQ reference: each epoch's graph evaluated by the
/// standalone product-graph oracle (independent of the compiled
/// RSM/Kronecker pipeline the service actually runs).
fn reference_rpq(workload: &Workload, nfa: &Nfa) -> Vec<Vec<(u32, u32)>> {
    let mut graph = workload.base.clone();
    let mut expected = vec![solve_regular(&SparseEngine, &graph, nfa).pairs()];
    for batch in &workload.batches {
        for (u, label, v) in batch {
            graph.add_edge_named(*u, label, *v);
        }
        expected.push(solve_regular(&SparseEngine, &graph, nfa).pairs());
    }
    expected
}

/// The sequential reference: graph states epoch by epoch, solved from
/// scratch.
fn reference_answers(workload: &Workload, wcnf: &Wcnf) -> Vec<Vec<(u32, u32)>> {
    let mut graph = workload.base.clone();
    let mut expected = vec![FixpointSolver::new(&SparseEngine)
        .solve(&graph, wcnf)
        .pairs(wcnf.start)];
    for batch in &workload.batches {
        for (u, label, v) in batch {
            graph.add_edge_named(*u, label, *v);
        }
        expected.push(
            FixpointSolver::new(&SparseEngine)
                .solve(&graph, wcnf)
                .pairs(wcnf.start),
        );
    }
    expected
}

/// Runs the concurrent scenario on one engine and checks every recorded
/// observation against its epoch's sequential answer.
fn check_engine<E: ServiceEngine>(engine: E, workload: &Workload, grammar: &Cfg, wcnf: &Wcnf) {
    let expected = reference_answers(workload, wcnf);
    let expected_paths = reference_paths(workload, wcnf);
    // The RPQ rides the same scheduler via the compiled RSM pipeline; the
    // reference is the independent product-graph oracle, replayed per epoch.
    let nfa = Nfa::star_then("a", "b");
    let expected_rpq = reference_rpq(workload, &nfa);
    let service = CfpqService::with_config(engine, &workload.base, ServiceConfig::new(2));
    let rel = service.prepare(grammar).unwrap();
    let sp = service.prepare_single_path(grammar).unwrap();
    let rpq = service.prepare_regular(&nfa);

    // (epoch, pairs, what) observations from every reader, plus
    // (epoch, pages) observations from the paths-ticket rounds and
    // (epoch, pairs) observations from the RPQ-ticket rounds.
    type Obs = (u64, Vec<(u32, u32)>, &'static str);
    type PathObs = (u64, Vec<PairPaths>);
    type RpqObs = (u64, Vec<(u32, u32)>);
    let done = AtomicBool::new(false);
    let (observations, path_observations, rpq_observations): (Vec<Obs>, Vec<PathObs>, Vec<RpqObs>) =
        std::thread::scope(|s| {
            let readers: Vec<_> = (0..n_readers())
                .map(|r| {
                    let service = &service;
                    let done = &done;
                    s.spawn(move || {
                        let mut obs: Vec<Obs> = Vec::new();
                        let mut path_obs: Vec<PathObs> = Vec::new();
                        let mut rpq_obs: Vec<RpqObs> = Vec::new();
                        let mut round = 0usize;
                        // Keep reading until the writer finished, then once
                        // more so the final epoch is always observed — and
                        // always complete one full rotation so every query
                        // form (including the RPQ arm) is exercised even
                        // when the writer outpaces the readers.
                        let mut after_done = 0;
                        while after_done < 2 || round < 5 {
                            if done.load(Ordering::Relaxed) {
                                after_done += 1;
                            }
                            match (round + r) % 5 {
                                0 => {
                                    let snap = service.snapshot();
                                    obs.push((
                                        snap.epoch(),
                                        snap.evaluate(rel).start_pairs().to_vec(),
                                        "snapshot",
                                    ));
                                }
                                1 => {
                                    let t = service.enqueue(rel, vec![]).unwrap();
                                    let a = t.wait().unwrap();
                                    obs.push((a.epoch, a.pairs, "ticket"));
                                }
                                2 => {
                                    let snap = service.snapshot();
                                    let idx = snap.evaluate_single_path(sp);
                                    obs.push((snap.epoch(), idx.pairs(wcnf.start), "single-path"));
                                }
                                3 => {
                                    let t = service.enqueue_paths(rel, vec![], path_req()).unwrap();
                                    let a = t.wait().unwrap();
                                    path_obs.push((
                                        a.epoch,
                                        a.paths.expect("paths ticket answers with pages"),
                                    ));
                                }
                                _ => {
                                    let t = service.enqueue(rpq, vec![]).unwrap();
                                    let a = t.wait().unwrap();
                                    rpq_obs.push((a.epoch, a.pairs));
                                }
                            }
                            round += 1;
                        }
                        (obs, path_obs, rpq_obs)
                    })
                })
                .collect();

            // The writer: apply the batches in order, interleaved with the
            // readers above.
            for batch in &workload.batches {
                let edges: Vec<(u32, &str, u32)> =
                    batch.iter().map(|(u, l, v)| (*u, l.as_str(), *v)).collect();
                let inserted = service.add_edges(&edges);
                assert!(inserted > 0, "every generated batch publishes an epoch");
            }
            done.store(true, Ordering::Relaxed);

            let mut obs = Vec::new();
            let mut path_obs = Vec::new();
            let mut rpq_obs = Vec::new();
            for r in readers {
                let (o, p, q) = r.join().expect("reader panicked");
                obs.extend(o);
                path_obs.extend(p);
                rpq_obs.extend(q);
            }
            (obs, path_obs, rpq_obs)
        });

    assert_eq!(
        service.current_epoch(),
        workload.batches.len() as u64,
        "one epoch per batch"
    );
    assert!(!observations.is_empty());
    let mut seen_epochs: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for (epoch, pairs, what) in observations {
        seen_epochs.insert(epoch);
        assert_eq!(
            &pairs, &expected[epoch as usize],
            "{what} observation at epoch {epoch} diverges from the sequential execution"
        );
    }
    // Every paths ticket must have streamed exactly the pages a
    // sequential enumeration of its epoch's graph streams: answered
    // within one epoch (never mixing two), deterministically ordered,
    // truncation flags included.
    for (epoch, pages) in path_observations {
        seen_epochs.insert(epoch);
        assert_eq!(
            &pages, &expected_paths[epoch as usize],
            "paths observation at epoch {epoch} diverges from the sequential enumeration"
        );
    }
    // Every RPQ ticket — evaluated through the compiled RSM pipeline,
    // incrementally repaired across epochs — must match the standalone
    // product-graph oracle's answer on its epoch's graph.
    assert!(!rpq_observations.is_empty());
    for (epoch, pairs) in rpq_observations {
        seen_epochs.insert(epoch);
        assert_eq!(
            &pairs, &expected_rpq[epoch as usize],
            "rpq observation at epoch {epoch} diverges from the product-graph oracle"
        );
    }
    // The post-writer read guarantees the final state was observed.
    assert!(seen_epochs.contains(&(workload.batches.len() as u64)));
}

#[test]
fn concurrent_observations_match_a_sequential_execution() {
    let grammar = Cfg::parse("S -> a S b | a b | S S").unwrap();
    let wcnf = grammar.to_wcnf(CnfOptions::default()).unwrap();
    for case in 0..3u64 {
        let w = workload(RNG_SEED.wrapping_add(case));
        check_engine(SparseEngine, &w, &grammar, &wcnf);
        check_engine(DenseEngine, &w, &grammar, &wcnf);
        check_engine(ParDenseEngine::new(Device::new(2)), &w, &grammar, &wcnf);
        check_engine(ParSparseEngine::new(Device::new(2)), &w, &grammar, &wcnf);
        check_engine(TiledEngine::new(Device::new(2)), &w, &grammar, &wcnf);
        check_engine(AdaptiveEngine::new(Device::new(2)), &w, &grammar, &wcnf);
    }
}

/// The chaos variant: the same fixed-seed workload, served through a
/// [`FaultInjector`] that panics workers at scheduled kernel launches,
/// under a queue bound small enough that overload shedding fires
/// mid-run, interleaved with the writer's `add_edges` batches (the
/// writer retries batches whose repair a fault interrupts). The
/// linearizability bar does not move: every *surviving* answer must
/// equal the sequential answer of its epoch, every ticket must resolve
/// within a bounded wait (zero hung waits), panics must be accounted
/// exactly (injected = caught by the writer + isolated in workers =
/// workers respawned), and the post-fault final epoch must match the
/// sequential execution.
#[test]
fn chaos_observations_match_a_sequential_execution() {
    silence_injected_panics();
    const LONG: Duration = Duration::from_secs(30);
    let grammar = Cfg::parse("S -> a S b | a b | S S").unwrap();
    let wcnf = grammar.to_wcnf(CnfOptions::default()).unwrap();
    let w = workload(RNG_SEED.wrapping_add(7));
    let expected = reference_answers(&w, &wcnf);

    // Ops 2/11/23 land inside the epoch-0 cold solves (served by
    // workers) or the first repairs (run by the writer) — both recovery
    // paths get exercised on every run; the stall keeps cold solves
    // slow enough that the forced-overload window below is reliable.
    let injector = FaultInjector::new(
        SparseEngine,
        FaultPlan::panic_on([2, 11, 23]).with_delay_every(2, Duration::from_millis(5)),
    );
    let service = CfpqService::with_config(
        injector.clone(),
        &w.base,
        ServiceConfig::new(2).with_max_queued(4),
    );
    let rel = service.prepare(&grammar).unwrap();
    let sp = service.prepare_single_path(&grammar).unwrap();

    let done = AtomicBool::new(false);
    let (observations, writer_caught, sheds) = std::thread::scope(|s| {
        let readers: Vec<_> = (0..n_readers())
            .map(|r| {
                let service = &service;
                let done = &done;
                s.spawn(move || {
                    let mut backoff = Backoff::new(RNG_SEED ^ r as u64);
                    type Observation = (u64, Vec<(u32, u32)>, &'static str);
                    let mut obs: Vec<Observation> = Vec::new();
                    let mut round = 0usize;
                    let mut after_done = 0;
                    while after_done < 2 {
                        if done.load(Ordering::Relaxed) {
                            after_done += 1;
                        }
                        // Retry the request until it survives: shed load
                        // backs off, a panicked batch re-enqueues (the
                        // interrupted solve retries on the same epoch
                        // cell), anything else is a contract violation.
                        loop {
                            let enqueued = if round.is_multiple_of(2) {
                                service.enqueue(rel, vec![]).map(|t| (t, "ticket"))
                            } else {
                                service.enqueue_single_path(sp, vec![]).map(|t| (t, "sp"))
                            };
                            match enqueued {
                                Ok((t, what)) => {
                                    match t.wait_timeout(LONG).expect("ticket hung past bound") {
                                        Ok(a) => {
                                            backoff.reset();
                                            obs.push((a.epoch, a.pairs, what));
                                            break;
                                        }
                                        Err(ServiceError::WorkerPanicked) => continue,
                                        Err(e) => panic!("unexpected ticket error: {e}"),
                                    }
                                }
                                Err(ServiceError::Overloaded { retry_after, .. }) => {
                                    std::thread::sleep(retry_after.min(backoff.next_delay()));
                                }
                                Err(e) => panic!("unexpected enqueue error: {e}"),
                            }
                        }
                        round += 1;
                    }
                    obs
                })
            })
            .collect();

        // The writer: apply every batch (retrying when an injected
        // fault interrupts the repair — the failed publish must leave
        // the old epoch serving), and force an overload window halfway
        // through by pinning both workers on cold solves of fresh
        // queries while bursting past the queue bound.
        let mut writer_caught = 0u64;
        let mut sheds = 0u64;
        let mut burst_tickets = Vec::new();
        for (b, batch) in w.batches.iter().enumerate() {
            let edges: Vec<(u32, &str, u32)> =
                batch.iter().map(|(u, l, v)| (*u, l.as_str(), *v)).collect();
            loop {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    service.add_edges(&edges)
                })) {
                    Ok(inserted) => {
                        assert!(inserted > 0, "every generated batch publishes an epoch");
                        break;
                    }
                    Err(_) => writer_caught += 1,
                }
            }
            if b == 2 {
                // Blockers: two fresh queries, cold in this epoch, one
                // per worker queue — their stalled solves hold both
                // workers long enough for the burst to hit the bound.
                let blockers: Vec<_> = (0..2)
                    .map(|_| {
                        let q = service.prepare(&grammar).unwrap();
                        service.enqueue(q, vec![]).unwrap()
                    })
                    .collect();
                std::thread::sleep(Duration::from_millis(10));
                for _ in 0..64 {
                    match service.enqueue(rel, vec![]) {
                        Ok(t) => burst_tickets.push(t),
                        Err(ServiceError::Overloaded { retry_after, .. }) => {
                            assert!(retry_after > Duration::ZERO);
                            sheds += 1;
                        }
                        Err(e) => panic!("unexpected burst error: {e}"),
                    }
                }
                for t in blockers {
                    // A blocker may absorb a scheduled panic; either
                    // way it resolves within the bound.
                    let outcome = t.wait_timeout(LONG).expect("blocker hung past bound");
                    assert!(matches!(outcome, Ok(_) | Err(ServiceError::WorkerPanicked)));
                }
            }
        }
        done.store(true, Ordering::Relaxed);

        let mut obs = Vec::new();
        for r in readers {
            obs.extend(r.join().expect("reader panicked"));
        }
        for t in burst_tickets {
            // A burst batch may land on an epoch whose rel closure was
            // never demanded (so its serve is a cold solve) and absorb
            // a scheduled panic — retry it like any other client.
            let mut ticket = t;
            let a = loop {
                match ticket
                    .wait_timeout(LONG)
                    .expect("burst ticket hung past bound")
                {
                    Ok(a) => break a,
                    Err(ServiceError::WorkerPanicked) => {
                        ticket = service.enqueue(rel, vec![]).unwrap();
                    }
                    Err(e) => panic!("unexpected burst outcome: {e}"),
                }
            };
            obs.push((a.epoch, a.pairs, "burst"));
        }
        (obs, writer_caught, sheds)
    });

    // Linearizability under faults: every surviving answer equals the
    // sequential answer of its epoch.
    assert!(!observations.is_empty());
    for (epoch, pairs, what) in &observations {
        assert_eq!(
            pairs, &expected[*epoch as usize],
            "{what} observation at epoch {epoch} diverges from the sequential execution"
        );
    }
    assert_eq!(service.current_epoch(), w.batches.len() as u64);
    let final_answer = service.enqueue(rel, vec![]).unwrap().wait().unwrap();
    assert_eq!(final_answer.pairs, *expected.last().unwrap());

    // Fault accounting: the whole schedule fired, and every injected
    // panic was either caught by the writer's retry loop or isolated
    // into a worker batch (and that worker respawned).
    assert_eq!(injector.panics_injected(), 3, "the schedule fired fully");
    let total =
        |f: fn(&cfpq_service::ServiceStats) -> u64| -> u64 { service.stats().iter().map(f).sum() };
    assert_eq!(writer_caught + total(|s| s.worker_panics), 3);
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while total(|s| s.worker_restarts) < total(|s| s.worker_panics) {
        assert!(
            std::time::Instant::now() < deadline,
            "supervisors must respawn panicked workers promptly"
        );
        std::thread::yield_now();
    }
    assert_eq!(total(|s| s.worker_restarts), total(|s| s.worker_panics));
    // The forced-overload window shed load (readers also shed under the
    // tight bound; the burst guarantees at least one).
    assert!(sheds >= 1, "the burst must overrun the queue bound");
    assert!(total(|s| s.requests_shed) >= sheds);
}

#[test]
fn ticket_epochs_are_monotone_per_thread() {
    // A single caller's tickets must never observe epochs going
    // backwards: the scheduler serves each batch against the epoch
    // current at service time, and epochs only advance.
    let grammar = Cfg::parse("S -> a S b | a b").unwrap();
    let w = workload(RNG_SEED ^ 0xABCD);
    let service = CfpqService::with_config(SparseEngine, &w.base, ServiceConfig::new(2));
    let rel = service.prepare(&grammar).unwrap();
    let mut last = 0u64;
    for batch in &w.batches {
        let t = service.enqueue(rel, vec![]).unwrap();
        let a = t.wait().unwrap();
        assert!(a.epoch >= last, "epoch went backwards");
        last = a.epoch;
        let edges: Vec<(u32, &str, u32)> =
            batch.iter().map(|(u, l, v)| (*u, l.as_str(), *v)).collect();
        service.add_edges(&edges);
    }
    let final_answer = service.enqueue(rel, vec![]).unwrap().wait().unwrap();
    assert_eq!(final_answer.epoch, w.batches.len() as u64);
}
