//! Deterministic chaos suite: drives the service through scheduled
//! worker panics, forced overload, deadline expiry, stalled shutdown,
//! and interrupted epoch publishes — on all four engines — and asserts
//! the failure contract exactly: every ticket resolves to an answer or
//! a typed error within a bounded wait (zero hung waits), the service
//! keeps serving after every fault, and post-fault epochs stay
//! byte-identical to a sequential execution.
//!
//! Faults come from [`FaultInjector`] schedules, not sleeps-and-hope:
//! the injector panics (or stalls) at fixed kernel-launch indices of a
//! global operation counter, so each scenario replays the same faults
//! at the same places on every run.

use cfpq_core::query::{solve, Backend};
use cfpq_graph::{generators, Graph};
use cfpq_matrix::{
    AdaptiveEngine, DenseEngine, Device, ParDenseEngine, ParSparseEngine, SparseEngine, TiledEngine,
};
use cfpq_service::faults::{silence_injected_panics, FaultInjector, FaultPlan};
use cfpq_service::{CfpqService, ServiceConfig, ServiceEngine, ServiceError, ServiceStats, Ticket};
use std::time::{Duration, Instant};

/// Hang detector: every wait in this suite is bounded by this.
const LONG: Duration = Duration::from_secs(30);

fn wait_bounded(t: Ticket) -> Result<cfpq_service::TicketAnswer, ServiceError> {
    t.wait_timeout(LONG).expect("ticket hung past the bound")
}

fn total<E: ServiceEngine>(service: &CfpqService<E>, f: fn(&ServiceStats) -> u64) -> u64 {
    service.stats().iter().map(f).sum()
}

/// Supervisors respawn asynchronously (the restart is counted after the
/// batch's tickets are already resolved); give them a moment.
fn await_restarts<E: ServiceEngine>(service: &CfpqService<E>, expect: u64) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while total(service, |s| s.worker_restarts) < expect {
        assert!(
            Instant::now() < deadline,
            "supervisors must respawn panicked workers promptly"
        );
        std::thread::yield_now();
    }
    assert_eq!(total(service, |s| s.worker_restarts), expect);
}

fn chain_graph() -> Graph {
    generators::word_chain(&["a", "a", "b"])
}

fn chain_grammar() -> cfpq_grammar::Cfg {
    cfpq_grammar::Cfg::parse("S -> a S b | a b").unwrap()
}

/// Scheduled panics kill exactly the batches they land in; retries
/// re-run the interrupted solve (the epoch cell is left empty on
/// unwind) and the post-fault epochs stay byte-identical to a
/// sequential execution. Runs the same schedule on all four engines.
#[test]
fn scheduled_panics_are_isolated_and_recovered_on_all_engines() {
    silence_injected_panics();
    fn check<E: ServiceEngine + Clone>(raw: E) {
        let grammar = chain_grammar();
        let graph = chain_graph();
        // Ops 0 and 1: the first two kernel launches — the cold solve's
        // first attempt dies, the retry dies, the third succeeds.
        let injector = FaultInjector::new(raw, FaultPlan::panic_on([0, 1]));
        let service = CfpqService::with_config(injector.clone(), &graph, ServiceConfig::new(1));
        let q = service.prepare(&grammar).unwrap();

        let mut failures = 0;
        let answer = loop {
            match wait_bounded(service.enqueue(q, vec![]).unwrap()) {
                Ok(a) => break a,
                Err(ServiceError::WorkerPanicked) => failures += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        };
        assert_eq!(failures, 2, "exactly the scheduled panics fired");
        assert_eq!(injector.panics_injected(), 2);
        assert_eq!(answer.epoch, 0);
        let sequential = solve(&graph, &grammar, Backend::Sparse).unwrap();
        assert_eq!(answer.pairs, sequential.start_pairs());
        assert_eq!(total(&service, |s| s.worker_panics), 2);
        await_restarts(&service, 2);

        // The service keeps serving *and* publishing after the faults:
        // the post-fault epoch is byte-identical to sequential.
        assert_eq!(service.add_edges(&[(3, "b", 4)]), 1);
        let after = wait_bounded(service.enqueue(q, vec![]).unwrap()).unwrap();
        assert_eq!(after.epoch, 1);
        let mut grown = chain_graph();
        grown.add_edge_named(3, "b", 4);
        let sequential = solve(&grown, &grammar, Backend::Sparse).unwrap();
        assert_eq!(after.pairs, sequential.start_pairs());
        // Cache hits stay cheap post-recovery.
        let again = wait_bounded(service.enqueue(q, vec![]).unwrap()).unwrap();
        assert_eq!(again.pairs, after.pairs);
    }
    check(DenseEngine);
    check(SparseEngine);
    check(ParDenseEngine::new(Device::new(2)));
    check(ParSparseEngine::new(Device::new(2)));
    check(TiledEngine::new(Device::new(2)));
    check(AdaptiveEngine::new(Device::new(2)));
}

/// Forced overload: one worker pinned inside a stalled cold solve, a
/// burst past `max_queued` — the surplus sheds `Overloaded` with a
/// retry hint at enqueue time, and the requests that did queue expire
/// to `Deadline` at dispatch (the worker surfaces them long after their
/// deadline). Runs on all four engines.
#[test]
fn overload_sheds_and_deadlines_expire_on_all_engines() {
    silence_injected_panics();
    fn check<E: ServiceEngine + Clone>(raw: E) {
        let grammar = chain_grammar();
        let graph = chain_graph();
        // Every kernel launch after the first stalls 50ms: the cold
        // solve (several launches) pins the single worker for a few
        // hundred ms — the window the burst lands in.
        let injector = FaultInjector::new(
            raw,
            FaultPlan::none().with_delay_every(1, Duration::from_millis(50)),
        );
        let config = ServiceConfig::new(1)
            .with_max_queued(2)
            .with_default_deadline(Duration::from_millis(35));
        let service = CfpqService::with_config(injector.clone(), &graph, config);
        let q = service.prepare(&grammar).unwrap();

        // t0 is dispatched immediately (within its deadline) and then
        // holds the worker inside the stalled solve.
        let t0 = service.enqueue(q, vec![]).unwrap();
        std::thread::sleep(Duration::from_millis(60));
        let mut kept = Vec::new();
        let mut sheds = 0u64;
        for _ in 0..10 {
            match service.enqueue(q, vec![]) {
                Ok(t) => kept.push(t),
                Err(e @ ServiceError::Overloaded { .. }) => {
                    assert!(e.retry_after().unwrap() > Duration::ZERO);
                    sheds += 1;
                }
                Err(e) => panic!("unexpected enqueue error: {e}"),
            }
        }
        assert_eq!(kept.len() as u64 + sheds, 10);
        assert!(sheds >= 8, "the burst overruns max_queued=2 (shed {sheds})");
        assert!(
            wait_bounded(t0).is_ok(),
            "the in-flight request beats its deadline (dispatched before the stall)"
        );
        assert!(
            injector.ops() >= 3,
            "the stalled solve must span the deadline window"
        );
        // Everything that queued behind the stall expired at dispatch.
        let kept_n = kept.len() as u64;
        for t in kept {
            assert_eq!(wait_bounded(t), Err(ServiceError::Deadline));
        }
        assert_eq!(total(&service, |s| s.requests_shed), sheds);
        assert_eq!(total(&service, |s| s.deadline_expired), kept_n);
        assert_eq!(total(&service, |s| s.worker_panics), 0);
    }
    check(DenseEngine);
    check(SparseEngine);
    check(ParDenseEngine::new(Device::new(2)));
    check(ParSparseEngine::new(Device::new(2)));
    check(TiledEngine::new(Device::new(2)));
    check(AdaptiveEngine::new(Device::new(2)));
}

/// Bounded shutdown under a stalled worker: the in-flight batch runs to
/// completion, everything still queued past the drain bound resolves
/// `ShuttingDown`, later enqueues are rejected, and drop stays clean.
#[test]
fn stalled_shutdown_resolves_queued_tickets_typed() {
    silence_injected_panics();
    let grammar = chain_grammar();
    let graph = chain_graph();
    let injector = FaultInjector::new(
        SparseEngine,
        FaultPlan::none().with_delay_every(1, Duration::from_millis(50)),
    );
    let service = CfpqService::with_config(injector, &graph, ServiceConfig::new(1));
    let q = service.prepare(&grammar).unwrap();

    let t0 = service.enqueue(q, vec![]).unwrap();
    std::thread::sleep(Duration::from_millis(60));
    let queued: Vec<Ticket> = (0..3)
        .map(|_| service.enqueue(q, vec![]).unwrap())
        .collect();
    // Zero drain bound: whatever the stalled worker has not dispatched
    // fails typed, right now.
    assert_eq!(service.shutdown_within(Duration::ZERO), 3);
    for t in queued {
        assert_eq!(wait_bounded(t), Err(ServiceError::ShuttingDown));
    }
    // The in-flight batch still completes (its kernel work is finite).
    assert!(wait_bounded(t0).is_ok());
    assert_eq!(
        service.enqueue(q, vec![]).err(),
        Some(ServiceError::ShuttingDown)
    );
    assert_eq!(service.shutdown(), 0, "second shutdown is a no-op");
    // Snapshots survive shutdown: the epoch store outlives the pool.
    assert_eq!(service.snapshot().evaluate(q).start_pairs(), &[(1, 3)]);
}

/// A panic mid-`add_edges` (an injected fault inside the repair) must
/// leave the *old* epoch published and serving — publishes are
/// all-or-nothing — and a retried publish succeeds and matches the
/// sequential answer.
#[test]
fn interrupted_publishes_keep_the_old_epoch_serving() {
    silence_injected_panics();
    let grammar = chain_grammar();
    let graph = chain_graph();

    // Calibrate: count the kernel launches of the epoch-0 cold solve,
    // so the schedule can target the first launch of the *repair*.
    let probe = FaultInjector::new(SparseEngine, FaultPlan::none());
    {
        let service = CfpqService::with_config(probe.clone(), &graph, ServiceConfig::new(1));
        let q = service.prepare(&grammar).unwrap();
        wait_bounded(service.enqueue(q, vec![]).unwrap()).unwrap();
    }
    let cold_ops = probe.ops();
    assert!(cold_ops > 0);

    let injector = FaultInjector::new(SparseEngine, FaultPlan::panic_on([cold_ops]));
    let service = CfpqService::with_config(injector.clone(), &graph, ServiceConfig::new(1));
    let q = service.prepare(&grammar).unwrap();
    let before = wait_bounded(service.enqueue(q, vec![]).unwrap()).unwrap();
    assert_eq!(before.pairs, vec![(1, 3)]);
    assert_eq!(injector.ops(), cold_ops, "replay matches the calibration");

    // The repair's first kernel launch panics: the publish must abort
    // as a unit. The panic surfaces to the *caller* of add_edges.
    let publish = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        service.add_edges(&[(3, "b", 4)])
    }));
    assert!(publish.is_err(), "the scheduled repair fault fired");
    assert_eq!(injector.panics_injected(), 1);
    assert_eq!(
        service.current_epoch(),
        0,
        "the failed publish left epoch 0"
    );
    let still = wait_bounded(service.enqueue(q, vec![]).unwrap()).unwrap();
    assert_eq!(
        (still.epoch, still.pairs),
        (0, vec![(1, 3)]),
        "old epoch serves"
    );

    // The retry (schedule exhausted) publishes epoch 1, byte-identical
    // to the sequential answer on the updated graph.
    assert_eq!(service.add_edges(&[(3, "b", 4)]), 1);
    let after = wait_bounded(service.enqueue(q, vec![]).unwrap()).unwrap();
    assert_eq!((after.epoch, after.pairs), (1, vec![(0, 4), (1, 3)]));
    assert_eq!(
        total(&service, |s| s.worker_panics),
        0,
        "the fault hit the writer path, not a worker"
    );
}
