//! Deterministic fault injection for the service's chaos tests.
//!
//! [`FaultInjector`] wraps any [`ServiceEngine`](crate::ServiceEngine)
//! and executes a fixed, schedule-driven [`FaultPlan`]: panic on the
//! k-th multiply-class kernel launch, or stall every m-th one for a
//! configured delay. Because the schedule is indexed by a *global*
//! operation counter (shared across every clone of the injector, so
//! snapshots, epochs, and worker threads all advance the same stream),
//! a chaos run with a given plan injects the same faults at the same
//! kernel launches every time — the harness asserts exact recovery
//! behaviour instead of "it usually survives".
//!
//! Injected panics carry a typed [`InjectedPanic`] payload, so recovery
//! code (and the panic hook installed by
//! [`silence_injected_panics`]) can tell a scheduled fault from a real
//! bug: a real panic still prints its message and backtrace; an
//! injected one is suppressed from test stderr.
//!
//! ```
//! use cfpq_matrix::{BoolEngine, SparseEngine};
//! use cfpq_service::faults::{FaultInjector, FaultPlan};
//!
//! let engine = FaultInjector::new(SparseEngine, FaultPlan::panic_on([1]));
//! let a = engine.from_pairs(2, &[(0, 1)]);
//! assert_eq!(engine.multiply(&a, &a).nnz(), 0); // op 0: served
//! let result = std::panic::catch_unwind(|| engine.multiply(&a, &a));
//! assert!(result.is_err()); // op 1: scheduled panic
//! assert_eq!(engine.panics_injected(), 1);
//! assert!(engine.multiply(&a, &a).nnz() == 0); // op 2: healthy again
//! ```

use cfpq_matrix::{BoolEngine, LenEngine, LenJob, MaskedJob};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::Duration;

/// The schedule a [`FaultInjector`] executes, indexed by the global
/// multiply-operation counter.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Operation indices that panic (with an [`InjectedPanic`] payload)
    /// instead of executing.
    pub panic_on: BTreeSet<u64>,
    /// `(every, delay)`: stall each operation whose index is a nonzero
    /// multiple of `every` for `delay` before executing it — the knob
    /// for forcing overload and deadline expiry deterministically.
    pub delay: Option<(u64, Duration)>,
}

impl FaultPlan {
    /// The empty schedule: the injector becomes a transparent (but
    /// still counting) wrapper.
    pub fn none() -> Self {
        Self::default()
    }

    /// Panic on exactly the given operation indices.
    pub fn panic_on<I: IntoIterator<Item = u64>>(ops: I) -> Self {
        Self {
            panic_on: ops.into_iter().collect(),
            ..Self::default()
        }
    }

    /// Adds a stall of `delay` on every `every`-th operation.
    pub fn with_delay_every(mut self, every: u64, delay: Duration) -> Self {
        self.delay = Some((every.max(1), delay));
        self
    }
}

/// The panic payload of a scheduled fault — typed so harnesses (and the
/// [`silence_injected_panics`] hook) can distinguish injected faults
/// from genuine bugs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectedPanic {
    /// The global operation index the fault fired at.
    pub op: u64,
}

/// Suppresses the default "thread panicked" stderr report for panics
/// whose payload is an [`InjectedPanic`], forwarding every other panic
/// to the previous hook untouched. Install once per test binary —
/// worker panics are not captured by the test harness, so without this
/// a passing chaos run would still spray scary backtraces.
pub fn silence_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

/// A [`BoolEngine`] + [`LenEngine`] decorator that executes a
/// [`FaultPlan`] over a global multiply-operation counter. Cloning the
/// injector clones the inner engine handle but *shares* the counter and
/// schedule — exactly what the service needs, since epochs and
/// snapshots clone the engine.
///
/// Only multiply-class operations tick the counter (plain, masked, and
/// per-job inside the batch entry points): they are where the solver
/// spends its time, and counting a stable operation class keeps
/// schedules meaningful across engines. Batch entry points tick each
/// job up front and then delegate the whole batch to the inner engine,
/// so device-backed engines keep their pool parallelism — the
/// decorator contract documented on [`BoolEngine`].
#[derive(Clone, Debug)]
pub struct FaultInjector<E> {
    inner: E,
    plan: Arc<FaultPlan>,
    ops: Arc<AtomicU64>,
    injected: Arc<AtomicU64>,
}

impl<E> FaultInjector<E> {
    /// Wraps `inner` with the given schedule; the operation counter
    /// starts at 0.
    pub fn new(inner: E, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan: Arc::new(plan),
            ops: Arc::new(AtomicU64::new(0)),
            injected: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Multiply-class operations observed so far (across all clones).
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Panics injected so far (across all clones).
    pub fn panics_injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Advances the operation counter by one and executes whatever the
    /// schedule holds for that index.
    fn tick(&self) {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        if let Some((every, delay)) = self.plan.delay {
            if op > 0 && op.is_multiple_of(every) {
                std::thread::sleep(delay);
            }
        }
        if self.plan.panic_on.contains(&op) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            std::panic::panic_any(InjectedPanic { op });
        }
    }

    /// Ticks once per job of a batch entry point (the batch then runs
    /// on the inner engine in one piece).
    fn tick_batch(&self, jobs: usize) {
        for _ in 0..jobs {
            self.tick();
        }
    }
}

impl<E: BoolEngine> BoolEngine for FaultInjector<E> {
    type Matrix = E::Matrix;

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn zeros(&self, n: usize) -> Self::Matrix {
        self.inner.zeros(n)
    }

    fn from_pairs(&self, n: usize, pairs: &[(u32, u32)]) -> Self::Matrix {
        self.inner.from_pairs(n, pairs)
    }

    fn multiply(&self, a: &Self::Matrix, b: &Self::Matrix) -> Self::Matrix {
        self.tick();
        self.inner.multiply(a, b)
    }

    fn union_in_place(&self, a: &mut Self::Matrix, b: &Self::Matrix) -> bool {
        self.inner.union_in_place(a, b)
    }

    fn union_pairs(&self, a: &mut Self::Matrix, pairs: &[(u32, u32)]) -> bool {
        self.inner.union_pairs(a, pairs)
    }

    fn grow(&self, a: &mut Self::Matrix, n: usize) {
        self.inner.grow(a, n)
    }

    fn difference(&self, a: &Self::Matrix, b: &Self::Matrix) -> Self::Matrix {
        self.inner.difference(a, b)
    }

    fn intersect(&self, a: &Self::Matrix, b: &Self::Matrix) -> Self::Matrix {
        self.inner.intersect(a, b)
    }

    fn multiply_batch(&self, jobs: &[(&Self::Matrix, &Self::Matrix)]) -> Vec<Self::Matrix> {
        self.tick_batch(jobs.len());
        self.inner.multiply_batch(jobs)
    }

    fn multiply_masked(
        &self,
        a: &Self::Matrix,
        b: &Self::Matrix,
        complement_mask: &Self::Matrix,
    ) -> Self::Matrix {
        self.tick();
        self.inner.multiply_masked(a, b, complement_mask)
    }

    fn multiply_masked_batch(&self, jobs: &[MaskedJob<'_, Self::Matrix>]) -> Vec<Self::Matrix> {
        self.tick_batch(jobs.len());
        self.inner.multiply_masked_batch(jobs)
    }

    fn kernel_counters(&self) -> cfpq_matrix::KernelCounters {
        self.inner.kernel_counters()
    }
}

impl<E: LenEngine> LenEngine for FaultInjector<E> {
    type LenMatrix = E::LenMatrix;

    fn len_empty(&self, n: usize) -> Self::LenMatrix {
        self.inner.len_empty(n)
    }

    fn len_from_entries(&self, n: usize, entries: &[(u32, u32, u32)]) -> Self::LenMatrix {
        self.inner.len_from_entries(n, entries)
    }

    fn len_set_absent(
        &self,
        a: &mut Self::LenMatrix,
        entries: &[(u32, u32, u32)],
    ) -> Vec<(u32, u32, u32)> {
        self.inner.len_set_absent(a, entries)
    }

    fn len_multiply_masked(
        &self,
        a: &Self::LenMatrix,
        b: &Self::LenMatrix,
        mask: Option<&Self::LenMatrix>,
    ) -> Self::LenMatrix {
        self.tick();
        self.inner.len_multiply_masked(a, b, mask)
    }

    fn len_multiply_masked_batch(
        &self,
        jobs: &[LenJob<'_, Self::LenMatrix>],
    ) -> Vec<Self::LenMatrix> {
        self.tick_batch(jobs.len());
        self.inner.len_multiply_masked_batch(jobs)
    }

    fn len_merge_absent(
        &self,
        acc: &mut Self::LenMatrix,
        add: &Self::LenMatrix,
    ) -> Self::LenMatrix {
        self.inner.len_merge_absent(acc, add)
    }

    fn len_grow(&self, a: &mut Self::LenMatrix, n: usize) {
        self.inner.len_grow(a, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpq_matrix::SparseEngine;

    #[test]
    fn plans_replay_identically() {
        let plan = FaultPlan::panic_on([2, 5]);
        let run = |plan: FaultPlan| {
            let eng = FaultInjector::new(SparseEngine, plan);
            let a = eng.from_pairs(2, &[(0, 0), (0, 1)]);
            let mut outcomes = Vec::new();
            for _ in 0..8 {
                let ok =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| eng.multiply(&a, &a)))
                        .is_ok();
                outcomes.push(ok);
            }
            (outcomes, eng.ops(), eng.panics_injected())
        };
        let first = run(plan.clone());
        assert_eq!(first, run(plan));
        assert_eq!(
            first.0,
            vec![true, true, false, true, true, false, true, true]
        );
        assert_eq!(first.1, 8);
        assert_eq!(first.2, 2);
    }

    #[test]
    fn clones_share_the_operation_stream() {
        let eng = FaultInjector::new(SparseEngine, FaultPlan::none());
        let twin = eng.clone();
        let a = eng.from_pairs(2, &[(0, 1)]);
        eng.multiply(&a, &a);
        twin.multiply(&a, &a);
        assert_eq!(eng.ops(), 2, "clones advance one global counter");
        assert_eq!(twin.ops(), 2);
    }

    #[test]
    fn batches_tick_per_job() {
        let eng = FaultInjector::new(SparseEngine, FaultPlan::none());
        let a = eng.from_pairs(2, &[(0, 1)]);
        eng.multiply_masked_batch(&[(&a, &a, None), (&a, &a, Some(&a)), (&a, &a, None)]);
        assert_eq!(eng.ops(), 3);
    }

    #[test]
    fn injected_panics_carry_the_typed_payload() {
        let eng = FaultInjector::new(SparseEngine, FaultPlan::panic_on([0]));
        let a = eng.from_pairs(2, &[(0, 1)]);
        let payload =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| eng.multiply(&a, &a)))
                .unwrap_err();
        assert_eq!(
            payload.downcast_ref::<InjectedPanic>(),
            Some(&InjectedPanic { op: 0 })
        );
    }
}
