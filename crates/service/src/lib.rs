//! # cfpq-service
//!
//! The concurrent serving layer over the session engine: many reader
//! threads evaluating prepared queries against one evolving graph,
//! without a global lock around the solver.
//!
//! The paper frames CFPQ as a graph-database primitive, and follow-up
//! work (Medeiros et al., "An Algorithm for Context-Free Path Queries
//! over Graph Databases") evaluates it explicitly in a serving context —
//! but `cfpq_core::session::CfpqSession` is strictly single-threaded:
//! one caller, one mutable session, queries and edge updates fully
//! serialized. This crate adds the missing subsystem:
//!
//! * **Snapshot isolation.** The graph lives in immutable epoch-tagged
//!   [`Snapshot`]s: an `Arc`-shared [`GraphIndex`] plus a per-epoch
//!   closure cache. Readers grab the current snapshot and keep using it
//!   for as long as they like; [`CfpqService::add_edges`] clones the
//!   index *off to the side*, repairs every cached closure through the
//!   session layer's semi-naive resume paths
//!   ([`cfpq_core::session::repair_prepared`] /
//!   [`cfpq_core::session::repair_prepared_single_path`]), and publishes
//!   the next epoch atomically. A reader never blocks on a writer and
//!   never observes a half-applied batch.
//! * **Shared closure caching.** Within an epoch, each prepared query's
//!   solved closure is computed exactly once (a `OnceLock` cell:
//!   concurrent readers of the same cold query block on one solve
//!   instead of racing N solves) and then served by `Arc` refcount bump.
//!   Publishing an epoch *repairs* the previous epoch's solved closures
//!   instead of discarding them, so an update costs incremental kernel
//!   work, not N cold re-solves.
//! * **A multi-queue scheduler.** [`CfpqService::enqueue`] accepts
//!   `(query, pairs)` requests and returns a [`Ticket`]; worker threads
//!   drain one query's whole queue as a batch, evaluate that query's
//!   closure once, and answer every request in the batch from it. Per
//!   epoch, [`ServiceStats`] reports queries served, cache hits, repair
//!   vs cold products, and the epoch publish latency. Regular path
//!   queries are first-class tenants: [`CfpqService::prepare_regular`]
//!   compiles an NFA through the unified RSM pipeline
//!   ([`cfpq_core::compile::CompiledQuery`]), after which its tickets,
//!   snapshot caches, epoch repairs, errors and stats are
//!   indistinguishable from any CFPQ's.
//! * **Paths as a workload.** [`CfpqService::enqueue_paths`] serves the
//!   §7 all-path semantics through the same scheduler: a ticketed,
//!   paged stream of witness paths per answer pair, enumerated by the
//!   memoized [`cfpq_core::all_paths::PathEnumerator`] against one
//!   epoch (pages are snapshot-consistent even while writers publish),
//!   clamped per request by [`ServiceConfig::path_quota`], with
//!   truncation reported explicitly — per page via
//!   [`PairPaths::exhausted`], per epoch via
//!   [`ServiceStats::pages_truncated`].
//! * **An explicit failure contract.** Every request enqueued into the
//!   service resolves to an answer *or* a typed [`ServiceError`] —
//!   never a hang. Per-batch execution is isolated with
//!   `catch_unwind`, so a panicking worker resolves its batch to
//!   [`ServiceError::WorkerPanicked`] and is respawned by its
//!   supervisor loop instead of poisoning the scheduler; every lock is
//!   taken through poison-recovering helpers. [`ServiceConfig`] bounds
//!   the queue ([`ServiceError::Overloaded`] with a retry-after hint —
//!   pair it with the seeded-jitter [`Backoff`] client helper) and
//!   attaches a default deadline to requests (expired requests are
//!   dropped loudly at dispatch as [`ServiceError::Deadline`]);
//!   [`Ticket::wait_timeout`] / [`Ticket::wait_deadline`] bound the
//!   caller side. [`CfpqService::shutdown`] drains within a bounded
//!   deadline and resolves whatever could not be drained to
//!   [`ServiceError::ShuttingDown`]. The deterministic
//!   [`faults::FaultInjector`] engine wrapper plus the chaos suite
//!   (`tests/chaos.rs`) hold the contract under injected worker
//!   panics, overload, and racing updates.
//!
//! Thread-pool sizing composes with the kernel pool through
//! [`cfpq_matrix::Parallelism`]: split one budget between scheduler
//! workers and the [`cfpq_matrix::Device`] so the two layers never
//! oversubscribe the machine.
//!
//! ```
//! use cfpq_core::session::PreparedQuery;
//! use cfpq_grammar::Cfg;
//! use cfpq_graph::Graph;
//! use cfpq_matrix::SparseEngine;
//! use cfpq_service::{CfpqService, ServiceConfig};
//!
//! let mut graph = Graph::new(5);
//! graph.add_edge_named(0, "a", 1);
//! graph.add_edge_named(1, "a", 2);
//! graph.add_edge_named(2, "b", 3);
//! let service = CfpqService::with_config(SparseEngine, &graph, ServiceConfig::new(2));
//! let q = service.prepare(&Cfg::parse("S -> a S b | a b").unwrap()).unwrap();
//!
//! // Scheduler path: enqueue returns immediately; wait() blocks until a
//! // worker served the request (batched with others on the same query).
//! // Both steps are fallible by contract: enqueue sheds load with a
//! // typed error instead of growing an unbounded queue, and the ticket
//! // resolves to an answer or a typed error — never a hang.
//! let t1 = service.enqueue(q, vec![]).unwrap();
//! let t2 = service.enqueue(q, vec![(1, 3), (0, 4)]).unwrap();
//! assert_eq!(t1.wait().unwrap().pairs, vec![(1, 3)]);
//! assert_eq!(t2.wait().unwrap().pairs, vec![(1, 3)]); // (0, 4) not yet related
//!
//! // Readers pin an epoch; updates publish the next one off to the side.
//! let before = service.snapshot();
//! service.add_edges(&[(3, "b", 4)]);
//! assert_eq!(before.evaluate(q).start_pairs(), &[(1, 3)]); // isolated
//! assert_eq!(
//!     service.snapshot().evaluate(q).start_pairs(),
//!     &[(0, 4), (1, 3)] // repaired, not re-solved
//! );
//! ```

use cfpq_core::all_paths::{PageRequest, PathEnumerator, PathPage};
use cfpq_core::query::QueryAnswer;
use cfpq_core::relational::RelationalIndex;
use cfpq_core::session::{
    batch_seed_pairs, repair_prepared, repair_prepared_single_path, solve_prepared,
    solve_prepared_single_path, GraphIndex, PreparedQuery,
};
use cfpq_core::single_path::SinglePathIndex;
use cfpq_grammar::{Cfg, GrammarError};
use cfpq_graph::{Edge, Graph, NodeId};
use cfpq_matrix::{BoolEngine, BoolMat, LenEngine, Parallelism};
use cfpq_obs::{
    AttrValue, Counter, Gauge, Histogram, MetricsRegistry, NoopRecorder, Recorder, SpanId,
};
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{
    Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError, RwLock, RwLockReadGuard,
    RwLockWriteGuard,
};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub mod faults;

pub use cfpq_core::all_paths::PageRequest as PathPageRequest;

// ---------------------------------------------------------------------------
// Poison-recovering lock helpers
// ---------------------------------------------------------------------------
//
// A worker that panics mid-batch must not take the whole service down,
// and `std::sync` poisoning would do exactly that: every later
// `.lock().expect(..)` on the same mutex dies in sympathy. All the
// state these locks guard stays consistent under unwind — scheduler
// queue edits are single push/pop operations, the current epoch is an
// `Arc` swap, counters are atomics, ticket slots are single writes —
// so recovering from poison (taking the inner guard) is always sound
// here. Request- and worker-path code must take locks through these
// helpers, never by expecting a clean lock.

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn read_recover<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_recover<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// The engine bound the service needs: both kernel families (relational
/// Boolean closures and §5 length closures), cheap cloning (snapshots
/// clone the engine handle, not the pool), and `'static` so worker
/// threads can own it. Blanket-implemented — all four paper engines
/// qualify, as does any wrapper around them (e.g.
/// [`faults::FaultInjector`]).
pub trait ServiceEngine: BoolEngine + LenEngine + Clone + 'static {}

impl<E: BoolEngine + LenEngine + Clone + 'static> ServiceEngine for E {}

/// Handle to a relational query registered in a [`CfpqService`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QueryId(usize);

/// Handle to a single-path (§5) query registered in a [`CfpqService`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SinglePathId(usize);

/// The typed failure taxonomy of the service. Every enqueued request
/// resolves to a [`TicketAnswer`] *or* one of these — the service never
/// leaves a [`Ticket::wait`] hanging.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The request named a query id that was never registered with this
    /// service (`id` out of the `registered` handles). Rejected at
    /// enqueue time.
    UnknownQuery {
        /// The offending raw id.
        id: usize,
        /// How many queries of that kind are registered.
        registered: usize,
    },
    /// The scheduler queue is full ([`ServiceConfig::max_queued`]); the
    /// request was shed at enqueue time instead of growing the queue
    /// without bound. `retry_after` is the service's backoff hint —
    /// clients should wait at least that long (see [`Backoff`] for a
    /// jittered retry loop) before re-enqueueing.
    Overloaded {
        /// Requests queued at the moment the request was shed.
        queued: usize,
        /// The configured queue bound.
        max_queued: usize,
        /// Suggested minimum wait before retrying.
        retry_after: Duration,
    },
    /// The request's deadline expired before a worker dispatched it
    /// ([`ServiceConfig::default_deadline`]), or a bounded wait
    /// ([`Ticket::wait_timeout`]) gave up. Expired requests are dropped
    /// *loudly* at dispatch: the ticket resolves with this error and
    /// [`ServiceStats::deadline_expired`] counts it.
    Deadline,
    /// The worker serving the request's batch panicked. The batch is
    /// the isolation unit: its tickets resolve with this error, the
    /// worker is respawned, and the per-epoch closure cache stays
    /// usable (an interrupted cold solve is simply retried by the next
    /// request). Counted in [`ServiceStats::worker_panics`].
    WorkerPanicked,
    /// The service is shutting down: either the request arrived after
    /// [`CfpqService::shutdown`] (rejected at enqueue), or it was still
    /// queued when the bounded drain deadline expired (resolved at
    /// shutdown).
    ShuttingDown,
}

impl ServiceError {
    /// The retry-after hint of an [`ServiceError::Overloaded`] error,
    /// `None` for every other variant (retrying does not help an
    /// unknown query, and a shutting-down service will not come back).
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            Self::Overloaded { retry_after, .. } => Some(*retry_after),
            _ => None,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownQuery { id, registered } => {
                write!(f, "query {id} is not registered (have {registered})")
            }
            Self::Overloaded {
                queued,
                max_queued,
                retry_after,
            } => write!(
                f,
                "scheduler overloaded ({queued}/{max_queued} queued); retry after {retry_after:?}"
            ),
            Self::Deadline => write!(f, "request deadline expired"),
            Self::WorkerPanicked => write!(f, "worker panicked while serving the request's batch"),
            Self::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Deterministic exponential backoff with seeded full jitter — the
/// client-side companion of [`ServiceError::Overloaded`]. Delays grow
/// `base · 2^attempt` up to `cap`, each drawn uniformly from
/// `[base, current]` by a fixed-seed xorshift generator, so retry storms
/// decorrelate without making tests flaky.
///
/// ```
/// use cfpq_service::Backoff;
/// use std::time::Duration;
///
/// let mut b = Backoff::new(42);
/// let first = b.next_delay();
/// assert!(first >= Duration::from_millis(1));
/// assert!(b.next_delay() <= Duration::from_millis(100)); // capped
/// let mut b2 = Backoff::new(42);
/// assert_eq!(b2.next_delay(), first); // same seed, same schedule
/// ```
#[derive(Clone, Debug)]
pub struct Backoff {
    state: u64,
    base: Duration,
    cap: Duration,
    attempt: u32,
}

impl Backoff {
    /// A backoff with the default bounds (base 1 ms, cap 100 ms) and the
    /// given jitter seed.
    pub fn new(seed: u64) -> Self {
        Self::with_bounds(seed, Duration::from_millis(1), Duration::from_millis(100))
    }

    /// A backoff with explicit bounds: delays start at `base` and the
    /// exponential growth saturates at `cap`.
    pub fn with_bounds(seed: u64, base: Duration, cap: Duration) -> Self {
        Self {
            // xorshift must not start at 0; fold the seed with a golden-
            // ratio constant (splitmix-style) so seed 0 is fine too.
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
            base,
            cap: cap.max(base),
            attempt: 0,
        }
    }

    /// The next delay of the schedule: `base · 2^attempt` (saturating at
    /// the cap), jittered uniformly down towards `base`.
    pub fn next_delay(&mut self) -> Duration {
        // xorshift64* — tiny, deterministic, and plenty for jitter.
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        let ceiling = self
            .base
            .saturating_mul(1u32 << self.attempt.min(16))
            .min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        let base_ns = self.base.as_nanos() as u64;
        let ceil_ns = (ceiling.as_nanos() as u64).max(base_ns);
        let span = ceil_ns - base_ns;
        let jittered = if span == 0 {
            base_ns
        } else {
            base_ns + self.state % (span + 1)
        };
        Duration::from_nanos(jittered)
    }

    /// Restarts the schedule (the jitter stream keeps advancing, so a
    /// reset schedule does not replay the same delays).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// Scheduler/worker-pool configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Scheduler worker threads (clamped to at least 1).
    pub workers: usize,
    /// Per-request result quota for [`CfpqService::enqueue_paths`]: the
    /// total number of paths one request may receive across all its
    /// pairs. Pages cut by the quota come back with `exhausted: false`
    /// (and count into [`ServiceStats::pages_truncated`]), so clients
    /// can resume with `offset` paging instead of silently losing tail
    /// results.
    pub path_quota: usize,
    /// Backpressure bound: the maximum number of requests that may sit
    /// in the scheduler queues at once. `enqueue*` beyond this point
    /// sheds the request with [`ServiceError::Overloaded`] (counted in
    /// [`ServiceStats::requests_shed`]) instead of queueing without
    /// bound.
    pub max_queued: usize,
    /// Deadline attached to every enqueued request, measured from
    /// enqueue time. A request still queued past its deadline is
    /// dropped loudly at dispatch ([`ServiceError::Deadline`], counted
    /// in [`ServiceStats::deadline_expired`]). `None` (the default)
    /// disables service-side deadlines; [`Ticket::wait_timeout`] bounds
    /// the caller side independently.
    pub default_deadline: Option<Duration>,
    /// Bound on the [`CfpqService::shutdown`] /
    /// `Drop` drain: workers get this long to serve what is queued,
    /// then every still-queued ticket resolves to
    /// [`ServiceError::ShuttingDown`]. The drop path must never block
    /// forever on queued work.
    pub drain_deadline: Duration,
}

impl ServiceConfig {
    /// A config with `workers` scheduler threads and the default path
    /// quota, queue bound, and drain deadline (no request deadline).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            path_quota: 1024,
            max_queued: 4096,
            default_deadline: None,
            drain_deadline: Duration::from_secs(5),
        }
    }

    /// Overrides the per-request all-path result quota.
    pub fn with_path_quota(mut self, quota: usize) -> Self {
        self.path_quota = quota;
        self
    }

    /// Overrides the backpressure bound (clamped to at least 1).
    pub fn with_max_queued(mut self, max_queued: usize) -> Self {
        self.max_queued = max_queued.max(1);
        self
    }

    /// Attaches a deadline to every enqueued request.
    pub fn with_default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Overrides the bounded shutdown drain.
    pub fn with_drain_deadline(mut self, deadline: Duration) -> Self {
        self.drain_deadline = deadline;
        self
    }

    /// Derives the config *and* the kernel device from one
    /// [`Parallelism`] budget, so the scheduler pool and the `Device`
    /// pool cannot oversubscribe the machine between them. Pass the
    /// returned device into the engine (for the `-par` backends).
    pub fn from_parallelism(
        budget: Parallelism,
        requested_workers: usize,
    ) -> (Self, cfpq_matrix::Device) {
        let (workers, device) = budget.split(requested_workers);
        (Self::new(workers), device)
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self::new(2)
    }
}

/// Per-epoch service counters (see [`CfpqService::stats`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceStats {
    /// Epoch number (0 = the build epoch).
    pub epoch: u64,
    /// Wall time to build and publish this epoch, milliseconds: index
    /// build for epoch 0, clone + closure repairs + atomic swap for
    /// every later epoch. Readers of the previous epoch were never
    /// blocked during this window.
    pub publish_ms: f64,
    /// Requests answered against this epoch (scheduler requests plus
    /// direct snapshot evaluations).
    pub queries_served: u64,
    /// Scheduler batches served (each batch shares one closure lookup).
    pub batches: u64,
    /// Evaluations answered from an already-solved closure (an `Arc`
    /// bump, no kernel work).
    pub cache_hits: u64,
    /// Closures cold-solved in this epoch.
    pub cold_solves: u64,
    /// Matrix products launched by those cold solves.
    pub cold_products: u64,
    /// Closures repaired from the previous epoch at publish time.
    pub repairs: u64,
    /// Matrix products launched by those repairs (the incremental cost
    /// of the update; compare with `cold_products`).
    pub repair_products: u64,
    /// Witness paths streamed to [`CfpqService::enqueue_paths`] tickets
    /// answered against this epoch.
    pub paths_served: u64,
    /// Path pages returned non-exhausted (cut by the request's `limit`
    /// or the service's `path_quota`) — nonzero means some client saw a
    /// truncated page and may want to resume with `offset` paging.
    pub pages_truncated: u64,
    /// Batches whose worker panicked mid-serve; each resolved its
    /// tickets to [`ServiceError::WorkerPanicked`] instead of hanging
    /// them or poisoning the scheduler.
    pub worker_panics: u64,
    /// Workers respawned by their supervisor loop after a panic
    /// escaped a batch. Pairs with `worker_panics`: the pool heals
    /// itself instead of shrinking.
    pub worker_restarts: u64,
    /// Requests shed at enqueue time because the queue was at
    /// [`ServiceConfig::max_queued`] ([`ServiceError::Overloaded`]).
    pub requests_shed: u64,
    /// Requests dropped at dispatch because their deadline had expired
    /// ([`ServiceError::Deadline`]).
    pub deadline_expired: u64,
}

#[derive(Default)]
struct EpochCounters {
    queries_served: AtomicU64,
    batches: AtomicU64,
    cache_hits: AtomicU64,
    cold_solves: AtomicU64,
    cold_products: AtomicU64,
    repairs: AtomicU64,
    repair_products: AtomicU64,
    paths_served: AtomicU64,
    pages_truncated: AtomicU64,
}

/// Observability bundle shared by every service thread: the installed
/// [`Recorder`] (a [`NoopRecorder`] unless the service was built with
/// [`CfpqService::with_observability`]), the [`MetricsRegistry`] behind
/// [`CfpqService::metrics`], and pre-resolved handles for the hot-path
/// metrics so workers never touch the registry lock per request.
///
/// The failure counters (`requests_shed`, `deadline_expired`,
/// `worker_panics`, `worker_restarts`) live *here*, not in
/// [`EpochCounters`]: the registry is their single source of truth, and
/// [`CfpqService::stats`] derives the per-epoch view by differencing the
/// [`FailureSnapshot`] each epoch records at publish time.
struct Obs {
    recorder: Arc<dyn Recorder>,
    /// `recorder.is_enabled()` at install time, cached — span plumbing
    /// (ticket spans, recorder installs on worker threads) is skipped
    /// entirely when false.
    enabled: bool,
    metrics: Arc<MetricsRegistry>,
    ticket_wait_us: Histogram,
    ticket_run_us: Histogram,
    publish_us: Histogram,
    queue_depth: Gauge,
    queue_depth_max: Gauge,
    requests_shed: Counter,
    deadline_expired: Counter,
    worker_panics: Counter,
    worker_restarts: Counter,
}

impl Obs {
    fn new(recorder: Arc<dyn Recorder>) -> Self {
        let metrics = Arc::new(MetricsRegistry::new());
        metrics.describe(
            "cfpq_ticket_wait_us",
            "Microseconds a request spent queued before a worker dispatched its batch",
        );
        metrics.describe(
            "cfpq_ticket_run_us",
            "Microseconds from batch dispatch to ticket resolve (shared across the batch)",
        );
        metrics.describe(
            "cfpq_epoch_publish_us",
            "Microseconds to build and publish an epoch (clone + closure repairs + swap)",
        );
        metrics.describe(
            "cfpq_queue_depth",
            "Requests sitting in the scheduler queues right now",
        );
        metrics.describe(
            "cfpq_queue_depth_max",
            "High-water mark of cfpq_queue_depth over the service lifetime",
        );
        metrics.describe(
            "cfpq_requests_shed_total",
            "Requests shed at enqueue because the queue was at max_queued",
        );
        metrics.describe(
            "cfpq_deadline_expired_total",
            "Requests dropped at dispatch because their deadline had expired",
        );
        metrics.describe(
            "cfpq_worker_panics_total",
            "Batches whose worker panicked mid-serve (tickets resolved WorkerPanicked)",
        );
        metrics.describe(
            "cfpq_worker_restarts_total",
            "Workers respawned by their supervisor loop after a panic",
        );
        Self {
            enabled: recorder.is_enabled(),
            ticket_wait_us: metrics.histogram("cfpq_ticket_wait_us"),
            ticket_run_us: metrics.histogram("cfpq_ticket_run_us"),
            publish_us: metrics.histogram("cfpq_epoch_publish_us"),
            queue_depth: metrics.gauge("cfpq_queue_depth"),
            queue_depth_max: metrics.gauge("cfpq_queue_depth_max"),
            requests_shed: metrics.counter("cfpq_requests_shed_total"),
            deadline_expired: metrics.counter("cfpq_deadline_expired_total"),
            worker_panics: metrics.counter("cfpq_worker_panics_total"),
            worker_restarts: metrics.counter("cfpq_worker_restarts_total"),
            recorder,
            metrics,
        }
    }

    /// The registry-backed failure counters, read once — epoch publish
    /// stores this so [`CfpqService::stats`] can difference per epoch.
    fn failure_snapshot(&self) -> FailureSnapshot {
        FailureSnapshot {
            worker_panics: self.worker_panics.get(),
            worker_restarts: self.worker_restarts.get(),
            requests_shed: self.requests_shed.get(),
            deadline_expired: self.deadline_expired.get(),
        }
    }

    /// Closes a ticket span and charges the wait/run histograms. Called
    /// by whichever thread resolves the request (worker, panic sweep, or
    /// shutdown drain); `dispatched` is when a worker took the batch
    /// (resolve time for requests that never got one).
    fn finish_ticket(
        &self,
        span: SpanId,
        enqueued_at: Instant,
        dispatched: Instant,
        outcome: &'static str,
    ) {
        let wait_us = dispatched.duration_since(enqueued_at).as_micros() as u64;
        let run_us = dispatched.elapsed().as_micros() as u64;
        self.ticket_wait_us.observe(wait_us);
        self.ticket_run_us.observe(run_us);
        if !span.is_none() {
            self.recorder.end(
                span,
                vec![
                    ("wait_us", AttrValue::U64(wait_us)),
                    ("run_us", AttrValue::U64(run_us)),
                    ("outcome", AttrValue::Str(outcome)),
                ],
            );
        }
    }
}

/// Values of the four registry failure counters at one instant (taken
/// at epoch publish). [`CfpqService::stats`] attributes to epoch `i`
/// whatever happened between its publish and the next one's.
#[derive(Clone, Copy, Debug, Default)]
struct FailureSnapshot {
    worker_panics: u64,
    worker_restarts: u64,
    requests_shed: u64,
    deadline_expired: u64,
}

/// A per-epoch cache of lazily-solved values: one `OnceLock` cell per
/// query, so concurrent readers of the same unsolved query block on a
/// single solve instead of racing duplicates. If a solve panics, the
/// cell stays empty (`OnceLock::get_or_init` leaves an uninitialized
/// cell on unwind) — the next reader simply retries the solve.
struct CacheMap<V> {
    cells: Mutex<HashMap<usize, Arc<OnceLock<Arc<V>>>>>,
}

impl<V> CacheMap<V> {
    fn new() -> Self {
        Self {
            cells: Mutex::new(HashMap::new()),
        }
    }

    /// The cell of query `k` (created empty on first touch). The map
    /// lock is only held for the lookup; solving happens on the cell.
    fn cell(&self, k: usize) -> Arc<OnceLock<Arc<V>>> {
        lock_recover(&self.cells).entry(k).or_default().clone()
    }

    /// Pre-fills query `k` (the epoch builder installing a repaired
    /// closure).
    fn preset(&self, k: usize, v: Arc<V>) {
        let cell = self.cell(k);
        let _ = cell.set(v);
    }

    /// Every solved entry at this moment (cells still solving are
    /// skipped; their result stays usable on the epoch that owns them).
    fn filled(&self) -> Vec<(usize, Arc<V>)> {
        lock_recover(&self.cells)
            .iter()
            .filter_map(|(&k, cell)| cell.get().map(|v| (k, v.clone())))
            .collect()
    }
}

/// A solved relational closure plus its materialized answer, shared by
/// refcount bump.
struct SolvedRel<M> {
    index: RelationalIndex<M>,
    answer: QueryAnswer,
}

/// One immutable version of the graph: the index, the per-query closure
/// caches, and the counters charged to this epoch.
struct Epoch<E: ServiceEngine> {
    epoch: u64,
    index: GraphIndex<E>,
    rel: CacheMap<SolvedRel<E::Matrix>>,
    sp: CacheMap<SinglePathIndex<<E as LenEngine>::LenMatrix>>,
    counters: Arc<EpochCounters>,
}

struct EpochRecord {
    epoch: u64,
    publish_ms: f64,
    counters: Arc<EpochCounters>,
    /// Registry failure-counter values when this epoch was published —
    /// the baseline [`CfpqService::stats`] differences against.
    failures_at_publish: FailureSnapshot,
}

/// One queue per registered query: requests for the same grammar batch
/// together and share a single closure lookup.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum QueueKey {
    Rel(usize),
    Sp(usize),
    /// All-path enumeration over the relational query `q` — shares the
    /// rel closure cache (the pruning oracle) but queues separately so a
    /// path batch amortizes one enumerator across its requests.
    Paths(usize),
}

struct Request {
    pairs: Vec<(u32, u32)>,
    /// Page bounds for `QueueKey::Paths` requests; `None` elsewhere.
    page: Option<PageRequest>,
    /// Absolute expiry instant ([`ServiceConfig::default_deadline`]);
    /// checked at dispatch time.
    deadline: Option<Instant>,
    ticket: Arc<TicketState>,
    /// When the request entered the queue — the wait-vs-run split of the
    /// ticket lifecycle is measured from here.
    enqueued_at: Instant,
    /// The open `"ticket"` span ([`SpanId::NONE`] when tracing is off):
    /// started at enqueue, closed by whichever thread resolves the
    /// request.
    span: SpanId,
}

struct SchedState {
    queues: BTreeMap<QueueKey, VecDeque<Request>>,
    /// Keys with pending requests, in arrival order (a key appears here
    /// iff its queue exists and is non-empty).
    round_robin: VecDeque<QueueKey>,
    /// Total requests currently queued (the backpressure gauge; freed
    /// when a worker takes the batch, whether or not anyone waits on
    /// its tickets).
    queued: usize,
    /// Set by [`CfpqService::shutdown`]: no new requests are accepted,
    /// and workers exit once the queues are empty.
    shutdown: bool,
}

struct SchedShared {
    state: Mutex<SchedState>,
    available: Condvar,
    /// Notified whenever a worker empties the queues — the bounded
    /// shutdown drain waits on this instead of polling.
    drained: Condvar,
}

struct Inner<E: ServiceEngine> {
    config: ServiceConfig,
    queries: RwLock<Vec<Arc<PreparedQuery>>>,
    sp_queries: RwLock<Vec<Arc<PreparedQuery>>>,
    current: RwLock<Arc<Epoch<E>>>,
    /// Serializes writers: epochs are built one at a time, off to the
    /// side, while readers keep using the published one.
    writer: Mutex<()>,
    epochs: Mutex<Vec<EpochRecord>>,
    sched: SchedShared,
    obs: Obs,
}

/// One endpoint pair's page of an [`CfpqService::enqueue_paths`]
/// answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairPaths {
    /// Source node.
    pub from: u32,
    /// Target node.
    pub to: u32,
    /// The page's witness paths, in (length, lexicographic) order.
    pub paths: Vec<Vec<Edge>>,
    /// `false` iff the page was cut by the request's `limit` or the
    /// service's `path_quota` — more paths exist within `max_len`; page
    /// on with a larger `offset`.
    pub exhausted: bool,
}

/// The result a [`Ticket`] resolves to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TicketAnswer {
    /// The epoch the request was answered against — the request's
    /// linearization point in the epoch order.
    pub epoch: u64,
    /// If the request named pairs: the subset of them in `R_S` (sorted).
    /// If it named none: all of `R_S`.
    pub pairs: Vec<(u32, u32)>,
    /// For [`CfpqService::enqueue_paths`] requests: one page per
    /// answered pair (aligned with `pairs`), all enumerated against the
    /// same epoch. `None` for relational and single-path requests.
    pub paths: Option<Vec<PairPaths>>,
    /// Per-request scheduling profile, populated only when the service
    /// was built with [`CfpqService::with_observability`] — `None` on an
    /// uninstrumented service, so answers stay deterministic there.
    pub trace: Option<QueryTrace>,
}

/// The scheduling profile of one answered request (see
/// [`TicketAnswer::trace`]): where its latency went, and the id of its
/// `"ticket"` span in the installed [`Recorder`] for correlation with
/// the exported trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryTrace {
    /// The epoch the request was answered against.
    pub epoch: u64,
    /// Microseconds from enqueue to batch dispatch (queue wait).
    pub wait_us: u64,
    /// Microseconds from dispatch to resolve. The batch is served as a
    /// unit, so this is shared by every request batched together.
    pub run_us: u64,
    /// Requests served in the same batch (including this one).
    pub batch_size: u32,
    /// The request's `"ticket"` span id ([`SpanId::NONE`] when the
    /// installed recorder is disabled).
    pub span: SpanId,
}

/// What a ticket resolves to: the answer, or a typed error.
pub type TicketResult = Result<TicketAnswer, ServiceError>;

#[derive(Default)]
struct TicketState {
    slot: Mutex<Option<TicketResult>>,
    ready: Condvar,
}

impl TicketState {
    /// Resolves the ticket — first write wins, so a panic-recovery
    /// sweep can blanket-fail a batch without clobbering requests the
    /// worker already answered. Returns whether this call resolved it.
    fn resolve(&self, outcome: TicketResult) -> bool {
        let mut slot = lock_recover(&self.slot);
        if slot.is_some() {
            return false;
        }
        *slot = Some(outcome);
        self.ready.notify_all();
        true
    }
}

/// A claim on an enqueued request; [`Ticket::wait`] blocks until a
/// scheduler worker has resolved it — to an answer or a typed
/// [`ServiceError`], never a hang. Dropping a ticket without waiting is
/// fine: its queue slot is freed when the batch is dispatched, and the
/// un-awaited answer is simply discarded.
pub struct Ticket {
    state: Arc<TicketState>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("resolved", &self.try_peek())
            .finish()
    }
}

impl Ticket {
    /// Blocks until the request is resolved and returns the outcome
    /// (consuming the ticket — the answer is moved out, not copied,
    /// which matters for relation-sized results).
    pub fn wait(self) -> TicketResult {
        let mut slot = lock_recover(&self.state.slot);
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self
                .state
                .ready
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// [`Ticket::wait`] bounded by a timeout: `Ok(outcome)` if the
    /// request resolved in time, `Err(self)` (the ticket, still
    /// waitable) if the timeout elapsed first — a local timeout does
    /// not cancel the queued request, it only stops this wait.
    pub fn wait_timeout(self, timeout: Duration) -> Result<TicketResult, Ticket> {
        self.wait_deadline(Instant::now() + timeout)
    }

    /// [`Ticket::wait_timeout`] against an absolute deadline.
    pub fn wait_deadline(self, deadline: Instant) -> Result<TicketResult, Ticket> {
        let mut slot = lock_recover(&self.state.slot);
        loop {
            if let Some(outcome) = slot.take() {
                return Ok(outcome);
            }
            let now = Instant::now();
            if now >= deadline {
                drop(slot);
                return Err(self);
            }
            let (s, _timed_out) = self
                .state
                .ready
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            slot = s;
        }
    }

    /// The outcome, if already resolved (never blocks; leaves the
    /// ticket waitable).
    pub fn try_peek(&self) -> Option<TicketResult> {
        lock_recover(&self.state.slot).clone()
    }
}

/// A thread-safe, snapshot-isolated CFPQ query service over one evolving
/// graph. See the crate docs for the architecture; in short: readers
/// evaluate against immutable epochs ([`CfpqService::snapshot`]),
/// requests batch per query through a worker pool
/// ([`CfpqService::enqueue`]), and [`CfpqService::add_edges`] publishes
/// the next epoch with every cached closure repaired incrementally.
pub struct CfpqService<E: ServiceEngine> {
    inner: Arc<Inner<E>>,
    workers: Vec<JoinHandle<()>>,
}

/// An immutable view of one epoch: evaluations against a snapshot are
/// repeatable — later [`CfpqService::add_edges`] calls publish *new*
/// epochs and never mutate this one.
pub struct Snapshot<E: ServiceEngine> {
    inner: Arc<Inner<E>>,
    epoch: Arc<Epoch<E>>,
}

impl<E: ServiceEngine> Clone for Snapshot<E> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
            epoch: Arc::clone(&self.epoch),
        }
    }
}

impl<E: ServiceEngine> Snapshot<E> {
    /// The epoch this snapshot pins.
    pub fn epoch(&self) -> u64 {
        self.epoch.epoch
    }

    /// `|V|` of the pinned epoch.
    pub fn n_nodes(&self) -> usize {
        self.epoch.index.n_nodes()
    }

    /// Stored edges of the pinned epoch.
    pub fn n_edges(&self) -> usize {
        self.epoch.index.n_edges()
    }

    /// Evaluates a prepared relational query against this epoch. The
    /// first evaluation of a query in an epoch solves (or inherits the
    /// repaired) closure; every later one is an `Arc` bump.
    pub fn evaluate(&self, id: QueryId) -> QueryAnswer {
        let solved = solve_rel(&self.inner, &self.epoch, id.0);
        self.epoch
            .counters
            .queries_served
            .fetch_add(1, Ordering::Relaxed);
        solved.answer.clone()
    }

    /// Evaluates a prepared single-path query against this epoch; the
    /// returned index supports witness extraction
    /// ([`cfpq_core::single_path::extract_path`]) as usual.
    pub fn evaluate_single_path(
        &self,
        id: SinglePathId,
    ) -> Arc<SinglePathIndex<<E as LenEngine>::LenMatrix>> {
        let solved = solve_sp(&self.inner, &self.epoch, id.0);
        self.epoch
            .counters
            .queries_served
            .fetch_add(1, Ordering::Relaxed);
        solved
    }
}

/// Solves (or fetches) the relational closure of query `q` on `epoch`.
fn solve_rel<E: ServiceEngine>(
    inner: &Inner<E>,
    epoch: &Epoch<E>,
    q: usize,
) -> Arc<SolvedRel<E::Matrix>> {
    let prepared = read_recover(&inner.queries)[q].clone();
    let cell = epoch.rel.cell(q);
    let cold = Cell::new(false);
    let solved = cell
        .get_or_init(|| {
            cold.set(true);
            let index = solve_prepared(&epoch.index, &prepared);
            epoch.counters.cold_solves.fetch_add(1, Ordering::Relaxed);
            epoch
                .counters
                .cold_products
                .fetch_add(index.stats.products_computed as u64, Ordering::Relaxed);
            let answer =
                QueryAnswer::from_index(epoch.index.engine().name(), prepared.wcnf(), &index);
            Arc::new(SolvedRel { index, answer })
        })
        .clone();
    if !cold.get() {
        epoch.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
    }
    solved
}

/// Solves (or fetches) the single-path closure of query `q` on `epoch`.
fn solve_sp<E: ServiceEngine>(
    inner: &Inner<E>,
    epoch: &Epoch<E>,
    q: usize,
) -> Arc<SinglePathIndex<<E as LenEngine>::LenMatrix>> {
    let prepared = read_recover(&inner.sp_queries)[q].clone();
    let cell = epoch.sp.cell(q);
    let cold = Cell::new(false);
    let solved = cell
        .get_or_init(|| {
            cold.set(true);
            let index = solve_prepared_single_path(&epoch.index, &prepared);
            epoch.counters.cold_solves.fetch_add(1, Ordering::Relaxed);
            epoch
                .counters
                .cold_products
                .fetch_add(index.stats.products_computed as u64, Ordering::Relaxed);
            Arc::new(index)
        })
        .clone();
    if !cold.get() {
        epoch.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
    }
    solved
}

/// Restricts a sorted full relation to the requested pairs (empty
/// request = the full relation).
fn filter_pairs(full: &[(u32, u32)], wanted: &[(u32, u32)]) -> Vec<(u32, u32)> {
    if wanted.is_empty() {
        return full.to_vec();
    }
    let mut out: Vec<(u32, u32)> = wanted
        .iter()
        .copied()
        .filter(|p| full.binary_search(p).is_ok())
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// One scheduler worker: drain a query's whole queue, evaluate that
/// query once against the current epoch, answer every request from it.
///
/// Each batch runs under `catch_unwind`: a panic mid-serve (a buggy or
/// fault-injected engine, a malformed query) resolves the batch's
/// still-pending tickets to [`ServiceError::WorkerPanicked`] and is
/// then propagated to the supervisor loop in [`spawn_worker`], which
/// respawns the worker logic. The batch is the blast radius; the
/// scheduler, the epoch caches, and every other queue keep serving.
fn worker_loop<E: ServiceEngine>(inner: &Inner<E>) {
    loop {
        let (key, batch) = {
            let mut st = lock_recover(&inner.sched.state);
            loop {
                if let Some(key) = st.round_robin.pop_front() {
                    let queue = st.queues.remove(&key).expect("round-robin key has a queue");
                    st.queued -= queue.len();
                    inner.obs.queue_depth.set(st.queued as u64);
                    if st.queued == 0 {
                        inner.sched.drained.notify_all();
                    }
                    break (key, queue);
                }
                if st.shutdown {
                    return;
                }
                st = inner
                    .sched
                    .available
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Deadline-expired requests are dropped loudly *before* the
        // batch pays for any kernel work on their behalf.
        let dispatched = Instant::now();
        let (live, expired): (VecDeque<Request>, VecDeque<Request>) = batch
            .into_iter()
            .partition(|r| r.deadline.is_none_or(|d| dispatched < d));
        if !expired.is_empty() {
            inner.obs.deadline_expired.add(expired.len() as u64);
            for req in expired {
                req.ticket.resolve(Err(ServiceError::Deadline));
                inner
                    .obs
                    .finish_ticket(req.span, req.enqueued_at, dispatched, "deadline");
            }
        }
        if live.is_empty() {
            continue;
        }
        // Kept outside the catch_unwind so the panic sweep can fail the
        // batch's unanswered tickets and close their spans.
        let tickets: Vec<(Arc<TicketState>, SpanId, Instant)> = live
            .iter()
            .map(|r| (Arc::clone(&r.ticket), r.span, r.enqueued_at))
            .collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            serve_batch(inner, key, live, dispatched)
        }));
        if let Err(payload) = outcome {
            inner.obs.worker_panics.inc();
            // First-write-wins: requests the worker answered before the
            // panic keep their answers (and already-closed spans); the
            // rest fail typed.
            for (t, span, enqueued_at) in &tickets {
                if t.resolve(Err(ServiceError::WorkerPanicked)) {
                    inner
                        .obs
                        .finish_ticket(*span, *enqueued_at, dispatched, "panic");
                }
            }
            // Hand the panic to the supervisor so the worker is
            // accounted as died-and-respawned.
            resume_unwind(payload);
        }
    }
}

/// Spawns one supervised scheduler worker: the supervisor loop catches
/// panics escaping [`worker_loop`], counts the restart, and re-enters
/// the loop — the pool never shrinks below its configured size while
/// the service lives.
fn spawn_worker<E: ServiceEngine>(inner: Arc<Inner<E>>, i: usize) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("cfpq-service-{i}"))
        .spawn(move || {
            // Workers carry the service's recorder so solve/sweep/kernel
            // spans from batches they serve land in the same trace as
            // the ticket spans. Skipped entirely when tracing is off.
            let _obs = inner
                .obs
                .enabled
                .then(|| cfpq_obs::install(Arc::clone(&inner.obs.recorder)));
            loop {
                match catch_unwind(AssertUnwindSafe(|| worker_loop(&inner))) {
                    // Clean exit: shutdown with drained queues.
                    Ok(()) => return,
                    Err(_) => inner.obs.worker_restarts.inc(),
                }
            }
        })
        .expect("spawn service worker")
}

/// Resolves a successfully served request: attaches its [`QueryTrace`]
/// (on an instrumented service), closes the ticket span, and charges
/// the wait/run histograms.
fn resolve_served(
    obs: &Obs,
    req: &Request,
    dispatched: Instant,
    batch_size: u32,
    epoch: u64,
    pairs: Vec<(u32, u32)>,
    paths: Option<Vec<PairPaths>>,
) {
    let trace = obs.enabled.then(|| QueryTrace {
        epoch,
        wait_us: dispatched.duration_since(req.enqueued_at).as_micros() as u64,
        run_us: dispatched.elapsed().as_micros() as u64,
        batch_size,
        span: req.span,
    });
    req.ticket.resolve(Ok(TicketAnswer {
        epoch,
        pairs,
        paths,
        trace,
    }));
    obs.finish_ticket(req.span, req.enqueued_at, dispatched, "ok");
}

fn serve_batch<E: ServiceEngine>(
    inner: &Inner<E>,
    key: QueueKey,
    batch: VecDeque<Request>,
    dispatched: Instant,
) {
    let mut batch_sp = cfpq_obs::span("batch");
    let batch_size = batch.len() as u32;
    let epoch = read_recover(&inner.current).clone();
    if batch_sp.is_recording() {
        batch_sp.attr_str(
            "queue",
            match key {
                QueueKey::Rel(_) => "rel",
                QueueKey::Sp(_) => "sp",
                QueueKey::Paths(_) => "paths",
            },
        );
        batch_sp.attr_u64("requests", batch_size as u64);
        batch_sp.attr_u64("epoch", epoch.epoch);
    }
    let counters = &epoch.counters;
    counters.batches.fetch_add(1, Ordering::Relaxed);
    counters
        .queries_served
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    match key {
        QueueKey::Rel(q) => {
            let solved = solve_rel(inner, &epoch, q);
            let full = solved.answer.start_pairs();
            for req in batch {
                let pairs = filter_pairs(full, &req.pairs);
                resolve_served(
                    &inner.obs,
                    &req,
                    dispatched,
                    batch_size,
                    epoch.epoch,
                    pairs,
                    None,
                );
            }
        }
        QueueKey::Sp(q) => {
            let solved = solve_sp(inner, &epoch, q);
            let start = read_recover(&inner.sp_queries)[q].wcnf().start;
            let full = solved.pairs(start);
            for req in batch {
                let pairs = filter_pairs(&full, &req.pairs);
                resolve_served(
                    &inner.obs,
                    &req,
                    dispatched,
                    batch_size,
                    epoch.epoch,
                    pairs,
                    None,
                );
            }
        }
        QueueKey::Paths(q) => {
            let solved = solve_rel(inner, &epoch, q);
            let prepared = read_recover(&inner.queries)[q].clone();
            let wcnf = prepared.wcnf();
            let start = wcnf.start;
            // One enumerator per batch: its memoized length classes are
            // shared by every request and every pair answered here, and
            // it reads the same epoch the pruning closure came from —
            // pages are epoch-consistent by construction.
            let mut enumerator = PathEnumerator::from_index(&epoch.index, wcnf);
            let quota = inner.config.path_quota;
            for req in batch {
                let page = req.page.unwrap_or_default();
                let targets = filter_pairs(solved.answer.start_pairs(), &req.pairs);
                // The quota bounds one request's total paths across all
                // its pairs; a page it cuts short is reported truncated,
                // never silently clipped.
                let mut budget = quota;
                let mut answers = Vec::with_capacity(targets.len());
                for &(i, j) in &targets {
                    let result = if page.limit.min(budget) == 0 {
                        PathPage::truncated()
                    } else {
                        enumerator.page(
                            &solved.index,
                            start,
                            i,
                            j,
                            PageRequest {
                                limit: page.limit.min(budget),
                                ..page
                            },
                        )
                    };
                    budget -= result.paths.len();
                    counters
                        .paths_served
                        .fetch_add(result.paths.len() as u64, Ordering::Relaxed);
                    if !result.exhausted {
                        counters.pages_truncated.fetch_add(1, Ordering::Relaxed);
                    }
                    answers.push(PairPaths {
                        from: i,
                        to: j,
                        paths: result.paths,
                        exhausted: result.exhausted,
                    });
                }
                resolve_served(
                    &inner.obs,
                    &req,
                    dispatched,
                    batch_size,
                    epoch.epoch,
                    targets,
                    Some(answers),
                );
            }
        }
    }
}

impl<E: ServiceEngine> CfpqService<E> {
    /// Indexes `graph` on `engine` and starts a service over it with the
    /// default config.
    pub fn new(engine: E, graph: &Graph) -> Self {
        Self::with_config(engine, graph, ServiceConfig::default())
    }

    /// [`CfpqService::new`] with an explicit worker-pool config.
    pub fn with_config(engine: E, graph: &Graph, config: ServiceConfig) -> Self {
        Self::with_observability(engine, graph, config, Arc::new(NoopRecorder))
    }

    /// [`CfpqService::with_config`] with a span [`Recorder`] installed:
    /// worker threads and epoch publishes carry it, so every layer's
    /// spans — `"ticket"`, `"batch"`, `"epoch.publish"`, and the
    /// solver's `"solve"`/`"sweep"`/`"kernel"` spans underneath — land
    /// in one trace, and [`TicketAnswer::trace`] is populated. Pass an
    /// [`cfpq_obs::SpanCollector`] and export it with
    /// [`cfpq_obs::SpanCollector::chrome_trace_json`]. Metrics
    /// ([`CfpqService::metrics`]) are collected regardless of the
    /// recorder.
    pub fn with_observability(
        engine: E,
        graph: &Graph,
        config: ServiceConfig,
        recorder: Arc<dyn Recorder>,
    ) -> Self {
        let started = Instant::now();
        let index = GraphIndex::build(engine, graph);
        Self::over_full(
            index,
            config,
            started.elapsed().as_secs_f64() * 1e3,
            recorder,
        )
    }

    /// Starts a service over an already-built index.
    pub fn over(index: GraphIndex<E>, config: ServiceConfig) -> Self {
        Self::over_full(index, config, 0.0, Arc::new(NoopRecorder))
    }

    /// [`CfpqService::over`] with a span [`Recorder`] installed (see
    /// [`CfpqService::with_observability`]).
    pub fn over_with_observability(
        index: GraphIndex<E>,
        config: ServiceConfig,
        recorder: Arc<dyn Recorder>,
    ) -> Self {
        Self::over_full(index, config, 0.0, recorder)
    }

    fn over_full(
        index: GraphIndex<E>,
        config: ServiceConfig,
        build_ms: f64,
        recorder: Arc<dyn Recorder>,
    ) -> Self {
        let obs = Obs::new(recorder);
        let counters = Arc::new(EpochCounters::default());
        let epoch = Arc::new(Epoch {
            epoch: 0,
            index,
            rel: CacheMap::new(),
            sp: CacheMap::new(),
            counters: Arc::clone(&counters),
        });
        let failures_at_publish = obs.failure_snapshot();
        let inner = Arc::new(Inner {
            config,
            queries: RwLock::new(Vec::new()),
            sp_queries: RwLock::new(Vec::new()),
            current: RwLock::new(epoch),
            writer: Mutex::new(()),
            epochs: Mutex::new(vec![EpochRecord {
                epoch: 0,
                publish_ms: build_ms,
                counters,
                failures_at_publish,
            }]),
            obs,
            sched: SchedShared {
                state: Mutex::new(SchedState {
                    queues: BTreeMap::new(),
                    round_robin: VecDeque::new(),
                    queued: 0,
                    shutdown: false,
                }),
                available: Condvar::new(),
                drained: Condvar::new(),
            },
        });
        let workers = (0..config.workers.max(1))
            .map(|i| spawn_worker(Arc::clone(&inner), i))
            .collect();
        Self { inner, workers }
    }

    /// Scheduler worker threads.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// The service's metrics registry — always collecting (counters and
    /// histograms are atomics; no recorder required). Export with
    /// [`MetricsRegistry::prometheus_text`] or
    /// [`MetricsRegistry::json`]. See the crate README for the metric
    /// names.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.inner.obs.metrics)
    }

    /// Normalizes `grammar` and registers it for relational evaluation.
    /// Queries may be prepared at any time, including while the service
    /// is serving.
    pub fn prepare(&self, grammar: &Cfg) -> Result<QueryId, GrammarError> {
        Ok(self.prepare_query(PreparedQuery::new(grammar)?))
    }

    /// Registers a fully-configured [`PreparedQuery`].
    pub fn prepare_query(&self, query: PreparedQuery) -> QueryId {
        let mut queries = write_recover(&self.inner.queries);
        queries.push(Arc::new(query));
        QueryId(queries.len() - 1)
    }

    /// Compiles an NFA-form regular path query onto the unified RSM
    /// pipeline ([`cfpq_core::compile::CompiledQuery::from_nfa`]) and
    /// registers it like any relational query: RPQ tickets flow through
    /// the same multi-queue scheduler, epoch snapshot caches,
    /// incremental epoch repair on [`CfpqService::add_edges`], typed
    /// [`ServiceError`]s, and [`ServiceStats`] accounting.
    pub fn prepare_regular(&self, nfa: &cfpq_core::regular::Nfa) -> QueryId {
        self.prepare_query(cfpq_core::compile::CompiledQuery::from_nfa(nfa).into_prepared())
    }

    /// Compiles a context-free query through its RSM boxes
    /// ([`cfpq_core::compile::CompiledQuery::from_cfg`]) and registers
    /// it (nullable nonterminals follow the RSM ε-convention).
    pub fn prepare_rsm(&self, grammar: &Cfg) -> Result<QueryId, GrammarError> {
        Ok(self
            .prepare_query(cfpq_core::compile::CompiledQuery::from_cfg(grammar)?.into_prepared()))
    }

    /// Normalizes `grammar` and registers it for single-path (§5)
    /// evaluation.
    pub fn prepare_single_path(&self, grammar: &Cfg) -> Result<SinglePathId, GrammarError> {
        Ok(self.prepare_single_path_query(PreparedQuery::new(grammar)?))
    }

    /// Registers a fully-configured [`PreparedQuery`] for single-path
    /// evaluation.
    pub fn prepare_single_path_query(&self, query: PreparedQuery) -> SinglePathId {
        let mut queries = write_recover(&self.inner.sp_queries);
        queries.push(Arc::new(query));
        SinglePathId(queries.len() - 1)
    }

    /// The current epoch's snapshot. The returned view is immutable:
    /// concurrent [`CfpqService::add_edges`] calls publish later epochs
    /// without disturbing it.
    pub fn snapshot(&self) -> Snapshot<E> {
        Snapshot {
            inner: Arc::clone(&self.inner),
            epoch: read_recover(&self.inner.current).clone(),
        }
    }

    /// Evaluates against the current epoch (shorthand for
    /// `self.snapshot().evaluate(id)`).
    pub fn evaluate(&self, id: QueryId) -> QueryAnswer {
        self.snapshot().evaluate(id)
    }

    /// Evaluates a single-path query against the current epoch.
    pub fn evaluate_single_path(
        &self,
        id: SinglePathId,
    ) -> Arc<SinglePathIndex<<E as LenEngine>::LenMatrix>> {
        self.snapshot().evaluate_single_path(id)
    }

    /// The current epoch number (starts at 0; each successful
    /// [`CfpqService::add_edges`] publishes the next).
    pub fn current_epoch(&self) -> u64 {
        read_recover(&self.inner.current).epoch
    }

    /// Submits a relational request to the scheduler: answer `query`
    /// restricted to `pairs` (all of `R_S` if `pairs` is empty). Returns
    /// immediately; the [`Ticket`] resolves once a worker served the
    /// batch the request landed in. Fails fast with
    /// [`ServiceError::UnknownQuery`], [`ServiceError::Overloaded`]
    /// (queue at [`ServiceConfig::max_queued`]), or
    /// [`ServiceError::ShuttingDown`].
    pub fn enqueue(&self, query: QueryId, pairs: Vec<(u32, u32)>) -> Result<Ticket, ServiceError> {
        self.check_rel(query.0)?;
        self.push_request(QueueKey::Rel(query.0), pairs, None)
    }

    /// Submits an all-path enumeration request: stream `page`-bounded
    /// witness pages for `query`'s start nonterminal at each of `pairs`
    /// (every pair of `R_S` if `pairs` is empty). The [`Ticket`]'s
    /// answer carries one [`PairPaths`] per answered pair in
    /// [`TicketAnswer::paths`], all enumerated against a single epoch
    /// and clamped by [`ServiceConfig::path_quota`] — quota- or
    /// limit-cut pages come back with `exhausted: false`, never silently
    /// clipped. Fails fast like [`CfpqService::enqueue`].
    pub fn enqueue_paths(
        &self,
        query: QueryId,
        pairs: Vec<(u32, u32)>,
        page: PageRequest,
    ) -> Result<Ticket, ServiceError> {
        self.check_rel(query.0)?;
        self.push_request(QueueKey::Paths(query.0), pairs, Some(page))
    }

    /// Submits a single-path request to the scheduler (answers with the
    /// pair set of the start nonterminal, filtered like
    /// [`CfpqService::enqueue`]). Fails fast like
    /// [`CfpqService::enqueue`].
    pub fn enqueue_single_path(
        &self,
        query: SinglePathId,
        pairs: Vec<(u32, u32)>,
    ) -> Result<Ticket, ServiceError> {
        let registered = read_recover(&self.inner.sp_queries).len();
        if query.0 >= registered {
            return Err(ServiceError::UnknownQuery {
                id: query.0,
                registered,
            });
        }
        self.push_request(QueueKey::Sp(query.0), pairs, None)
    }

    fn check_rel(&self, id: usize) -> Result<(), ServiceError> {
        let registered = read_recover(&self.inner.queries).len();
        if id >= registered {
            return Err(ServiceError::UnknownQuery { id, registered });
        }
        Ok(())
    }

    fn push_request(
        &self,
        key: QueueKey,
        pairs: Vec<(u32, u32)>,
        page: Option<PageRequest>,
    ) -> Result<Ticket, ServiceError> {
        let config = &self.inner.config;
        let obs = &self.inner.obs;
        let state = Arc::new(TicketState::default());
        {
            let mut st = lock_recover(&self.inner.sched.state);
            if st.shutdown {
                return Err(ServiceError::ShuttingDown);
            }
            if st.queued >= config.max_queued {
                let queued = st.queued;
                drop(st);
                obs.requests_shed.inc();
                // The hint scales with how deep the backlog is per
                // worker: a fuller pool needs a longer pause.
                let per_worker = queued / config.workers.max(1);
                return Err(ServiceError::Overloaded {
                    queued,
                    max_queued: config.max_queued,
                    retry_after: Duration::from_millis(1 + per_worker as u64),
                });
            }
            st.queued += 1;
            obs.queue_depth.set(st.queued as u64);
            obs.queue_depth_max.set_max(st.queued as u64);
            let now = Instant::now();
            let deadline = config.default_deadline.map(|d| now + d);
            // The ticket span opens here (a root — it outlives any span
            // the enqueueing thread may have open) and is closed by the
            // thread that resolves the request.
            let span = if obs.enabled {
                obs.recorder.start("ticket", SpanId::NONE)
            } else {
                SpanId::NONE
            };
            let queue = st.queues.entry(key).or_default();
            let was_empty = queue.is_empty();
            queue.push_back(Request {
                pairs,
                page,
                deadline,
                ticket: Arc::clone(&state),
                enqueued_at: now,
                span,
            });
            if was_empty {
                st.round_robin.push_back(key);
            }
        }
        self.inner.sched.available.notify_one();
        Ok(Ticket { state })
    }

    /// Inserts a batch of edges and publishes the next epoch; returns
    /// how many edges were genuinely new (`0` publishes nothing — the
    /// current epoch already answers correctly). Duplicate edges are
    /// skipped and unseen node ids grow the node universe, exactly as in
    /// [`GraphIndex::add_edges`].
    ///
    /// The new epoch is built **off to the side**: the current index is
    /// cloned, the batch applied, and every closure the current epoch
    /// has solved is repaired through the semi-naive resume paths —
    /// concurrent readers keep answering from the published epoch the
    /// whole time and switch only when the new one is complete. Writers
    /// are serialized with each other (epochs are totally ordered).
    ///
    /// Publishing is all-or-nothing under panics, too: every
    /// intermediate lives on the stack until the final atomic swap, so
    /// if a repair panics (a faulty engine, resource exhaustion) the
    /// half-built epoch is simply dropped, the panic propagates to the
    /// *caller*, and readers keep answering from the old epoch — the
    /// service keeps serving.
    pub fn add_edges(&self, edges: &[(NodeId, &str, NodeId)]) -> usize {
        let _writer = lock_recover(&self.inner.writer);
        let started = Instant::now();
        let cur = read_recover(&self.inner.current).clone();
        // All-duplicate batches (idempotent retries) must not pay the
        // index clone below: an edge can only be new if it names an
        // unseen node, an unseen label, or an unset cell.
        let n = cur.index.n_nodes() as NodeId;
        let all_present = edges.iter().all(|&(u, name, v)| {
            u < n && v < n && cur.index.adjacency(name).is_some_and(|m| m.get(u, v))
        });
        if all_present {
            return 0;
        }
        let mut index = cur.index.clone();
        let batch = index.add_edges(edges);
        if batch.inserted == 0 {
            return 0;
        }
        // The publishing thread carries the service's recorder for the
        // duration of the build, so the repair work below (its
        // `"query.repair"` / `"sweep"` / `"kernel"` spans) nests under
        // one `"epoch.publish"` span per published epoch.
        let _obs_install = self
            .inner
            .obs
            .enabled
            .then(|| cfpq_obs::install(Arc::clone(&self.inner.obs.recorder)));
        let mut publish_sp = cfpq_obs::span("epoch.publish");
        let n = index.n_nodes();
        let counters = Arc::new(EpochCounters::default());
        let rel = CacheMap::new();
        let sp = CacheMap::new();
        let batches = [batch];

        let queries = read_recover(&self.inner.queries).clone();
        for (q, solved) in cur.rel.filled() {
            let prepared = &queries[q];
            let wcnf = prepared.wcnf();
            let new_pairs = batch_seed_pairs(
                &batches,
                &index.term_bindings(wcnf),
                &wcnf.nts_by_terminal(),
                wcnf,
            );
            let mut repaired = solved.index.clone();
            let stats = repair_prepared(index.engine(), prepared, &mut repaired, new_pairs, n);
            counters.repairs.fetch_add(1, Ordering::Relaxed);
            counters
                .repair_products
                .fetch_add(stats.products_computed as u64, Ordering::Relaxed);
            let answer = QueryAnswer::from_index(index.engine().name(), wcnf, &repaired);
            rel.preset(
                q,
                Arc::new(SolvedRel {
                    index: repaired,
                    answer,
                }),
            );
        }
        let sp_queries = read_recover(&self.inner.sp_queries).clone();
        for (q, solved) in cur.sp.filled() {
            let prepared = &sp_queries[q];
            let wcnf = prepared.wcnf();
            let new_pairs = batch_seed_pairs(
                &batches,
                &index.term_bindings(wcnf),
                &wcnf.nts_by_terminal(),
                wcnf,
            );
            let mut repaired = (*solved).clone();
            let stats =
                repair_prepared_single_path(index.engine(), prepared, &mut repaired, new_pairs, n);
            counters.repairs.fetch_add(1, Ordering::Relaxed);
            counters
                .repair_products
                .fetch_add(stats.products_computed as u64, Ordering::Relaxed);
            sp.preset(q, Arc::new(repaired));
        }

        let next = Arc::new(Epoch {
            epoch: cur.epoch + 1,
            index,
            rel,
            sp,
            counters: Arc::clone(&counters),
        });
        let publish_ms = started.elapsed().as_secs_f64() * 1e3;
        self.inner.obs.publish_us.observe((publish_ms * 1e3) as u64);
        if publish_sp.is_recording() {
            publish_sp.attr_u64("epoch", cur.epoch + 1);
            publish_sp.attr_u64("inserted", batches[0].inserted as u64);
            publish_sp.attr_u64("repairs", counters.repairs.load(Ordering::Relaxed));
        }
        *write_recover(&self.inner.current) = next;
        lock_recover(&self.inner.epochs).push(EpochRecord {
            epoch: cur.epoch + 1,
            publish_ms,
            counters,
            failures_at_publish: self.inner.obs.failure_snapshot(),
        });
        batches[0].inserted
    }

    /// Stops accepting requests and drains the queues within the
    /// configured [`ServiceConfig::drain_deadline`]; see
    /// [`CfpqService::shutdown_within`]. Idempotent — `Drop` calls this
    /// too, so calling it explicitly just makes the bound yours.
    pub fn shutdown(&self) -> usize {
        self.shutdown_within(self.inner.config.drain_deadline)
    }

    /// Stops accepting requests ([`ServiceError::ShuttingDown`] at
    /// enqueue from now on) and gives workers up to `drain` to serve
    /// what is already queued. Whatever is still queued when the bound
    /// expires is resolved to [`ServiceError::ShuttingDown`] — returns
    /// how many tickets that was (0 = everything drained in time). The
    /// drain bound covers *queued* requests; a batch already being
    /// served runs to completion (its kernel work is finite).
    pub fn shutdown_within(&self, drain: Duration) -> usize {
        let deadline = Instant::now() + drain;
        let mut st = lock_recover(&self.inner.sched.state);
        st.shutdown = true;
        self.inner.sched.available.notify_all();
        while st.queued > 0 {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (s, _timed_out) = self
                .inner
                .sched
                .drained
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = s;
        }
        // Past the bound: fail what could not be drained, loudly.
        let undrained: Vec<Request> = st
            .queues
            .iter_mut()
            .flat_map(|(_, q)| q.drain(..))
            .collect();
        st.queues.clear();
        st.round_robin.clear();
        st.queued = 0;
        drop(st);
        self.inner.sched.available.notify_all();
        let now = Instant::now();
        for req in &undrained {
            req.ticket.resolve(Err(ServiceError::ShuttingDown));
            self.inner
                .obs
                .finish_ticket(req.span, req.enqueued_at, now, "shutdown");
        }
        undrained.len()
    }

    /// Per-epoch service statistics, in epoch order. Counters of the
    /// current epoch are still live (they advance as requests arrive).
    ///
    /// The failure fields (`worker_panics`, `worker_restarts`,
    /// `requests_shed`, `deadline_expired`) are *derived* views of the
    /// registry counters behind [`CfpqService::metrics`] — the single
    /// source of truth — attributed to an epoch by differencing the
    /// snapshot taken at its publish against the next one's (the live
    /// counter values, for the current epoch).
    pub fn stats(&self) -> Vec<ServiceStats> {
        let records = lock_recover(&self.inner.epochs);
        let live = self.inner.obs.failure_snapshot();
        records
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let base = r.failures_at_publish;
                let next = records.get(i + 1).map_or(live, |n| n.failures_at_publish);
                ServiceStats {
                    epoch: r.epoch,
                    publish_ms: r.publish_ms,
                    queries_served: r.counters.queries_served.load(Ordering::Relaxed),
                    batches: r.counters.batches.load(Ordering::Relaxed),
                    cache_hits: r.counters.cache_hits.load(Ordering::Relaxed),
                    cold_solves: r.counters.cold_solves.load(Ordering::Relaxed),
                    cold_products: r.counters.cold_products.load(Ordering::Relaxed),
                    repairs: r.counters.repairs.load(Ordering::Relaxed),
                    repair_products: r.counters.repair_products.load(Ordering::Relaxed),
                    paths_served: r.counters.paths_served.load(Ordering::Relaxed),
                    pages_truncated: r.counters.pages_truncated.load(Ordering::Relaxed),
                    worker_panics: next.worker_panics - base.worker_panics,
                    worker_restarts: next.worker_restarts - base.worker_restarts,
                    requests_shed: next.requests_shed - base.requests_shed,
                    deadline_expired: next.deadline_expired - base.deadline_expired,
                }
            })
            .collect()
    }
}

impl<E: ServiceEngine> Drop for CfpqService<E> {
    /// Shuts down with the configured bounded drain
    /// ([`CfpqService::shutdown_within`]): workers get
    /// [`ServiceConfig::drain_deadline`] to serve what is queued, every
    /// still-queued ticket then resolves to
    /// [`ServiceError::ShuttingDown`], and the workers are joined — the
    /// drop path never blocks forever on queued work.
    fn drop(&mut self) {
        self.shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpq_core::query::{solve, Backend};
    use cfpq_core::session::CfpqSession;
    use cfpq_grammar::queries;
    use cfpq_graph::generators;
    use cfpq_matrix::{DenseEngine, Device, ParDenseEngine, ParSparseEngine, SparseEngine};

    #[test]
    fn service_matches_one_shot_solve() {
        let grammar = queries::query1();
        let graph = generators::paper_example();
        let reference = solve(&graph, &grammar, Backend::Sparse).unwrap();
        let service = CfpqService::new(SparseEngine, &graph);
        let q = service.prepare(&grammar).unwrap();
        let answer = service.evaluate(q);
        assert_eq!(answer.start_pairs(), reference.start_pairs());
        assert_eq!(service.current_epoch(), 0);
    }

    #[test]
    fn snapshots_are_isolated_from_updates() {
        let grammar = Cfg::parse("S -> a S b | a b").unwrap();
        let chain = generators::word_chain(&["a", "a", "b"]);
        let service = CfpqService::new(SparseEngine, &chain);
        let q = service.prepare(&grammar).unwrap();
        let old = service.snapshot();
        assert_eq!(old.evaluate(q).start_pairs(), &[(1, 3)]);

        assert_eq!(service.add_edges(&[(3, "b", 4)]), 1);
        assert_eq!(service.current_epoch(), 1);
        // The old snapshot still answers the old graph...
        assert_eq!(old.evaluate(q).start_pairs(), &[(1, 3)]);
        assert_eq!(old.epoch(), 0);
        // ...while the new epoch sees the repaired closure.
        let new = service.snapshot();
        assert_eq!(new.epoch(), 1);
        assert_eq!(new.evaluate(q).start_pairs(), &[(0, 4), (1, 3)]);

        // The repair was incremental and cheaper than the epoch-1 cold
        // solve would have been.
        let stats = service.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[1].repairs, 1);
        assert!(stats[1].repair_products > 0);
        assert_eq!(stats[1].cold_solves, 0, "epoch 1 never cold-solved");
    }

    #[test]
    fn duplicate_batches_publish_nothing() {
        let graph = generators::paper_example();
        let service = CfpqService::new(DenseEngine, &graph);
        let e = graph.edges()[0];
        assert_eq!(
            service.add_edges(&[(e.from, graph.label_name(e.label), e.to)]),
            0
        );
        assert_eq!(service.current_epoch(), 0, "no-op batches publish nothing");
        assert_eq!(service.stats().len(), 1);
    }

    #[test]
    fn scheduler_batches_share_one_closure() {
        let grammar = queries::query1();
        let graph = generators::paper_example();
        let reference = solve(&graph, &grammar, Backend::Sparse).unwrap();
        let service = CfpqService::with_config(SparseEngine, &graph, ServiceConfig::new(3));
        let q = service.prepare(&grammar).unwrap();
        let tickets: Vec<Ticket> = (0..16)
            .map(|_| service.enqueue(q, vec![]).unwrap())
            .collect();
        for t in tickets {
            assert_eq!(t.wait().unwrap().pairs, reference.start_pairs());
        }
        let stats = service.stats();
        assert_eq!(stats[0].cold_solves, 1, "one solve serves every request");
        assert_eq!(stats[0].queries_served, 16);
        assert!(stats[0].batches <= 16);
    }

    #[test]
    fn pair_filters_restrict_the_answer() {
        let grammar = queries::query1();
        let graph = generators::paper_example();
        let service = CfpqService::new(SparseEngine, &graph);
        let q = service.prepare(&grammar).unwrap();
        // Full R_S = [(0,0), (0,2), (1,2)].
        let t = service
            .enqueue(q, vec![(1, 2), (2, 2), (0, 0), (1, 2)])
            .unwrap();
        assert_eq!(t.wait().unwrap().pairs, vec![(0, 0), (1, 2)]);
    }

    #[test]
    fn rpq_tickets_ride_the_scheduler_and_epoch_repair() {
        use cfpq_core::regular::{solve_regular, Nfa};
        let mut graph = Graph::new(4);
        graph.add_edge_named(0, "a", 1);
        graph.add_edge_named(1, "a", 2);
        graph.add_edge_named(2, "b", 3);
        let nfa = Nfa::star_then("a", "b");
        let service = CfpqService::new(SparseEngine, &graph);
        let q = service.prepare_regular(&nfa);

        let ticket = service.enqueue(q, vec![]).unwrap();
        let answer = ticket.wait().unwrap();
        assert_eq!(
            answer.pairs,
            solve_regular(&SparseEngine, &graph, &nfa).pairs()
        );

        // Publish a new epoch: the RPQ closure is repaired off to the
        // side like any relational closure, and the next ticket answers
        // against the new graph.
        let epoch_before = service.current_epoch();
        assert_eq!(service.add_edges(&[(0, "b", 2)]), 1);
        assert!(service.current_epoch() > epoch_before);
        graph.add_edge_named(0, "b", 2);
        let repaired = service.enqueue(q, vec![]).unwrap().wait().unwrap();
        assert_eq!(
            repaired.pairs,
            solve_regular(&SparseEngine, &graph, &nfa).pairs()
        );
        // The repair shows up in the published epoch's accounting.
        let stats = service.stats();
        assert!(
            stats.iter().any(|s| s.repairs > 0),
            "epoch repair accounted in ServiceStats"
        );
        // Pair filtering works for RPQ tickets like any other.
        let filtered = service.enqueue(q, vec![(0, 3)]).unwrap().wait().unwrap();
        assert_eq!(filtered.pairs, vec![(0, 3)]);
    }

    #[test]
    fn rsm_prepared_cfpq_served_like_wcnf() {
        let grammar = Cfg::parse("S -> a S b | a b").unwrap();
        let graph = generators::word_chain(&["a", "a", "b", "b"]);
        let service = CfpqService::new(SparseEngine, &graph);
        let rsm_q = service.prepare_rsm(&grammar).unwrap();
        let cnf_q = service.prepare(&grammar).unwrap();
        let rsm_pairs = service
            .enqueue(rsm_q, vec![])
            .unwrap()
            .wait()
            .unwrap()
            .pairs;
        let cnf_pairs = service
            .enqueue(cnf_q, vec![])
            .unwrap()
            .wait()
            .unwrap()
            .pairs;
        assert_eq!(rsm_pairs, cnf_pairs);
    }

    #[test]
    fn unknown_queries_fail_typed_at_enqueue() {
        let graph = generators::paper_example();
        let service = CfpqService::new(SparseEngine, &graph);
        let q = service.prepare(&queries::query1()).unwrap();
        // Handles are indices; forge out-of-range ones.
        let bad_rel = QueryId(7);
        let bad_sp = SinglePathId(0);
        assert_eq!(
            service.enqueue(bad_rel, vec![]).err(),
            Some(ServiceError::UnknownQuery {
                id: 7,
                registered: 1
            })
        );
        assert_eq!(
            service
                .enqueue_paths(bad_rel, vec![], PageRequest::default())
                .err(),
            Some(ServiceError::UnknownQuery {
                id: 7,
                registered: 1
            })
        );
        assert_eq!(
            service.enqueue_single_path(bad_sp, vec![]).err(),
            Some(ServiceError::UnknownQuery {
                id: 0,
                registered: 0
            })
        );
        // The registered query still serves.
        assert!(service.enqueue(q, vec![]).unwrap().wait().is_ok());
    }

    #[test]
    fn wait_timeout_returns_the_ticket_on_timeout() {
        let graph = generators::paper_example();
        let service = CfpqService::new(SparseEngine, &graph);
        let q = service.prepare(&queries::query1()).unwrap();
        let t = service.enqueue(q, vec![]).unwrap();
        // Either the worker already resolved it (fine) or the zero
        // timeout hands the ticket back — and a later bounded wait gets
        // the answer. Never a hang.
        match t.wait_timeout(Duration::ZERO) {
            Ok(outcome) => assert!(outcome.is_ok()),
            Err(ticket) => {
                let outcome = ticket
                    .wait_timeout(Duration::from_secs(10))
                    .expect("ticket must resolve well within the bound");
                assert!(outcome.is_ok());
            }
        }
    }

    #[test]
    fn dropped_tickets_leak_nothing() {
        // Satellite regression: dropping a ticket without waiting must
        // not leak its queue slot (the backpressure gauge) or block
        // shutdown; try_peek on a sibling stays consistent.
        let graph = generators::paper_example();
        let service = CfpqService::with_config(
            SparseEngine,
            &graph,
            ServiceConfig::new(1).with_max_queued(4),
        );
        let q = service.prepare(&queries::query1()).unwrap();
        for _ in 0..16 {
            // 4× the queue bound of fire-and-forget requests: if drops
            // leaked their slot, enqueue would start shedding.
            let t = service.enqueue(q, vec![]);
            assert!(!matches!(t, Err(ServiceError::Overloaded { .. })));
            drop(t);
            // Let the single worker drain between drops so the queue
            // depth stays bounded by live requests, not by leaks.
            let keep = service.enqueue(q, vec![]).unwrap();
            let outcome = keep
                .wait_timeout(Duration::from_secs(10))
                .expect("sibling of a dropped ticket must still resolve");
            let answer = outcome.unwrap();
            assert_eq!(answer.pairs, vec![(0, 0), (0, 2), (1, 2)]);
        }
        // A resolved ticket peeks consistently as long as it is held.
        let held = service.enqueue(q, vec![]).unwrap();
        while held.try_peek().is_none() {
            std::thread::yield_now();
        }
        assert_eq!(held.try_peek(), held.try_peek());
        drop(held);
        assert_eq!(service.shutdown(), 0, "nothing left queued");
    }

    #[test]
    fn shutdown_fails_queued_requests_typed_and_rejects_new_ones() {
        let graph = generators::paper_example();
        let service = CfpqService::with_config(SparseEngine, &graph, ServiceConfig::new(1));
        let q = service.prepare(&graph_grammar()).unwrap();
        // Stall the single worker with a slow handmade queue? Not
        // needed: shutdown with a zero drain bound fails whatever the
        // worker has not picked up yet, and everything it did pick up
        // resolves normally. Either way every ticket resolves.
        let tickets: Vec<Ticket> = (0..32)
            .map(|_| service.enqueue(q, vec![]).unwrap())
            .collect();
        let failed = service.shutdown_within(Duration::ZERO);
        for t in tickets {
            match t.wait_timeout(Duration::from_secs(10)) {
                Ok(Ok(_)) | Ok(Err(ServiceError::ShuttingDown)) => {}
                other => panic!("unexpected post-shutdown outcome: {other:?}"),
            }
        }
        // New requests are rejected typed.
        assert_eq!(
            service.enqueue(q, vec![]).err(),
            Some(ServiceError::ShuttingDown)
        );
        // Second shutdown is an idempotent no-op.
        assert_eq!(service.shutdown(), 0);
        let _ = failed; // zero or more depending on worker timing
    }

    fn graph_grammar() -> Cfg {
        Cfg::parse("S -> a S b | a b").unwrap()
    }

    #[test]
    fn single_path_matches_session_and_supports_extraction() {
        use cfpq_core::single_path::{extract_path, validate_witness};
        let grammar = queries::query1();
        let wcnf = grammar
            .to_wcnf(cfpq_grammar::cnf::CnfOptions::default())
            .unwrap();
        let graph = generators::paper_example();
        let mut session = CfpqSession::new(SparseEngine, &graph);
        let sid = session.prepare_single_path(&grammar).unwrap();
        let expect = session.evaluate_single_path(sid).pairs(wcnf.start);

        let service = CfpqService::new(SparseEngine, &graph);
        let q = service.prepare_single_path(&grammar).unwrap();
        let idx = service.evaluate_single_path(q);
        assert_eq!(idx.pairs(wcnf.start), expect);
        let (i, j, len) = idx.pairs_with_lengths(wcnf.start)[0];
        let path = extract_path(&idx, &graph, &wcnf, wcnf.start, i, j).unwrap();
        assert_eq!(path.len() as u32, len);
        assert!(validate_witness(&path, &graph, &wcnf, wcnf.start, i, j));
        // Scheduler path agrees.
        let t = service.enqueue_single_path(q, vec![]).unwrap();
        assert_eq!(t.wait().unwrap().pairs, expect);
    }

    #[test]
    fn single_path_repairs_across_epochs() {
        let grammar = Cfg::parse("S -> a S b | a b").unwrap();
        let chain = generators::word_chain(&["a", "a", "b"]);
        let service = CfpqService::new(SparseEngine, &chain);
        let q = service.prepare_single_path(&grammar).unwrap();
        let start = service.inner.sp_queries.read().unwrap()[0].wcnf().start;
        assert_eq!(service.evaluate_single_path(q).pairs(start), vec![(1, 3)]);
        service.add_edges(&[(3, "b", 4)]);
        let idx = service.evaluate_single_path(q);
        assert_eq!(idx.pairs(start), vec![(0, 4), (1, 3)]);
        assert_eq!(idx.length(start, 0, 4), Some(4));
        let stats = service.stats();
        assert_eq!(stats[1].repairs, 1);
    }

    #[test]
    fn growth_and_unknown_labels_are_served() {
        let grammar = Cfg::parse("S -> a S b | a b").unwrap();
        let chain = generators::word_chain(&["a", "a", "b"]);
        let service = CfpqService::new(DenseEngine, &chain);
        let q = service.prepare(&grammar).unwrap();
        service.evaluate(q);
        // Node 4 is unseen; label "z" is unknown to the grammar.
        assert_eq!(service.add_edges(&[(3, "b", 4), (0, "z", 99)]), 2);
        let snap = service.snapshot();
        assert_eq!(snap.n_nodes(), 100);
        assert_eq!(snap.evaluate(q).start_pairs(), &[(0, 4), (1, 3)]);
    }

    #[test]
    fn concurrent_readers_and_writer_smoke() {
        use std::sync::atomic::AtomicBool;
        let grammar = Cfg::parse("S -> a S b | a b").unwrap();
        let chain = generators::word_chain(&["a", "a", "a", "b", "b"]);
        let service = CfpqService::with_config(ParSparseEngine::new(Device::new(2)), &chain, {
            ServiceConfig::new(2)
        });
        let q = service.prepare(&grammar).unwrap();
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    while !done.load(Ordering::Relaxed) {
                        let snap = service.snapshot();
                        let answer = snap.evaluate(q);
                        // Within one snapshot, repeated evaluation is
                        // repeatable even while the writer publishes.
                        assert_eq!(
                            snap.evaluate(q).start_pairs(),
                            answer.start_pairs(),
                            "snapshot must be immutable"
                        );
                    }
                });
            }
            service.add_edges(&[(5, "b", 6)]);
            service.add_edges(&[(6, "b", 7)]);
            done.store(true, Ordering::Relaxed);
        });
        let final_pairs = service.evaluate(q).start_pairs().to_vec();
        assert_eq!(final_pairs, vec![(0, 6), (1, 5), (2, 4)]);
    }

    #[test]
    fn all_engines_serve_identically() {
        let grammar = queries::query1();
        let graph = generators::paper_example();
        let expect = solve(&graph, &grammar, Backend::Sparse)
            .unwrap()
            .start_pairs()
            .to_vec();
        fn check<E: ServiceEngine>(engine: E, graph: &Graph, grammar: &Cfg) -> Vec<(u32, u32)> {
            let service = CfpqService::new(engine, graph);
            let q = service.prepare(grammar).unwrap();
            let t = service.enqueue(q, vec![]).unwrap();
            t.wait().unwrap().pairs
        }
        assert_eq!(check(DenseEngine, &graph, &grammar), expect);
        assert_eq!(check(SparseEngine, &graph, &grammar), expect);
        assert_eq!(
            check(ParDenseEngine::new(Device::new(2)), &graph, &grammar),
            expect
        );
        assert_eq!(
            check(ParSparseEngine::new(Device::new(2)), &graph, &grammar),
            expect
        );
    }

    #[test]
    fn paths_tickets_stream_valid_pages() {
        use cfpq_core::single_path::validate_witness;
        let grammar = Cfg::parse("S -> a S b | a b").unwrap();
        let wcnf = grammar
            .to_wcnf(cfpq_grammar::cnf::CnfOptions::default())
            .unwrap();
        let mut graph = Graph::new(1);
        graph.add_edge_named(0, "a", 0);
        graph.add_edge_named(0, "b", 0);
        let service = CfpqService::new(SparseEngine, &graph);
        let q = service.prepare(&grammar).unwrap();
        let answer = service
            .enqueue_paths(
                q,
                vec![],
                PageRequest {
                    offset: 0,
                    limit: 10,
                    max_len: 8,
                },
            )
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(answer.pairs, vec![(0, 0)]);
        let pages = answer.paths.expect("paths request answers with pages");
        assert_eq!(pages.len(), 1);
        let page = &pages[0];
        assert_eq!(page.paths.len(), 4, "a^n b^n for n in 1..=4");
        assert!(page.exhausted);
        for p in &page.paths {
            assert!(validate_witness(p, &graph, &wcnf, wcnf.start, 0, 0));
        }
        let stats = service.stats();
        assert_eq!(stats[0].paths_served, 4);
        assert_eq!(stats[0].pages_truncated, 0);
    }

    #[test]
    fn path_quota_truncates_loudly() {
        let grammar = Cfg::parse("S -> a S b | a b").unwrap();
        let mut graph = Graph::new(1);
        graph.add_edge_named(0, "a", 0);
        graph.add_edge_named(0, "b", 0);
        let service = CfpqService::with_config(
            SparseEngine,
            &graph,
            ServiceConfig::new(1).with_path_quota(2),
        );
        let q = service.prepare(&grammar).unwrap();
        let answer = service
            .enqueue_paths(
                q,
                vec![],
                PageRequest {
                    offset: 0,
                    limit: 10,
                    max_len: 12,
                },
            )
            .unwrap()
            .wait()
            .unwrap();
        let page = &answer.paths.unwrap()[0];
        assert_eq!(page.paths.len(), 2, "quota clamps the page");
        assert!(!page.exhausted, "the cut is reported, not silent");
        let stats = service.stats();
        assert_eq!(stats[0].paths_served, 2);
        assert_eq!(stats[0].pages_truncated, 1);
    }

    #[test]
    fn paths_pages_are_epoch_consistent_across_updates() {
        use cfpq_core::all_paths::enumerate_paths;
        use cfpq_core::all_paths::EnumLimits;
        use cfpq_core::relational::solve_on_engine;
        let grammar = Cfg::parse("S -> a S b | a b").unwrap();
        let wcnf = grammar
            .to_wcnf(cfpq_grammar::cnf::CnfOptions::default())
            .unwrap();
        let chain = generators::word_chain(&["a", "a", "b"]);
        let service = CfpqService::new(SparseEngine, &chain);
        let q = service.prepare(&grammar).unwrap();
        let req = PageRequest {
            offset: 0,
            limit: 16,
            max_len: 8,
        };
        let before = service
            .enqueue_paths(q, vec![], req)
            .unwrap()
            .wait()
            .unwrap();
        service.add_edges(&[(3, "b", 4)]);
        let after = service
            .enqueue_paths(q, vec![], req)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(before.epoch, 0);
        assert_eq!(after.epoch, 1);
        // Each answer equals a from-scratch enumeration over the graph
        // of its own epoch — pages never mix epochs.
        let mut full = generators::word_chain(&["a", "a", "b"]);
        full.add_edge_named(3, "b", 4);
        for (answer, graph) in [(&before, &chain), (&after, &full)] {
            let rel = solve_on_engine(&SparseEngine, graph, &wcnf);
            for pp in answer.paths.as_ref().unwrap() {
                let expect = enumerate_paths(
                    &rel,
                    graph,
                    &wcnf,
                    wcnf.start,
                    pp.from,
                    pp.to,
                    EnumLimits {
                        max_len: req.max_len,
                        max_paths: req.limit,
                    },
                );
                assert_eq!(pp.paths, expect.paths);
                assert_eq!(pp.exhausted, expect.exhausted);
            }
        }
        assert_eq!(after.pairs, vec![(0, 4), (1, 3)]);
    }

    #[test]
    fn from_parallelism_coordinates_the_pools() {
        let (config, device) = ServiceConfig::from_parallelism(Parallelism::new(4), 3);
        assert_eq!(config.workers, 3);
        assert_eq!(device.n_workers(), 1);
        let graph = generators::paper_example();
        let service = CfpqService::with_config(ParSparseEngine::new(device), &graph, config);
        assert_eq!(service.n_workers(), 3);
        let q = service.prepare(&queries::query1()).unwrap();
        assert_eq!(
            service.enqueue(q, vec![]).unwrap().wait().unwrap().pairs,
            vec![(0, 0), (0, 2), (1, 2)]
        );
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        let mut a = Backoff::with_bounds(7, Duration::from_millis(2), Duration::from_millis(50));
        let mut b = Backoff::with_bounds(7, Duration::from_millis(2), Duration::from_millis(50));
        let delays: Vec<Duration> = (0..8).map(|_| a.next_delay()).collect();
        let replay: Vec<Duration> = (0..8).map(|_| b.next_delay()).collect();
        assert_eq!(delays, replay, "same seed, same schedule");
        for d in &delays {
            assert!(*d >= Duration::from_millis(2) && *d <= Duration::from_millis(50));
        }
        let mut c = Backoff::with_bounds(8, Duration::from_millis(2), Duration::from_millis(50));
        assert_ne!(
            (0..8).map(|_| c.next_delay()).collect::<Vec<_>>(),
            delays,
            "different seeds decorrelate"
        );
    }
}
