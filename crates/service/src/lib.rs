//! # cfpq-service
//!
//! The concurrent serving layer over the session engine: many reader
//! threads evaluating prepared queries against one evolving graph,
//! without a global lock around the solver.
//!
//! The paper frames CFPQ as a graph-database primitive, and follow-up
//! work (Medeiros et al., "An Algorithm for Context-Free Path Queries
//! over Graph Databases") evaluates it explicitly in a serving context —
//! but `cfpq_core::session::CfpqSession` is strictly single-threaded:
//! one caller, one mutable session, queries and edge updates fully
//! serialized. This crate adds the missing subsystem:
//!
//! * **Snapshot isolation.** The graph lives in immutable epoch-tagged
//!   [`Snapshot`]s: an `Arc`-shared [`GraphIndex`] plus a per-epoch
//!   closure cache. Readers grab the current snapshot and keep using it
//!   for as long as they like; [`CfpqService::add_edges`] clones the
//!   index *off to the side*, repairs every cached closure through the
//!   session layer's semi-naive resume paths
//!   ([`cfpq_core::session::repair_prepared`] /
//!   [`cfpq_core::session::repair_prepared_single_path`]), and publishes
//!   the next epoch atomically. A reader never blocks on a writer and
//!   never observes a half-applied batch.
//! * **Shared closure caching.** Within an epoch, each prepared query's
//!   solved closure is computed exactly once (a `OnceLock` cell:
//!   concurrent readers of the same cold query block on one solve
//!   instead of racing N solves) and then served by `Arc` refcount bump.
//!   Publishing an epoch *repairs* the previous epoch's solved closures
//!   instead of discarding them, so an update costs incremental kernel
//!   work, not N cold re-solves.
//! * **A multi-queue scheduler.** [`CfpqService::enqueue`] accepts
//!   `(query, pairs)` requests and returns a [`Ticket`]; worker threads
//!   drain one query's whole queue as a batch, evaluate that query's
//!   closure once, and answer every request in the batch from it. Per
//!   epoch, [`ServiceStats`] reports queries served, cache hits, repair
//!   vs cold products, and the epoch publish latency.
//! * **Paths as a workload.** [`CfpqService::enqueue_paths`] serves the
//!   §7 all-path semantics through the same scheduler: a ticketed,
//!   paged stream of witness paths per answer pair, enumerated by the
//!   memoized [`cfpq_core::all_paths::PathEnumerator`] against one
//!   epoch (pages are snapshot-consistent even while writers publish),
//!   clamped per request by [`ServiceConfig::path_quota`], with
//!   truncation reported explicitly — per page via
//!   [`PairPaths::exhausted`], per epoch via
//!   [`ServiceStats::pages_truncated`].
//!
//! Thread-pool sizing composes with the kernel pool through
//! [`cfpq_matrix::Parallelism`]: split one budget between scheduler
//! workers and the [`cfpq_matrix::Device`] so the two layers never
//! oversubscribe the machine.
//!
//! ```
//! use cfpq_core::session::PreparedQuery;
//! use cfpq_grammar::Cfg;
//! use cfpq_graph::Graph;
//! use cfpq_matrix::SparseEngine;
//! use cfpq_service::{CfpqService, ServiceConfig};
//!
//! let mut graph = Graph::new(5);
//! graph.add_edge_named(0, "a", 1);
//! graph.add_edge_named(1, "a", 2);
//! graph.add_edge_named(2, "b", 3);
//! let service = CfpqService::with_config(SparseEngine, &graph, ServiceConfig::new(2));
//! let q = service.prepare(&Cfg::parse("S -> a S b | a b").unwrap()).unwrap();
//!
//! // Scheduler path: enqueue returns immediately; wait() blocks until a
//! // worker served the request (batched with others on the same query).
//! let t1 = service.enqueue(q, vec![]);
//! let t2 = service.enqueue(q, vec![(1, 3), (0, 4)]);
//! assert_eq!(t1.wait().pairs, vec![(1, 3)]);
//! assert_eq!(t2.wait().pairs, vec![(1, 3)]); // (0, 4) not yet related
//!
//! // Readers pin an epoch; updates publish the next one off to the side.
//! let before = service.snapshot();
//! service.add_edges(&[(3, "b", 4)]);
//! assert_eq!(before.evaluate(q).start_pairs(), &[(1, 3)]); // isolated
//! assert_eq!(
//!     service.snapshot().evaluate(q).start_pairs(),
//!     &[(0, 4), (1, 3)] // repaired, not re-solved
//! );
//! ```

use cfpq_core::all_paths::{PageRequest, PathEnumerator, PathPage};
use cfpq_core::query::QueryAnswer;
use cfpq_core::relational::RelationalIndex;
use cfpq_core::session::{
    batch_seed_pairs, repair_prepared, repair_prepared_single_path, solve_prepared,
    solve_prepared_single_path, GraphIndex, PreparedQuery,
};
use cfpq_core::single_path::SinglePathIndex;
use cfpq_grammar::{Cfg, GrammarError};
use cfpq_graph::{Edge, Graph, NodeId};
use cfpq_matrix::{BoolEngine, BoolMat, LenEngine, Parallelism};
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

pub use cfpq_core::all_paths::PageRequest as PathPageRequest;

/// The engine bound the service needs: both kernel families (relational
/// Boolean closures and §5 length closures), cheap cloning (snapshots
/// clone the engine handle, not the pool), and `'static` so worker
/// threads can own it. Blanket-implemented — all four paper engines
/// qualify.
pub trait ServiceEngine: BoolEngine + LenEngine + Clone + 'static {}

impl<E: BoolEngine + LenEngine + Clone + 'static> ServiceEngine for E {}

/// Handle to a relational query registered in a [`CfpqService`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QueryId(usize);

/// Handle to a single-path (§5) query registered in a [`CfpqService`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SinglePathId(usize);

/// Scheduler/worker-pool configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Scheduler worker threads (clamped to at least 1).
    pub workers: usize,
    /// Per-request result quota for [`CfpqService::enqueue_paths`]: the
    /// total number of paths one request may receive across all its
    /// pairs. Pages cut by the quota come back with `exhausted: false`
    /// (and count into [`ServiceStats::pages_truncated`]), so clients
    /// can resume with `offset` paging instead of silently losing tail
    /// results.
    pub path_quota: usize,
}

impl ServiceConfig {
    /// A config with `workers` scheduler threads and the default path
    /// quota.
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            path_quota: 1024,
        }
    }

    /// Overrides the per-request all-path result quota.
    pub fn with_path_quota(mut self, quota: usize) -> Self {
        self.path_quota = quota;
        self
    }

    /// Derives the config *and* the kernel device from one
    /// [`Parallelism`] budget, so the scheduler pool and the `Device`
    /// pool cannot oversubscribe the machine between them. Pass the
    /// returned device into the engine (for the `-par` backends).
    pub fn from_parallelism(
        budget: Parallelism,
        requested_workers: usize,
    ) -> (Self, cfpq_matrix::Device) {
        let (workers, device) = budget.split(requested_workers);
        (Self::new(workers), device)
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self::new(2)
    }
}

/// Per-epoch service counters (see [`CfpqService::stats`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceStats {
    /// Epoch number (0 = the build epoch).
    pub epoch: u64,
    /// Wall time to build and publish this epoch, milliseconds: index
    /// build for epoch 0, clone + closure repairs + atomic swap for
    /// every later epoch. Readers of the previous epoch were never
    /// blocked during this window.
    pub publish_ms: f64,
    /// Requests answered against this epoch (scheduler requests plus
    /// direct snapshot evaluations).
    pub queries_served: u64,
    /// Scheduler batches served (each batch shares one closure lookup).
    pub batches: u64,
    /// Evaluations answered from an already-solved closure (an `Arc`
    /// bump, no kernel work).
    pub cache_hits: u64,
    /// Closures cold-solved in this epoch.
    pub cold_solves: u64,
    /// Matrix products launched by those cold solves.
    pub cold_products: u64,
    /// Closures repaired from the previous epoch at publish time.
    pub repairs: u64,
    /// Matrix products launched by those repairs (the incremental cost
    /// of the update; compare with `cold_products`).
    pub repair_products: u64,
    /// Witness paths streamed to [`CfpqService::enqueue_paths`] tickets
    /// answered against this epoch.
    pub paths_served: u64,
    /// Path pages returned non-exhausted (cut by the request's `limit`
    /// or the service's `path_quota`) — nonzero means some client saw a
    /// truncated page and may want to resume with `offset` paging.
    pub pages_truncated: u64,
}

#[derive(Default)]
struct EpochCounters {
    queries_served: AtomicU64,
    batches: AtomicU64,
    cache_hits: AtomicU64,
    cold_solves: AtomicU64,
    cold_products: AtomicU64,
    repairs: AtomicU64,
    repair_products: AtomicU64,
    paths_served: AtomicU64,
    pages_truncated: AtomicU64,
}

/// A per-epoch cache of lazily-solved values: one `OnceLock` cell per
/// query, so concurrent readers of the same unsolved query block on a
/// single solve instead of racing duplicates.
struct CacheMap<V> {
    cells: Mutex<HashMap<usize, Arc<OnceLock<Arc<V>>>>>,
}

impl<V> CacheMap<V> {
    fn new() -> Self {
        Self {
            cells: Mutex::new(HashMap::new()),
        }
    }

    /// The cell of query `k` (created empty on first touch). The map
    /// lock is only held for the lookup; solving happens on the cell.
    fn cell(&self, k: usize) -> Arc<OnceLock<Arc<V>>> {
        self.cells
            .lock()
            .expect("cache map poisoned")
            .entry(k)
            .or_default()
            .clone()
    }

    /// Pre-fills query `k` (the epoch builder installing a repaired
    /// closure).
    fn preset(&self, k: usize, v: Arc<V>) {
        let cell = self.cell(k);
        let _ = cell.set(v);
    }

    /// Every solved entry at this moment (cells still solving are
    /// skipped; their result stays usable on the epoch that owns them).
    fn filled(&self) -> Vec<(usize, Arc<V>)> {
        self.cells
            .lock()
            .expect("cache map poisoned")
            .iter()
            .filter_map(|(&k, cell)| cell.get().map(|v| (k, v.clone())))
            .collect()
    }
}

/// A solved relational closure plus its materialized answer, shared by
/// refcount bump.
struct SolvedRel<M> {
    index: RelationalIndex<M>,
    answer: QueryAnswer,
}

/// One immutable version of the graph: the index, the per-query closure
/// caches, and the counters charged to this epoch.
struct Epoch<E: ServiceEngine> {
    epoch: u64,
    index: GraphIndex<E>,
    rel: CacheMap<SolvedRel<E::Matrix>>,
    sp: CacheMap<SinglePathIndex<<E as LenEngine>::LenMatrix>>,
    counters: Arc<EpochCounters>,
}

struct EpochRecord {
    epoch: u64,
    publish_ms: f64,
    counters: Arc<EpochCounters>,
}

/// One queue per registered query: requests for the same grammar batch
/// together and share a single closure lookup.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum QueueKey {
    Rel(usize),
    Sp(usize),
    /// All-path enumeration over the relational query `q` — shares the
    /// rel closure cache (the pruning oracle) but queues separately so a
    /// path batch amortizes one enumerator across its requests.
    Paths(usize),
}

struct Request {
    pairs: Vec<(u32, u32)>,
    /// Page bounds for `QueueKey::Paths` requests; `None` elsewhere.
    page: Option<PageRequest>,
    ticket: Arc<TicketState>,
}

struct SchedState {
    queues: BTreeMap<QueueKey, VecDeque<Request>>,
    /// Keys with pending requests, in arrival order (a key appears here
    /// iff its queue exists and is non-empty).
    round_robin: VecDeque<QueueKey>,
    shutdown: bool,
}

struct SchedShared {
    state: Mutex<SchedState>,
    available: Condvar,
}

struct Inner<E: ServiceEngine> {
    config: ServiceConfig,
    queries: RwLock<Vec<Arc<PreparedQuery>>>,
    sp_queries: RwLock<Vec<Arc<PreparedQuery>>>,
    current: RwLock<Arc<Epoch<E>>>,
    /// Serializes writers: epochs are built one at a time, off to the
    /// side, while readers keep using the published one.
    writer: Mutex<()>,
    epochs: Mutex<Vec<EpochRecord>>,
    sched: SchedShared,
}

/// One endpoint pair's page of an [`CfpqService::enqueue_paths`]
/// answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairPaths {
    /// Source node.
    pub from: u32,
    /// Target node.
    pub to: u32,
    /// The page's witness paths, in (length, lexicographic) order.
    pub paths: Vec<Vec<Edge>>,
    /// `false` iff the page was cut by the request's `limit` or the
    /// service's `path_quota` — more paths exist within `max_len`; page
    /// on with a larger `offset`.
    pub exhausted: bool,
}

/// The result a [`Ticket`] resolves to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TicketAnswer {
    /// The epoch the request was answered against — the request's
    /// linearization point in the epoch order.
    pub epoch: u64,
    /// If the request named pairs: the subset of them in `R_S` (sorted).
    /// If it named none: all of `R_S`.
    pub pairs: Vec<(u32, u32)>,
    /// For [`CfpqService::enqueue_paths`] requests: one page per
    /// answered pair (aligned with `pairs`), all enumerated against the
    /// same epoch. `None` for relational and single-path requests.
    pub paths: Option<Vec<PairPaths>>,
}

#[derive(Default)]
struct TicketState {
    slot: Mutex<Option<TicketAnswer>>,
    ready: Condvar,
}

impl TicketState {
    fn fulfill(&self, answer: TicketAnswer) {
        let mut slot = self.slot.lock().expect("ticket poisoned");
        *slot = Some(answer);
        self.ready.notify_all();
    }
}

/// A claim on an enqueued request; [`Ticket::wait`] blocks until a
/// scheduler worker has served it.
pub struct Ticket {
    state: Arc<TicketState>,
}

impl Ticket {
    /// Blocks until the request is served and returns the answer
    /// (consuming the ticket — the answer is moved out, not copied,
    /// which matters for relation-sized results).
    pub fn wait(self) -> TicketAnswer {
        let mut slot = self.state.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(answer) = slot.take() {
                return answer;
            }
            slot = self.state.ready.wait(slot).expect("ticket poisoned");
        }
    }

    /// The answer, if already served (never blocks; leaves the ticket
    /// waitable).
    pub fn try_peek(&self) -> Option<TicketAnswer> {
        self.state.slot.lock().expect("ticket poisoned").clone()
    }
}

/// A thread-safe, snapshot-isolated CFPQ query service over one evolving
/// graph. See the crate docs for the architecture; in short: readers
/// evaluate against immutable epochs ([`CfpqService::snapshot`]),
/// requests batch per query through a worker pool
/// ([`CfpqService::enqueue`]), and [`CfpqService::add_edges`] publishes
/// the next epoch with every cached closure repaired incrementally.
pub struct CfpqService<E: ServiceEngine> {
    inner: Arc<Inner<E>>,
    workers: Vec<JoinHandle<()>>,
}

/// An immutable view of one epoch: evaluations against a snapshot are
/// repeatable — later [`CfpqService::add_edges`] calls publish *new*
/// epochs and never mutate this one.
pub struct Snapshot<E: ServiceEngine> {
    inner: Arc<Inner<E>>,
    epoch: Arc<Epoch<E>>,
}

impl<E: ServiceEngine> Clone for Snapshot<E> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
            epoch: Arc::clone(&self.epoch),
        }
    }
}

impl<E: ServiceEngine> Snapshot<E> {
    /// The epoch this snapshot pins.
    pub fn epoch(&self) -> u64 {
        self.epoch.epoch
    }

    /// `|V|` of the pinned epoch.
    pub fn n_nodes(&self) -> usize {
        self.epoch.index.n_nodes()
    }

    /// Stored edges of the pinned epoch.
    pub fn n_edges(&self) -> usize {
        self.epoch.index.n_edges()
    }

    /// Evaluates a prepared relational query against this epoch. The
    /// first evaluation of a query in an epoch solves (or inherits the
    /// repaired) closure; every later one is an `Arc` bump.
    pub fn evaluate(&self, id: QueryId) -> QueryAnswer {
        let solved = solve_rel(&self.inner, &self.epoch, id.0);
        self.epoch
            .counters
            .queries_served
            .fetch_add(1, Ordering::Relaxed);
        solved.answer.clone()
    }

    /// Evaluates a prepared single-path query against this epoch; the
    /// returned index supports witness extraction
    /// ([`cfpq_core::single_path::extract_path`]) as usual.
    pub fn evaluate_single_path(
        &self,
        id: SinglePathId,
    ) -> Arc<SinglePathIndex<<E as LenEngine>::LenMatrix>> {
        let solved = solve_sp(&self.inner, &self.epoch, id.0);
        self.epoch
            .counters
            .queries_served
            .fetch_add(1, Ordering::Relaxed);
        solved
    }
}

/// Solves (or fetches) the relational closure of query `q` on `epoch`.
fn solve_rel<E: ServiceEngine>(
    inner: &Inner<E>,
    epoch: &Epoch<E>,
    q: usize,
) -> Arc<SolvedRel<E::Matrix>> {
    let prepared = inner.queries.read().expect("queries poisoned")[q].clone();
    let cell = epoch.rel.cell(q);
    let cold = Cell::new(false);
    let solved = cell
        .get_or_init(|| {
            cold.set(true);
            let index = solve_prepared(&epoch.index, &prepared);
            epoch.counters.cold_solves.fetch_add(1, Ordering::Relaxed);
            epoch
                .counters
                .cold_products
                .fetch_add(index.stats.products_computed as u64, Ordering::Relaxed);
            let answer =
                QueryAnswer::from_index(epoch.index.engine().name(), prepared.wcnf(), &index);
            Arc::new(SolvedRel { index, answer })
        })
        .clone();
    if !cold.get() {
        epoch.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
    }
    solved
}

/// Solves (or fetches) the single-path closure of query `q` on `epoch`.
fn solve_sp<E: ServiceEngine>(
    inner: &Inner<E>,
    epoch: &Epoch<E>,
    q: usize,
) -> Arc<SinglePathIndex<<E as LenEngine>::LenMatrix>> {
    let prepared = inner.sp_queries.read().expect("queries poisoned")[q].clone();
    let cell = epoch.sp.cell(q);
    let cold = Cell::new(false);
    let solved = cell
        .get_or_init(|| {
            cold.set(true);
            let index = solve_prepared_single_path(&epoch.index, &prepared);
            epoch.counters.cold_solves.fetch_add(1, Ordering::Relaxed);
            epoch
                .counters
                .cold_products
                .fetch_add(index.stats.products_computed as u64, Ordering::Relaxed);
            Arc::new(index)
        })
        .clone();
    if !cold.get() {
        epoch.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
    }
    solved
}

/// Restricts a sorted full relation to the requested pairs (empty
/// request = the full relation).
fn filter_pairs(full: &[(u32, u32)], wanted: &[(u32, u32)]) -> Vec<(u32, u32)> {
    if wanted.is_empty() {
        return full.to_vec();
    }
    let mut out: Vec<(u32, u32)> = wanted
        .iter()
        .copied()
        .filter(|p| full.binary_search(p).is_ok())
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// One scheduler worker: drain a query's whole queue, evaluate that
/// query once against the current epoch, answer every request from it.
fn worker_loop<E: ServiceEngine>(inner: &Inner<E>) {
    loop {
        let (key, batch) = {
            let mut st = inner.sched.state.lock().expect("scheduler poisoned");
            loop {
                if let Some(key) = st.round_robin.pop_front() {
                    let queue = st.queues.remove(&key).expect("round-robin key has a queue");
                    break (key, queue);
                }
                if st.shutdown {
                    return;
                }
                st = inner.sched.available.wait(st).expect("scheduler poisoned");
            }
        };
        serve_batch(inner, key, batch);
    }
}

fn serve_batch<E: ServiceEngine>(inner: &Inner<E>, key: QueueKey, batch: VecDeque<Request>) {
    let epoch = inner.current.read().expect("current poisoned").clone();
    let counters = &epoch.counters;
    counters.batches.fetch_add(1, Ordering::Relaxed);
    counters
        .queries_served
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    match key {
        QueueKey::Rel(q) => {
            let solved = solve_rel(inner, &epoch, q);
            let full = solved.answer.start_pairs();
            for req in batch {
                req.ticket.fulfill(TicketAnswer {
                    epoch: epoch.epoch,
                    pairs: filter_pairs(full, &req.pairs),
                    paths: None,
                });
            }
        }
        QueueKey::Sp(q) => {
            let solved = solve_sp(inner, &epoch, q);
            let start = inner.sp_queries.read().expect("queries poisoned")[q]
                .wcnf()
                .start;
            let full = solved.pairs(start);
            for req in batch {
                req.ticket.fulfill(TicketAnswer {
                    epoch: epoch.epoch,
                    pairs: filter_pairs(&full, &req.pairs),
                    paths: None,
                });
            }
        }
        QueueKey::Paths(q) => {
            let solved = solve_rel(inner, &epoch, q);
            let prepared = inner.queries.read().expect("queries poisoned")[q].clone();
            let wcnf = prepared.wcnf();
            let start = wcnf.start;
            // One enumerator per batch: its memoized length classes are
            // shared by every request and every pair answered here, and
            // it reads the same epoch the pruning closure came from —
            // pages are epoch-consistent by construction.
            let mut enumerator = PathEnumerator::from_index(&epoch.index, wcnf);
            let quota = inner.config.path_quota;
            for req in batch {
                let page = req.page.unwrap_or_default();
                let targets = filter_pairs(solved.answer.start_pairs(), &req.pairs);
                // The quota bounds one request's total paths across all
                // its pairs; a page it cuts short is reported truncated,
                // never silently clipped.
                let mut budget = quota;
                let mut answers = Vec::with_capacity(targets.len());
                for &(i, j) in &targets {
                    let result = if page.limit.min(budget) == 0 {
                        PathPage::truncated()
                    } else {
                        enumerator.page(
                            &solved.index,
                            start,
                            i,
                            j,
                            PageRequest {
                                limit: page.limit.min(budget),
                                ..page
                            },
                        )
                    };
                    budget -= result.paths.len();
                    counters
                        .paths_served
                        .fetch_add(result.paths.len() as u64, Ordering::Relaxed);
                    if !result.exhausted {
                        counters.pages_truncated.fetch_add(1, Ordering::Relaxed);
                    }
                    answers.push(PairPaths {
                        from: i,
                        to: j,
                        paths: result.paths,
                        exhausted: result.exhausted,
                    });
                }
                req.ticket.fulfill(TicketAnswer {
                    epoch: epoch.epoch,
                    pairs: targets,
                    paths: Some(answers),
                });
            }
        }
    }
}

impl<E: ServiceEngine> CfpqService<E> {
    /// Indexes `graph` on `engine` and starts a service over it with the
    /// default config.
    pub fn new(engine: E, graph: &Graph) -> Self {
        Self::with_config(engine, graph, ServiceConfig::default())
    }

    /// [`CfpqService::new`] with an explicit worker-pool config.
    pub fn with_config(engine: E, graph: &Graph, config: ServiceConfig) -> Self {
        let started = Instant::now();
        let index = GraphIndex::build(engine, graph);
        Self::over_with_build_ms(index, config, started.elapsed().as_secs_f64() * 1e3)
    }

    /// Starts a service over an already-built index.
    pub fn over(index: GraphIndex<E>, config: ServiceConfig) -> Self {
        Self::over_with_build_ms(index, config, 0.0)
    }

    fn over_with_build_ms(index: GraphIndex<E>, config: ServiceConfig, build_ms: f64) -> Self {
        let counters = Arc::new(EpochCounters::default());
        let epoch = Arc::new(Epoch {
            epoch: 0,
            index,
            rel: CacheMap::new(),
            sp: CacheMap::new(),
            counters: Arc::clone(&counters),
        });
        let inner = Arc::new(Inner {
            config,
            queries: RwLock::new(Vec::new()),
            sp_queries: RwLock::new(Vec::new()),
            current: RwLock::new(epoch),
            writer: Mutex::new(()),
            epochs: Mutex::new(vec![EpochRecord {
                epoch: 0,
                publish_ms: build_ms,
                counters,
            }]),
            sched: SchedShared {
                state: Mutex::new(SchedState {
                    queues: BTreeMap::new(),
                    round_robin: VecDeque::new(),
                    shutdown: false,
                }),
                available: Condvar::new(),
            },
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("cfpq-service-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn service worker")
            })
            .collect();
        Self { inner, workers }
    }

    /// Scheduler worker threads.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Normalizes `grammar` and registers it for relational evaluation.
    /// Queries may be prepared at any time, including while the service
    /// is serving.
    pub fn prepare(&self, grammar: &Cfg) -> Result<QueryId, GrammarError> {
        Ok(self.prepare_query(PreparedQuery::new(grammar)?))
    }

    /// Registers a fully-configured [`PreparedQuery`].
    pub fn prepare_query(&self, query: PreparedQuery) -> QueryId {
        let mut queries = self.inner.queries.write().expect("queries poisoned");
        queries.push(Arc::new(query));
        QueryId(queries.len() - 1)
    }

    /// Normalizes `grammar` and registers it for single-path (§5)
    /// evaluation.
    pub fn prepare_single_path(&self, grammar: &Cfg) -> Result<SinglePathId, GrammarError> {
        Ok(self.prepare_single_path_query(PreparedQuery::new(grammar)?))
    }

    /// Registers a fully-configured [`PreparedQuery`] for single-path
    /// evaluation.
    pub fn prepare_single_path_query(&self, query: PreparedQuery) -> SinglePathId {
        let mut queries = self.inner.sp_queries.write().expect("queries poisoned");
        queries.push(Arc::new(query));
        SinglePathId(queries.len() - 1)
    }

    /// The current epoch's snapshot. The returned view is immutable:
    /// concurrent [`CfpqService::add_edges`] calls publish later epochs
    /// without disturbing it.
    pub fn snapshot(&self) -> Snapshot<E> {
        Snapshot {
            inner: Arc::clone(&self.inner),
            epoch: self.inner.current.read().expect("current poisoned").clone(),
        }
    }

    /// Evaluates against the current epoch (shorthand for
    /// `self.snapshot().evaluate(id)`).
    pub fn evaluate(&self, id: QueryId) -> QueryAnswer {
        self.snapshot().evaluate(id)
    }

    /// Evaluates a single-path query against the current epoch.
    pub fn evaluate_single_path(
        &self,
        id: SinglePathId,
    ) -> Arc<SinglePathIndex<<E as LenEngine>::LenMatrix>> {
        self.snapshot().evaluate_single_path(id)
    }

    /// The current epoch number (starts at 0; each successful
    /// [`CfpqService::add_edges`] publishes the next).
    pub fn current_epoch(&self) -> u64 {
        self.inner.current.read().expect("current poisoned").epoch
    }

    /// Submits a relational request to the scheduler: answer `query`
    /// restricted to `pairs` (all of `R_S` if `pairs` is empty). Returns
    /// immediately; the [`Ticket`] resolves once a worker served the
    /// batch the request landed in.
    pub fn enqueue(&self, query: QueryId, pairs: Vec<(u32, u32)>) -> Ticket {
        assert!(
            query.0 < self.inner.queries.read().expect("queries poisoned").len(),
            "query not registered in this service"
        );
        self.push_request(QueueKey::Rel(query.0), pairs, None)
    }

    /// Submits an all-path enumeration request: stream `page`-bounded
    /// witness pages for `query`'s start nonterminal at each of `pairs`
    /// (every pair of `R_S` if `pairs` is empty). The [`Ticket`]'s
    /// answer carries one [`PairPaths`] per answered pair in
    /// [`TicketAnswer::paths`], all enumerated against a single epoch
    /// and clamped by [`ServiceConfig::path_quota`] — quota- or
    /// limit-cut pages come back with `exhausted: false`, never silently
    /// clipped.
    pub fn enqueue_paths(
        &self,
        query: QueryId,
        pairs: Vec<(u32, u32)>,
        page: PageRequest,
    ) -> Ticket {
        assert!(
            query.0 < self.inner.queries.read().expect("queries poisoned").len(),
            "query not registered in this service"
        );
        self.push_request(QueueKey::Paths(query.0), pairs, Some(page))
    }

    /// Submits a single-path request to the scheduler (answers with the
    /// pair set of the start nonterminal, filtered like
    /// [`CfpqService::enqueue`]).
    pub fn enqueue_single_path(&self, query: SinglePathId, pairs: Vec<(u32, u32)>) -> Ticket {
        assert!(
            query.0
                < self
                    .inner
                    .sp_queries
                    .read()
                    .expect("queries poisoned")
                    .len(),
            "query not registered in this service"
        );
        self.push_request(QueueKey::Sp(query.0), pairs, None)
    }

    fn push_request(
        &self,
        key: QueueKey,
        pairs: Vec<(u32, u32)>,
        page: Option<PageRequest>,
    ) -> Ticket {
        let state = Arc::new(TicketState::default());
        {
            let mut st = self.inner.sched.state.lock().expect("scheduler poisoned");
            let queue = st.queues.entry(key).or_default();
            let was_empty = queue.is_empty();
            queue.push_back(Request {
                pairs,
                page,
                ticket: Arc::clone(&state),
            });
            if was_empty {
                st.round_robin.push_back(key);
            }
        }
        self.inner.sched.available.notify_one();
        Ticket { state }
    }

    /// Inserts a batch of edges and publishes the next epoch; returns
    /// how many edges were genuinely new (`0` publishes nothing — the
    /// current epoch already answers correctly). Duplicate edges are
    /// skipped and unseen node ids grow the node universe, exactly as in
    /// [`GraphIndex::add_edges`].
    ///
    /// The new epoch is built **off to the side**: the current index is
    /// cloned, the batch applied, and every closure the current epoch
    /// has solved is repaired through the semi-naive resume paths —
    /// concurrent readers keep answering from the published epoch the
    /// whole time and switch only when the new one is complete. Writers
    /// are serialized with each other (epochs are totally ordered).
    pub fn add_edges(&self, edges: &[(NodeId, &str, NodeId)]) -> usize {
        let _writer = self.inner.writer.lock().expect("writer poisoned");
        let started = Instant::now();
        let cur = self.inner.current.read().expect("current poisoned").clone();
        // All-duplicate batches (idempotent retries) must not pay the
        // index clone below: an edge can only be new if it names an
        // unseen node, an unseen label, or an unset cell.
        let n = cur.index.n_nodes() as NodeId;
        let all_present = edges.iter().all(|&(u, name, v)| {
            u < n && v < n && cur.index.adjacency(name).is_some_and(|m| m.get(u, v))
        });
        if all_present {
            return 0;
        }
        let mut index = cur.index.clone();
        let batch = index.add_edges(edges);
        if batch.inserted == 0 {
            return 0;
        }
        let n = index.n_nodes();
        let counters = Arc::new(EpochCounters::default());
        let rel = CacheMap::new();
        let sp = CacheMap::new();
        let batches = [batch];

        let queries = self.inner.queries.read().expect("queries poisoned").clone();
        for (q, solved) in cur.rel.filled() {
            let prepared = &queries[q];
            let wcnf = prepared.wcnf();
            let new_pairs = batch_seed_pairs(
                &batches,
                &index.term_bindings(wcnf),
                &wcnf.nts_by_terminal(),
                wcnf,
            );
            let mut repaired = solved.index.clone();
            let stats = repair_prepared(index.engine(), prepared, &mut repaired, new_pairs, n);
            counters.repairs.fetch_add(1, Ordering::Relaxed);
            counters
                .repair_products
                .fetch_add(stats.products_computed as u64, Ordering::Relaxed);
            let answer = QueryAnswer::from_index(index.engine().name(), wcnf, &repaired);
            rel.preset(
                q,
                Arc::new(SolvedRel {
                    index: repaired,
                    answer,
                }),
            );
        }
        let sp_queries = self
            .inner
            .sp_queries
            .read()
            .expect("queries poisoned")
            .clone();
        for (q, solved) in cur.sp.filled() {
            let prepared = &sp_queries[q];
            let wcnf = prepared.wcnf();
            let new_pairs = batch_seed_pairs(
                &batches,
                &index.term_bindings(wcnf),
                &wcnf.nts_by_terminal(),
                wcnf,
            );
            let mut repaired = (*solved).clone();
            let stats =
                repair_prepared_single_path(index.engine(), prepared, &mut repaired, new_pairs, n);
            counters.repairs.fetch_add(1, Ordering::Relaxed);
            counters
                .repair_products
                .fetch_add(stats.products_computed as u64, Ordering::Relaxed);
            sp.preset(q, Arc::new(repaired));
        }

        let next = Arc::new(Epoch {
            epoch: cur.epoch + 1,
            index,
            rel,
            sp,
            counters: Arc::clone(&counters),
        });
        let publish_ms = started.elapsed().as_secs_f64() * 1e3;
        *self.inner.current.write().expect("current poisoned") = next;
        self.inner
            .epochs
            .lock()
            .expect("epoch log poisoned")
            .push(EpochRecord {
                epoch: cur.epoch + 1,
                publish_ms,
                counters,
            });
        batches[0].inserted
    }

    /// Per-epoch service statistics, in epoch order. Counters of the
    /// current epoch are still live (they advance as requests arrive).
    pub fn stats(&self) -> Vec<ServiceStats> {
        self.inner
            .epochs
            .lock()
            .expect("epoch log poisoned")
            .iter()
            .map(|r| ServiceStats {
                epoch: r.epoch,
                publish_ms: r.publish_ms,
                queries_served: r.counters.queries_served.load(Ordering::Relaxed),
                batches: r.counters.batches.load(Ordering::Relaxed),
                cache_hits: r.counters.cache_hits.load(Ordering::Relaxed),
                cold_solves: r.counters.cold_solves.load(Ordering::Relaxed),
                cold_products: r.counters.cold_products.load(Ordering::Relaxed),
                repairs: r.counters.repairs.load(Ordering::Relaxed),
                repair_products: r.counters.repair_products.load(Ordering::Relaxed),
                paths_served: r.counters.paths_served.load(Ordering::Relaxed),
                pages_truncated: r.counters.pages_truncated.load(Ordering::Relaxed),
            })
            .collect()
    }
}

impl<E: ServiceEngine> Drop for CfpqService<E> {
    /// Workers drain every queued request before exiting (the shutdown
    /// flag is only honoured once the queues are empty), so no
    /// outstanding [`Ticket::wait`] is left hanging.
    fn drop(&mut self) {
        {
            let mut st = self.inner.sched.state.lock().expect("scheduler poisoned");
            st.shutdown = true;
        }
        self.inner.sched.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpq_core::query::{solve, Backend};
    use cfpq_core::session::CfpqSession;
    use cfpq_grammar::queries;
    use cfpq_graph::generators;
    use cfpq_matrix::{DenseEngine, Device, ParDenseEngine, ParSparseEngine, SparseEngine};

    #[test]
    fn service_matches_one_shot_solve() {
        let grammar = queries::query1();
        let graph = generators::paper_example();
        let reference = solve(&graph, &grammar, Backend::Sparse).unwrap();
        let service = CfpqService::new(SparseEngine, &graph);
        let q = service.prepare(&grammar).unwrap();
        let answer = service.evaluate(q);
        assert_eq!(answer.start_pairs(), reference.start_pairs());
        assert_eq!(service.current_epoch(), 0);
    }

    #[test]
    fn snapshots_are_isolated_from_updates() {
        let grammar = Cfg::parse("S -> a S b | a b").unwrap();
        let chain = generators::word_chain(&["a", "a", "b"]);
        let service = CfpqService::new(SparseEngine, &chain);
        let q = service.prepare(&grammar).unwrap();
        let old = service.snapshot();
        assert_eq!(old.evaluate(q).start_pairs(), &[(1, 3)]);

        assert_eq!(service.add_edges(&[(3, "b", 4)]), 1);
        assert_eq!(service.current_epoch(), 1);
        // The old snapshot still answers the old graph...
        assert_eq!(old.evaluate(q).start_pairs(), &[(1, 3)]);
        assert_eq!(old.epoch(), 0);
        // ...while the new epoch sees the repaired closure.
        let new = service.snapshot();
        assert_eq!(new.epoch(), 1);
        assert_eq!(new.evaluate(q).start_pairs(), &[(0, 4), (1, 3)]);

        // The repair was incremental and cheaper than the epoch-1 cold
        // solve would have been.
        let stats = service.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[1].repairs, 1);
        assert!(stats[1].repair_products > 0);
        assert_eq!(stats[1].cold_solves, 0, "epoch 1 never cold-solved");
    }

    #[test]
    fn duplicate_batches_publish_nothing() {
        let graph = generators::paper_example();
        let service = CfpqService::new(DenseEngine, &graph);
        let e = graph.edges()[0];
        assert_eq!(
            service.add_edges(&[(e.from, graph.label_name(e.label), e.to)]),
            0
        );
        assert_eq!(service.current_epoch(), 0, "no-op batches publish nothing");
        assert_eq!(service.stats().len(), 1);
    }

    #[test]
    fn scheduler_batches_share_one_closure() {
        let grammar = queries::query1();
        let graph = generators::paper_example();
        let reference = solve(&graph, &grammar, Backend::Sparse).unwrap();
        let service = CfpqService::with_config(SparseEngine, &graph, ServiceConfig::new(3));
        let q = service.prepare(&grammar).unwrap();
        let tickets: Vec<Ticket> = (0..16).map(|_| service.enqueue(q, vec![])).collect();
        for t in tickets {
            assert_eq!(t.wait().pairs, reference.start_pairs());
        }
        let stats = service.stats();
        assert_eq!(stats[0].cold_solves, 1, "one solve serves every request");
        assert_eq!(stats[0].queries_served, 16);
        assert!(stats[0].batches <= 16);
    }

    #[test]
    fn pair_filters_restrict_the_answer() {
        let grammar = queries::query1();
        let graph = generators::paper_example();
        let service = CfpqService::new(SparseEngine, &graph);
        let q = service.prepare(&grammar).unwrap();
        // Full R_S = [(0,0), (0,2), (1,2)].
        let t = service.enqueue(q, vec![(1, 2), (2, 2), (0, 0), (1, 2)]);
        assert_eq!(t.wait().pairs, vec![(0, 0), (1, 2)]);
    }

    #[test]
    fn single_path_matches_session_and_supports_extraction() {
        use cfpq_core::single_path::{extract_path, validate_witness};
        let grammar = queries::query1();
        let wcnf = grammar
            .to_wcnf(cfpq_grammar::cnf::CnfOptions::default())
            .unwrap();
        let graph = generators::paper_example();
        let mut session = CfpqSession::new(SparseEngine, &graph);
        let sid = session.prepare_single_path(&grammar).unwrap();
        let expect = session.evaluate_single_path(sid).pairs(wcnf.start);

        let service = CfpqService::new(SparseEngine, &graph);
        let q = service.prepare_single_path(&grammar).unwrap();
        let idx = service.evaluate_single_path(q);
        assert_eq!(idx.pairs(wcnf.start), expect);
        let (i, j, len) = idx.pairs_with_lengths(wcnf.start)[0];
        let path = extract_path(&idx, &graph, &wcnf, wcnf.start, i, j).unwrap();
        assert_eq!(path.len() as u32, len);
        assert!(validate_witness(&path, &graph, &wcnf, wcnf.start, i, j));
        // Scheduler path agrees.
        let t = service.enqueue_single_path(q, vec![]);
        assert_eq!(t.wait().pairs, expect);
    }

    #[test]
    fn single_path_repairs_across_epochs() {
        let grammar = Cfg::parse("S -> a S b | a b").unwrap();
        let chain = generators::word_chain(&["a", "a", "b"]);
        let service = CfpqService::new(SparseEngine, &chain);
        let q = service.prepare_single_path(&grammar).unwrap();
        let start = service.inner.sp_queries.read().unwrap()[0].wcnf().start;
        assert_eq!(service.evaluate_single_path(q).pairs(start), vec![(1, 3)]);
        service.add_edges(&[(3, "b", 4)]);
        let idx = service.evaluate_single_path(q);
        assert_eq!(idx.pairs(start), vec![(0, 4), (1, 3)]);
        assert_eq!(idx.length(start, 0, 4), Some(4));
        let stats = service.stats();
        assert_eq!(stats[1].repairs, 1);
    }

    #[test]
    fn growth_and_unknown_labels_are_served() {
        let grammar = Cfg::parse("S -> a S b | a b").unwrap();
        let chain = generators::word_chain(&["a", "a", "b"]);
        let service = CfpqService::new(DenseEngine, &chain);
        let q = service.prepare(&grammar).unwrap();
        service.evaluate(q);
        // Node 4 is unseen; label "z" is unknown to the grammar.
        assert_eq!(service.add_edges(&[(3, "b", 4), (0, "z", 99)]), 2);
        let snap = service.snapshot();
        assert_eq!(snap.n_nodes(), 100);
        assert_eq!(snap.evaluate(q).start_pairs(), &[(0, 4), (1, 3)]);
    }

    #[test]
    fn concurrent_readers_and_writer_smoke() {
        use std::sync::atomic::AtomicBool;
        let grammar = Cfg::parse("S -> a S b | a b").unwrap();
        let chain = generators::word_chain(&["a", "a", "a", "b", "b"]);
        let service = CfpqService::with_config(ParSparseEngine::new(Device::new(2)), &chain, {
            ServiceConfig::new(2)
        });
        let q = service.prepare(&grammar).unwrap();
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    while !done.load(Ordering::Relaxed) {
                        let snap = service.snapshot();
                        let answer = snap.evaluate(q);
                        // Within one snapshot, repeated evaluation is
                        // repeatable even while the writer publishes.
                        assert_eq!(
                            snap.evaluate(q).start_pairs(),
                            answer.start_pairs(),
                            "snapshot must be immutable"
                        );
                    }
                });
            }
            service.add_edges(&[(5, "b", 6)]);
            service.add_edges(&[(6, "b", 7)]);
            done.store(true, Ordering::Relaxed);
        });
        let final_pairs = service.evaluate(q).start_pairs().to_vec();
        assert_eq!(final_pairs, vec![(0, 6), (1, 5), (2, 4)]);
    }

    #[test]
    fn all_engines_serve_identically() {
        let grammar = queries::query1();
        let graph = generators::paper_example();
        let expect = solve(&graph, &grammar, Backend::Sparse)
            .unwrap()
            .start_pairs()
            .to_vec();
        fn check<E: ServiceEngine>(engine: E, graph: &Graph, grammar: &Cfg) -> Vec<(u32, u32)> {
            let service = CfpqService::new(engine, graph);
            let q = service.prepare(grammar).unwrap();
            let t = service.enqueue(q, vec![]);
            t.wait().pairs
        }
        assert_eq!(check(DenseEngine, &graph, &grammar), expect);
        assert_eq!(check(SparseEngine, &graph, &grammar), expect);
        assert_eq!(
            check(ParDenseEngine::new(Device::new(2)), &graph, &grammar),
            expect
        );
        assert_eq!(
            check(ParSparseEngine::new(Device::new(2)), &graph, &grammar),
            expect
        );
    }

    #[test]
    fn paths_tickets_stream_valid_pages() {
        use cfpq_core::single_path::validate_witness;
        let grammar = Cfg::parse("S -> a S b | a b").unwrap();
        let wcnf = grammar
            .to_wcnf(cfpq_grammar::cnf::CnfOptions::default())
            .unwrap();
        let mut graph = Graph::new(1);
        graph.add_edge_named(0, "a", 0);
        graph.add_edge_named(0, "b", 0);
        let service = CfpqService::new(SparseEngine, &graph);
        let q = service.prepare(&grammar).unwrap();
        let answer = service
            .enqueue_paths(
                q,
                vec![],
                PageRequest {
                    offset: 0,
                    limit: 10,
                    max_len: 8,
                },
            )
            .wait();
        assert_eq!(answer.pairs, vec![(0, 0)]);
        let pages = answer.paths.expect("paths request answers with pages");
        assert_eq!(pages.len(), 1);
        let page = &pages[0];
        assert_eq!(page.paths.len(), 4, "a^n b^n for n in 1..=4");
        assert!(page.exhausted);
        for p in &page.paths {
            assert!(validate_witness(p, &graph, &wcnf, wcnf.start, 0, 0));
        }
        let stats = service.stats();
        assert_eq!(stats[0].paths_served, 4);
        assert_eq!(stats[0].pages_truncated, 0);
    }

    #[test]
    fn path_quota_truncates_loudly() {
        let grammar = Cfg::parse("S -> a S b | a b").unwrap();
        let mut graph = Graph::new(1);
        graph.add_edge_named(0, "a", 0);
        graph.add_edge_named(0, "b", 0);
        let service = CfpqService::with_config(
            SparseEngine,
            &graph,
            ServiceConfig::new(1).with_path_quota(2),
        );
        let q = service.prepare(&grammar).unwrap();
        let answer = service
            .enqueue_paths(
                q,
                vec![],
                PageRequest {
                    offset: 0,
                    limit: 10,
                    max_len: 12,
                },
            )
            .wait();
        let page = &answer.paths.unwrap()[0];
        assert_eq!(page.paths.len(), 2, "quota clamps the page");
        assert!(!page.exhausted, "the cut is reported, not silent");
        let stats = service.stats();
        assert_eq!(stats[0].paths_served, 2);
        assert_eq!(stats[0].pages_truncated, 1);
    }

    #[test]
    fn paths_pages_are_epoch_consistent_across_updates() {
        use cfpq_core::all_paths::enumerate_paths;
        use cfpq_core::all_paths::EnumLimits;
        use cfpq_core::relational::solve_on_engine;
        let grammar = Cfg::parse("S -> a S b | a b").unwrap();
        let wcnf = grammar
            .to_wcnf(cfpq_grammar::cnf::CnfOptions::default())
            .unwrap();
        let chain = generators::word_chain(&["a", "a", "b"]);
        let service = CfpqService::new(SparseEngine, &chain);
        let q = service.prepare(&grammar).unwrap();
        let req = PageRequest {
            offset: 0,
            limit: 16,
            max_len: 8,
        };
        let before = service.enqueue_paths(q, vec![], req).wait();
        service.add_edges(&[(3, "b", 4)]);
        let after = service.enqueue_paths(q, vec![], req).wait();
        assert_eq!(before.epoch, 0);
        assert_eq!(after.epoch, 1);
        // Each answer equals a from-scratch enumeration over the graph
        // of its own epoch — pages never mix epochs.
        let mut full = generators::word_chain(&["a", "a", "b"]);
        full.add_edge_named(3, "b", 4);
        for (answer, graph) in [(&before, &chain), (&after, &full)] {
            let rel = solve_on_engine(&SparseEngine, graph, &wcnf);
            for pp in answer.paths.as_ref().unwrap() {
                let expect = enumerate_paths(
                    &rel,
                    graph,
                    &wcnf,
                    wcnf.start,
                    pp.from,
                    pp.to,
                    EnumLimits {
                        max_len: req.max_len,
                        max_paths: req.limit,
                    },
                );
                assert_eq!(pp.paths, expect.paths);
                assert_eq!(pp.exhausted, expect.exhausted);
            }
        }
        assert_eq!(after.pairs, vec![(0, 4), (1, 3)]);
    }

    #[test]
    fn from_parallelism_coordinates_the_pools() {
        let (config, device) = ServiceConfig::from_parallelism(Parallelism::new(4), 3);
        assert_eq!(config.workers, 3);
        assert_eq!(device.n_workers(), 1);
        let graph = generators::paper_example();
        let service = CfpqService::with_config(ParSparseEngine::new(device), &graph, config);
        assert_eq!(service.n_workers(), 3);
        let q = service.prepare(&queries::query1()).unwrap();
        assert_eq!(
            service.enqueue(q, vec![]).wait().pairs,
            vec![(0, 0), (0, 2), (1, 2)]
        );
    }
}
