//! Fixed-seed property suite for the streaming all-path enumerator
//! (§7): on random graphs × two structurally different grammars (one
//! with erasable nonterminals), against relational closures solved on
//! every [`cfpq_matrix::BoolEngine`],
//!
//! 1. every streamed witness CYK-validates against the grammar
//!    ([`cfpq_core::single_path::validate_witness`]),
//! 2. the stream is deterministic — (length, then lexicographic) order,
//!    identical across all four engines,
//! 3. the memoized enumerator agrees with the pre-rewrite eager
//!    recursive walk ([`cfpq_core::all_paths::enumerate_paths_eager`],
//!    kept exactly as the oracle) on the full path *set*,
//! 4. page concatenation reproduces the one-big-page stream, and
//! 5. a session whose closure was repaired after
//!    [`cfpq_core::session::CfpqSession::add_edges`] serves the same
//!    pages as a from-scratch session over the final graph.

use cfpq_core::all_paths::{
    enumerate_paths_eager, EnumLimits, PageRequest, PathEnumerator, PathPage,
};
use cfpq_core::relational::{FixpointSolver, SolveOptions};
use cfpq_core::session::{CfpqSession, PreparedQuery};
use cfpq_core::single_path::validate_witness;
use cfpq_grammar::cnf::CnfOptions;
use cfpq_grammar::{Cfg, Wcnf};
use cfpq_graph::{generators, Edge, Graph};
use cfpq_matrix::{
    AdaptiveEngine, BoolEngine, DenseEngine, Device, ParDenseEngine, ParSparseEngine, SparseEngine,
    TiledEngine,
};
use proptest::prelude::*;

/// Base RNG seed: CI must replay the exact same cases on every run (see
/// shims/README.md for the seeding scheme and `CFPQ_PROPTEST_SEED`).
const RNG_SEED: u64 = 0x0A11_9A75;

const LABELS: [&str; 2] = ["a", "b"];

/// A limit generous enough that every page in the suite is provably
/// complete (small graphs, short horizon), so eager-vs-lazy compares
/// full sets, not truncation artifacts.
const LIMIT: usize = 2000;
const MAX_LEN: usize = 5;

/// The two fixed query grammars of the suite: nested brackets with
/// concatenation (no ε), and a nullable Dyck-style shape whose diagonal
/// is pure ε-matches.
fn grammars() -> Vec<Wcnf> {
    ["S -> a S b | a b | S S", "S -> a S b | S S | eps"]
        .iter()
        .map(|src| {
            Cfg::parse(src)
                .unwrap()
                .to_wcnf(CnfOptions::default())
                .unwrap()
        })
        .collect()
}

fn path_key(p: &[Edge]) -> Vec<(u32, u32, u32)> {
    p.iter().map(|e| (e.from, e.label.0, e.to)).collect()
}

/// A path with label ids replaced by label names.
type NamedPath = Vec<(u32, String, u32)>;

/// The per-pair pages of one engine's full enumeration.
type PairPages = Vec<((u32, u32), PathPage)>;

/// A page with label ids replaced by label names, re-sorted into the
/// name-canonical (length, lexicographic) order — two sessions whose
/// indexes interned the labels in different first-appearance order must
/// still serve the *same* path set (their id-lexicographic order can
/// legitimately permute within a length class).
fn named_page(page: &PathPage, names: &[String]) -> (Vec<NamedPath>, bool) {
    let mut paths: Vec<NamedPath> = page
        .paths
        .iter()
        .map(|p| {
            p.iter()
                .map(|e| (e.from, names[e.label.index()].clone(), e.to))
                .collect()
        })
        .collect();
    paths.sort_by(|a, b| (a.len(), a).cmp(&(b.len(), b)));
    (paths, page.exhausted)
}

/// Enumerates every start pair on one engine's closure and checks the
/// stream's invariants; returns the per-pair pages for cross-engine
/// comparison.
fn check_engine<E: BoolEngine>(
    name: &str,
    engine: &E,
    graph: &Graph,
    grammar: &Wcnf,
    options: SolveOptions,
) -> Result<PairPages, TestCaseError> {
    let idx = FixpointSolver::new(engine)
        .options(options)
        .solve(graph, grammar);
    let start = grammar.start;
    let mut enumerator = PathEnumerator::from_graph(graph, grammar);
    let req = PageRequest {
        offset: 0,
        limit: LIMIT,
        max_len: MAX_LEN,
    };
    let mut out = Vec::new();
    for (i, j) in idx.pairs(start) {
        let page = enumerator.page(&idx, start, i, j, req);
        prop_assert!(
            page.exhausted,
            "{}: ({},{}) hit the {}-path suite limit",
            name,
            i,
            j,
            LIMIT
        );
        // 1. Every streamed witness re-derives through the CYK oracle.
        for p in &page.paths {
            prop_assert!(
                validate_witness(p, graph, grammar, start, i, j),
                "{}: invalid witness {:?} at ({},{})",
                name,
                p,
                i,
                j
            );
        }
        // 2. (length, lexicographic) order, duplicate-free.
        let keys: Vec<_> = page.paths.iter().map(|p| (p.len(), path_key(p))).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(&keys, &sorted, "{}: stream order at ({},{})", name, i, j);
        // 3. The eager oracle finds exactly the same set.
        let eager = enumerate_paths_eager(
            &idx,
            graph,
            grammar,
            start,
            i,
            j,
            EnumLimits {
                max_len: MAX_LEN,
                max_paths: LIMIT,
            },
        );
        let mut eager_keys: Vec<_> = eager.iter().map(|p| (p.len(), path_key(p))).collect();
        eager_keys.sort();
        eager_keys.dedup();
        prop_assert_eq!(
            &keys,
            &eager_keys,
            "{}: lazy vs eager at ({},{})",
            name,
            i,
            j
        );
        out.push(((i, j), page));
    }
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(10, RNG_SEED))]

    #[test]
    fn streams_validate_and_agree_across_engines_and_with_eager(
        graph_seed in 0u64..1000,
        n_nodes in 2usize..7,
        edge_factor in 1usize..4,
        diagonal in 0u32..2,
    ) {
        let graph = generators::random_graph(
            n_nodes,
            edge_factor * n_nodes,
            &LABELS,
            graph_seed,
        );
        let options = SolveOptions { nullable_diagonal: diagonal == 1 };
        for grammar in grammars() {
            let reference = check_engine("dense", &DenseEngine, &graph, &grammar, options)?;
            let sparse = check_engine("sparse", &SparseEngine, &graph, &grammar, options)?;
            let dense_par = check_engine(
                "dense-par",
                &ParDenseEngine::new(Device::new(2)),
                &graph,
                &grammar,
                options,
            )?;
            let sparse_par = check_engine(
                "sparse-par",
                &ParSparseEngine::new(Device::new(3)),
                &graph,
                &grammar,
                options,
            )?;
            let tiled = check_engine(
                "tiled",
                &TiledEngine::new(Device::new(2)),
                &graph,
                &grammar,
                options,
            )?;
            let adaptive = check_engine(
                "adaptive",
                &AdaptiveEngine::new(Device::new(2)),
                &graph,
                &grammar,
                options,
            )?;
            // Paging is deterministic across engines: identical pages in
            // identical order, whatever closure representation pruned
            // the walk.
            prop_assert_eq!(&reference, &sparse, "dense vs sparse pages");
            prop_assert_eq!(&reference, &dense_par, "dense vs dense-par pages");
            prop_assert_eq!(&reference, &sparse_par, "dense vs sparse-par pages");
            prop_assert_eq!(&reference, &tiled, "dense vs tiled pages");
            prop_assert_eq!(&reference, &adaptive, "dense vs adaptive pages");
        }
    }

    #[test]
    fn page_concatenation_equals_one_big_page(
        graph_seed in 0u64..1000,
        n_nodes in 2usize..7,
        edge_factor in 1usize..4,
        page_size in 1usize..5,
    ) {
        let graph = generators::random_graph(
            n_nodes,
            edge_factor * n_nodes,
            &LABELS,
            graph_seed,
        );
        let options = SolveOptions { nullable_diagonal: true };
        for grammar in grammars() {
            let idx = FixpointSolver::new(&SparseEngine)
                .options(options)
                .solve(&graph, &grammar);
            let start = grammar.start;
            let mut enumerator = PathEnumerator::from_graph(&graph, &grammar);
            for (i, j) in idx.pairs(start) {
                let full = enumerator.page(&idx, start, i, j, PageRequest {
                    offset: 0,
                    limit: LIMIT,
                    max_len: MAX_LEN,
                });
                prop_assert!(full.exhausted);
                let mut stitched = Vec::new();
                let mut offset = 0;
                loop {
                    let page = enumerator.page(&idx, start, i, j, PageRequest {
                        offset,
                        limit: page_size,
                        max_len: MAX_LEN,
                    });
                    offset += page.paths.len();
                    let done = page.exhausted;
                    stitched.extend(page.paths);
                    if done {
                        break;
                    }
                    // A non-exhausted page is always full — the cut was
                    // by limit, so at least `page_size` paths streamed.
                    prop_assert_eq!(offset % page_size, 0, "short page not exhausted");
                }
                prop_assert_eq!(&stitched, &full.paths, "stitched pages at ({},{})", i, j);
            }
        }
    }

    #[test]
    fn session_repair_matches_from_scratch_enumeration(
        graph_seed in 0u64..1000,
        n_nodes in 3usize..8,
        split in 1usize..6,
    ) {
        // Hold out a random suffix of the edges, enumerate (cold), feed
        // the suffix through `add_edges`, enumerate again: the repaired
        // session must serve exactly the pages a fresh session over the
        // final graph serves.
        let graph = generators::random_graph(n_nodes, 3 * n_nodes, &LABELS, graph_seed);
        let req = PageRequest { offset: 0, limit: LIMIT, max_len: MAX_LEN };
        for grammar in grammars() {
            let edges = graph.edges();
            let split = split.min(edges.len());
            let mut base = Graph::new(graph.n_nodes());
            for e in &edges[..edges.len() - split] {
                base.add_edge_named(e.from, graph.label_name(e.label), e.to);
            }
            let mut session = CfpqSession::new(SparseEngine, &base);
            let id = session.prepare_all_paths_query(PreparedQuery::from_wcnf(grammar.clone()));
            // Cold enumeration on the truncated graph (also warms the
            // memo tables that the repair must then invalidate).
            session.enumerate_paths(id, 0, 0, req);
            prop_assert!(!session.last_all_paths_run(id).unwrap().incremental);
            let held: Vec<(u32, &str, u32)> = edges[edges.len() - split..]
                .iter()
                .map(|e| (e.from, graph.label_name(e.label), e.to))
                .collect();
            session.add_edges(&held);

            let mut fresh = CfpqSession::new(SparseEngine, &graph);
            let fresh_id = fresh.prepare_all_paths_query(PreparedQuery::from_wcnf(grammar.clone()));
            // The sessions may have interned the labels in different
            // orders (the held-out suffix can carry a label's first
            // occurrence), so compare pages by label *name*.
            let session_names: Vec<String> = session
                .index()
                .label_matrices()
                .map(|(n, _)| n.to_owned())
                .collect();
            let fresh_names: Vec<String> = fresh
                .index()
                .label_matrices()
                .map(|(n, _)| n.to_owned())
                .collect();
            let n = graph.n_nodes() as u32;
            let mut repaired_any = false;
            for i in 0..n {
                for j in 0..n {
                    let repaired = session.enumerate_paths(id, i, j, req);
                    repaired_any = true;
                    let scratch = fresh.enumerate_paths(fresh_id, i, j, req);
                    prop_assert_eq!(
                        named_page(&repaired, &session_names),
                        named_page(&scratch, &fresh_names),
                        "pages at ({},{})",
                        i,
                        j
                    );
                }
            }
            prop_assert!(repaired_any);
            if !held.is_empty() && session.last_all_paths_run(id).is_some() {
                // The post-update evaluations went through the repair
                // path, not a cold re-solve.
                prop_assert!(session.last_all_paths_run(id).unwrap().incremental
                    || session.add_edges(&held) == 0);
            }
        }
    }
}
