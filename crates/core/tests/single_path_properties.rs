//! Fixed-seed property suite for the engine-generic single-path (§5)
//! pipeline: on random graphs × two structurally different grammars
//! (one with erasable nonterminals), every [`cfpq_matrix::LenEngine`]
//! must agree with
//!
//! 1. the naive `O(n³)` flat-table oracle
//!    ([`cfpq_core::single_path::solve_single_path_oracle`]) on the full
//!    per-nonterminal pair sets,
//! 2. the relational [`FixpointSolver`] solved under the same
//!    [`SolveOptions`] (the §5 index answers `contains` from the same
//!    cells the relational index exposes — the PR-4 bugfix), and
//! 3. Theorem 5: every recorded entry admits an extractable witness of
//!    exactly the recorded length, re-checked against the grammar by the
//!    CYK oracle (lengths are *valid*, not necessarily minimal — the
//!    paper evaluates an arbitrary path).

use cfpq_core::relational::{FixpointSolver, SolveOptions};
use cfpq_core::single_path::{
    extract_path, solve_single_path_oracle, validate_witness, SinglePathSolver,
};
use cfpq_grammar::cnf::CnfOptions;
use cfpq_grammar::{Cfg, Nt, Wcnf};
use cfpq_graph::{generators, Graph};
use cfpq_matrix::{
    AdaptiveEngine, DenseEngine, Device, LenEngine, ParDenseEngine, ParSparseEngine, SparseEngine,
    TiledEngine,
};
use proptest::prelude::*;

/// Base RNG seed: CI must replay the exact same cases on every run (see
/// shims/README.md for the seeding scheme and `CFPQ_PROPTEST_SEED`).
const RNG_SEED: u64 = 0x51A6_1E0A;

const LABELS: [&str; 2] = ["a", "b"];

/// The two fixed query grammars of the suite: nested brackets with
/// concatenation (no ε), and a nullable Dyck-style shape whose diagonal
/// is pure ε-matches — the grammar class the seed-era solver got wrong.
fn grammars() -> Vec<Wcnf> {
    ["S -> a S b | a b | S S", "S -> a S b | S S | eps"]
        .iter()
        .map(|src| {
            Cfg::parse(src)
                .unwrap()
                .to_wcnf(CnfOptions::default())
                .unwrap()
        })
        .collect()
}

/// Checks one engine against the oracle, the relational index and the
/// CYK-validated extraction on one (graph, grammar, options) case.
fn check_engine<E: LenEngine>(
    name: &str,
    engine: &E,
    graph: &Graph,
    grammar: &Wcnf,
    options: SolveOptions,
) -> Result<(), TestCaseError> {
    let idx = SinglePathSolver::new(engine)
        .options(options)
        .solve(graph, grammar);
    let oracle = solve_single_path_oracle(graph, grammar, options);
    let relational = FixpointSolver::new(&SparseEngine)
        .options(options)
        .solve(graph, grammar);
    for a in 0..grammar.n_nts() {
        let nt = Nt(a as u32);
        prop_assert_eq!(
            idx.pairs(nt),
            oracle.pairs(nt),
            "{} vs oracle, nt {:?}",
            name,
            nt
        );
        prop_assert_eq!(
            idx.pairs(nt),
            relational.pairs(nt),
            "{} vs relational, nt {:?}",
            name,
            nt
        );
    }
    // Theorem 5 on every recorded start-symbol entry (and the oracle's):
    // the witness extracts, has exactly the recorded length, and its
    // label word derives from the nonterminal (CYK re-check inside
    // validate_witness). The ε-witness is the empty path.
    check_extraction(name, &idx, graph, grammar)?;
    check_extraction("oracle", &oracle, graph, grammar)?;
    Ok(())
}

fn check_extraction<M: cfpq_matrix::LenMat>(
    name: &str,
    index: &cfpq_core::single_path::SinglePathIndex<M>,
    graph: &Graph,
    grammar: &Wcnf,
) -> Result<(), TestCaseError> {
    for (i, j, len) in index.pairs_with_lengths(grammar.start) {
        let path = extract_path(index, graph, grammar, grammar.start, i, j)
            .map_err(|e| TestCaseError::fail(format!("{name}: extract ({i},{j}): {e}")))?;
        prop_assert_eq!(path.len() as u32, len, "{}: length at ({},{})", name, i, j);
        prop_assert!(
            validate_witness(&path, graph, grammar, grammar.start, i, j),
            "{}: invalid witness for ({},{})",
            name,
            i,
            j
        );
    }
    Ok(())
}

fn check_all(graph: &Graph, grammar: &Wcnf, diagonal: bool) -> Result<(), TestCaseError> {
    let options = SolveOptions {
        nullable_diagonal: diagonal,
    };
    check_engine("dense", &DenseEngine, graph, grammar, options)?;
    check_engine("sparse", &SparseEngine, graph, grammar, options)?;
    check_engine(
        "dense-par",
        &ParDenseEngine::new(Device::new(2)),
        graph,
        grammar,
        options,
    )?;
    check_engine(
        "sparse-par",
        &ParSparseEngine::new(Device::new(3)),
        graph,
        grammar,
        options,
    )?;
    check_engine(
        "tiled",
        &TiledEngine::new(Device::new(2)),
        graph,
        grammar,
        options,
    )?;
    check_engine(
        "adaptive",
        &AdaptiveEngine::new(Device::new(2)),
        graph,
        grammar,
        options,
    )?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(10, RNG_SEED))]

    #[test]
    fn engines_equal_oracle_and_relational_with_valid_witnesses(
        graph_seed in 0u64..1000,
        n_nodes in 2usize..8,
        edge_factor in 1usize..4,
        diagonal in 0u32..2,
    ) {
        let graph = generators::random_graph(
            n_nodes,
            edge_factor * n_nodes,
            &LABELS,
            graph_seed,
        );
        for grammar in grammars() {
            check_all(&graph, &grammar, diagonal == 1)?;
        }
    }

    #[test]
    fn session_single_path_repair_matches_cold_solve(
        graph_seed in 0u64..1000,
        n_nodes in 3usize..8,
        split in 1usize..6,
    ) {
        // Feed a random suffix of the edges through `add_edges` and
        // re-evaluate: the repaired length closure must reach exactly
        // the from-scratch pair sets, with every witness still valid.
        use cfpq_core::session::CfpqSession;
        let graph = generators::random_graph(n_nodes, 3 * n_nodes, &LABELS, graph_seed);
        for grammar in grammars() {
            let cold = SinglePathSolver::new(&SparseEngine).solve(&graph, &grammar);
            let edges = graph.edges();
            let split = split.min(edges.len());
            let mut base = Graph::new(graph.n_nodes());
            for e in &edges[..edges.len() - split] {
                base.add_edge_named(e.from, graph.label_name(e.label), e.to);
            }
            let mut session = CfpqSession::new(SparseEngine, &base);
            let id = session.prepare_single_path_query(
                cfpq_core::session::PreparedQuery::from_wcnf(grammar.clone()),
            );
            session.evaluate_single_path(id);
            let held: Vec<(u32, &str, u32)> = edges[edges.len() - split..]
                .iter()
                .map(|e| (e.from, graph.label_name(e.label), e.to))
                .collect();
            session.add_edges(&held);
            let idx = session.evaluate_single_path(id);
            for a in 0..grammar.n_nts() {
                let nt = Nt(a as u32);
                prop_assert_eq!(idx.pairs(nt), cold.pairs(nt), "nt {:?}", nt);
            }
            for (i, j, len) in idx.pairs_with_lengths(grammar.start) {
                let path = extract_path(idx, &graph, &grammar, grammar.start, i, j)
                    .map_err(|e| TestCaseError::fail(format!("extract ({i},{j}): {e}")))?;
                prop_assert_eq!(path.len() as u32, len);
                prop_assert!(validate_witness(&path, &graph, &grammar, grammar.start, i, j));
            }
        }
    }
}
