//! Fixed-seed property suite for incremental consistency: feeding a
//! graph's edges into a [`CfpqSession`] **one at a time** through
//! `add_edges` — re-evaluating after every insertion — must reach
//! exactly the `start_pairs` a from-scratch `solve` computes on the
//! final graph, on every engine and across structurally different
//! grammars. This is the contract that makes the session layer safe to
//! serve evolving graphs: the semi-naive repair loop
//! ([`FixpointSolver::resume`]) never under- or over-approximates the
//! least fixpoint, no matter how the updates are sliced.

use cfpq_core::query::{solve_wcnf, Backend};
use cfpq_core::relational::FixpointSolver;
use cfpq_core::session::{CfpqSession, PreparedQuery};
use cfpq_grammar::cnf::CnfOptions;
use cfpq_grammar::{Cfg, Wcnf};
use cfpq_graph::{generators, Graph};
use cfpq_matrix::{
    AdaptiveEngine, BoolEngine, DenseEngine, Device, LenEngine, ParDenseEngine, ParSparseEngine,
    SparseEngine, TiledEngine,
};
use proptest::prelude::*;

/// Base RNG seed: CI must replay the exact same cases on every run (see
/// shims/README.md for the seeding scheme and `CFPQ_PROPTEST_SEED`).
const RNG_SEED: u64 = 0x1C4E_ED6E;

/// The two fixed query grammars of the suite (the issue's "at least two
/// grammars"): nested brackets with concatenation, and a same-generation
/// shape — structurally different fixpoints (one grows by nesting, one
/// by mirrored pairs).
fn grammars() -> Vec<Wcnf> {
    ["S -> a S b | a b | S S", "S -> a S a | b S b | a a | b b"]
        .iter()
        .map(|src| {
            Cfg::parse(src)
                .unwrap()
                .to_wcnf(CnfOptions::default())
                .unwrap()
        })
        .collect()
}

/// Replays `graph` edge by edge through a session on `engine`, checking
/// the session answer against a from-scratch solve after every single
/// insertion (not just at the end: intermediate prefixes are exactly
/// where a wrong Δ seeding would hide).
fn check_engine<E: BoolEngine + LenEngine>(
    engine: E,
    graph: &Graph,
    wcnf: &Wcnf,
) -> Result<(), TestCaseError> {
    let empty = Graph::new(graph.n_nodes());
    let mut session = CfpqSession::over(cfpq_core::session::GraphIndex::build(engine, &empty));
    let id = session.prepare_query(PreparedQuery::from_wcnf(wcnf.clone()));
    // Cold-solve the empty graph so every insertion goes down the
    // incremental path.
    session.evaluate(id);

    let mut prefix = Graph::new(graph.n_nodes());
    for e in graph.edges() {
        let name = graph.label_name(e.label);
        prefix.add_edge_named(e.from, name, e.to);
        session.add_edges(&[(e.from, name, e.to)]);
        let incremental = session.evaluate(id);
        let scratch = solve_wcnf(&prefix, wcnf, Backend::Sparse);
        prop_assert_eq!(
            incremental.start_pairs(),
            scratch.start_pairs(),
            "prefix of {} edges diverges",
            prefix.n_edges()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(8, RNG_SEED))]

    #[test]
    fn one_at_a_time_insertion_matches_from_scratch(
        graph_seed in 0u64..1000,
        n_nodes in 2usize..8,
        edge_factor in 1usize..4,
    ) {
        for wcnf in grammars() {
            let graph = generators::random_graph(
                n_nodes,
                edge_factor * n_nodes,
                &["a", "b"],
                graph_seed,
            );
            check_engine(DenseEngine, &graph, &wcnf)?;
            check_engine(SparseEngine, &graph, &wcnf)?;
            check_engine(ParDenseEngine::new(Device::new(2)), &graph, &wcnf)?;
            check_engine(ParSparseEngine::new(Device::new(3)), &graph, &wcnf)?;
            check_engine(TiledEngine::new(Device::new(2)), &graph, &wcnf)?;
            check_engine(AdaptiveEngine::new(Device::new(2)), &graph, &wcnf)?;
        }
    }

    #[test]
    fn batched_insertion_matches_from_scratch(
        graph_seed in 0u64..1000,
        split in 1usize..7,
    ) {
        // Cyclic worst case: solve a prefix of the two-cycles graph,
        // then add the rest as one batch — cycles force multi-sweep
        // repairs, exercising the Δ propagation beyond the first sweep.
        for wcnf in grammars() {
            let graph = generators::two_cycles(4, 3);
            let k = split.min(graph.n_edges() - 1);
            let mut base = Graph::new(graph.n_nodes());
            for e in graph.edges().iter().take(k) {
                base.add_edge_named(e.from, graph.label_name(e.label), e.to);
            }
            let _ = graph_seed; // reserved: two_cycles is deterministic
            let mut session = CfpqSession::new(SparseEngine, &base);
            let id = session.prepare_query(PreparedQuery::from_wcnf(wcnf.clone()));
            session.evaluate(id);
            let rest: Vec<(u32, &str, u32)> = graph.edges()[k..]
                .iter()
                .map(|e| (e.from, graph.label_name(e.label), e.to))
                .collect();
            session.add_edges(&rest);
            let incremental = session.evaluate(id);
            let scratch = solve_wcnf(&graph, &wcnf, Backend::Sparse);
            prop_assert_eq!(incremental.start_pairs(), scratch.start_pairs());
        }
    }

    #[test]
    fn repaired_closure_matches_solver_on_every_nonterminal(
        graph_seed in 0u64..1000,
        n_nodes in 2usize..7,
    ) {
        // Beyond start_pairs: the whole repaired RelationalIndex must
        // equal a cold FixpointSolver run, nonterminal by nonterminal.
        let wcnf = &grammars()[0];
        let graph = generators::random_graph(n_nodes, 3 * n_nodes, &["a", "b"], graph_seed);
        let hold_out = graph.n_edges() / 2;
        let mut base = Graph::new(graph.n_nodes());
        for e in graph.edges().iter().take(hold_out) {
            base.add_edge_named(e.from, graph.label_name(e.label), e.to);
        }
        let mut session = CfpqSession::new(SparseEngine, &base);
        let id = session.prepare_query(PreparedQuery::from_wcnf(wcnf.clone()));
        session.evaluate(id);
        let rest: Vec<(u32, &str, u32)> = graph.edges()[hold_out..]
            .iter()
            .map(|e| (e.from, graph.label_name(e.label), e.to))
            .collect();
        session.add_edges(&rest);
        session.evaluate(id);
        let cold = FixpointSolver::new(&SparseEngine).solve(&graph, wcnf);
        let repaired = session.solved_index(id).expect("evaluated");
        for a in 0..wcnf.n_nts() {
            let nt = cfpq_grammar::Nt(a as u32);
            prop_assert_eq!(repaired.pairs(nt), cold.pairs(nt));
        }
    }
}
