//! Fixed-seed property suite for the unified fixpoint pipeline: every
//! [`Strategy`] on every [`BoolEngine`] must compute exactly the
//! closure that the paper-literal squaring loop over the set-valued
//! matrix computes, on random graphs × random weak-CNF grammars, with
//! and without the ε-diagonal option. This is the contract that lets
//! the facade default to `MaskedDelta` everywhere: the fast path is
//! observationally identical to Algorithm 1 as printed.

use cfpq_core::relational::{init_pairs, FixpointSolver, SolveOptions, Strategy};
use cfpq_grammar::random::{random_wcnf, RandomGrammarConfig};
use cfpq_grammar::{Nt, Wcnf};
use cfpq_graph::{generators, Graph};
use cfpq_matrix::closure::squaring_closure;
use cfpq_matrix::{
    AdaptiveEngine, BoolEngine, BoolMat, DenseEngine, Device, ParDenseEngine, ParSparseEngine,
    SetMatrix, SparseEngine, TiledEngine,
};
use proptest::prelude::*;

/// Base RNG seed: CI must replay the exact same cases on every run (see
/// shims/README.md for the seeding scheme and `CFPQ_PROPTEST_SEED`).
const RNG_SEED: u64 = 0x5EED_F1ED;

/// Terminal names matching [`RandomGrammarConfig::default`]'s alphabet.
const LABELS: [&str; 3] = ["t0", "t1", "t2"];

/// The reference closure: Algorithm 1 as printed, `T ← T ∪ (T × T)`
/// over the set-valued matrix, seeded exactly like the Boolean solvers.
fn reference_pairs(graph: &Graph, grammar: &Wcnf, diagonal: bool) -> Vec<Vec<(u32, u32)>> {
    let n = graph.n_nodes();
    let mut t = SetMatrix::empty(n, grammar.n_nts());
    for (nt_index, pairs) in init_pairs(graph, grammar).into_iter().enumerate() {
        for (i, j) in pairs {
            t.insert(i, j, Nt(nt_index as u32));
        }
    }
    if diagonal {
        for &nt in &grammar.nullable {
            for m in 0..n as u32 {
                t.insert(m, m, nt);
            }
        }
    }
    let closed = squaring_closure(&t, &grammar.binary_rules, false).matrix;
    (0..grammar.n_nts())
        .map(|a| {
            let nt = Nt(a as u32);
            let mut out = Vec::new();
            for i in 0..n as u32 {
                for j in 0..n as u32 {
                    if closed.contains(i, j, nt) {
                        out.push((i, j));
                    }
                }
            }
            out
        })
        .collect()
}

/// Runs one strategy on one engine and collects per-nonterminal pairs.
fn solver_pairs<E: BoolEngine>(
    engine: &E,
    strategy: Strategy,
    graph: &Graph,
    grammar: &Wcnf,
    diagonal: bool,
) -> Vec<Vec<(u32, u32)>> {
    let idx = FixpointSolver::new(engine)
        .strategy(strategy)
        .options(SolveOptions {
            nullable_diagonal: diagonal,
        })
        .solve(graph, grammar);
    (0..grammar.n_nts())
        .map(|a| idx.matrices[a].pairs())
        .collect()
}

/// Asserts all 4 strategies × all 4 engines match the reference.
fn check_all(
    graph: &Graph,
    grammar: &Wcnf,
    diagonal: bool,
) -> Result<(), proptest::prelude::TestCaseError> {
    let expect = reference_pairs(graph, grammar, diagonal);
    for strategy in Strategy::ALL {
        let runs = [
            (
                "dense",
                solver_pairs(&DenseEngine, strategy, graph, grammar, diagonal),
            ),
            (
                "sparse",
                solver_pairs(&SparseEngine, strategy, graph, grammar, diagonal),
            ),
            (
                "dense-par",
                solver_pairs(
                    &ParDenseEngine::new(Device::new(2)),
                    strategy,
                    graph,
                    grammar,
                    diagonal,
                ),
            ),
            (
                "sparse-par",
                solver_pairs(
                    &ParSparseEngine::new(Device::new(3)),
                    strategy,
                    graph,
                    grammar,
                    diagonal,
                ),
            ),
            (
                "tiled",
                solver_pairs(
                    &TiledEngine::new(Device::new(2)),
                    strategy,
                    graph,
                    grammar,
                    diagonal,
                ),
            ),
            (
                "adaptive",
                solver_pairs(
                    &AdaptiveEngine::new(Device::new(2)),
                    strategy,
                    graph,
                    grammar,
                    diagonal,
                ),
            ),
        ];
        for (engine_name, got) in runs {
            prop_assert_eq!(
                &got,
                &expect,
                "strategy {} on engine {} diverges from squaring closure (diagonal={})",
                strategy.name(),
                engine_name,
                diagonal
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(12, RNG_SEED))]

    #[test]
    fn strategies_times_engines_equal_squaring_closure(
        grammar_seed in 0u64..1000,
        graph_seed in 0u64..1000,
        n_nodes in 2usize..9,
        edge_factor in 1usize..5,
        diagonal in 0u32..2,
    ) {
        let grammar = random_wcnf(grammar_seed, RandomGrammarConfig::default());
        let graph = generators::random_graph(
            n_nodes,
            edge_factor * n_nodes,
            &LABELS,
            graph_seed,
        );
        check_all(&graph, &grammar, diagonal == 1)?;
    }

    #[test]
    fn strategies_agree_on_denser_grammars(
        grammar_seed in 0u64..1000,
        graph_seed in 0u64..1000,
    ) {
        // More rules → more shared (B, C) pairs → the dedup/masking
        // paths in the delta strategies actually fire.
        let config = RandomGrammarConfig {
            n_nts: 5,
            n_terms: 3,
            n_binary: 14,
            n_term_rules: 6,
        };
        let grammar = random_wcnf(grammar_seed, config);
        let graph = generators::random_graph(7, 21, &LABELS, graph_seed);
        check_all(&graph, &grammar, false)?;
    }
}
