//! Fixed-seed property suite for the unified RPQ pipeline.
//!
//! Every regular query has three independent formulations in this
//! workspace, and they must agree byte-for-byte:
//!
//! 1. the **product-graph oracle** [`solve_regular`] — hand-rolled,
//!    unmasked, rebuilt-from-scratch on every call;
//! 2. the **compiled pipeline** — the NFA lowered through
//!    [`cfpq_core::CompiledQuery`] into an RSM state grammar and solved
//!    by the session's masked semi-naive fixpoint against materialized
//!    label matrices;
//! 3. the **equivalent right-linear grammar** under Algorithm 1 (plain
//!    CFPQ on a regular grammar).
//!
//! The suite triangulates all three on fixed-seed random graphs across
//! all six matrix engines, checks that incremental repair after
//! `add_edges` answers exactly what a from-scratch solve answers, and
//! pins the materialization contract: evaluating a compiled RPQ through
//! a session performs **zero** `from_pairs` label-matrix builds — the
//! pipeline serves the `GraphIndex`'s matrices, it never rebuilds them
//! per query (the oracle, by design, does).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cfpq_core::regular::{solve_regular, Nfa};
use cfpq_core::CfpqSession;
use cfpq_grammar::Cfg;
use cfpq_graph::{generators, Graph};
use cfpq_matrix::{
    AdaptiveEngine, BoolEngine, BoolMat, DenseEngine, Device, KernelCounters, LenEngine, MaskedJob,
    ParDenseEngine, ParSparseEngine, SparseEngine, TiledEngine,
};

/// Base RNG seed shared with the workspace's other fixed-seed suites.
const RNG_SEED: u64 = 0x5E4_71CE;

/// The NFA/grammar equivalence cases: each pair denotes the same
/// regular language, so oracle, pipeline, and Algorithm 1 on the
/// right-linear grammar must coincide.
fn cases() -> Vec<(Nfa, Cfg)> {
    vec![
        (Nfa::plus("a"), Cfg::parse("S -> a S | a").unwrap()),
        (
            Nfa::star_then("a", "b"),
            Cfg::parse("S -> a S | b").unwrap(),
        ),
        (
            Nfa::word(&["a", "b"]),
            Cfg::parse("S -> a B\nB -> b").unwrap(),
        ),
    ]
}

/// Triangulates one engine: for every case and seed, the three
/// formulations answer identically on the same graph.
fn triangulate<E, F>(mk: F)
where
    E: BoolEngine + LenEngine,
    F: Fn() -> E,
{
    for (case, (nfa, grammar)) in cases().into_iter().enumerate() {
        for round in 0..4u64 {
            let seed = RNG_SEED
                .wrapping_add(case as u64)
                .wrapping_mul(31)
                .wrapping_add(round);
            let graph = generators::random_graph(9, 22, &["a", "b", "c"], seed);
            let engine = mk();
            let oracle = solve_regular(&engine, &graph, &nfa).pairs();
            let mut session = CfpqSession::new(engine, &graph);
            let rpq = session.prepare_regular(&nfa);
            let cfpq = session.prepare(&grammar).unwrap();
            assert_eq!(
                session.evaluate(rpq).start_pairs(),
                oracle,
                "[{}] pipeline vs oracle, case {case}, round {round}",
                mk().name(),
            );
            assert_eq!(
                session.evaluate(cfpq).start_pairs(),
                oracle,
                "[{}] regular-grammar CFPQ vs oracle, case {case}, round {round}",
                mk().name(),
            );
            let run = session.last_run(rpq).unwrap();
            assert!(!run.incremental, "cold solve is not a repair");
            assert!(
                run.stats.products_computed > 0,
                "the pipeline populates SolveStats"
            );
        }
    }
}

/// Incremental repair after `add_edges` must answer exactly what a
/// from-scratch session on the grown graph answers — and both must
/// match the oracle replayed on that graph.
fn repair_vs_scratch<E, F>(mk: F)
where
    E: BoolEngine + LenEngine,
    F: Fn() -> E,
{
    for (case, (nfa, _)) in cases().into_iter().enumerate() {
        let graph = generators::random_graph(8, 14, &["a", "b"], RNG_SEED ^ case as u64);
        let mut session = CfpqSession::new(mk(), &graph);
        let rpq = session.prepare_regular(&nfa);
        session.evaluate(rpq);

        // The batch mixes new edges on known labels with an edge naming
        // an unseen node id (forcing the node universe to grow).
        let batch: &[(u32, &str, u32)] = &[(0, "b", 3), (2, "a", 5), (7, "a", 9)];
        let inserted = session.add_edges(batch);
        assert!(inserted > 0, "the batch grows the graph");

        let mut grown = Graph::new(10);
        for e in graph.edges() {
            grown.add_edge_named(e.from, graph.label_name(e.label), e.to);
        }
        for &(u, l, v) in batch {
            grown.add_edge_named(u, l, v);
        }

        let repaired = session.evaluate(rpq).start_pairs().to_vec();
        assert!(
            session.last_run(rpq).unwrap().incremental,
            "the second evaluation is an incremental repair"
        );
        let mut scratch = CfpqSession::new(mk(), &grown);
        let scratch_id = scratch.prepare_regular(&nfa);
        assert_eq!(
            repaired,
            scratch.evaluate(scratch_id).start_pairs(),
            "[{}] repair vs scratch, case {case}",
            mk().name(),
        );
        assert_eq!(
            repaired,
            solve_regular(&mk(), &grown, &nfa).pairs(),
            "[{}] repair vs oracle, case {case}",
            mk().name(),
        );
    }
}

#[test]
fn three_formulations_agree_on_all_engines() {
    triangulate(|| SparseEngine);
    triangulate(|| DenseEngine);
    triangulate(|| ParDenseEngine::new(Device::new(2)));
    triangulate(|| ParSparseEngine::new(Device::new(2)));
    triangulate(|| TiledEngine::new(Device::new(2)));
    triangulate(|| AdaptiveEngine::new(Device::new(2)));
}

#[test]
fn repair_matches_scratch_on_all_engines() {
    repair_vs_scratch(|| SparseEngine);
    repair_vs_scratch(|| DenseEngine);
    repair_vs_scratch(|| ParDenseEngine::new(Device::new(2)));
    repair_vs_scratch(|| ParSparseEngine::new(Device::new(2)));
    repair_vs_scratch(|| TiledEngine::new(Device::new(2)));
    repair_vs_scratch(|| AdaptiveEngine::new(Device::new(2)));
}

/// A transparent decorator over [`SparseEngine`] that counts
/// `from_pairs` calls — the kernel that materializes a matrix from an
/// edge list. Every other method delegates explicitly (including the
/// ones with `from_pairs`-based default implementations, so a default
/// fallback can't silently inflate or hide the count).
#[derive(Clone)]
struct CountingEngine {
    inner: SparseEngine,
    from_pairs_calls: Arc<AtomicUsize>,
}

impl CountingEngine {
    fn new() -> Self {
        Self {
            inner: SparseEngine,
            from_pairs_calls: Arc::new(AtomicUsize::new(0)),
        }
    }

    fn builds(&self) -> usize {
        self.from_pairs_calls.load(Ordering::Relaxed)
    }
}

impl BoolEngine for CountingEngine {
    type Matrix = <SparseEngine as BoolEngine>::Matrix;

    fn name(&self) -> &'static str {
        "sparse-counting"
    }
    fn zeros(&self, n: usize) -> Self::Matrix {
        self.inner.zeros(n)
    }
    fn from_pairs(&self, n: usize, pairs: &[(u32, u32)]) -> Self::Matrix {
        self.from_pairs_calls.fetch_add(1, Ordering::Relaxed);
        self.inner.from_pairs(n, pairs)
    }
    fn multiply(&self, a: &Self::Matrix, b: &Self::Matrix) -> Self::Matrix {
        self.inner.multiply(a, b)
    }
    fn union_in_place(&self, a: &mut Self::Matrix, b: &Self::Matrix) -> bool {
        self.inner.union_in_place(a, b)
    }
    fn union_pairs(&self, a: &mut Self::Matrix, pairs: &[(u32, u32)]) -> bool {
        self.inner.union_pairs(a, pairs)
    }
    fn grow(&self, a: &mut Self::Matrix, n: usize) {
        self.inner.grow(a, n)
    }
    fn difference(&self, a: &Self::Matrix, b: &Self::Matrix) -> Self::Matrix {
        self.inner.difference(a, b)
    }
    fn intersect(&self, a: &Self::Matrix, b: &Self::Matrix) -> Self::Matrix {
        self.inner.intersect(a, b)
    }
    fn multiply_batch(&self, jobs: &[(&Self::Matrix, &Self::Matrix)]) -> Vec<Self::Matrix> {
        self.inner.multiply_batch(jobs)
    }
    fn multiply_masked(
        &self,
        a: &Self::Matrix,
        b: &Self::Matrix,
        complement_mask: &Self::Matrix,
    ) -> Self::Matrix {
        self.inner.multiply_masked(a, b, complement_mask)
    }
    fn multiply_masked_batch(&self, jobs: &[MaskedJob<'_, Self::Matrix>]) -> Vec<Self::Matrix> {
        self.inner.multiply_masked_batch(jobs)
    }
    fn kernel_counters(&self) -> KernelCounters {
        self.inner.kernel_counters()
    }
}

impl LenEngine for CountingEngine {
    type LenMatrix = <SparseEngine as LenEngine>::LenMatrix;

    fn len_empty(&self, n: usize) -> Self::LenMatrix {
        self.inner.len_empty(n)
    }
    fn len_from_entries(&self, n: usize, entries: &[(u32, u32, u32)]) -> Self::LenMatrix {
        self.inner.len_from_entries(n, entries)
    }
    fn len_set_absent(
        &self,
        a: &mut Self::LenMatrix,
        entries: &[(u32, u32, u32)],
    ) -> Vec<(u32, u32, u32)> {
        self.inner.len_set_absent(a, entries)
    }
    fn len_multiply(&self, a: &Self::LenMatrix, b: &Self::LenMatrix) -> Self::LenMatrix {
        self.inner.len_multiply(a, b)
    }
    fn len_multiply_masked(
        &self,
        a: &Self::LenMatrix,
        b: &Self::LenMatrix,
        mask: Option<&Self::LenMatrix>,
    ) -> Self::LenMatrix {
        self.inner.len_multiply_masked(a, b, mask)
    }
    fn len_merge_absent(
        &self,
        acc: &mut Self::LenMatrix,
        add: &Self::LenMatrix,
    ) -> Self::LenMatrix {
        self.inner.len_merge_absent(acc, add)
    }
    fn len_grow(&self, a: &mut Self::LenMatrix, n: usize) {
        self.inner.len_grow(a, n)
    }
}

/// The materialization contract behind the unified pipeline: the
/// session's `GraphIndex` builds each label matrix once, and compiled
/// queries (RPQ and CFPQ alike) are evaluated — cold solve *and*
/// incremental repair — without a single additional `from_pairs`
/// materialization. The standalone oracle, by contrast, rebuilds its
/// label matrices on every call.
#[test]
fn pipeline_never_rematerializes_label_matrices() {
    let graph = generators::random_graph(8, 16, &["a", "b"], RNG_SEED ^ 0xF00D);
    let nfa = Nfa::star_then("a", "b");

    // The oracle pays a per-call rebuild.
    let oracle_engine = CountingEngine::new();
    solve_regular(&oracle_engine, &graph, &nfa).pairs();
    let per_call = oracle_engine.builds();
    assert!(per_call > 0, "the oracle builds label matrices per call");
    solve_regular(&oracle_engine, &graph, &nfa).pairs();
    assert_eq!(
        oracle_engine.builds(),
        2 * per_call,
        "…and again on every subsequent call"
    );

    // The session pays materialization once, at index build.
    let engine = CountingEngine::new();
    let counter = engine.from_pairs_calls.clone();
    let mut session = CfpqSession::new(engine, &graph);
    let after_index = counter.load(Ordering::Relaxed);

    let rpq = session.prepare_regular(&nfa);
    let cfpq = session
        .prepare(&Cfg::parse("S -> a S | b").unwrap())
        .unwrap();
    session.evaluate(rpq);
    session.evaluate(cfpq);
    session.evaluate(rpq);
    session.evaluate(cfpq);
    assert_eq!(
        counter.load(Ordering::Relaxed),
        after_index,
        "cold solves and cache hits serve the index's matrices — zero rematerialization"
    );

    // Incremental repair materializes only batch-sized Δ-seed matrices
    // (one per nonterminal receiving new seeds), never the label
    // matrices themselves — and a re-evaluation after the repair builds
    // nothing at all.
    session.add_edges(&[(0, "a", 9), (1, "b", 2)]);
    session.evaluate(rpq);
    session.evaluate(cfpq);
    let delta_builds = counter.load(Ordering::Relaxed) - after_index;
    assert!(
        delta_builds <= 8,
        "repair builds Δ-seeds only (got {delta_builds} builds for a 2-edge batch)"
    );
    let after_repair = counter.load(Ordering::Relaxed);
    session.evaluate(rpq);
    session.evaluate(cfpq);
    assert_eq!(
        counter.load(Ordering::Relaxed),
        after_repair,
        "post-repair evaluations build nothing"
    );
}
