//! Algorithm 1: relational-semantics CFPQ by matrix transitive closure.
//!
//! §4.1 reduces the computation of the context-free relations
//! `R_A = {(n, m) | ∃ nπm, l(π) ∈ L(G_A)}` to the closure `a_cf` of the
//! matrix initialized from the graph's edges. Two executable forms live
//! here:
//!
//! 1. [`solve_set_matrix`] — the literal Algorithm 1 over
//!    [`SetMatrix`] (cells are subsets of `N`), with optional
//!    per-iteration snapshots used to replay Fig. 6–8;
//! 2. [`FixpointSolver`] — the Boolean decomposition (§3, after
//!    Valiant): one Boolean matrix `T_A` per nonterminal and, per
//!    sweep, `T_A |= T_B × T_C` for every `A → BC`. This is the form
//!    that maps onto BLAS-style kernels, and it is generic over
//!    [`BoolEngine`] so the paper's dGPU/sCPU/sGPU variants are just
//!    engine choices.
//!
//! # Fixpoint strategies
//!
//! All strategies compute the same least fixpoint (cross-checked by the
//! fixed-seed property suite); they differ in how much kernel work a
//! sweep launches. [`Strategy`] selects one:
//!
//! * [`Strategy::Naive`] — Algorithm 1 as printed: every rule recomputes
//!   its full product `T_B × T_C` every sweep (Gauss–Seidel order, the
//!   paper's reference loop).
//! * [`Strategy::Batched`] — the same full products, but all rules of a
//!   sweep are submitted as one [`BoolEngine::multiply_batch`], so
//!   device-backed engines overlap rule kernels (the paper's §7 remark
//!   that "matrix multiplication in the main loop … may be performed on
//!   different GPGPU independently").
//! * [`Strategy::Delta`] — classic semi-naive evaluation: each rule only
//!   multiplies the entries discovered in the previous sweep,
//!   `T_A |= ΔT_B × T_C ∪ T_B × ΔT_C`. Rules sharing the same `(B, C)`
//!   right-hand side share one product, kernels with an empty Δ operand
//!   are skipped outright, and no per-sweep zero matrices are allocated.
//! * [`Strategy::MaskedDelta`] — **the default**: semi-naive plus
//!   masking. Each product is computed through
//!   [`BoolEngine::multiply_masked`] with the accumulated `T_A` as
//!   complement mask, so the kernels never regenerate entries the
//!   closure already holds — the output of every multiplication is
//!   exactly the new information. Masking is what makes the
//!   linear-algebra formulation pay off at scale (Azimov & Grigorev,
//!   arXiv:1707.01007; Shemetova et al., arXiv:2103.14688), and it
//!   composes with the batched §7 decomposition: a masked sweep is one
//!   batch of independent masked kernels, the same shape the paper
//!   proposes to spread across multiple GPUs.
//!
//! The legacy entry point [`solve_on_engine`] (naive) remains as the
//! reference/ablation wrapper; `solve_on_engine_batched` and
//! `solve_on_engine_delta` are deprecated delegating shims (pick a
//! [`Strategy`] on the solver instead). Per-sweep work counters come
//! back in [`RelationalIndex::stats`].
//!
//! # Incremental repair
//!
//! The fixpoint is a *service*, not just an entry point: a closed
//! [`RelationalIndex`] can absorb newly-discovered base facts through
//! [`FixpointSolver::resume`], which seeds the semi-naive Δ loop with
//! only the new entries. This is what `cfpq_core::session::CfpqSession`
//! builds on to answer `add_edges` without re-solving from scratch.

use cfpq_grammar::{Nt, Term, Wcnf};
use cfpq_graph::Graph;
use cfpq_matrix::closure::squaring_closure;
use cfpq_matrix::{BoolEngine, BoolMat, MaskedJob, SetMatrix};
use std::collections::BTreeMap;

/// Maps grammar terminals to graph labels by name: `term_of[label] =
/// Some(term)` if the graph label's name is also a grammar terminal.
/// Labels that the grammar never mentions are simply ignored by the
/// initialization (they cannot participate in any derivation).
pub fn label_terminal_map(graph: &Graph, grammar: &Wcnf) -> Vec<Option<Term>> {
    graph
        .labels()
        .map(|(_, name)| grammar.symbols.get_term(name))
        .collect()
}

/// Per-nonterminal edge pairs — the matrix initialization of Algorithm 1
/// lines 6–7: `A ∈ T[i][j]` for every edge `(i, x, j)` and rule `A → x`.
pub fn init_pairs(graph: &Graph, grammar: &Wcnf) -> Vec<Vec<(u32, u32)>> {
    let term_of = label_terminal_map(graph, grammar);
    let by_term = grammar.nts_by_terminal();
    let mut pairs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); grammar.n_nts()];
    for e in graph.edges() {
        let Some(term) = term_of[e.label.index()] else {
            continue;
        };
        for &nt in &by_term[term.index()] {
            pairs[nt.index()].push((e.from, e.to));
        }
    }
    pairs
}

/// How a [`FixpointSolver`] runs the sweeps of Algorithm 1. See the
/// module docs for the full comparison; [`Strategy::MaskedDelta`] is the
/// default everywhere (facade, benches, examples).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Full products, rule by rule (the paper's Algorithm 1 loop).
    Naive,
    /// Full products, one engine batch per sweep (§7 decomposition).
    Batched,
    /// Semi-naive: only newly-discovered entries are multiplied.
    Delta,
    /// Semi-naive with masked kernels: products never regenerate entries
    /// the closure already holds. The default.
    #[default]
    MaskedDelta,
}

impl Strategy {
    /// Every strategy, for exhaustive cross-checking.
    pub const ALL: [Strategy; 4] = [
        Strategy::Naive,
        Strategy::Batched,
        Strategy::Delta,
        Strategy::MaskedDelta,
    ];

    /// Stable name for reports and benches.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Naive => "naive",
            Strategy::Batched => "batched",
            Strategy::Delta => "delta",
            Strategy::MaskedDelta => "masked-delta",
        }
    }
}

/// Kernel-work counters of one fixpoint run, for `reproduce --json` and
/// the perf-trajectory files (`BENCH_*.json`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Matrix products actually launched across all sweeps.
    pub products_computed: usize,
    /// Products a rule-by-rule semi-naive loop would have launched but
    /// this run avoided — by deduplicating shared `(B, C)` right-hand
    /// sides and by skipping kernels whose Δ operand was empty. Zero for
    /// the non-delta strategies (they skip nothing).
    pub products_skipped: usize,
    /// Total stored entries (`Σ_A nnz(T_A)`) after each sweep.
    pub sweep_nnz: Vec<usize>,
    /// Tile-pair kernels the blocked backends proved away during this
    /// run (empty counterpart tile-rows, fully-masked output tiles) —
    /// the engine's [`KernelCounters`](cfpq_matrix::KernelCounters)
    /// sampled before/after the run. Zero for the flat engines.
    pub tiles_skipped: u64,
    /// Representation conversions (dense ↔ CSR ↔ tiled) the adaptive
    /// engine performed during this run. Zero for fixed-representation
    /// engines.
    pub repr_switches: u64,
    /// Final `nnz(T_A)` per nonterminal (indexed like the grammar's
    /// nonterminals) — the per-nonterminal snapshot behind the adaptive
    /// engine's representation decisions.
    pub nt_nnz: Vec<usize>,
}

/// The result of a relational CFPQ evaluation: one Boolean matrix per
/// nonterminal, i.e. the decomposed transitive closure `a_cf`.
#[derive(Clone, Debug)]
pub struct RelationalIndex<M> {
    /// `matrices[A.index()]` holds `R_A` as a Boolean matrix.
    pub matrices: Vec<M>,
    /// Number of fixpoint iterations (outer `while matrix is changing`
    /// sweeps of Algorithm 1).
    pub iterations: usize,
    /// Graph size |V|.
    pub n_nodes: usize,
    /// Kernel-work counters of the run.
    pub stats: SolveStats,
}

impl<M: BoolMat> RelationalIndex<M> {
    /// True if `(i, j) ∈ R_A` (Theorem 2: `A ∈ a_cf[i][j]`).
    pub fn contains(&self, nt: Nt, i: u32, j: u32) -> bool {
        self.matrices[nt.index()].get(i, j)
    }

    /// `R_A` as sorted pairs.
    pub fn pairs(&self, nt: Nt) -> Vec<(u32, u32)> {
        self.matrices[nt.index()].pairs()
    }

    /// `|R_A|` — the `#results` column of Tables 1 and 2 for `A = S`.
    pub fn count(&self, nt: Nt) -> usize {
        self.matrices[nt.index()].nnz()
    }
}

/// Options for [`solve_on_engine_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveOptions {
    /// Seed `(A, m, m)` for every node `m` and every nullable `A`. The
    /// paper omits ε-rules because "only the empty paths mπm correspond
    /// to an empty string"; enabling this reports those empty-path
    /// matches, matching the semantics of parsers that keep ε (e.g. the
    /// GLL baseline).
    pub nullable_diagonal: bool,
}

/// The unified fixpoint pipeline: one engine-generic solver whose
/// [`Strategy`] selects how much kernel work each sweep launches.
///
/// ```
/// use cfpq_core::relational::{FixpointSolver, Strategy};
/// use cfpq_grammar::{cnf::CnfOptions, Cfg};
/// use cfpq_graph::generators;
/// use cfpq_matrix::SparseEngine;
///
/// let g = Cfg::parse("S -> a S b | a b").unwrap()
///     .to_wcnf(CnfOptions::default()).unwrap();
/// let s = g.symbols.get_nt("S").unwrap();
/// let graph = generators::word_chain(&["a", "a", "b", "b"]);
/// // MaskedDelta is the default strategy.
/// let idx = FixpointSolver::new(&SparseEngine).solve(&graph, &g);
/// assert_eq!(idx.pairs(s), vec![(0, 4), (1, 3)]);
/// // Ablations pick another strategy explicitly.
/// let naive = FixpointSolver::new(&SparseEngine)
///     .strategy(Strategy::Naive)
///     .solve(&graph, &g);
/// assert_eq!(naive.pairs(s), idx.pairs(s));
/// assert!(idx.stats.products_computed <= naive.stats.products_computed);
/// ```
pub struct FixpointSolver<'e, E: BoolEngine> {
    engine: &'e E,
    strategy: Strategy,
    options: SolveOptions,
}

impl<'e, E: BoolEngine> FixpointSolver<'e, E> {
    /// A solver on `engine` with the default [`Strategy::MaskedDelta`]
    /// and default [`SolveOptions`].
    pub fn new(engine: &'e E) -> Self {
        Self {
            engine,
            strategy: Strategy::default(),
            options: SolveOptions::default(),
        }
    }

    /// Selects the sweep strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the solve options (ε-diagonal seeding).
    pub fn options(mut self, options: SolveOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs Algorithm 1's fixpoint to completion. Termination: entries
    /// only grow, bounded by `|V|²·|N|` (Theorem 3).
    ///
    /// This is the one-shot entry point: it decomposes the graph into
    /// the per-nonterminal seed matrices (lines 6–7) and hands them to
    /// [`FixpointSolver::solve_from_matrices`]. Callers that already own
    /// the decomposition — a `GraphIndex` serving many queries — skip
    /// straight to the latter.
    pub fn solve(&self, graph: &Graph, grammar: &Wcnf) -> RelationalIndex<E::Matrix> {
        let n = graph.n_nodes();
        let mut init = init_pairs(graph, grammar);
        if self.options.nullable_diagonal {
            for &nt in &grammar.nullable {
                init[nt.index()].extend((0..n as u32).map(|m| (m, m)));
            }
        }
        let matrices: Vec<E::Matrix> = init
            .into_iter()
            .map(|pairs| self.engine.from_pairs(n, &pairs))
            .collect();
        self.solve_from_matrices(matrices, n, grammar)
    }

    /// Runs the fixpoint from pre-seeded per-nonterminal matrices
    /// (`matrices[A.index()]` holds the initialization of `T_A`). The
    /// caller is responsible for the seeding — including the optional
    /// ε-diagonal; [`SolveOptions::nullable_diagonal`] is not re-applied
    /// here. This is the service entry point the session layer uses: the
    /// graph→matrix decomposition lives in the `GraphIndex`, the fixpoint
    /// is just a function of the seeds.
    pub fn solve_from_matrices(
        &self,
        matrices: Vec<E::Matrix>,
        n: usize,
        grammar: &Wcnf,
    ) -> RelationalIndex<E::Matrix> {
        let mut sp = cfpq_obs::span("solve");
        let index = match self.strategy {
            Strategy::Naive => self.run_naive(matrices, n, grammar),
            Strategy::Batched => self.run_batched(matrices, n, grammar),
            Strategy::Delta => self.run_delta(matrices, n, grammar, false),
            Strategy::MaskedDelta => self.run_delta(matrices, n, grammar, true),
        };
        if sp.is_recording() {
            sp.attr_str("strategy", self.strategy.name());
            sp.attr_str("mode", "cold");
            sp.attr_u64("sweeps", index.iterations as u64);
            sp.attr_u64("products", index.stats.products_computed as u64);
        }
        index
    }

    /// Incrementally folds newly-discovered base facts into an already
    /// closed index: `new_pairs[A.index()]` are candidate additions to
    /// `T_A` (typically the seeds arising from freshly inserted graph
    /// edges). Entries already present in the closure are filtered out;
    /// the rest seed the semi-naive Δ loop, so the fixpoint is repaired
    /// by multiplying **only the new information** instead of re-solving
    /// from scratch — the distribution property behind semi-naive
    /// evaluation guarantees the same least fixpoint.
    ///
    /// The sweeps are always semi-naive regardless of the configured
    /// [`Strategy`] (re-running full naive products from a converged
    /// state would defeat the point); [`Strategy::MaskedDelta`] — and,
    /// for convenience, the full-product strategies — resume with masked
    /// kernels, [`Strategy::Delta`] resumes unmasked.
    ///
    /// Returns the [`SolveStats`] of the resume portion alone; the
    /// index's cumulative `stats` and `iterations` are also advanced.
    pub fn resume(
        &self,
        index: &mut RelationalIndex<E::Matrix>,
        grammar: &Wcnf,
        new_pairs: &[Vec<(u32, u32)>],
    ) -> SolveStats {
        let mut sp = cfpq_obs::span("solve");
        let engine = self.engine;
        let n_nts = grammar.n_nts();
        assert_eq!(new_pairs.len(), n_nts, "one pair list per nonterminal");
        let masked = self.strategy != Strategy::Delta;
        let counters_before = engine.kernel_counters();

        // Δ_A = new seeds not already in the closure; fold them in.
        let mut delta: Vec<Option<E::Matrix>> = (0..n_nts).map(|_| None).collect();
        let mut any = false;
        for (a, pairs) in new_pairs.iter().enumerate() {
            if pairs.is_empty() {
                continue;
            }
            let fresh =
                engine.difference(&engine.from_pairs(index.n_nodes, pairs), &index.matrices[a]);
            if fresh.nnz() == 0 {
                continue;
            }
            engine.union_in_place(&mut index.matrices[a], &fresh);
            delta[a] = Some(fresh);
            any = true;
        }
        let mut stats = SolveStats::default();
        if sp.is_recording() {
            sp.attr_str("strategy", self.strategy.name());
            sp.attr_str("mode", "resume");
        }
        if !any {
            if sp.is_recording() {
                sp.attr_u64("sweeps", 0);
                sp.attr_u64("products", 0);
            }
            return stats; // nothing new: the closure is already correct
        }
        let sweeps = self.delta_sweeps(
            &mut index.matrices,
            DeltaSeed::Deltas(delta),
            grammar,
            masked,
            &mut stats,
        );
        finish_stats(&mut stats, engine, counters_before, &index.matrices);
        index.iterations += sweeps;
        index.stats.products_computed += stats.products_computed;
        index.stats.products_skipped += stats.products_skipped;
        index.stats.tiles_skipped += stats.tiles_skipped;
        index.stats.repr_switches += stats.repr_switches;
        index
            .stats
            .sweep_nnz
            .extend(stats.sweep_nnz.iter().copied());
        index.stats.nt_nnz.clone_from(&stats.nt_nnz);
        if sp.is_recording() {
            sp.attr_u64("sweeps", sweeps as u64);
            sp.attr_u64("products", stats.products_computed as u64);
        }
        stats
    }

    /// Algorithm 1 as printed: every rule recomputes its full product on
    /// every sweep, unions applied immediately (Gauss–Seidel order).
    fn run_naive(
        &self,
        mut matrices: Vec<E::Matrix>,
        n: usize,
        grammar: &Wcnf,
    ) -> RelationalIndex<E::Matrix> {
        let engine = self.engine;
        let mut stats = SolveStats::default();
        let counters_before = engine.kernel_counters();
        let mut iterations = 0;
        loop {
            iterations += 1;
            let mut sweep_sp = cfpq_obs::span("sweep");
            let mut changed = false;
            for rule in &grammar.binary_rules {
                let product =
                    engine.multiply(&matrices[rule.left.index()], &matrices[rule.right.index()]);
                stats.products_computed += 1;
                changed |= engine.union_in_place(&mut matrices[rule.lhs.index()], &product);
            }
            stats.sweep_nnz.push(total_nnz(&matrices));
            if sweep_sp.is_recording() {
                sweep_sp.attr_u64("sweep", iterations as u64);
                sweep_sp.attr_u64("products", grammar.binary_rules.len() as u64);
            }
            drop(sweep_sp);
            if !changed {
                break;
            }
        }
        finish_stats(&mut stats, engine, counters_before, &matrices);
        RelationalIndex {
            matrices,
            iterations,
            n_nodes: n,
            stats,
        }
    }

    /// Full products, but each sweep's rules go to the engine as one
    /// batch, computed from the same snapshot (Jacobi order; may take a
    /// sweep or two more than Gauss–Seidel, same least fixpoint).
    fn run_batched(
        &self,
        mut matrices: Vec<E::Matrix>,
        n: usize,
        grammar: &Wcnf,
    ) -> RelationalIndex<E::Matrix> {
        let engine = self.engine;
        let mut stats = SolveStats::default();
        let counters_before = engine.kernel_counters();
        let mut iterations = 0;
        loop {
            iterations += 1;
            let mut sweep_sp = cfpq_obs::span("sweep");
            let jobs: Vec<(&E::Matrix, &E::Matrix)> = grammar
                .binary_rules
                .iter()
                .map(|r| (&matrices[r.left.index()], &matrices[r.right.index()]))
                .collect();
            let n_jobs = jobs.len();
            let products = engine.multiply_batch(&jobs);
            stats.products_computed += n_jobs;
            let mut changed = false;
            for (rule, product) in grammar.binary_rules.iter().zip(products) {
                changed |= engine.union_in_place(&mut matrices[rule.lhs.index()], &product);
            }
            stats.sweep_nnz.push(total_nnz(&matrices));
            if sweep_sp.is_recording() {
                sweep_sp.attr_u64("sweep", iterations as u64);
                sweep_sp.attr_u64("products", n_jobs as u64);
            }
            drop(sweep_sp);
            if !changed {
                break;
            }
        }
        finish_stats(&mut stats, engine, counters_before, &matrices);
        RelationalIndex {
            matrices,
            iterations,
            n_nodes: n,
            stats,
        }
    }

    /// Semi-naive sweeps, optionally with masked kernels.
    ///
    /// Per sweep each distinct `(B, C)` right-hand side contributes at
    /// most two products, `ΔT_B × T_C` and `T_B × ΔT_C`, shared by every
    /// rule `A → BC` (multiply once, union into every LHS). Kernels with
    /// an empty Δ operand are skipped. On the first sweep Δ *is* the
    /// initial matrix, so a single `T_B × T_C` product per pair suffices
    /// — no clone of the initial matrices is ever taken. With `masked`
    /// set, a pair produced by exactly one LHS `A` runs through
    /// [`BoolEngine::multiply_masked`] with the accumulated `T_A` as
    /// complement mask, so the kernel emits only new entries and the Δ
    /// for the next sweep needs no difference pass.
    fn run_delta(
        &self,
        mut full: Vec<E::Matrix>,
        n: usize,
        grammar: &Wcnf,
        masked: bool,
    ) -> RelationalIndex<E::Matrix> {
        let mut stats = SolveStats::default();
        let counters_before = self.engine.kernel_counters();
        let iterations = self.delta_sweeps(&mut full, DeltaSeed::Full, grammar, masked, &mut stats);
        finish_stats(&mut stats, self.engine, counters_before, &full);
        RelationalIndex {
            matrices: full,
            iterations,
            n_nodes: n,
            stats,
        }
    }

    /// The semi-naive sweep loop shared by the cold-solve delta
    /// strategies and the incremental [`FixpointSolver::resume`] path.
    /// `seed` selects where the first sweep's Δ comes from:
    /// [`DeltaSeed::Full`] treats the (freshly initialized) `full`
    /// matrices themselves as the Δ — the cold-solve case, with no clone
    /// ever taken — while [`DeltaSeed::Deltas`] starts from explicit Δ
    /// matrices already folded into `full` — the resume case. Returns
    /// the number of sweeps run; work counters accumulate into `stats`.
    fn delta_sweeps(
        &self,
        full: &mut [E::Matrix],
        seed: DeltaSeed<E::Matrix>,
        grammar: &Wcnf,
        masked: bool,
        stats: &mut SolveStats,
    ) -> usize {
        let engine = self.engine;
        let n_nts = grammar.n_nts();

        // Distinct (B, C) operand pairs → the LHS nonterminals they feed.
        let mut by_pair: BTreeMap<(u32, u32), Vec<usize>> = BTreeMap::new();
        for rule in &grammar.binary_rules {
            let lhss = by_pair.entry((rule.left.0, rule.right.0)).or_default();
            if !lhss.contains(&rule.lhs.index()) {
                lhss.push(rule.lhs.index());
            }
        }
        let groups: Vec<((usize, usize), Vec<usize>)> = by_pair
            .into_iter()
            .map(|((b, c), lhss)| ((b as usize, c as usize), lhss))
            .collect();
        // What a rule-by-rule semi-naive loop launches per sweep: two
        // products (ΔB×C and B×ΔC) for every binary rule.
        let per_sweep_potential = 2 * grammar.binary_rules.len();

        // Δ per nonterminal; `None` means empty (never allocated for
        // nonterminals no rule produces).
        let (mut seed_from_full, mut delta): (bool, Vec<Option<E::Matrix>>) = match seed {
            DeltaSeed::Full => (true, (0..n_nts).map(|_| None).collect()),
            DeltaSeed::Deltas(d) => {
                debug_assert_eq!(d.len(), n_nts);
                (false, d)
            }
        };
        let mut iterations = 0;
        loop {
            iterations += 1;
            let mut sweep_sp = cfpq_obs::span("sweep");
            let first = std::mem::take(&mut seed_from_full);

            // Assemble this sweep's kernel jobs from the same snapshot.
            let mut jobs: Vec<MaskedJob<'_, E::Matrix>> = Vec::new();
            let mut job_group: Vec<usize> = Vec::new();
            for (gi, ((b, c), lhss)) in groups.iter().enumerate() {
                let mask = match (masked, &lhss[..]) {
                    (true, &[a]) => Some(&full[a]),
                    _ => None,
                };
                if first {
                    // Δ = T initially, so ΔB×C and B×ΔC coincide.
                    jobs.push((&full[*b], &full[*c], mask));
                    job_group.push(gi);
                } else {
                    if let Some(db) = &delta[*b] {
                        jobs.push((db, &full[*c], mask));
                        job_group.push(gi);
                    }
                    if let Some(dc) = &delta[*c] {
                        jobs.push((&full[*b], dc, mask));
                        job_group.push(gi);
                    }
                }
            }
            let n_jobs = jobs.len();
            let products = engine.multiply_masked_batch(&jobs);
            stats.products_computed += n_jobs;
            stats.products_skipped += per_sweep_potential - n_jobs;

            // Union each product into the fresh accumulator of every LHS
            // of its group (the product is shared, not recomputed).
            let mut fresh: Vec<Option<E::Matrix>> = (0..n_nts).map(|_| None).collect();
            let mut fresh_masked: Vec<bool> = vec![true; n_nts];
            for (product, &gi) in products.into_iter().zip(&job_group) {
                let lhss = &groups[gi].1;
                let was_masked = masked && lhss.len() == 1;
                let (&last, rest) = lhss.split_last().expect("group has an LHS");
                for &a in rest {
                    match &mut fresh[a] {
                        Some(acc) => {
                            engine.union_in_place(acc, &product);
                        }
                        None => fresh[a] = Some(product.clone()),
                    }
                    fresh_masked[a] &= was_masked;
                }
                match &mut fresh[last] {
                    Some(acc) => {
                        engine.union_in_place(acc, &product);
                    }
                    None => fresh[last] = Some(product),
                }
                fresh_masked[last] &= was_masked;
            }

            // Fold the fresh entries into the closure and derive the next Δ.
            let mut changed = false;
            for a in 0..n_nts {
                let Some(f) = fresh[a].take() else {
                    delta[a] = None;
                    continue;
                };
                // Masked products are already disjoint from `full[a]`
                // (the mask snapshot predates this sweep's unions), so
                // they *are* the new Δ; unmasked ones need a difference.
                let new_entries = if fresh_masked[a] {
                    f
                } else {
                    engine.difference(&f, &full[a])
                };
                if new_entries.nnz() == 0 {
                    delta[a] = None;
                    continue;
                }
                engine.union_in_place(&mut full[a], &new_entries);
                delta[a] = Some(new_entries);
                changed = true;
            }
            stats.sweep_nnz.push(total_nnz(full));
            if sweep_sp.is_recording() {
                sweep_sp.attr_u64("sweep", iterations as u64);
                sweep_sp.attr_u64("products", n_jobs as u64);
                sweep_sp.attr_u64("masked", masked as u64);
                // Per-nonterminal Δ-nnz this sweep produced, as
                // `nt:nnz` pairs (only nonterminals that changed).
                let per_nt: Vec<String> = delta
                    .iter()
                    .enumerate()
                    .filter_map(|(a, d)| d.as_ref().map(|d| format!("{a}:{}", d.nnz())))
                    .collect();
                sweep_sp.attr_text("delta_nnz", per_nt.join(","));
            }
            drop(sweep_sp);
            if !changed {
                break;
            }
        }
        iterations
    }
}

/// Where [`FixpointSolver::delta_sweeps`] takes its first sweep's Δ
/// from: the freshly-seeded full matrices themselves (cold solve), or
/// explicit per-nonterminal deltas (incremental resume).
enum DeltaSeed<M> {
    /// Δ = T: every seeded matrix is entirely new information.
    Full,
    /// Explicit Δ matrices, already folded into the closure.
    Deltas(Vec<Option<M>>),
}

/// `Σ_A nnz(T_A)` — one data point of [`SolveStats::sweep_nnz`].
fn total_nnz<M: BoolMat>(matrices: &[M]) -> usize {
    matrices.iter().map(BoolMat::nnz).sum()
}

/// Closes out a run's [`SolveStats`]: brackets the engine's cumulative
/// [`KernelCounters`](cfpq_matrix::KernelCounters) (sampled at run
/// start) to this run's contribution and snapshots the final
/// per-nonterminal nnz.
fn finish_stats<E: BoolEngine>(
    stats: &mut SolveStats,
    engine: &E,
    counters_before: cfpq_matrix::KernelCounters,
    matrices: &[E::Matrix],
) {
    let work = engine.kernel_counters().since(counters_before);
    stats.tiles_skipped = work.tiles_skipped;
    stats.repr_switches = work.repr_switches;
    stats.nt_nnz = matrices.iter().map(BoolMat::nnz).collect();
}

/// Runs Algorithm 1 in its Boolean decomposition on the given engine,
/// with the paper-literal [`Strategy::Naive`] loop. Kept as the
/// reference/ablation entry point; the fast default pipeline is
/// [`FixpointSolver`] (strategy [`Strategy::MaskedDelta`]).
pub fn solve_on_engine<E: BoolEngine>(
    engine: &E,
    graph: &Graph,
    grammar: &Wcnf,
) -> RelationalIndex<E::Matrix> {
    solve_on_engine_with(engine, graph, grammar, SolveOptions::default())
}

/// [`solve_on_engine`] with explicit [`SolveOptions`].
pub fn solve_on_engine_with<E: BoolEngine>(
    engine: &E,
    graph: &Graph,
    grammar: &Wcnf,
    options: SolveOptions,
) -> RelationalIndex<E::Matrix> {
    FixpointSolver::new(engine)
        .strategy(Strategy::Naive)
        .options(options)
        .solve(graph, grammar)
}

/// Legacy [`Strategy::Batched`] wrapper, superseded by
/// `FixpointSolver::new(engine).strategy(Strategy::Batched)`. Kept as a
/// thin delegating shim so old callers keep compiling; new code should
/// pick a [`Strategy`] on the solver (or go through `session::CfpqSession`
/// when the same graph serves several queries).
#[deprecated(
    since = "0.1.0",
    note = "use FixpointSolver::new(engine).strategy(Strategy::Batched).solve(..)"
)]
pub fn solve_on_engine_batched<E: BoolEngine>(
    engine: &E,
    graph: &Graph,
    grammar: &Wcnf,
) -> RelationalIndex<E::Matrix> {
    FixpointSolver::new(engine)
        .strategy(Strategy::Batched)
        .solve(graph, grammar)
}

/// Legacy [`Strategy::Delta`] wrapper, superseded by
/// `FixpointSolver::new(engine).strategy(Strategy::Delta)`. Kept as a
/// thin delegating shim so old callers keep compiling; semi-naive
/// evaluation multiplies only the newly discovered part of each operand,
/// `T_A |= ΔT_B × T_C ∪ T_B × ΔT_C` (benchmarked as an ablation point).
#[deprecated(
    since = "0.1.0",
    note = "use FixpointSolver::new(engine).strategy(Strategy::Delta).solve(..)"
)]
pub fn solve_on_engine_delta<E: BoolEngine>(
    engine: &E,
    graph: &Graph,
    grammar: &Wcnf,
) -> RelationalIndex<E::Matrix> {
    FixpointSolver::new(engine)
        .strategy(Strategy::Delta)
        .solve(graph, grammar)
}

/// Result of the paper-literal set-matrix run (used for the Fig. 6–8
/// replay and as the reference implementation).
#[derive(Clone, Debug)]
pub struct SetMatrixResult {
    /// The closed matrix `T = a_cf`.
    pub matrix: SetMatrix,
    /// Outer iterations until `T_k = T_{k-1}` (§4.3 reports k = 6 for the
    /// worked example).
    pub iterations: usize,
    /// `T_0, T_1, …` if snapshots were requested.
    pub snapshots: Vec<SetMatrix>,
}

impl SetMatrixResult {
    /// `R_A` as sorted pairs, read off the closed set matrix.
    pub fn pairs(&self, nt: Nt) -> Vec<(u32, u32)> {
        let n = self.matrix.n() as u32;
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if self.matrix.contains(i, j, nt) {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

/// Runs Algorithm 1 literally: a single matrix over nonterminal sets,
/// closed by `T ← T ∪ (T × T)`.
pub fn solve_set_matrix(graph: &Graph, grammar: &Wcnf, keep_snapshots: bool) -> SetMatrixResult {
    let n = graph.n_nodes();
    let mut t = SetMatrix::empty(n, grammar.n_nts());
    for (nt_index, pairs) in init_pairs(graph, grammar).into_iter().enumerate() {
        for (i, j) in pairs {
            t.insert(i, j, Nt(nt_index as u32));
        }
    }
    let closure = squaring_closure(&t, &grammar.binary_rules, keep_snapshots);
    SetMatrixResult {
        matrix: closure.matrix,
        iterations: closure.iterations,
        snapshots: closure.snapshots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpq_grammar::cnf::CnfOptions;
    use cfpq_grammar::queries;
    use cfpq_grammar::Cfg;
    use cfpq_graph::generators;
    use cfpq_matrix::{DenseEngine, Device, ParDenseEngine, ParSparseEngine, SparseEngine};

    fn wcnf(src: &str) -> Wcnf {
        Cfg::parse(src)
            .unwrap()
            .to_wcnf(CnfOptions::default())
            .unwrap()
    }

    #[test]
    fn anbn_on_chain() {
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["a", "a", "b", "b"]);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        assert_eq!(idx.pairs(s), vec![(0, 4), (1, 3)]);
    }

    #[test]
    fn two_cycles_full_relation() {
        // Classic worst case: |a-cycle| = 2, |b-cycle| = 3 with
        // S -> a S b | a b yields a dense S-relation over the a-cycle ×
        // b-cycle node sets (all words a^(2i) b^(3j)-aligned combine).
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::two_cycles(2, 3);
        let idx = solve_on_engine(&SparseEngine, &graph, &g);
        // Well-known result: |R_S| > 0 and includes (0, 0).
        assert!(idx.contains(s, 0, 0));
        // Every pair must start in the a-cycle {0,1} and end in the
        // b-cycle {0,2,3}.
        for (i, j) in idx.pairs(s) {
            assert!(i <= 1, "source in a-cycle, got {i}");
            assert!(j == 0 || j >= 2, "target in b-cycle, got {j}");
        }
    }

    #[test]
    fn all_engines_agree() {
        let g = wcnf("S -> a S b | a b");
        let graph = generators::two_cycles(3, 2);
        let dense = solve_on_engine(&DenseEngine, &graph, &g);
        let sparse = solve_on_engine(&SparseEngine, &graph, &g);
        let dpar = solve_on_engine(&ParDenseEngine::new(Device::new(3)), &graph, &g);
        let spar = solve_on_engine(&ParSparseEngine::new(Device::new(3)), &graph, &g);
        for nt in 0..g.n_nts() {
            let nt = Nt(nt as u32);
            let expect = dense.pairs(nt);
            assert_eq!(sparse.pairs(nt), expect);
            assert_eq!(dpar.pairs(nt), expect);
            assert_eq!(spar.pairs(nt), expect);
        }
    }

    #[test]
    #[allow(deprecated)] // the shims must stay observationally equivalent
    fn batched_variant_agrees() {
        use cfpq_matrix::{Device, ParSparseEngine};
        let g = wcnf("S -> a S b | a b | S S");
        let graph = generators::two_cycles(3, 4);
        let naive = solve_on_engine(&SparseEngine, &graph, &g);
        let batched = solve_on_engine_batched(&SparseEngine, &graph, &g);
        let batched_par =
            solve_on_engine_batched(&ParSparseEngine::new(Device::new(2)), &graph, &g);
        for nt in 0..g.n_nts() {
            let nt = Nt(nt as u32);
            assert_eq!(naive.pairs(nt), batched.pairs(nt));
            assert_eq!(naive.pairs(nt), batched_par.pairs(nt));
        }
    }

    #[test]
    #[allow(deprecated)] // the shims must stay observationally equivalent
    fn delta_variant_agrees() {
        let g = wcnf("S -> a S b | a b | S S");
        let graph = generators::two_cycles(3, 4);
        let naive = solve_on_engine(&SparseEngine, &graph, &g);
        let delta = solve_on_engine_delta(&SparseEngine, &graph, &g);
        for nt in 0..g.n_nts() {
            let nt = Nt(nt as u32);
            assert_eq!(naive.pairs(nt), delta.pairs(nt));
        }
    }

    #[test]
    fn solve_from_matrices_equals_solve() {
        let g = wcnf("S -> a S b | a b | S S");
        let graph = generators::two_cycles(3, 4);
        let reference = FixpointSolver::new(&SparseEngine).solve(&graph, &g);
        let seeds: Vec<_> = init_pairs(&graph, &g)
            .into_iter()
            .map(|pairs| SparseEngine.from_pairs(graph.n_nodes(), &pairs))
            .collect();
        let via_seeds =
            FixpointSolver::new(&SparseEngine).solve_from_matrices(seeds, graph.n_nodes(), &g);
        for nt in 0..g.n_nts() {
            let nt = Nt(nt as u32);
            assert_eq!(reference.pairs(nt), via_seeds.pairs(nt));
        }
        assert_eq!(reference.iterations, via_seeds.iterations);
        assert_eq!(reference.stats, via_seeds.stats);
    }

    #[test]
    fn resume_repairs_closure_after_new_edges() {
        // Solve a^n b^n on a truncated chain, then feed the final edge in
        // through resume: the repaired index must equal a from-scratch
        // solve on the full chain, with strictly less resume work.
        let g = wcnf("S -> a S b | a b");
        let full_graph = generators::word_chain(&["a", "a", "b", "b"]);
        let mut partial = cfpq_graph::Graph::new(5);
        for e in full_graph.edges().iter().take(3) {
            partial.add_edge_named(e.from, full_graph.label_name(e.label), e.to);
        }
        let solver = FixpointSolver::new(&SparseEngine);
        let mut idx = solver.solve(&partial, &g);
        let cold = solver.solve(&full_graph, &g);

        // The last edge (3, b, 4) seeds every nonterminal with a b-rule.
        let b_term = g.symbols.get_term("b").unwrap();
        let mut new_pairs = vec![Vec::new(); g.n_nts()];
        for nt in &g.nts_by_terminal()[b_term.index()] {
            new_pairs[nt.index()].push((3, 4));
        }
        let resume_stats = solver.resume(&mut idx, &g, &new_pairs);
        for nt in 0..g.n_nts() {
            let nt = Nt(nt as u32);
            assert_eq!(idx.pairs(nt), cold.pairs(nt), "repaired == from-scratch");
        }
        assert!(
            resume_stats.products_computed < cold.stats.products_computed,
            "resume {} vs cold {}",
            resume_stats.products_computed,
            cold.stats.products_computed
        );
        // Cumulative counters advanced by exactly the resume portion.
        assert!(idx.stats.products_computed >= resume_stats.products_computed);
    }

    #[test]
    fn resume_with_known_pairs_is_a_noop() {
        let g = wcnf("S -> a S b | a b");
        let graph = generators::word_chain(&["a", "a", "b", "b"]);
        let solver = FixpointSolver::new(&DenseEngine);
        let mut idx = solver.solve(&graph, &g);
        let before_iterations = idx.iterations;
        let before = idx.stats.clone();
        // Re-announce an edge the closure already accounts for.
        let a_term = g.symbols.get_term("a").unwrap();
        let mut new_pairs = vec![Vec::new(); g.n_nts()];
        for nt in &g.nts_by_terminal()[a_term.index()] {
            new_pairs[nt.index()].push((0, 1));
        }
        let stats = solver.resume(&mut idx, &g, &new_pairs);
        assert_eq!(stats, SolveStats::default(), "no new facts, no sweeps");
        assert_eq!(idx.iterations, before_iterations);
        assert_eq!(idx.stats, before);
    }

    #[test]
    fn all_strategies_agree_on_all_engines() {
        let g = wcnf("S -> a S b | a b | S S");
        let graph = generators::two_cycles(3, 4);
        let reference = solve_on_engine(&DenseEngine, &graph, &g);
        for strategy in Strategy::ALL {
            let dense = FixpointSolver::new(&DenseEngine)
                .strategy(strategy)
                .solve(&graph, &g);
            let sparse = FixpointSolver::new(&SparseEngine)
                .strategy(strategy)
                .solve(&graph, &g);
            let dpar = FixpointSolver::new(&ParDenseEngine::new(Device::new(3)))
                .strategy(strategy)
                .solve(&graph, &g);
            let spar = FixpointSolver::new(&ParSparseEngine::new(Device::new(2)))
                .strategy(strategy)
                .solve(&graph, &g);
            for nt in 0..g.n_nts() {
                let nt = Nt(nt as u32);
                let expect = reference.pairs(nt);
                let name = strategy.name();
                assert_eq!(dense.pairs(nt), expect, "{name}/dense");
                assert_eq!(sparse.pairs(nt), expect, "{name}/sparse");
                assert_eq!(dpar.pairs(nt), expect, "{name}/dense-par");
                assert_eq!(spar.pairs(nt), expect, "{name}/sparse-par");
            }
        }
    }

    #[test]
    fn masked_delta_computes_fewer_products_than_naive() {
        // The paper's evaluation shape: an ontology-style query grammar
        // (Q1 has 6 binary rules sharing RHS pairs) over the small skos
        // dataset. Shared-pair dedup and empty-Δ skipping must beat the
        // naive loop's rules × sweeps product count.
        let g = cfpq_grammar::queries::query1()
            .to_wcnf(CnfOptions::default())
            .unwrap();
        let suite = cfpq_graph::ontology::evaluation_suite();
        let graph = &suite.iter().find(|d| d.name == "skos").unwrap().graph;
        let naive = solve_on_engine(&SparseEngine, graph, &g);
        let masked = FixpointSolver::new(&SparseEngine).solve(graph, &g);
        assert_eq!(naive.pairs(g.start), masked.pairs(g.start));
        assert!(
            masked.stats.products_computed < naive.stats.products_computed,
            "masked {} vs naive {}",
            masked.stats.products_computed,
            naive.stats.products_computed
        );
        assert!(masked.stats.products_skipped > 0, "dedup/empty-Δ skips");
        // The final sweep_nnz data point is the fixpoint size for both.
        assert_eq!(
            naive.stats.sweep_nnz.last(),
            masked.stats.sweep_nnz.last(),
            "both trajectories end at the same fixpoint"
        );
    }

    #[test]
    fn strategies_honour_nullable_diagonal() {
        let g = Cfg::parse("S -> a S b | eps")
            .unwrap()
            .to_wcnf(CnfOptions::default())
            .unwrap();
        let graph = generators::two_cycles(2, 3);
        let options = SolveOptions {
            nullable_diagonal: true,
        };
        let reference = solve_on_engine_with(&SparseEngine, &graph, &g, options);
        for strategy in Strategy::ALL {
            let idx = FixpointSolver::new(&SparseEngine)
                .strategy(strategy)
                .options(options)
                .solve(&graph, &g);
            for nt in 0..g.n_nts() {
                let nt = Nt(nt as u32);
                assert_eq!(idx.pairs(nt), reference.pairs(nt), "{}", strategy.name());
            }
        }
    }

    #[test]
    fn strategy_names_are_stable() {
        let names: Vec<&str> = Strategy::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["naive", "batched", "delta", "masked-delta"]);
        assert_eq!(Strategy::default(), Strategy::MaskedDelta);
    }

    #[test]
    fn set_matrix_agrees_with_boolean_decomposition() {
        let g = wcnf("S -> a S b | a b");
        let graph = generators::two_cycles(2, 3);
        let boolean = solve_on_engine(&DenseEngine, &graph, &g);
        let set = solve_set_matrix(&graph, &g, false);
        for nt in 0..g.n_nts() {
            let nt = Nt(nt as u32);
            assert_eq!(boolean.pairs(nt), set.pairs(nt));
        }
    }

    #[test]
    fn labels_not_in_grammar_are_ignored() {
        let g = wcnf("S -> a");
        let mut graph = generators::chain(1, "a");
        graph.add_edge_named(0, "unrelated", 1);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let s = g.symbols.get_nt("S").unwrap();
        assert_eq!(idx.pairs(s), vec![(0, 1)]);
    }

    #[test]
    fn empty_graph_and_empty_answer() {
        let g = wcnf("S -> a b");
        let graph = cfpq_graph::Graph::new(4);
        let idx = solve_on_engine(&SparseEngine, &graph, &g);
        let s = g.symbols.get_nt("S").unwrap();
        assert!(idx.pairs(s).is_empty());
        assert_eq!(idx.iterations, 1);
    }

    #[test]
    fn paper_example_final_relations() {
        // Fig. 9: the context-free relations of the worked example.
        let g = queries::fig4_normal_form()
            .to_wcnf(CnfOptions::default())
            .unwrap();
        let graph = generators::paper_example();
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let nt = |name: &str| g.symbols.get_nt(name).unwrap();
        assert_eq!(idx.pairs(nt("S")), vec![(0, 0), (0, 2), (1, 2)]);
        assert_eq!(idx.pairs(nt("S1")), vec![(0, 0)]);
        assert_eq!(idx.pairs(nt("S2")), vec![(2, 0)]);
        assert_eq!(idx.pairs(nt("S3")), vec![(0, 1), (1, 2)]);
        assert_eq!(idx.pairs(nt("S4")), vec![(2, 2)]);
        assert_eq!(idx.pairs(nt("S5")), vec![(0, 0), (1, 0)]);
        assert_eq!(idx.pairs(nt("S6")), vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn query1_on_paper_example_via_cnf_pipeline() {
        // The automatically-normalized Q1 grammar must give the same R_S
        // as the hand-normalized Fig. 4 grammar (L(G_S) = L(G'_S), §4.3).
        let g = queries::query1().to_wcnf(CnfOptions::default()).unwrap();
        let graph = generators::paper_example();
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let s = g.symbols.get_nt("S").unwrap();
        assert_eq!(idx.pairs(s), vec![(0, 0), (0, 2), (1, 2)]);
    }
}

#[cfg(test)]
mod nullable_tests {
    use super::*;
    use cfpq_grammar::cnf::CnfOptions;
    use cfpq_grammar::Cfg;
    use cfpq_graph::generators;
    use cfpq_matrix::SparseEngine;

    #[test]
    fn nullable_diagonal_reports_empty_paths() {
        let g = Cfg::parse("S -> a S | eps")
            .unwrap()
            .to_wcnf(CnfOptions::default())
            .unwrap();
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::chain(2, "a");
        let without = solve_on_engine(&SparseEngine, &graph, &g);
        assert_eq!(without.pairs(s), vec![(0, 1), (0, 2), (1, 2)]);
        let with = solve_on_engine_with(
            &SparseEngine,
            &graph,
            &g,
            SolveOptions {
                nullable_diagonal: true,
            },
        );
        assert_eq!(
            with.pairs(s),
            vec![(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)]
        );
    }

    #[test]
    fn nullable_diagonal_matches_gll_semantics() {
        // GLL keeps ε-rules natively; the diagonal option makes the
        // matrix solver agree with it on nullable grammars.
        let cfg = Cfg::parse("S -> a S b | eps").unwrap();
        let wcnf = cfg.to_wcnf(CnfOptions::default()).unwrap();
        let graph = generators::two_cycles(2, 3);
        let with = solve_on_engine_with(
            &SparseEngine,
            &graph,
            &wcnf,
            SolveOptions {
                nullable_diagonal: true,
            },
        );
        // Reference semantics computed directly: all pairs related by
        // a^n b^n for n >= 0 (n = 0 gives the diagonal).
        let s = wcnf.symbols.get_nt("S").unwrap();
        let pairs = with.pairs(s);
        for m in 0..graph.n_nodes() as u32 {
            assert!(pairs.contains(&(m, m)), "diagonal ({m},{m})");
        }
        // Non-diagonal part must equal the epsilon-free relation.
        let without = solve_on_engine(&SparseEngine, &graph, &wcnf);
        let non_diag: Vec<(u32, u32)> = pairs.iter().copied().filter(|(i, j)| i != j).collect();
        let expect: Vec<(u32, u32)> = without
            .pairs(s)
            .into_iter()
            .filter(|(i, j)| i != j)
            .collect();
        assert_eq!(non_diag, expect);
    }

    #[test]
    fn non_nullable_grammar_is_unaffected_by_option() {
        let g = Cfg::parse("S -> a b")
            .unwrap()
            .to_wcnf(CnfOptions::default())
            .unwrap();
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["a", "b"]);
        let with = solve_on_engine_with(
            &SparseEngine,
            &graph,
            &g,
            SolveOptions {
                nullable_diagonal: true,
            },
        );
        assert_eq!(with.pairs(s), vec![(0, 2)]);
    }
}
