//! Algorithm 1: relational-semantics CFPQ by matrix transitive closure.
//!
//! §4.1 reduces the computation of the context-free relations
//! `R_A = {(n, m) | ∃ nπm, l(π) ∈ L(G_A)}` to the closure `a_cf` of the
//! matrix initialized from the graph's edges. Two executable forms live
//! here:
//!
//! 1. [`solve_set_matrix`] — the literal Algorithm 1 over
//!    [`SetMatrix`] (cells are subsets of `N`), with optional
//!    per-iteration snapshots used to replay Fig. 6–8;
//! 2. [`FixpointSolver`] — the Boolean decomposition (§3, after
//!    Valiant): one Boolean matrix `T_A` per nonterminal and, per
//!    sweep, `T_A |= T_B × T_C` for every `A → BC`. This is the form
//!    that maps onto BLAS-style kernels, and it is generic over
//!    [`BoolEngine`] so the paper's dGPU/sCPU/sGPU variants are just
//!    engine choices.
//!
//! # Fixpoint strategies
//!
//! All strategies compute the same least fixpoint (cross-checked by the
//! fixed-seed property suite); they differ in how much kernel work a
//! sweep launches. [`Strategy`] selects one:
//!
//! * [`Strategy::Naive`] — Algorithm 1 as printed: every rule recomputes
//!   its full product `T_B × T_C` every sweep (Gauss–Seidel order, the
//!   paper's reference loop).
//! * [`Strategy::Batched`] — the same full products, but all rules of a
//!   sweep are submitted as one [`BoolEngine::multiply_batch`], so
//!   device-backed engines overlap rule kernels (the paper's §7 remark
//!   that "matrix multiplication in the main loop … may be performed on
//!   different GPGPU independently").
//! * [`Strategy::Delta`] — classic semi-naive evaluation: each rule only
//!   multiplies the entries discovered in the previous sweep,
//!   `T_A |= ΔT_B × T_C ∪ T_B × ΔT_C`. Rules sharing the same `(B, C)`
//!   right-hand side share one product, kernels with an empty Δ operand
//!   are skipped outright, and no per-sweep zero matrices are allocated.
//! * [`Strategy::MaskedDelta`] — **the default**: semi-naive plus
//!   masking. Each product is computed through
//!   [`BoolEngine::multiply_masked`] with the accumulated `T_A` as
//!   complement mask, so the kernels never regenerate entries the
//!   closure already holds — the output of every multiplication is
//!   exactly the new information. Masking is what makes the
//!   linear-algebra formulation pay off at scale (Azimov & Grigorev,
//!   arXiv:1707.01007; Shemetova et al., arXiv:2103.14688), and it
//!   composes with the batched §7 decomposition: a masked sweep is one
//!   batch of independent masked kernels, the same shape the paper
//!   proposes to spread across multiple GPUs.
//!
//! The legacy entry points [`solve_on_engine`] (naive),
//! [`solve_on_engine_batched`] and [`solve_on_engine_delta`] remain as
//! thin wrappers over [`FixpointSolver`] and serve as ablation
//! baselines; per-sweep work counters come back in
//! [`RelationalIndex::stats`].

use cfpq_grammar::{Nt, Term, Wcnf};
use cfpq_graph::Graph;
use cfpq_matrix::closure::squaring_closure;
use cfpq_matrix::{BoolEngine, BoolMat, MaskedJob, SetMatrix};
use std::collections::BTreeMap;

/// Maps grammar terminals to graph labels by name: `term_of[label] =
/// Some(term)` if the graph label's name is also a grammar terminal.
/// Labels that the grammar never mentions are simply ignored by the
/// initialization (they cannot participate in any derivation).
pub fn label_terminal_map(graph: &Graph, grammar: &Wcnf) -> Vec<Option<Term>> {
    graph
        .labels()
        .map(|(_, name)| grammar.symbols.get_term(name))
        .collect()
}

/// Per-nonterminal edge pairs — the matrix initialization of Algorithm 1
/// lines 6–7: `A ∈ T[i][j]` for every edge `(i, x, j)` and rule `A → x`.
pub fn init_pairs(graph: &Graph, grammar: &Wcnf) -> Vec<Vec<(u32, u32)>> {
    let term_of = label_terminal_map(graph, grammar);
    let by_term = grammar.nts_by_terminal();
    let mut pairs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); grammar.n_nts()];
    for e in graph.edges() {
        let Some(term) = term_of[e.label.index()] else {
            continue;
        };
        for &nt in &by_term[term.index()] {
            pairs[nt.index()].push((e.from, e.to));
        }
    }
    pairs
}

/// How a [`FixpointSolver`] runs the sweeps of Algorithm 1. See the
/// module docs for the full comparison; [`Strategy::MaskedDelta`] is the
/// default everywhere (facade, benches, examples).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Full products, rule by rule (the paper's Algorithm 1 loop).
    Naive,
    /// Full products, one engine batch per sweep (§7 decomposition).
    Batched,
    /// Semi-naive: only newly-discovered entries are multiplied.
    Delta,
    /// Semi-naive with masked kernels: products never regenerate entries
    /// the closure already holds. The default.
    #[default]
    MaskedDelta,
}

impl Strategy {
    /// Every strategy, for exhaustive cross-checking.
    pub const ALL: [Strategy; 4] = [
        Strategy::Naive,
        Strategy::Batched,
        Strategy::Delta,
        Strategy::MaskedDelta,
    ];

    /// Stable name for reports and benches.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Naive => "naive",
            Strategy::Batched => "batched",
            Strategy::Delta => "delta",
            Strategy::MaskedDelta => "masked-delta",
        }
    }
}

/// Kernel-work counters of one fixpoint run, for `reproduce --json` and
/// the perf-trajectory files (`BENCH_*.json`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Matrix products actually launched across all sweeps.
    pub products_computed: usize,
    /// Products a rule-by-rule semi-naive loop would have launched but
    /// this run avoided — by deduplicating shared `(B, C)` right-hand
    /// sides and by skipping kernels whose Δ operand was empty. Zero for
    /// the non-delta strategies (they skip nothing).
    pub products_skipped: usize,
    /// Total stored entries (`Σ_A nnz(T_A)`) after each sweep.
    pub sweep_nnz: Vec<usize>,
}

/// The result of a relational CFPQ evaluation: one Boolean matrix per
/// nonterminal, i.e. the decomposed transitive closure `a_cf`.
#[derive(Clone, Debug)]
pub struct RelationalIndex<M> {
    /// `matrices[A.index()]` holds `R_A` as a Boolean matrix.
    pub matrices: Vec<M>,
    /// Number of fixpoint iterations (outer `while matrix is changing`
    /// sweeps of Algorithm 1).
    pub iterations: usize,
    /// Graph size |V|.
    pub n_nodes: usize,
    /// Kernel-work counters of the run.
    pub stats: SolveStats,
}

impl<M: BoolMat> RelationalIndex<M> {
    /// True if `(i, j) ∈ R_A` (Theorem 2: `A ∈ a_cf[i][j]`).
    pub fn contains(&self, nt: Nt, i: u32, j: u32) -> bool {
        self.matrices[nt.index()].get(i, j)
    }

    /// `R_A` as sorted pairs.
    pub fn pairs(&self, nt: Nt) -> Vec<(u32, u32)> {
        self.matrices[nt.index()].pairs()
    }

    /// `|R_A|` — the `#results` column of Tables 1 and 2 for `A = S`.
    pub fn count(&self, nt: Nt) -> usize {
        self.matrices[nt.index()].nnz()
    }
}

/// Options for [`solve_on_engine_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveOptions {
    /// Seed `(A, m, m)` for every node `m` and every nullable `A`. The
    /// paper omits ε-rules because "only the empty paths mπm correspond
    /// to an empty string"; enabling this reports those empty-path
    /// matches, matching the semantics of parsers that keep ε (e.g. the
    /// GLL baseline).
    pub nullable_diagonal: bool,
}

/// The unified fixpoint pipeline: one engine-generic solver whose
/// [`Strategy`] selects how much kernel work each sweep launches.
///
/// ```
/// use cfpq_core::relational::{FixpointSolver, Strategy};
/// use cfpq_grammar::{cnf::CnfOptions, Cfg};
/// use cfpq_graph::generators;
/// use cfpq_matrix::SparseEngine;
///
/// let g = Cfg::parse("S -> a S b | a b").unwrap()
///     .to_wcnf(CnfOptions::default()).unwrap();
/// let s = g.symbols.get_nt("S").unwrap();
/// let graph = generators::word_chain(&["a", "a", "b", "b"]);
/// // MaskedDelta is the default strategy.
/// let idx = FixpointSolver::new(&SparseEngine).solve(&graph, &g);
/// assert_eq!(idx.pairs(s), vec![(0, 4), (1, 3)]);
/// // Ablations pick another strategy explicitly.
/// let naive = FixpointSolver::new(&SparseEngine)
///     .strategy(Strategy::Naive)
///     .solve(&graph, &g);
/// assert_eq!(naive.pairs(s), idx.pairs(s));
/// assert!(idx.stats.products_computed <= naive.stats.products_computed);
/// ```
pub struct FixpointSolver<'e, E: BoolEngine> {
    engine: &'e E,
    strategy: Strategy,
    options: SolveOptions,
}

impl<'e, E: BoolEngine> FixpointSolver<'e, E> {
    /// A solver on `engine` with the default [`Strategy::MaskedDelta`]
    /// and default [`SolveOptions`].
    pub fn new(engine: &'e E) -> Self {
        Self {
            engine,
            strategy: Strategy::default(),
            options: SolveOptions::default(),
        }
    }

    /// Selects the sweep strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the solve options (ε-diagonal seeding).
    pub fn options(mut self, options: SolveOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs Algorithm 1's fixpoint to completion. Termination: entries
    /// only grow, bounded by `|V|²·|N|` (Theorem 3).
    pub fn solve(&self, graph: &Graph, grammar: &Wcnf) -> RelationalIndex<E::Matrix> {
        let n = graph.n_nodes();
        let mut init = init_pairs(graph, grammar);
        if self.options.nullable_diagonal {
            for &nt in &grammar.nullable {
                init[nt.index()].extend((0..n as u32).map(|m| (m, m)));
            }
        }
        let matrices: Vec<E::Matrix> = init
            .into_iter()
            .map(|pairs| self.engine.from_pairs(n, &pairs))
            .collect();
        match self.strategy {
            Strategy::Naive => self.run_naive(matrices, n, grammar),
            Strategy::Batched => self.run_batched(matrices, n, grammar),
            Strategy::Delta => self.run_delta(matrices, n, grammar, false),
            Strategy::MaskedDelta => self.run_delta(matrices, n, grammar, true),
        }
    }

    /// Algorithm 1 as printed: every rule recomputes its full product on
    /// every sweep, unions applied immediately (Gauss–Seidel order).
    fn run_naive(
        &self,
        mut matrices: Vec<E::Matrix>,
        n: usize,
        grammar: &Wcnf,
    ) -> RelationalIndex<E::Matrix> {
        let engine = self.engine;
        let mut stats = SolveStats::default();
        let mut iterations = 0;
        loop {
            iterations += 1;
            let mut changed = false;
            for rule in &grammar.binary_rules {
                let product =
                    engine.multiply(&matrices[rule.left.index()], &matrices[rule.right.index()]);
                stats.products_computed += 1;
                changed |= engine.union_in_place(&mut matrices[rule.lhs.index()], &product);
            }
            stats.sweep_nnz.push(total_nnz(&matrices));
            if !changed {
                break;
            }
        }
        RelationalIndex {
            matrices,
            iterations,
            n_nodes: n,
            stats,
        }
    }

    /// Full products, but each sweep's rules go to the engine as one
    /// batch, computed from the same snapshot (Jacobi order; may take a
    /// sweep or two more than Gauss–Seidel, same least fixpoint).
    fn run_batched(
        &self,
        mut matrices: Vec<E::Matrix>,
        n: usize,
        grammar: &Wcnf,
    ) -> RelationalIndex<E::Matrix> {
        let engine = self.engine;
        let mut stats = SolveStats::default();
        let mut iterations = 0;
        loop {
            iterations += 1;
            let jobs: Vec<(&E::Matrix, &E::Matrix)> = grammar
                .binary_rules
                .iter()
                .map(|r| (&matrices[r.left.index()], &matrices[r.right.index()]))
                .collect();
            let products = engine.multiply_batch(&jobs);
            stats.products_computed += jobs.len();
            let mut changed = false;
            for (rule, product) in grammar.binary_rules.iter().zip(products) {
                changed |= engine.union_in_place(&mut matrices[rule.lhs.index()], &product);
            }
            stats.sweep_nnz.push(total_nnz(&matrices));
            if !changed {
                break;
            }
        }
        RelationalIndex {
            matrices,
            iterations,
            n_nodes: n,
            stats,
        }
    }

    /// Semi-naive sweeps, optionally with masked kernels.
    ///
    /// Per sweep each distinct `(B, C)` right-hand side contributes at
    /// most two products, `ΔT_B × T_C` and `T_B × ΔT_C`, shared by every
    /// rule `A → BC` (multiply once, union into every LHS). Kernels with
    /// an empty Δ operand are skipped. On the first sweep Δ *is* the
    /// initial matrix, so a single `T_B × T_C` product per pair suffices
    /// — no clone of the initial matrices is ever taken. With `masked`
    /// set, a pair produced by exactly one LHS `A` runs through
    /// [`BoolEngine::multiply_masked`] with the accumulated `T_A` as
    /// complement mask, so the kernel emits only new entries and the Δ
    /// for the next sweep needs no difference pass.
    fn run_delta(
        &self,
        mut full: Vec<E::Matrix>,
        n: usize,
        grammar: &Wcnf,
        masked: bool,
    ) -> RelationalIndex<E::Matrix> {
        let engine = self.engine;
        let n_nts = grammar.n_nts();

        // Distinct (B, C) operand pairs → the LHS nonterminals they feed.
        let mut by_pair: BTreeMap<(u32, u32), Vec<usize>> = BTreeMap::new();
        for rule in &grammar.binary_rules {
            let lhss = by_pair.entry((rule.left.0, rule.right.0)).or_default();
            if !lhss.contains(&rule.lhs.index()) {
                lhss.push(rule.lhs.index());
            }
        }
        let groups: Vec<((usize, usize), Vec<usize>)> = by_pair
            .into_iter()
            .map(|((b, c), lhss)| ((b as usize, c as usize), lhss))
            .collect();
        // What a rule-by-rule semi-naive loop launches per sweep: two
        // products (ΔB×C and B×ΔC) for every binary rule.
        let per_sweep_potential = 2 * grammar.binary_rules.len();

        let mut stats = SolveStats::default();
        // Δ per nonterminal; `None` means empty (never allocated for
        // nonterminals no rule produces).
        let mut delta: Vec<Option<E::Matrix>> = (0..n_nts).map(|_| None).collect();
        let mut iterations = 0;
        loop {
            iterations += 1;
            let first = iterations == 1;

            // Assemble this sweep's kernel jobs from the same snapshot.
            let mut jobs: Vec<MaskedJob<'_, E::Matrix>> = Vec::new();
            let mut job_group: Vec<usize> = Vec::new();
            for (gi, ((b, c), lhss)) in groups.iter().enumerate() {
                let mask = match (masked, &lhss[..]) {
                    (true, &[a]) => Some(&full[a]),
                    _ => None,
                };
                if first {
                    // Δ = T initially, so ΔB×C and B×ΔC coincide.
                    jobs.push((&full[*b], &full[*c], mask));
                    job_group.push(gi);
                } else {
                    if let Some(db) = &delta[*b] {
                        jobs.push((db, &full[*c], mask));
                        job_group.push(gi);
                    }
                    if let Some(dc) = &delta[*c] {
                        jobs.push((&full[*b], dc, mask));
                        job_group.push(gi);
                    }
                }
            }
            let products = engine.multiply_masked_batch(&jobs);
            stats.products_computed += jobs.len();
            stats.products_skipped += per_sweep_potential - jobs.len();

            // Union each product into the fresh accumulator of every LHS
            // of its group (the product is shared, not recomputed).
            let mut fresh: Vec<Option<E::Matrix>> = (0..n_nts).map(|_| None).collect();
            let mut fresh_masked: Vec<bool> = vec![true; n_nts];
            for (product, &gi) in products.into_iter().zip(&job_group) {
                let lhss = &groups[gi].1;
                let was_masked = masked && lhss.len() == 1;
                let (&last, rest) = lhss.split_last().expect("group has an LHS");
                for &a in rest {
                    match &mut fresh[a] {
                        Some(acc) => {
                            engine.union_in_place(acc, &product);
                        }
                        None => fresh[a] = Some(product.clone()),
                    }
                    fresh_masked[a] &= was_masked;
                }
                match &mut fresh[last] {
                    Some(acc) => {
                        engine.union_in_place(acc, &product);
                    }
                    None => fresh[last] = Some(product),
                }
                fresh_masked[last] &= was_masked;
            }

            // Fold the fresh entries into the closure and derive the next Δ.
            let mut changed = false;
            for a in 0..n_nts {
                let Some(f) = fresh[a].take() else {
                    delta[a] = None;
                    continue;
                };
                // Masked products are already disjoint from `full[a]`
                // (the mask snapshot predates this sweep's unions), so
                // they *are* the new Δ; unmasked ones need a difference.
                let new_entries = if fresh_masked[a] {
                    f
                } else {
                    engine.difference(&f, &full[a])
                };
                if new_entries.nnz() == 0 {
                    delta[a] = None;
                    continue;
                }
                engine.union_in_place(&mut full[a], &new_entries);
                delta[a] = Some(new_entries);
                changed = true;
            }
            stats.sweep_nnz.push(total_nnz(&full));
            if !changed {
                break;
            }
        }
        RelationalIndex {
            matrices: full,
            iterations,
            n_nodes: n,
            stats,
        }
    }
}

/// `Σ_A nnz(T_A)` — one data point of [`SolveStats::sweep_nnz`].
fn total_nnz<M: BoolMat>(matrices: &[M]) -> usize {
    matrices.iter().map(BoolMat::nnz).sum()
}

/// Runs Algorithm 1 in its Boolean decomposition on the given engine,
/// with the paper-literal [`Strategy::Naive`] loop. Kept as the
/// reference/ablation entry point; the fast default pipeline is
/// [`FixpointSolver`] (strategy [`Strategy::MaskedDelta`]).
pub fn solve_on_engine<E: BoolEngine>(
    engine: &E,
    graph: &Graph,
    grammar: &Wcnf,
) -> RelationalIndex<E::Matrix> {
    solve_on_engine_with(engine, graph, grammar, SolveOptions::default())
}

/// [`solve_on_engine`] with explicit [`SolveOptions`].
pub fn solve_on_engine_with<E: BoolEngine>(
    engine: &E,
    graph: &Graph,
    grammar: &Wcnf,
    options: SolveOptions,
) -> RelationalIndex<E::Matrix> {
    FixpointSolver::new(engine)
        .strategy(Strategy::Naive)
        .options(options)
        .solve(graph, grammar)
}

/// [`Strategy::Batched`] wrapper: per fixpoint sweep, the products of
/// **all** rules are computed from the same snapshot and submitted as
/// one [`BoolEngine::multiply_batch`]. Jacobi-style sweeps may need a
/// few more iterations than the sequential (Gauss–Seidel) loop but
/// reach the same least fixpoint (tested).
pub fn solve_on_engine_batched<E: BoolEngine>(
    engine: &E,
    graph: &Graph,
    grammar: &Wcnf,
) -> RelationalIndex<E::Matrix> {
    FixpointSolver::new(engine)
        .strategy(Strategy::Batched)
        .solve(graph, grammar)
}

/// [`Strategy::Delta`] wrapper: semi-naive evaluation, each rule
/// multiplies only the *newly discovered* part of its operands,
/// `T_A |= ΔT_B × T_C ∪ T_B × ΔT_C`. Algorithmically equivalent to the
/// naive loop (tested); benchmarked as an ablation point.
pub fn solve_on_engine_delta<E: BoolEngine>(
    engine: &E,
    graph: &Graph,
    grammar: &Wcnf,
) -> RelationalIndex<E::Matrix> {
    FixpointSolver::new(engine)
        .strategy(Strategy::Delta)
        .solve(graph, grammar)
}

/// Result of the paper-literal set-matrix run (used for the Fig. 6–8
/// replay and as the reference implementation).
#[derive(Clone, Debug)]
pub struct SetMatrixResult {
    /// The closed matrix `T = a_cf`.
    pub matrix: SetMatrix,
    /// Outer iterations until `T_k = T_{k-1}` (§4.3 reports k = 6 for the
    /// worked example).
    pub iterations: usize,
    /// `T_0, T_1, …` if snapshots were requested.
    pub snapshots: Vec<SetMatrix>,
}

impl SetMatrixResult {
    /// `R_A` as sorted pairs, read off the closed set matrix.
    pub fn pairs(&self, nt: Nt) -> Vec<(u32, u32)> {
        let n = self.matrix.n() as u32;
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if self.matrix.contains(i, j, nt) {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

/// Runs Algorithm 1 literally: a single matrix over nonterminal sets,
/// closed by `T ← T ∪ (T × T)`.
pub fn solve_set_matrix(graph: &Graph, grammar: &Wcnf, keep_snapshots: bool) -> SetMatrixResult {
    let n = graph.n_nodes();
    let mut t = SetMatrix::empty(n, grammar.n_nts());
    for (nt_index, pairs) in init_pairs(graph, grammar).into_iter().enumerate() {
        for (i, j) in pairs {
            t.insert(i, j, Nt(nt_index as u32));
        }
    }
    let closure = squaring_closure(&t, &grammar.binary_rules, keep_snapshots);
    SetMatrixResult {
        matrix: closure.matrix,
        iterations: closure.iterations,
        snapshots: closure.snapshots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpq_grammar::cnf::CnfOptions;
    use cfpq_grammar::queries;
    use cfpq_grammar::Cfg;
    use cfpq_graph::generators;
    use cfpq_matrix::{DenseEngine, Device, ParDenseEngine, ParSparseEngine, SparseEngine};

    fn wcnf(src: &str) -> Wcnf {
        Cfg::parse(src)
            .unwrap()
            .to_wcnf(CnfOptions::default())
            .unwrap()
    }

    #[test]
    fn anbn_on_chain() {
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["a", "a", "b", "b"]);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        assert_eq!(idx.pairs(s), vec![(0, 4), (1, 3)]);
    }

    #[test]
    fn two_cycles_full_relation() {
        // Classic worst case: |a-cycle| = 2, |b-cycle| = 3 with
        // S -> a S b | a b yields a dense S-relation over the a-cycle ×
        // b-cycle node sets (all words a^(2i) b^(3j)-aligned combine).
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::two_cycles(2, 3);
        let idx = solve_on_engine(&SparseEngine, &graph, &g);
        // Well-known result: |R_S| > 0 and includes (0, 0).
        assert!(idx.contains(s, 0, 0));
        // Every pair must start in the a-cycle {0,1} and end in the
        // b-cycle {0,2,3}.
        for (i, j) in idx.pairs(s) {
            assert!(i <= 1, "source in a-cycle, got {i}");
            assert!(j == 0 || j >= 2, "target in b-cycle, got {j}");
        }
    }

    #[test]
    fn all_engines_agree() {
        let g = wcnf("S -> a S b | a b");
        let graph = generators::two_cycles(3, 2);
        let dense = solve_on_engine(&DenseEngine, &graph, &g);
        let sparse = solve_on_engine(&SparseEngine, &graph, &g);
        let dpar = solve_on_engine(&ParDenseEngine::new(Device::new(3)), &graph, &g);
        let spar = solve_on_engine(&ParSparseEngine::new(Device::new(3)), &graph, &g);
        for nt in 0..g.n_nts() {
            let nt = Nt(nt as u32);
            let expect = dense.pairs(nt);
            assert_eq!(sparse.pairs(nt), expect);
            assert_eq!(dpar.pairs(nt), expect);
            assert_eq!(spar.pairs(nt), expect);
        }
    }

    #[test]
    fn batched_variant_agrees() {
        use cfpq_matrix::{Device, ParSparseEngine};
        let g = wcnf("S -> a S b | a b | S S");
        let graph = generators::two_cycles(3, 4);
        let naive = solve_on_engine(&SparseEngine, &graph, &g);
        let batched = solve_on_engine_batched(&SparseEngine, &graph, &g);
        let batched_par =
            solve_on_engine_batched(&ParSparseEngine::new(Device::new(2)), &graph, &g);
        for nt in 0..g.n_nts() {
            let nt = Nt(nt as u32);
            assert_eq!(naive.pairs(nt), batched.pairs(nt));
            assert_eq!(naive.pairs(nt), batched_par.pairs(nt));
        }
    }

    #[test]
    fn delta_variant_agrees() {
        let g = wcnf("S -> a S b | a b | S S");
        let graph = generators::two_cycles(3, 4);
        let naive = solve_on_engine(&SparseEngine, &graph, &g);
        let delta = solve_on_engine_delta(&SparseEngine, &graph, &g);
        for nt in 0..g.n_nts() {
            let nt = Nt(nt as u32);
            assert_eq!(naive.pairs(nt), delta.pairs(nt));
        }
    }

    #[test]
    fn all_strategies_agree_on_all_engines() {
        let g = wcnf("S -> a S b | a b | S S");
        let graph = generators::two_cycles(3, 4);
        let reference = solve_on_engine(&DenseEngine, &graph, &g);
        for strategy in Strategy::ALL {
            let dense = FixpointSolver::new(&DenseEngine)
                .strategy(strategy)
                .solve(&graph, &g);
            let sparse = FixpointSolver::new(&SparseEngine)
                .strategy(strategy)
                .solve(&graph, &g);
            let dpar = FixpointSolver::new(&ParDenseEngine::new(Device::new(3)))
                .strategy(strategy)
                .solve(&graph, &g);
            let spar = FixpointSolver::new(&ParSparseEngine::new(Device::new(2)))
                .strategy(strategy)
                .solve(&graph, &g);
            for nt in 0..g.n_nts() {
                let nt = Nt(nt as u32);
                let expect = reference.pairs(nt);
                let name = strategy.name();
                assert_eq!(dense.pairs(nt), expect, "{name}/dense");
                assert_eq!(sparse.pairs(nt), expect, "{name}/sparse");
                assert_eq!(dpar.pairs(nt), expect, "{name}/dense-par");
                assert_eq!(spar.pairs(nt), expect, "{name}/sparse-par");
            }
        }
    }

    #[test]
    fn masked_delta_computes_fewer_products_than_naive() {
        // The paper's evaluation shape: an ontology-style query grammar
        // (Q1 has 6 binary rules sharing RHS pairs) over the small skos
        // dataset. Shared-pair dedup and empty-Δ skipping must beat the
        // naive loop's rules × sweeps product count.
        let g = cfpq_grammar::queries::query1()
            .to_wcnf(CnfOptions::default())
            .unwrap();
        let suite = cfpq_graph::ontology::evaluation_suite();
        let graph = &suite.iter().find(|d| d.name == "skos").unwrap().graph;
        let naive = solve_on_engine(&SparseEngine, graph, &g);
        let masked = FixpointSolver::new(&SparseEngine).solve(graph, &g);
        assert_eq!(naive.pairs(g.start), masked.pairs(g.start));
        assert!(
            masked.stats.products_computed < naive.stats.products_computed,
            "masked {} vs naive {}",
            masked.stats.products_computed,
            naive.stats.products_computed
        );
        assert!(masked.stats.products_skipped > 0, "dedup/empty-Δ skips");
        // The final sweep_nnz data point is the fixpoint size for both.
        assert_eq!(
            naive.stats.sweep_nnz.last(),
            masked.stats.sweep_nnz.last(),
            "both trajectories end at the same fixpoint"
        );
    }

    #[test]
    fn strategies_honour_nullable_diagonal() {
        let g = Cfg::parse("S -> a S b | eps")
            .unwrap()
            .to_wcnf(CnfOptions::default())
            .unwrap();
        let graph = generators::two_cycles(2, 3);
        let options = SolveOptions {
            nullable_diagonal: true,
        };
        let reference = solve_on_engine_with(&SparseEngine, &graph, &g, options);
        for strategy in Strategy::ALL {
            let idx = FixpointSolver::new(&SparseEngine)
                .strategy(strategy)
                .options(options)
                .solve(&graph, &g);
            for nt in 0..g.n_nts() {
                let nt = Nt(nt as u32);
                assert_eq!(idx.pairs(nt), reference.pairs(nt), "{}", strategy.name());
            }
        }
    }

    #[test]
    fn strategy_names_are_stable() {
        let names: Vec<&str> = Strategy::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["naive", "batched", "delta", "masked-delta"]);
        assert_eq!(Strategy::default(), Strategy::MaskedDelta);
    }

    #[test]
    fn set_matrix_agrees_with_boolean_decomposition() {
        let g = wcnf("S -> a S b | a b");
        let graph = generators::two_cycles(2, 3);
        let boolean = solve_on_engine(&DenseEngine, &graph, &g);
        let set = solve_set_matrix(&graph, &g, false);
        for nt in 0..g.n_nts() {
            let nt = Nt(nt as u32);
            assert_eq!(boolean.pairs(nt), set.pairs(nt));
        }
    }

    #[test]
    fn labels_not_in_grammar_are_ignored() {
        let g = wcnf("S -> a");
        let mut graph = generators::chain(1, "a");
        graph.add_edge_named(0, "unrelated", 1);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let s = g.symbols.get_nt("S").unwrap();
        assert_eq!(idx.pairs(s), vec![(0, 1)]);
    }

    #[test]
    fn empty_graph_and_empty_answer() {
        let g = wcnf("S -> a b");
        let graph = cfpq_graph::Graph::new(4);
        let idx = solve_on_engine(&SparseEngine, &graph, &g);
        let s = g.symbols.get_nt("S").unwrap();
        assert!(idx.pairs(s).is_empty());
        assert_eq!(idx.iterations, 1);
    }

    #[test]
    fn paper_example_final_relations() {
        // Fig. 9: the context-free relations of the worked example.
        let g = queries::fig4_normal_form()
            .to_wcnf(CnfOptions::default())
            .unwrap();
        let graph = generators::paper_example();
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let nt = |name: &str| g.symbols.get_nt(name).unwrap();
        assert_eq!(idx.pairs(nt("S")), vec![(0, 0), (0, 2), (1, 2)]);
        assert_eq!(idx.pairs(nt("S1")), vec![(0, 0)]);
        assert_eq!(idx.pairs(nt("S2")), vec![(2, 0)]);
        assert_eq!(idx.pairs(nt("S3")), vec![(0, 1), (1, 2)]);
        assert_eq!(idx.pairs(nt("S4")), vec![(2, 2)]);
        assert_eq!(idx.pairs(nt("S5")), vec![(0, 0), (1, 0)]);
        assert_eq!(idx.pairs(nt("S6")), vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn query1_on_paper_example_via_cnf_pipeline() {
        // The automatically-normalized Q1 grammar must give the same R_S
        // as the hand-normalized Fig. 4 grammar (L(G_S) = L(G'_S), §4.3).
        let g = queries::query1().to_wcnf(CnfOptions::default()).unwrap();
        let graph = generators::paper_example();
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let s = g.symbols.get_nt("S").unwrap();
        assert_eq!(idx.pairs(s), vec![(0, 0), (0, 2), (1, 2)]);
    }
}

#[cfg(test)]
mod nullable_tests {
    use super::*;
    use cfpq_grammar::cnf::CnfOptions;
    use cfpq_grammar::Cfg;
    use cfpq_graph::generators;
    use cfpq_matrix::SparseEngine;

    #[test]
    fn nullable_diagonal_reports_empty_paths() {
        let g = Cfg::parse("S -> a S | eps")
            .unwrap()
            .to_wcnf(CnfOptions::default())
            .unwrap();
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::chain(2, "a");
        let without = solve_on_engine(&SparseEngine, &graph, &g);
        assert_eq!(without.pairs(s), vec![(0, 1), (0, 2), (1, 2)]);
        let with = solve_on_engine_with(
            &SparseEngine,
            &graph,
            &g,
            SolveOptions {
                nullable_diagonal: true,
            },
        );
        assert_eq!(
            with.pairs(s),
            vec![(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)]
        );
    }

    #[test]
    fn nullable_diagonal_matches_gll_semantics() {
        // GLL keeps ε-rules natively; the diagonal option makes the
        // matrix solver agree with it on nullable grammars.
        let cfg = Cfg::parse("S -> a S b | eps").unwrap();
        let wcnf = cfg.to_wcnf(CnfOptions::default()).unwrap();
        let graph = generators::two_cycles(2, 3);
        let with = solve_on_engine_with(
            &SparseEngine,
            &graph,
            &wcnf,
            SolveOptions {
                nullable_diagonal: true,
            },
        );
        // Reference semantics computed directly: all pairs related by
        // a^n b^n for n >= 0 (n = 0 gives the diagonal).
        let s = wcnf.symbols.get_nt("S").unwrap();
        let pairs = with.pairs(s);
        for m in 0..graph.n_nodes() as u32 {
            assert!(pairs.contains(&(m, m)), "diagonal ({m},{m})");
        }
        // Non-diagonal part must equal the epsilon-free relation.
        let without = solve_on_engine(&SparseEngine, &graph, &wcnf);
        let non_diag: Vec<(u32, u32)> = pairs.iter().copied().filter(|(i, j)| i != j).collect();
        let expect: Vec<(u32, u32)> = without
            .pairs(s)
            .into_iter()
            .filter(|(i, j)| i != j)
            .collect();
        assert_eq!(non_diag, expect);
    }

    #[test]
    fn non_nullable_grammar_is_unaffected_by_option() {
        let g = Cfg::parse("S -> a b")
            .unwrap()
            .to_wcnf(CnfOptions::default())
            .unwrap();
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["a", "b"]);
        let with = solve_on_engine_with(
            &SparseEngine,
            &graph,
            &g,
            SolveOptions {
                nullable_diagonal: true,
            },
        );
        assert_eq!(with.pairs(s), vec![(0, 2)]);
    }
}
