//! Algorithm 1: relational-semantics CFPQ by matrix transitive closure.
//!
//! §4.1 reduces the computation of the context-free relations
//! `R_A = {(n, m) | ∃ nπm, l(π) ∈ L(G_A)}` to the closure `a_cf` of the
//! matrix initialized from the graph's edges. Two executable forms live
//! here:
//!
//! 1. [`solve_set_matrix`] — the literal Algorithm 1 over
//!    [`SetMatrix`] (cells are subsets of `N`), with optional
//!    per-iteration snapshots used to replay Fig. 6–8;
//! 2. [`solve_on_engine`] — the Boolean decomposition (§3, after
//!    Valiant): one Boolean matrix `T_A` per nonterminal and, per
//!    iteration, `T_A |= T_B × T_C` for every `A → BC`. This is the form
//!    that maps onto BLAS-style kernels, and it is generic over
//!    [`BoolEngine`] so the paper's dGPU/sCPU/sGPU variants are just
//!    engine choices.
//!
//! Both compute the same least fixpoint (cross-checked in tests), and a
//! semi-naive variant [`solve_on_engine_delta`] implements the classic
//! "only multiply what changed" optimization as an ablation point.

use cfpq_grammar::{Nt, Term, Wcnf};
use cfpq_graph::Graph;
use cfpq_matrix::closure::squaring_closure;
use cfpq_matrix::{BoolEngine, BoolMat, SetMatrix};

/// Maps grammar terminals to graph labels by name: `term_of[label] =
/// Some(term)` if the graph label's name is also a grammar terminal.
/// Labels that the grammar never mentions are simply ignored by the
/// initialization (they cannot participate in any derivation).
pub fn label_terminal_map(graph: &Graph, grammar: &Wcnf) -> Vec<Option<Term>> {
    graph
        .labels()
        .map(|(_, name)| grammar.symbols.get_term(name))
        .collect()
}

/// Per-nonterminal edge pairs — the matrix initialization of Algorithm 1
/// lines 6–7: `A ∈ T[i][j]` for every edge `(i, x, j)` and rule `A → x`.
pub fn init_pairs(graph: &Graph, grammar: &Wcnf) -> Vec<Vec<(u32, u32)>> {
    let term_of = label_terminal_map(graph, grammar);
    let by_term = grammar.nts_by_terminal();
    let mut pairs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); grammar.n_nts()];
    for e in graph.edges() {
        let Some(term) = term_of[e.label.index()] else {
            continue;
        };
        for &nt in &by_term[term.index()] {
            pairs[nt.index()].push((e.from, e.to));
        }
    }
    pairs
}

/// The result of a relational CFPQ evaluation: one Boolean matrix per
/// nonterminal, i.e. the decomposed transitive closure `a_cf`.
#[derive(Clone, Debug)]
pub struct RelationalIndex<M> {
    /// `matrices[A.index()]` holds `R_A` as a Boolean matrix.
    pub matrices: Vec<M>,
    /// Number of fixpoint iterations (outer `while matrix is changing`
    /// sweeps of Algorithm 1).
    pub iterations: usize,
    /// Graph size |V|.
    pub n_nodes: usize,
}

impl<M: BoolMat> RelationalIndex<M> {
    /// True if `(i, j) ∈ R_A` (Theorem 2: `A ∈ a_cf[i][j]`).
    pub fn contains(&self, nt: Nt, i: u32, j: u32) -> bool {
        self.matrices[nt.index()].get(i, j)
    }

    /// `R_A` as sorted pairs.
    pub fn pairs(&self, nt: Nt) -> Vec<(u32, u32)> {
        self.matrices[nt.index()].pairs()
    }

    /// `|R_A|` — the `#results` column of Tables 1 and 2 for `A = S`.
    pub fn count(&self, nt: Nt) -> usize {
        self.matrices[nt.index()].nnz()
    }
}

/// Options for [`solve_on_engine_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveOptions {
    /// Seed `(A, m, m)` for every node `m` and every nullable `A`. The
    /// paper omits ε-rules because "only the empty paths mπm correspond
    /// to an empty string"; enabling this reports those empty-path
    /// matches, matching the semantics of parsers that keep ε (e.g. the
    /// GLL baseline).
    pub nullable_diagonal: bool,
}

/// Runs Algorithm 1 in its Boolean decomposition on the given engine.
///
/// Per outer iteration, every rule `A → BC` contributes
/// `T_A |= T_B × T_C`; the loop stops when a full sweep changes nothing
/// (the fixpoint test of line 8). Termination: entries only grow, bounded
/// by `|V|²·|N|` (Theorem 3).
pub fn solve_on_engine<E: BoolEngine>(
    engine: &E,
    graph: &Graph,
    grammar: &Wcnf,
) -> RelationalIndex<E::Matrix> {
    solve_on_engine_with(engine, graph, grammar, SolveOptions::default())
}

/// [`solve_on_engine`] with explicit [`SolveOptions`].
pub fn solve_on_engine_with<E: BoolEngine>(
    engine: &E,
    graph: &Graph,
    grammar: &Wcnf,
    options: SolveOptions,
) -> RelationalIndex<E::Matrix> {
    let n = graph.n_nodes();
    let mut init = init_pairs(graph, grammar);
    if options.nullable_diagonal {
        for &nt in &grammar.nullable {
            init[nt.index()].extend((0..n as u32).map(|m| (m, m)));
        }
    }
    let mut matrices: Vec<E::Matrix> = init
        .into_iter()
        .map(|pairs| engine.from_pairs(n, &pairs))
        .collect();

    let mut iterations = 0;
    loop {
        iterations += 1;
        let mut changed = false;
        for rule in &grammar.binary_rules {
            let product =
                engine.multiply(&matrices[rule.left.index()], &matrices[rule.right.index()]);
            changed |= engine.union_in_place(&mut matrices[rule.lhs.index()], &product);
        }
        if !changed {
            break;
        }
    }

    RelationalIndex {
        matrices,
        iterations,
        n_nodes: n,
    }
}

/// Batched-sweep variant of [`solve_on_engine`]: per fixpoint sweep, the
/// products of **all** rules are computed from the same snapshot and
/// submitted to the engine as one batch ([`BoolEngine::multiply_batch`]),
/// then all unions are applied. On device-backed engines the batch runs
/// with one kernel per rule in parallel — the paper's §7 observation that
/// "matrix multiplication in the main loop of the proposed algorithm may
/// be performed on different GPGPU independently". Jacobi-style sweeps
/// may need a few more iterations than the sequential (Gauss–Seidel)
/// loop but reach the same least fixpoint (tested).
pub fn solve_on_engine_batched<E: BoolEngine>(
    engine: &E,
    graph: &Graph,
    grammar: &Wcnf,
) -> RelationalIndex<E::Matrix> {
    let n = graph.n_nodes();
    let mut matrices: Vec<E::Matrix> = init_pairs(graph, grammar)
        .into_iter()
        .map(|pairs| engine.from_pairs(n, &pairs))
        .collect();

    let mut iterations = 0;
    loop {
        iterations += 1;
        let jobs: Vec<(&E::Matrix, &E::Matrix)> = grammar
            .binary_rules
            .iter()
            .map(|r| (&matrices[r.left.index()], &matrices[r.right.index()]))
            .collect();
        let products = engine.multiply_batch(&jobs);
        let mut changed = false;
        for (rule, product) in grammar.binary_rules.iter().zip(products) {
            changed |= engine.union_in_place(&mut matrices[rule.lhs.index()], &product);
        }
        if !changed {
            break;
        }
    }

    RelationalIndex {
        matrices,
        iterations,
        n_nodes: n,
    }
}

/// Semi-naive ("delta") variant of [`solve_on_engine`]: per iteration each
/// rule multiplies only the *newly discovered* part of its operands,
/// `T_A |= ΔT_B × T_C ∪ T_B × ΔT_C`. Algorithmically equivalent (tested);
/// benchmarked as an ablation against the paper's full-product loop.
pub fn solve_on_engine_delta<E: BoolEngine>(
    engine: &E,
    graph: &Graph,
    grammar: &Wcnf,
) -> RelationalIndex<E::Matrix> {
    let n = graph.n_nodes();
    let n_nts = grammar.n_nts();
    let mut full: Vec<E::Matrix> = init_pairs(graph, grammar)
        .into_iter()
        .map(|pairs| engine.from_pairs(n, &pairs))
        .collect();
    // Initially everything is new.
    let mut delta: Vec<E::Matrix> = full.clone();

    let mut iterations = 0;
    loop {
        iterations += 1;
        // Accumulate this sweep's products.
        let mut fresh: Vec<E::Matrix> = (0..n_nts).map(|_| engine.zeros(n)).collect();
        for rule in &grammar.binary_rules {
            let (a, b, c) = (rule.lhs.index(), rule.left.index(), rule.right.index());
            let p1 = engine.multiply(&delta[b], &full[c]);
            let p2 = engine.multiply(&full[b], &delta[c]);
            engine.union_in_place(&mut fresh[a], &p1);
            engine.union_in_place(&mut fresh[a], &p2);
        }
        let mut changed = false;
        for a in 0..n_nts {
            let new_entries = engine.difference(&fresh[a], &full[a]);
            changed |= engine.union_in_place(&mut full[a], &new_entries);
            delta[a] = new_entries;
        }
        if !changed {
            break;
        }
    }

    RelationalIndex {
        matrices: full,
        iterations,
        n_nodes: n,
    }
}

/// Result of the paper-literal set-matrix run (used for the Fig. 6–8
/// replay and as the reference implementation).
#[derive(Clone, Debug)]
pub struct SetMatrixResult {
    /// The closed matrix `T = a_cf`.
    pub matrix: SetMatrix,
    /// Outer iterations until `T_k = T_{k-1}` (§4.3 reports k = 6 for the
    /// worked example).
    pub iterations: usize,
    /// `T_0, T_1, …` if snapshots were requested.
    pub snapshots: Vec<SetMatrix>,
}

impl SetMatrixResult {
    /// `R_A` as sorted pairs, read off the closed set matrix.
    pub fn pairs(&self, nt: Nt) -> Vec<(u32, u32)> {
        let n = self.matrix.n() as u32;
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if self.matrix.contains(i, j, nt) {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

/// Runs Algorithm 1 literally: a single matrix over nonterminal sets,
/// closed by `T ← T ∪ (T × T)`.
pub fn solve_set_matrix(graph: &Graph, grammar: &Wcnf, keep_snapshots: bool) -> SetMatrixResult {
    let n = graph.n_nodes();
    let mut t = SetMatrix::empty(n, grammar.n_nts());
    for (nt_index, pairs) in init_pairs(graph, grammar).into_iter().enumerate() {
        for (i, j) in pairs {
            t.insert(i, j, Nt(nt_index as u32));
        }
    }
    let closure = squaring_closure(&t, &grammar.binary_rules, keep_snapshots);
    SetMatrixResult {
        matrix: closure.matrix,
        iterations: closure.iterations,
        snapshots: closure.snapshots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpq_grammar::cnf::CnfOptions;
    use cfpq_grammar::queries;
    use cfpq_grammar::Cfg;
    use cfpq_graph::generators;
    use cfpq_matrix::{DenseEngine, Device, ParDenseEngine, ParSparseEngine, SparseEngine};

    fn wcnf(src: &str) -> Wcnf {
        Cfg::parse(src)
            .unwrap()
            .to_wcnf(CnfOptions::default())
            .unwrap()
    }

    #[test]
    fn anbn_on_chain() {
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["a", "a", "b", "b"]);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        assert_eq!(idx.pairs(s), vec![(0, 4), (1, 3)]);
    }

    #[test]
    fn two_cycles_full_relation() {
        // Classic worst case: |a-cycle| = 2, |b-cycle| = 3 with
        // S -> a S b | a b yields a dense S-relation over the a-cycle ×
        // b-cycle node sets (all words a^(2i) b^(3j)-aligned combine).
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::two_cycles(2, 3);
        let idx = solve_on_engine(&SparseEngine, &graph, &g);
        // Well-known result: |R_S| > 0 and includes (0, 0).
        assert!(idx.contains(s, 0, 0));
        // Every pair must start in the a-cycle {0,1} and end in the
        // b-cycle {0,2,3}.
        for (i, j) in idx.pairs(s) {
            assert!(i <= 1, "source in a-cycle, got {i}");
            assert!(j == 0 || j >= 2, "target in b-cycle, got {j}");
        }
    }

    #[test]
    fn all_engines_agree() {
        let g = wcnf("S -> a S b | a b");
        let graph = generators::two_cycles(3, 2);
        let dense = solve_on_engine(&DenseEngine, &graph, &g);
        let sparse = solve_on_engine(&SparseEngine, &graph, &g);
        let dpar = solve_on_engine(&ParDenseEngine::new(Device::new(3)), &graph, &g);
        let spar = solve_on_engine(&ParSparseEngine::new(Device::new(3)), &graph, &g);
        for nt in 0..g.n_nts() {
            let nt = Nt(nt as u32);
            let expect = dense.pairs(nt);
            assert_eq!(sparse.pairs(nt), expect);
            assert_eq!(dpar.pairs(nt), expect);
            assert_eq!(spar.pairs(nt), expect);
        }
    }

    #[test]
    fn batched_variant_agrees() {
        use cfpq_matrix::{Device, ParSparseEngine};
        let g = wcnf("S -> a S b | a b | S S");
        let graph = generators::two_cycles(3, 4);
        let naive = solve_on_engine(&SparseEngine, &graph, &g);
        let batched = solve_on_engine_batched(&SparseEngine, &graph, &g);
        let batched_par =
            solve_on_engine_batched(&ParSparseEngine::new(Device::new(2)), &graph, &g);
        for nt in 0..g.n_nts() {
            let nt = Nt(nt as u32);
            assert_eq!(naive.pairs(nt), batched.pairs(nt));
            assert_eq!(naive.pairs(nt), batched_par.pairs(nt));
        }
    }

    #[test]
    fn delta_variant_agrees() {
        let g = wcnf("S -> a S b | a b | S S");
        let graph = generators::two_cycles(3, 4);
        let naive = solve_on_engine(&SparseEngine, &graph, &g);
        let delta = solve_on_engine_delta(&SparseEngine, &graph, &g);
        for nt in 0..g.n_nts() {
            let nt = Nt(nt as u32);
            assert_eq!(naive.pairs(nt), delta.pairs(nt));
        }
    }

    #[test]
    fn set_matrix_agrees_with_boolean_decomposition() {
        let g = wcnf("S -> a S b | a b");
        let graph = generators::two_cycles(2, 3);
        let boolean = solve_on_engine(&DenseEngine, &graph, &g);
        let set = solve_set_matrix(&graph, &g, false);
        for nt in 0..g.n_nts() {
            let nt = Nt(nt as u32);
            assert_eq!(boolean.pairs(nt), set.pairs(nt));
        }
    }

    #[test]
    fn labels_not_in_grammar_are_ignored() {
        let g = wcnf("S -> a");
        let mut graph = generators::chain(1, "a");
        graph.add_edge_named(0, "unrelated", 1);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let s = g.symbols.get_nt("S").unwrap();
        assert_eq!(idx.pairs(s), vec![(0, 1)]);
    }

    #[test]
    fn empty_graph_and_empty_answer() {
        let g = wcnf("S -> a b");
        let graph = cfpq_graph::Graph::new(4);
        let idx = solve_on_engine(&SparseEngine, &graph, &g);
        let s = g.symbols.get_nt("S").unwrap();
        assert!(idx.pairs(s).is_empty());
        assert_eq!(idx.iterations, 1);
    }

    #[test]
    fn paper_example_final_relations() {
        // Fig. 9: the context-free relations of the worked example.
        let g = queries::fig4_normal_form()
            .to_wcnf(CnfOptions::default())
            .unwrap();
        let graph = generators::paper_example();
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let nt = |name: &str| g.symbols.get_nt(name).unwrap();
        assert_eq!(idx.pairs(nt("S")), vec![(0, 0), (0, 2), (1, 2)]);
        assert_eq!(idx.pairs(nt("S1")), vec![(0, 0)]);
        assert_eq!(idx.pairs(nt("S2")), vec![(2, 0)]);
        assert_eq!(idx.pairs(nt("S3")), vec![(0, 1), (1, 2)]);
        assert_eq!(idx.pairs(nt("S4")), vec![(2, 2)]);
        assert_eq!(idx.pairs(nt("S5")), vec![(0, 0), (1, 0)]);
        assert_eq!(idx.pairs(nt("S6")), vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn query1_on_paper_example_via_cnf_pipeline() {
        // The automatically-normalized Q1 grammar must give the same R_S
        // as the hand-normalized Fig. 4 grammar (L(G_S) = L(G'_S), §4.3).
        let g = queries::query1().to_wcnf(CnfOptions::default()).unwrap();
        let graph = generators::paper_example();
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let s = g.symbols.get_nt("S").unwrap();
        assert_eq!(idx.pairs(s), vec![(0, 0), (0, 2), (1, 2)]);
    }
}

#[cfg(test)]
mod nullable_tests {
    use super::*;
    use cfpq_grammar::cnf::CnfOptions;
    use cfpq_grammar::Cfg;
    use cfpq_graph::generators;
    use cfpq_matrix::SparseEngine;

    #[test]
    fn nullable_diagonal_reports_empty_paths() {
        let g = Cfg::parse("S -> a S | eps")
            .unwrap()
            .to_wcnf(CnfOptions::default())
            .unwrap();
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::chain(2, "a");
        let without = solve_on_engine(&SparseEngine, &graph, &g);
        assert_eq!(without.pairs(s), vec![(0, 1), (0, 2), (1, 2)]);
        let with = solve_on_engine_with(
            &SparseEngine,
            &graph,
            &g,
            SolveOptions {
                nullable_diagonal: true,
            },
        );
        assert_eq!(
            with.pairs(s),
            vec![(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)]
        );
    }

    #[test]
    fn nullable_diagonal_matches_gll_semantics() {
        // GLL keeps ε-rules natively; the diagonal option makes the
        // matrix solver agree with it on nullable grammars.
        let cfg = Cfg::parse("S -> a S b | eps").unwrap();
        let wcnf = cfg.to_wcnf(CnfOptions::default()).unwrap();
        let graph = generators::two_cycles(2, 3);
        let with = solve_on_engine_with(
            &SparseEngine,
            &graph,
            &wcnf,
            SolveOptions {
                nullable_diagonal: true,
            },
        );
        // Reference semantics computed directly: all pairs related by
        // a^n b^n for n >= 0 (n = 0 gives the diagonal).
        let s = wcnf.symbols.get_nt("S").unwrap();
        let pairs = with.pairs(s);
        for m in 0..graph.n_nodes() as u32 {
            assert!(pairs.contains(&(m, m)), "diagonal ({m},{m})");
        }
        // Non-diagonal part must equal the epsilon-free relation.
        let without = solve_on_engine(&SparseEngine, &graph, &wcnf);
        let non_diag: Vec<(u32, u32)> = pairs.iter().copied().filter(|(i, j)| i != j).collect();
        let expect: Vec<(u32, u32)> = without
            .pairs(s)
            .into_iter()
            .filter(|(i, j)| i != j)
            .collect();
        assert_eq!(non_diag, expect);
    }

    #[test]
    fn non_nullable_grammar_is_unaffected_by_option() {
        let g = Cfg::parse("S -> a b")
            .unwrap()
            .to_wcnf(CnfOptions::default())
            .unwrap();
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["a", "b"]);
        let with = solve_on_engine_with(
            &SparseEngine,
            &graph,
            &g,
            SolveOptions {
                nullable_diagonal: true,
            },
        );
        assert_eq!(with.pairs(s), vec![(0, 2)]);
    }
}
