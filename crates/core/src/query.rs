//! High-level query API: grammar + graph + backend → answer.
//!
//! This is the entry point a downstream user sees: hand in any [`Cfg`]
//! (normalization runs automatically), an edge-labeled [`Graph`], and a
//! [`Backend`] choice mirroring the paper's evaluated implementations.

use cfpq_grammar::cnf::CnfOptions;
use cfpq_grammar::{Cfg, GrammarError, Nt, Wcnf};
use cfpq_graph::Graph;
use cfpq_matrix::{BoolEngine, DenseEngine, Device, ParDenseEngine, ParSparseEngine, SparseEngine};
use std::collections::BTreeMap;

use crate::relational::{solve_set_matrix, Strategy};
use crate::session::{CfpqSession, PreparedQuery};

/// Which implementation evaluates the query (§6 naming in comments).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// Dense bitset matrices, serial (ablation baseline; no paper column).
    Dense,
    /// Dense matrices on the parallel device — the paper's **dGPU**.
    /// `workers = 0` means "all available cores".
    DensePar {
        /// Worker count (0 = auto).
        workers: usize,
    },
    /// CSR matrices, serial — the paper's **sCPU**.
    Sparse,
    /// CSR matrices on the parallel device — the paper's **sGPU**.
    SparsePar {
        /// Worker count (0 = auto).
        workers: usize,
    },
    /// The paper-literal set-valued matrix (Algorithm 1 as printed).
    SetMatrix,
}

impl Backend {
    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Dense => "dense",
            Backend::DensePar { .. } => "dense-par",
            Backend::Sparse => "sparse",
            Backend::SparsePar { .. } => "sparse-par",
            Backend::SetMatrix => "set-matrix",
        }
    }

    fn device(workers: usize) -> Device {
        if workers == 0 {
            Device::host_parallel()
        } else {
            Device::new(workers)
        }
    }
}

/// A fully-materialized relational answer keyed by nonterminal *name*
/// (names survive normalization; synthesized CNF helpers appear under
/// their generated names such as `T<a>`).
#[derive(Clone, Debug)]
pub struct QueryAnswer {
    /// Backend that produced the answer.
    pub backend: &'static str,
    /// Graph size |V|.
    pub n_nodes: usize,
    /// Fixpoint iterations.
    pub iterations: usize,
    /// Start nonterminal name of the query grammar.
    pub start: String,
    /// Shared so a session cache hit hands out the materialized
    /// relations by refcount bump instead of deep-copying every pair.
    relations: std::sync::Arc<BTreeMap<String, Vec<(u32, u32)>>>,
}

impl QueryAnswer {
    /// `R_A` for the named nonterminal, if it exists.
    pub fn pairs(&self, nt_name: &str) -> Option<&[(u32, u32)]> {
        self.relations.get(nt_name).map(Vec::as_slice)
    }

    /// `R_S` for the start nonterminal.
    pub fn start_pairs(&self) -> &[(u32, u32)] {
        self.relations
            .get(&self.start)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// `|R_S|` — the `#results` column of Tables 1/2.
    pub fn start_count(&self) -> usize {
        self.start_pairs().len()
    }

    /// True if `(i, j) ∈ R_A` for the named nonterminal.
    pub fn contains(&self, nt_name: &str, i: u32, j: u32) -> bool {
        self.pairs(nt_name)
            .is_some_and(|p| p.binary_search(&(i, j)).is_ok())
    }

    /// Iterates `(name, pairs)` for all nonterminals.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &[(u32, u32)])> {
        self.relations
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Materializes an answer from a solved relational index. This is
    /// the constructor layers above the session use (the `cfpq-service`
    /// snapshot cache builds one answer per cached
    /// [`crate::relational::RelationalIndex`] and hands it out by `Arc`
    /// refcount bump).
    pub fn from_index<M: cfpq_matrix::BoolMat>(
        backend: &'static str,
        wcnf: &Wcnf,
        index: &crate::relational::RelationalIndex<M>,
    ) -> Self {
        Self::from_parts(
            backend,
            index.n_nodes,
            index.iterations,
            wcnf.symbols.nt_name(wcnf.start).to_owned(),
            relations_map(wcnf, index),
        )
    }

    /// Assembles an answer from already-collected relations (the session
    /// layer materializes these straight from a [`RelationalIndex`]).
    pub(crate) fn from_parts(
        backend: &'static str,
        n_nodes: usize,
        iterations: usize,
        start: String,
        relations: BTreeMap<String, Vec<(u32, u32)>>,
    ) -> Self {
        Self {
            backend,
            n_nodes,
            iterations,
            start,
            relations: std::sync::Arc::new(relations),
        }
    }
}

/// Evaluates a context-free path query w.r.t. the relational semantics,
/// with the default fixpoint strategy ([`Strategy::MaskedDelta`]).
///
/// The grammar is normalized to weak CNF internally; `grammar.start`
/// (defaulting to the first rule's LHS) is the query's start nonterminal.
pub fn solve(graph: &Graph, grammar: &Cfg, backend: Backend) -> Result<QueryAnswer, GrammarError> {
    solve_with(graph, grammar, backend, Strategy::default())
}

/// [`solve`] with an explicit fixpoint [`Strategy`] (ignored by the
/// paper-literal [`Backend::SetMatrix`], which has no strategy knob).
pub fn solve_with(
    graph: &Graph,
    grammar: &Cfg,
    backend: Backend,
    strategy: Strategy,
) -> Result<QueryAnswer, GrammarError> {
    let wcnf = grammar.to_wcnf(CnfOptions::default())?;
    Ok(solve_wcnf_with(graph, &wcnf, backend, strategy))
}

/// Evaluates an already-normalized grammar with the default strategy.
pub fn solve_wcnf(graph: &Graph, wcnf: &Wcnf, backend: Backend) -> QueryAnswer {
    solve_wcnf_with(graph, wcnf, backend, Strategy::default())
}

/// [`solve_wcnf`] with an explicit fixpoint [`Strategy`].
///
/// Every matrix backend is served through a one-shot
/// [`CfpqSession`]: the graph is indexed
/// into per-label adjacency matrices, the (already normalized) grammar
/// becomes a prepared query, and one evaluation produces the answer —
/// exactly the path a long-lived session takes, so the one-shot and
/// many-query code cannot drift apart. Only the paper-literal
/// [`Backend::SetMatrix`] keeps its own direct path (it has no engine).
pub fn solve_wcnf_with(
    graph: &Graph,
    wcnf: &Wcnf,
    backend: Backend,
    strategy: Strategy,
) -> QueryAnswer {
    match backend {
        Backend::Dense => one_shot(DenseEngine, graph, wcnf, strategy),
        Backend::DensePar { workers } => one_shot(
            ParDenseEngine::new(Backend::device(workers)),
            graph,
            wcnf,
            strategy,
        ),
        Backend::Sparse => one_shot(SparseEngine, graph, wcnf, strategy),
        Backend::SparsePar { workers } => one_shot(
            ParSparseEngine::new(Backend::device(workers)),
            graph,
            wcnf,
            strategy,
        ),
        Backend::SetMatrix => {
            let result = solve_set_matrix(graph, wcnf, false);
            let relations: BTreeMap<String, Vec<(u32, u32)>> = (0..wcnf.n_nts())
                .map(|i| {
                    let nt = Nt(i as u32);
                    (wcnf.symbols.nt_name(nt).to_owned(), result.pairs(nt))
                })
                .collect();
            QueryAnswer::from_parts(
                backend.name(),
                graph.n_nodes(),
                result.iterations,
                wcnf.symbols.nt_name(wcnf.start).to_owned(),
                relations,
            )
        }
    }
}

/// Builds a single-use session, prepares the query, evaluates it once.
/// The index is restricted to the labels this grammar actually mentions
/// — a one-shot call knows its only grammar up front, so indexing the
/// rest (e.g. RDF padding predicates) would be pure overhead.
fn one_shot<E: BoolEngine + cfpq_matrix::LenEngine>(
    engine: E,
    graph: &Graph,
    wcnf: &Wcnf,
    strategy: Strategy,
) -> QueryAnswer {
    let index = crate::session::GraphIndex::build_where(engine, graph, |name| {
        wcnf.symbols.get_term(name).is_some()
    });
    let mut session = CfpqSession::over(index);
    let id = session.prepare_query(PreparedQuery::from_wcnf(wcnf.clone()).strategy(strategy));
    session.evaluate(id)
}

/// Materializes every `R_A` of a solved index, keyed by nonterminal
/// name. Shared by the backend dispatch here and the session layer.
pub(crate) fn relations_map<M: cfpq_matrix::BoolMat>(
    wcnf: &Wcnf,
    index: &crate::relational::RelationalIndex<M>,
) -> BTreeMap<String, Vec<(u32, u32)>> {
    (0..wcnf.n_nts())
        .map(|i| {
            let nt = Nt(i as u32);
            (wcnf.symbols.nt_name(nt).to_owned(), index.pairs(nt))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpq_grammar::queries;
    use cfpq_graph::generators;

    const ALL_BACKENDS: &[Backend] = &[
        Backend::Dense,
        Backend::DensePar { workers: 2 },
        Backend::Sparse,
        Backend::SparsePar { workers: 2 },
        Backend::SetMatrix,
    ];

    #[test]
    fn paper_example_via_all_backends() {
        let grammar = queries::query1();
        let graph = generators::paper_example();
        for &backend in ALL_BACKENDS {
            let ans = solve(&graph, &grammar, backend).unwrap();
            assert_eq!(
                ans.start_pairs(),
                &[(0, 0), (0, 2), (1, 2)],
                "backend {}",
                backend.name()
            );
            assert_eq!(ans.start, "S");
            assert!(ans.contains("S", 0, 2));
            assert!(!ans.contains("S", 2, 0));
        }
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(Backend::Dense.name(), "dense");
        assert_eq!(Backend::DensePar { workers: 0 }.name(), "dense-par");
        assert_eq!(Backend::Sparse.name(), "sparse");
        assert_eq!(Backend::SparsePar { workers: 4 }.name(), "sparse-par");
        assert_eq!(Backend::SetMatrix.name(), "set-matrix");
    }

    #[test]
    fn invalid_grammar_surfaces_error() {
        let graph = generators::chain(2, "a");
        let empty = Cfg::new();
        assert!(solve(&graph, &empty, Backend::Sparse).is_err());
    }

    #[test]
    fn relations_expose_helper_nonterminals() {
        let grammar = queries::query1();
        let graph = generators::paper_example();
        let ans = solve(&graph, &grammar, Backend::Sparse).unwrap();
        // Normalization introduces lifted terminal carriers such as
        // T<subClassOf_r>; they participate in the answer.
        let names: Vec<&str> = ans.relations().map(|(n, _)| n).collect();
        assert!(
            names.iter().any(|n| n.starts_with("T<")),
            "names: {names:?}"
        );
    }

    #[test]
    fn query2_on_subclass_chain() {
        // Chain c2 -subClassOf-> c1 -subClassOf-> c0 (plus inverses):
        // Q2 relates adjacent layers.
        let t = cfpq_graph::TripleSet::parse("c2 subClassOf c1\nc1 subClassOf c0\n").unwrap();
        let graph = t.to_graph();
        let ans = solve(&graph, &queries::query2(), Backend::Sparse).unwrap();
        // S -> subClassOf alone relates (c2,c1) and (c1,c0); the B-form
        // adds balanced up-down pairs ending one level down.
        assert!(ans.start_count() >= 2);
    }
}
