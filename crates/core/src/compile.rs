//! The unified compiled-query layer: one IR, one solver, two query
//! classes.
//!
//! Shemetova et al. ("One Algorithm to Evaluate Them All",
//! arXiv:2103.14688) observe that regular and context-free path queries
//! both evaluate through the same linear-algebra machinery once the
//! query is a *recursive state machine*. This module is that
//! unification for this codebase: a [`CompiledQuery`] holds the RSM form
//! of a query — built from an NFA ([`CompiledQuery::from_nfa`]) or from
//! a CFG's trie boxes ([`CompiledQuery::from_cfg`]) — plus its
//! *lowering*: a weak-CNF "state grammar" that the existing
//! [`crate::relational::FixpointSolver`] evaluates unchanged, on any of
//! the six engines, inside sessions and the service.
//!
//! # The lowering
//!
//! The product-graph (Kronecker) formulation indexes reachability
//! matrices by automaton state: `R_q[i, j]` ⇔ some path `i → j` moves
//! box `A` from an entry state to state `q`. Each RSM transition becomes
//! one masked multiply per fixpoint sweep, expressed as a WCNF binary
//! rule so the solver's shared-product grouping, masking and semi-naive
//! Δ machinery apply as-is:
//!
//! * **state nonterminals** `A@qk` hold `R_q`; entry states are seeded
//!   with the identity (the Kronecker diagonal start), implemented by
//!   marking them nullable and forcing `nullable_diagonal` on — which
//!   also makes node-universe growth repair their diagonals for free;
//! * **label nonterminals** `@t:x` carry one term rule `@t:x → x`, so
//!   [`crate::session::GraphIndex::seed_matrices`] binds them straight
//!   to the session's materialized label matrices — no per-query
//!   rebuild, unlike the `solve_regular` oracle;
//! * a terminal transition `q --x--> q'` lowers to `A@q' → A@q @t:x`; a
//!   call transition `q --B--> q'` lowers to `A@q' → A@q B`, the
//!   mutual recursion between boxes running inside the one fixpoint;
//! * transitions *into a final state* additionally target the box's
//!   **answer nonterminal** (named after the source nonterminal, or
//!   `Rpq` for an NFA), which unions the accepting states without
//!   needing the unit rules WCNF forbids.
//!
//! ε-semantics: an NFA accepting ε still answers non-empty paths only
//! (matching [`crate::regular::solve_regular`]); a *grammar* box that
//! accepts ε gets a nullable answer nonterminal, so compiled CFPQ
//! reports the diagonal for nullable nonterminals — the RSM/GLL
//! convention, identical to `solve_rsm` and to Algorithm 1 under
//! [`SolveOptions::nullable_diagonal`].

use crate::regular::Nfa;
use crate::relational::{SolveOptions, Strategy};
use crate::session::PreparedQuery;
use cfpq_grammar::cfg::{Cfg, Symbol};
use cfpq_grammar::rsm::{Rsm, RsmBox};
use cfpq_grammar::symbol::SymbolTable;
use cfpq_grammar::{BinaryRule, GrammarError, Nt, TermRule, Wcnf};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Which query class a [`CompiledQuery`] was compiled from. Affects only
/// ε-semantics (see the module docs); the lowering and evaluation are
/// shared.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueryKind {
    /// An NFA-form regular path query: answers non-empty paths only.
    Regular,
    /// A context-free query in RSM form: nullable nonterminals match
    /// the empty path at every node (the RSM/GLL convention).
    ContextFree,
}

/// A query compiled to the unified RSM IR together with its lowering
/// onto the matrix pipeline.
///
/// Evaluate it by turning it into a [`PreparedQuery`]
/// ([`CompiledQuery::into_prepared`]) and handing that to a session
/// ([`crate::session::CfpqSession::prepare_query`]) or the service —
/// or use the `prepare_regular` / `prepare_rsm` conveniences on either,
/// which do exactly that.
#[derive(Clone, Debug)]
pub struct CompiledQuery {
    kind: QueryKind,
    rsm: Rsm,
    wcnf: Wcnf,
    n_state_nts: usize,
    n_label_nts: usize,
}

impl CompiledQuery {
    /// Compiles an NFA-form regular path query: one box, no calls, the
    /// `Rpq` answer nonterminal unioning the accepting states.
    pub fn from_nfa(nfa: &Nfa) -> Self {
        let mut table = SymbolTable::new();
        let mut bx = RsmBox::with_states(nfa.n_states().max(1));
        for &q in nfa.starts() {
            bx.mark_entry(q);
        }
        for &q in nfa.accepts() {
            bx.mark_final(q);
        }
        for (q, label, q2) in nfa.transitions() {
            bx.add_transition(*q, Symbol::T(table.term(label)), *q2);
        }
        let rsm = Rsm::from_boxes(vec![bx]);
        Self::lower(QueryKind::Regular, rsm, &table, &["Rpq".to_owned()], 0)
    }

    /// Compiles a context-free query through its trie-shared RSM boxes
    /// ([`Rsm::from_cfg`]).
    pub fn from_cfg(cfg: &Cfg) -> Result<Self, GrammarError> {
        if cfg.productions.is_empty() {
            return Err(GrammarError::Empty);
        }
        let start = cfg.start.ok_or(GrammarError::Empty)?;
        let rsm = Rsm::from_cfg(cfg);
        let names: Vec<String> = (0..cfg.symbols.n_nts())
            .map(|i| cfg.symbols.nt_name(Nt(i as u32)).to_owned())
            .collect();
        Ok(Self::lower(
            QueryKind::ContextFree,
            rsm,
            &cfg.symbols,
            &names,
            start.index(),
        ))
    }

    /// Lowers `rsm` to the weak-CNF state grammar described in the
    /// module docs. `names[b]` names box `b`'s answer nonterminal;
    /// terminal names come from `source` (they must match graph edge
    /// labels for the index to bind them).
    fn lower(
        kind: QueryKind,
        rsm: Rsm,
        source: &SymbolTable,
        names: &[String],
        start_box: usize,
    ) -> Self {
        let mut sy = SymbolTable::new();
        let answers: Vec<Nt> = names.iter().map(|n| sy.nt(n)).collect();

        // State nonterminals, allocated only where a reachability matrix
        // is observable: entry states (they carry the identity seed) and
        // states with outgoing transitions (they feed a multiply).
        let mut state_nts: Vec<Vec<Option<Nt>>> = Vec::with_capacity(rsm.boxes.len());
        for (b, bx) in rsm.boxes.iter().enumerate() {
            let mut needed = vec![false; bx.n_states as usize];
            for &e in &bx.entries {
                needed[e as usize] = true;
            }
            for &(q, _, _) in &bx.transitions {
                needed[q as usize] = true;
            }
            state_nts.push(
                needed
                    .iter()
                    .enumerate()
                    .map(|(q, &need)| need.then(|| sy.nt(&format!("{}@q{q}", names[b]))))
                    .collect(),
            );
        }

        // Label nonterminals with their term rules, one per terminal the
        // RSM mentions; the session's seed_matrices unions the matching
        // materialized label matrix straight into them.
        let mut term_rules: Vec<TermRule> = Vec::new();
        let mut label_nts: HashMap<cfpq_grammar::Term, Nt> = HashMap::new();
        let mut binary_rules: Vec<BinaryRule> = Vec::new();
        let mut rule_seen: HashSet<(Nt, Nt, Nt)> = HashSet::new();
        for (b, bx) in rsm.boxes.iter().enumerate() {
            for &(q, sym, q2) in &bx.transitions {
                let right = match sym {
                    Symbol::T(t) => *label_nts.entry(t).or_insert_with(|| {
                        let name = source.term_name(t);
                        let term = sy.term(name);
                        let lhs = sy.nt(&format!("@t:{name}"));
                        term_rules.push(TermRule { lhs, term });
                        lhs
                    }),
                    Symbol::N(callee) => answers[callee.index()],
                };
                let left =
                    state_nts[b][q as usize].expect("transition source always has a state nt");
                let mut emit = |lhs: Nt| {
                    if rule_seen.insert((lhs, left, right)) {
                        binary_rules.push(BinaryRule { lhs, left, right });
                    }
                };
                if let Some(target) = state_nts[b][q2 as usize] {
                    emit(target);
                }
                if bx.is_final(q2) {
                    emit(answers[b]);
                }
            }
        }

        // Nullability: entry states always carry the identity seed (the
        // Kronecker diagonal); answer nonterminals only under
        // context-free ε-semantics.
        let mut nullable: BTreeSet<Nt> = BTreeSet::new();
        for (b, bx) in rsm.boxes.iter().enumerate() {
            for &e in &bx.entries {
                nullable.insert(state_nts[b][e as usize].expect("entries always get a state nt"));
            }
        }
        if kind == QueryKind::ContextFree {
            for (b, is_nullable) in rsm.nullable_boxes().iter().enumerate() {
                if *is_nullable {
                    nullable.insert(answers[b]);
                }
            }
        }

        let n_state_nts = state_nts
            .iter()
            .map(|v| v.iter().flatten().count())
            .sum::<usize>();
        let n_label_nts = label_nts.len();
        let wcnf = Wcnf {
            symbols: sy,
            term_rules,
            binary_rules,
            start: answers[start_box],
            nullable,
        };
        Self {
            kind,
            rsm,
            wcnf,
            n_state_nts,
            n_label_nts,
        }
    }

    /// The query class this was compiled from.
    pub fn kind(&self) -> QueryKind {
        self.kind
    }

    /// The RSM form of the query.
    pub fn rsm(&self) -> &Rsm {
        &self.rsm
    }

    /// The lowered state grammar the fixpoint solver evaluates.
    pub fn wcnf(&self) -> &Wcnf {
        &self.wcnf
    }

    /// The answer nonterminal's name (`Rpq` for NFAs, the source start
    /// nonterminal for grammars).
    pub fn start_name(&self) -> &str {
        self.wcnf.symbols.nt_name(self.wcnf.start)
    }

    /// Number of state nonterminals in the lowering (one reachability
    /// matrix each).
    pub fn n_state_nts(&self) -> usize {
        self.n_state_nts
    }

    /// Number of label nonterminals (one per distinct terminal; each is
    /// an alias of a materialized index matrix).
    pub fn n_label_nts(&self) -> usize {
        self.n_label_nts
    }

    /// Wraps the lowering as a [`PreparedQuery`] on the default
    /// (masked semi-naive) strategy. `nullable_diagonal` is forced on:
    /// the lowering encodes entry-state identity seeds through it.
    pub fn into_prepared(self) -> PreparedQuery {
        PreparedQuery::from_wcnf(self.wcnf).options(SolveOptions {
            nullable_diagonal: true,
        })
    }

    /// [`CompiledQuery::into_prepared`] with an explicit fixpoint
    /// strategy (the diagonal option is still forced on).
    pub fn into_prepared_with(self, strategy: Strategy) -> PreparedQuery {
        self.into_prepared().strategy(strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regular::solve_regular;
    use crate::session::{solve_prepared, CfpqSession, GraphIndex};
    use cfpq_graph::{generators, Graph};
    use cfpq_matrix::SparseEngine;

    fn pipeline_pairs(graph: &Graph, nfa: &Nfa) -> Vec<(u32, u32)> {
        let compiled = CompiledQuery::from_nfa(nfa);
        let start = compiled.wcnf().start;
        let index = GraphIndex::build(SparseEngine, graph);
        let solved = solve_prepared(&index, &compiled.into_prepared());
        solved.pairs(start)
    }

    #[test]
    fn nfa_lowering_matches_oracle_on_builders() {
        let graphs = [
            generators::chain(4, "a"),
            generators::cycle(3, "a"),
            generators::word_chain(&["a", "b", "a"]),
            generators::random_graph(9, 25, &["a", "b"], 3),
        ];
        let nfas = [
            Nfa::plus("a"),
            Nfa::star_then("a", "b"),
            Nfa::word(&["a", "b"]),
        ];
        for (gi, graph) in graphs.iter().enumerate() {
            for (ni, nfa) in nfas.iter().enumerate() {
                let oracle = solve_regular(&SparseEngine, graph, nfa);
                assert_eq!(
                    pipeline_pairs(graph, nfa),
                    oracle.pairs(),
                    "graph {gi}, nfa {ni}"
                );
            }
        }
    }

    #[test]
    fn accepting_start_state_still_answers_nonempty_paths_only() {
        // (ab)+ via a cycle of states where the accepting state is also
        // the start: ε is in the NFA's language but RPQ answers stay
        // non-empty, byte-identical with the oracle.
        let mut nfa = Nfa::new(2);
        nfa.start(0)
            .accept(0)
            .transition(0, "a", 1)
            .transition(1, "b", 0);
        let graph = generators::word_chain(&["a", "b", "a", "b"]);
        let oracle = solve_regular(&SparseEngine, &graph, &nfa);
        assert_eq!(pipeline_pairs(&graph, &nfa), oracle.pairs());
        assert_eq!(oracle.pairs(), vec![(0, 2), (0, 4), (2, 4)]);
    }

    #[test]
    fn empty_nfa_answers_nothing() {
        let nfa = Nfa::new(3); // no starts, no accepts, no transitions
        let graph = generators::chain(3, "a");
        assert!(pipeline_pairs(&graph, &nfa).is_empty());
    }

    #[test]
    fn cfg_lowering_matches_wcnf_pipeline_with_diagonal() {
        use cfpq_grammar::cnf::CnfOptions;
        let cfg = Cfg::parse("S -> a S b | a b | S S").unwrap();
        let compiled = CompiledQuery::from_cfg(&cfg).unwrap();
        assert_eq!(compiled.kind(), QueryKind::ContextFree);
        for seed in 0..6u64 {
            let graph = generators::random_graph(8, 20, &["a", "b"], seed);
            let mut session = CfpqSession::new(SparseEngine, &graph);
            let rsm_id = session.prepare_query(compiled.clone().into_prepared());
            let wcnf = cfg.to_wcnf(CnfOptions::default()).unwrap();
            let cnf_id = session.prepare_wcnf(wcnf);
            let rsm_answer = session.evaluate(rsm_id);
            let cnf_answer = session.evaluate(cnf_id);
            assert_eq!(
                rsm_answer.pairs("S").unwrap(),
                cnf_answer.pairs("S").unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn nullable_grammar_follows_rsm_epsilon_convention() {
        // S -> a S | eps: the compiled path reports the diagonal, like
        // solve_rsm and Algorithm 1 under nullable_diagonal.
        let cfg = Cfg::parse("S -> a S | eps").unwrap();
        let graph = generators::chain(2, "a");
        let compiled = CompiledQuery::from_cfg(&cfg).unwrap();
        let start = compiled.wcnf().start;
        let index = GraphIndex::build(SparseEngine, &graph);
        let solved = solve_prepared(&index, &compiled.into_prepared());
        assert_eq!(
            solved.pairs(start),
            vec![(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)]
        );
    }

    #[test]
    fn transitive_nullability_flows_through_calls() {
        // A -> B B, B -> eps | b: A is transitively nullable, so A's
        // diagonal must appear even on a graph with no b-edges at all.
        let cfg = Cfg::parse("A -> B B\nB -> eps | b").unwrap();
        let graph = generators::chain(2, "a");
        let compiled = CompiledQuery::from_cfg(&cfg).unwrap();
        let start = compiled.wcnf().start;
        let index = GraphIndex::build(SparseEngine, &graph);
        let solved = solve_prepared(&index, &compiled.into_prepared());
        assert_eq!(solved.pairs(start), vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn lowering_shape_is_small_and_shared() {
        // a* b: 2 NFA states, 2 labels. State 1 is a pure sink (no
        // outgoing transitions), so its reachability lives only in the
        // answer nonterminal: 1 state nt + 2 label nts + Rpq.
        let compiled = CompiledQuery::from_nfa(&Nfa::star_then("a", "b"));
        assert_eq!(compiled.n_state_nts(), 1);
        assert_eq!(compiled.n_label_nts(), 2);
        assert_eq!(compiled.start_name(), "Rpq");
        assert_eq!(compiled.rsm().boxes.len(), 1);
        // Per-transition rules: 0-a->0 (state), 0-b->1 (answer only).
        assert_eq!(compiled.wcnf().binary_rules.len(), 2);
    }
}
