//! Conjunctive-grammar extension — the §7 hypothesis.
//!
//! The paper: *"our algorithm can be trivially generalized to work on
//! \[conjunctive and Boolean\] grammars … Our hypothesis is that it would
//! produce the upper approximation of a solution."* This module implements
//! that generalization: rules `A → B₁C₁ & B₂C₂ & …` are evaluated per
//! fixpoint sweep as `T_A |= ⋂ᵢ (T_Bᵢ × T_Cᵢ)`.
//!
//! On *linear* inputs (word chains) this coincides with conjunctive CYK
//! and is exact (Okhotin \[19\] — parsing by matrix multiplication
//! generalizes to Boolean grammars). On arbitrary graphs the result is an
//! upper approximation: conjunctive path querying is undecidable \[11\], so
//! no terminating algorithm can be exact. Two sound properties are tested:
//! string-exactness on chains, and containment in every single-conjunct
//! projection (a context-free over-grammar).

use cfpq_grammar::wcnf::TermRule;
use cfpq_grammar::{Nt, SymbolTable, Term};
use cfpq_graph::Graph;
use cfpq_matrix::BoolEngine;

use crate::relational::RelationalIndex;

/// A conjunctive rule `lhs → conjuncts\[0\] & conjuncts\[1\] & …`, every
/// conjunct a pair of nonterminals (binary normal form).
#[derive(Clone, Debug)]
pub struct ConjRule {
    /// Left-hand side.
    pub lhs: Nt,
    /// The conjuncts; at least one. A single conjunct degenerates to an
    /// ordinary context-free binary rule.
    pub conjuncts: Vec<(Nt, Nt)>,
}

/// A conjunctive grammar in binary normal form.
#[derive(Clone, Debug, Default)]
pub struct ConjunctiveGrammar {
    /// Symbol names.
    pub symbols: SymbolTable,
    /// Terminal rules `A → x`.
    pub term_rules: Vec<TermRule>,
    /// Conjunctive binary rules.
    pub conj_rules: Vec<ConjRule>,
}

impl ConjunctiveGrammar {
    /// Creates an empty grammar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a terminal rule `lhs → term` by name.
    pub fn term_rule(&mut self, lhs: &str, term: &str) {
        let lhs = self.symbols.nt(lhs);
        let term = self.symbols.term(term);
        self.term_rules.push(TermRule { lhs, term });
    }

    /// Adds a conjunctive rule `lhs → b₁c₁ & b₂c₂ & …` by names.
    pub fn conj_rule(&mut self, lhs: &str, conjuncts: &[(&str, &str)]) {
        assert!(!conjuncts.is_empty(), "at least one conjunct required");
        let lhs = self.symbols.nt(lhs);
        let conjuncts = conjuncts
            .iter()
            .map(|(b, c)| (self.symbols.nt(b), self.symbols.nt(c)))
            .collect();
        self.conj_rules.push(ConjRule { lhs, conjuncts });
    }

    /// Number of nonterminals.
    pub fn n_nts(&self) -> usize {
        self.symbols.n_nts()
    }

    /// The context-free *projection* keeping only conjunct `pick` of every
    /// rule (clamped to the rule's arity). Its language is a superset of
    /// the conjunctive language, giving a testable upper bound.
    pub fn projection(&self, pick: usize) -> cfpq_grammar::Wcnf {
        let binary_rules = self
            .conj_rules
            .iter()
            .map(|r| {
                let (left, right) = r.conjuncts[pick.min(r.conjuncts.len() - 1)];
                cfpq_grammar::wcnf::BinaryRule {
                    lhs: r.lhs,
                    left,
                    right,
                }
            })
            .collect();
        cfpq_grammar::Wcnf {
            symbols: self.symbols.clone(),
            term_rules: self.term_rules.clone(),
            binary_rules,
            start: Nt(0),
            nullable: Default::default(),
        }
    }
}

/// Evaluates the conjunctive grammar over the graph: per sweep, every rule
/// contributes `T_A |= ⋂ᵢ (T_Bᵢ × T_Cᵢ)` until fixpoint.
pub fn solve_conjunctive<E: BoolEngine>(
    engine: &E,
    graph: &Graph,
    grammar: &ConjunctiveGrammar,
) -> RelationalIndex<E::Matrix> {
    let n = graph.n_nodes();
    // Terminal initialization, mirroring relational::init_pairs but from
    // the conjunctive grammar's own symbol table.
    let term_of: Vec<Option<Term>> = graph
        .labels()
        .map(|(_, name)| grammar.symbols.get_term(name))
        .collect();
    let mut pairs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); grammar.n_nts()];
    for e in graph.edges() {
        if let Some(term) = term_of[e.label.index()] {
            for r in &grammar.term_rules {
                if r.term == term {
                    pairs[r.lhs.index()].push((e.from, e.to));
                }
            }
        }
    }
    let mut matrices: Vec<E::Matrix> = pairs
        .into_iter()
        .map(|p| engine.from_pairs(n, &p))
        .collect();

    let mut iterations = 0;
    let mut stats = crate::relational::SolveStats::default();
    loop {
        iterations += 1;
        let mut changed = false;
        for rule in &grammar.conj_rules {
            let mut acc: Option<E::Matrix> = None;
            for &(b, c) in &rule.conjuncts {
                let product = engine.multiply(&matrices[b.index()], &matrices[c.index()]);
                stats.products_computed += 1;
                acc = Some(match acc {
                    None => product,
                    Some(prev) => engine.intersect(&prev, &product),
                });
            }
            let contribution = acc.expect("at least one conjunct");
            changed |= engine.union_in_place(&mut matrices[rule.lhs.index()], &contribution);
        }
        stats
            .sweep_nnz
            .push(matrices.iter().map(cfpq_matrix::BoolMat::nnz).sum());
        if !changed {
            break;
        }
    }

    RelationalIndex {
        matrices,
        iterations,
        n_nodes: n,
        stats,
    }
}

/// The canonical non-context-free conjunctive language
/// `{aⁿbⁿcⁿ | n ≥ 1}` in binary normal form:
/// `S → XC & AY` with `X → aXb | ab` (matched a/b), `Y → bYc | bc`
/// (matched b/c), `A → aA | a`, `C → cC | c`.
pub fn anbncn() -> ConjunctiveGrammar {
    let mut g = ConjunctiveGrammar::new();
    // Terminal carriers.
    g.term_rule("Ta", "a");
    g.term_rule("Tb", "b");
    g.term_rule("Tc", "c");
    g.term_rule("A", "a");
    g.term_rule("C", "c");
    // X -> a X b | a b  (binarized: X -> Ta Xb | Ta Tb, Xb -> X Tb)
    g.conj_rule("X", &[("Ta", "Xb")]);
    g.conj_rule("Xb", &[("X", "Tb")]);
    g.conj_rule("X", &[("Ta", "Tb")]);
    // Y -> b Y c | b c
    g.conj_rule("Y", &[("Tb", "Yc")]);
    g.conj_rule("Yc", &[("Y", "Tc")]);
    g.conj_rule("Y", &[("Tb", "Tc")]);
    // A -> a A | a ; C -> c C | c
    g.conj_rule("A", &[("Ta", "A")]);
    g.conj_rule("C", &[("Tc", "C")]);
    // S -> X C & A Y
    g.conj_rule("S", &[("X", "C"), ("A", "Y")]);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relational::solve_on_engine;
    use cfpq_graph::generators;
    use cfpq_matrix::{DenseEngine, SparseEngine};

    fn s_of(g: &ConjunctiveGrammar) -> Nt {
        g.symbols.get_nt("S").unwrap()
    }

    #[test]
    fn anbncn_accepts_exact_strings() {
        let g = anbncn();
        let s = s_of(&g);
        for (word, expect) in [
            (vec!["a", "b", "c"], true),
            (vec!["a", "a", "b", "b", "c", "c"], true),
            (vec!["a", "a", "a", "b", "b", "b", "c", "c", "c"], true),
            (vec!["a", "a", "b", "b", "c"], false),
            (vec!["a", "b", "b", "c", "c"], false),
            (vec!["a", "b", "c", "c"], false),
            (vec!["b", "a", "c"], false),
        ] {
            let graph = generators::word_chain(&word);
            let idx = solve_conjunctive(&DenseEngine, &graph, &g);
            assert_eq!(
                idx.contains(s, 0, word.len() as u32),
                expect,
                "word {word:?}"
            );
        }
    }

    #[test]
    fn engines_agree_on_conjunctive() {
        let g = anbncn();
        let graph = generators::word_chain(&["a", "a", "b", "b", "c", "c"]);
        let dense = solve_conjunctive(&DenseEngine, &graph, &g);
        let sparse = solve_conjunctive(&SparseEngine, &graph, &g);
        for i in 0..g.n_nts() {
            assert_eq!(dense.pairs(Nt(i as u32)), sparse.pairs(Nt(i as u32)));
        }
    }

    #[test]
    fn conjunctive_result_is_contained_in_projections() {
        // The upper-approximation property relative to CF projections:
        // dropping conjuncts only enlarges the relation.
        let g = anbncn();
        let s = s_of(&g);
        let graph = generators::random_graph(8, 30, &["a", "b", "c"], 11);
        let conj = solve_conjunctive(&DenseEngine, &graph, &g);
        for pick in 0..2 {
            let proj = g.projection(pick);
            let rel = solve_on_engine(&DenseEngine, &graph, &proj);
            let conj_pairs: std::collections::BTreeSet<_> = conj.pairs(s).into_iter().collect();
            let proj_pairs: std::collections::BTreeSet<_> = rel.pairs(s).into_iter().collect();
            assert!(
                conj_pairs.is_subset(&proj_pairs),
                "projection {pick} must over-approximate"
            );
        }
    }

    #[test]
    fn single_conjunct_rules_match_context_free_solver() {
        // With one conjunct per rule the conjunctive solver IS Algorithm 1.
        let mut g = ConjunctiveGrammar::new();
        g.term_rule("Ta", "a");
        g.term_rule("Tb", "b");
        g.conj_rule("S", &[("Ta", "Sb")]);
        g.conj_rule("Sb", &[("S", "Tb")]);
        g.conj_rule("S", &[("Ta", "Tb")]);
        let graph = generators::two_cycles(2, 3);
        let conj = solve_conjunctive(&DenseEngine, &graph, &g);
        let proj = g.projection(0);
        let rel = solve_on_engine(&DenseEngine, &graph, &proj);
        let s = s_of(&g);
        assert_eq!(conj.pairs(s), rel.pairs(s));
    }

    #[test]
    #[should_panic(expected = "at least one conjunct")]
    fn empty_conjunct_list_panics() {
        let mut g = ConjunctiveGrammar::new();
        g.conj_rule("S", &[]);
    }
}
