//! Single-path query semantics (§5).
//!
//! The closure computation is modified so that every nonterminal stored in
//! a cell carries the length of *some* witness path: terminal entries get
//! length 1, and an entry derived by `A → BC` from `(B, l_B)` at `(i, k)`
//! and `(C, l_C)` at `(k, j)` gets `l_A = l_B + l_C`. Crucially
//! (paper: "if some nonterminal A with an associated path length l₁ is in
//! a⁽ᵖ⁾ᵢⱼ then A is not added … with length l₂ for l₂ ≠ l₁"), lengths are
//! **first-write-wins** — never updated once set. This makes the witness
//! extraction of Theorem 5 terminate: both split lengths are strictly
//! smaller and remain valid forever because matrices only grow.
//!
//! The extracted witness is re-derivable by construction; tests re-check
//! every extracted label string with the CYK oracle.

use cfpq_grammar::{Nt, Wcnf};
use cfpq_graph::{Edge, Graph, NodeId};

use crate::relational::{init_pairs, label_terminal_map};

/// Length-annotated relational index: `lengths[A][i*n + j] = l` means
/// `(i, j) ∈ R_A` with a witness path of exactly `l` edges; `0` = absent.
#[derive(Clone, Debug)]
pub struct SinglePathIndex {
    n: usize,
    /// One `n × n` length matrix per nonterminal.
    lengths: Vec<Vec<u32>>,
    /// Fixpoint iterations executed.
    pub iterations: usize,
}

impl SinglePathIndex {
    /// The witness length for `(A, i, j)`, if `(i, j) ∈ R_A`.
    pub fn length(&self, nt: Nt, i: u32, j: u32) -> Option<u32> {
        let l = self.lengths[nt.index()][i as usize * self.n + j as usize];
        (l != 0).then_some(l)
    }

    /// True if `(i, j) ∈ R_A`.
    pub fn contains(&self, nt: Nt, i: u32, j: u32) -> bool {
        self.length(nt, i, j).is_some()
    }

    /// All pairs of `R_A` with their witness lengths, row-major.
    pub fn pairs_with_lengths(&self, nt: Nt) -> Vec<(u32, u32, u32)> {
        let m = &self.lengths[nt.index()];
        let mut out = Vec::new();
        for i in 0..self.n {
            for j in 0..self.n {
                let l = m[i * self.n + j];
                if l != 0 {
                    out.push((i as u32, j as u32, l));
                }
            }
        }
        out
    }

    /// `|R_A|`.
    pub fn count(&self, nt: Nt) -> usize {
        self.lengths[nt.index()].iter().filter(|&&l| l != 0).count()
    }

    #[inline]
    fn raw(&self, nt: usize, i: u32, j: u32) -> u32 {
        self.lengths[nt][i as usize * self.n + j as usize]
    }
}

/// Runs the §5 length-annotated closure.
pub fn solve_single_path(graph: &Graph, grammar: &Wcnf) -> SinglePathIndex {
    let n = graph.n_nodes();
    let n_nts = grammar.n_nts();
    let mut lengths: Vec<Vec<u32>> = vec![vec![0u32; n * n]; n_nts];

    // Initialization: all terminal-rule entries have length 1.
    for (nt_index, pairs) in init_pairs(graph, grammar).into_iter().enumerate() {
        for (i, j) in pairs {
            lengths[nt_index][i as usize * n + j as usize] = 1;
        }
    }

    // Fixpoint sweeps. For each rule A -> BC and each (i, k) ∈ R_B,
    // (k, j) ∈ R_C: set l_A(i, j) = l_B + l_C if unset (first write wins).
    let mut iterations = 0;
    loop {
        iterations += 1;
        let mut changed = false;
        for rule in &grammar.binary_rules {
            let (a, b, c) = (rule.lhs.index(), rule.left.index(), rule.right.index());
            for i in 0..n {
                for k in 0..n {
                    let lb = lengths[b][i * n + k];
                    if lb == 0 {
                        continue;
                    }
                    for j in 0..n {
                        let lc = lengths[c][k * n + j];
                        if lc == 0 {
                            continue;
                        }
                        let cell = &mut lengths[a][i * n + j];
                        if *cell == 0 {
                            *cell = lb + lc;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    SinglePathIndex {
        n,
        lengths,
        iterations,
    }
}

/// Errors from witness extraction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExtractError {
    /// `(A, i, j)` is not in the relational answer.
    NotInRelation,
    /// Internal inconsistency — the index should always admit a split;
    /// reaching this indicates index corruption.
    NoWitnessSplit {
        /// Nonterminal whose split failed.
        nt: Nt,
        /// Source node.
        from: NodeId,
        /// Target node.
        to: NodeId,
        /// Expected total length.
        length: u32,
    },
}

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractError::NotInRelation => write!(f, "pair is not in the relation"),
            ExtractError::NoWitnessSplit {
                nt,
                from,
                to,
                length,
            } => write!(
                f,
                "no witness split for {nt:?} ({from} -> {to}, length {length})"
            ),
        }
    }
}

impl std::error::Error for ExtractError {}

/// Extracts a witness path for `(A, i, j)` from the single-path index by
/// the "simple search" of §5: a length-1 entry is resolved to a matching
/// edge; a longer entry is split at any `k` with a rule `A → BC` such
/// that `l_B + l_C = l_A`, recursing on strictly smaller lengths.
pub fn extract_path(
    index: &SinglePathIndex,
    graph: &Graph,
    grammar: &Wcnf,
    nt: Nt,
    from: NodeId,
    to: NodeId,
) -> Result<Vec<Edge>, ExtractError> {
    let Some(total) = index.length(nt, from, to) else {
        return Err(ExtractError::NotInRelation);
    };
    let term_of = label_terminal_map(graph, grammar);
    let mut path = Vec::with_capacity(total as usize);
    extract_into(
        index, graph, grammar, &term_of, nt, from, to, total, &mut path,
    )?;
    Ok(path)
}

#[allow(clippy::too_many_arguments)]
fn extract_into(
    index: &SinglePathIndex,
    graph: &Graph,
    grammar: &Wcnf,
    term_of: &[Option<cfpq_grammar::Term>],
    nt: Nt,
    from: NodeId,
    to: NodeId,
    length: u32,
    out: &mut Vec<Edge>,
) -> Result<(), ExtractError> {
    if length == 1 {
        // Find an edge (from, x, to) with A -> x.
        for &(label, v) in graph.out_edges(from) {
            if v != to {
                continue;
            }
            let Some(term) = term_of[label.index()] else {
                continue;
            };
            if grammar
                .term_rules
                .iter()
                .any(|r| r.lhs == nt && r.term == term)
            {
                out.push(Edge { from, label, to });
                return Ok(());
            }
        }
        return Err(ExtractError::NoWitnessSplit {
            nt,
            from,
            to,
            length,
        });
    }
    // Split via some rule A -> BC and midpoint k with l_B + l_C = l_A.
    for rule in &grammar.binary_rules {
        if rule.lhs != nt {
            continue;
        }
        for k in 0..index.n as u32 {
            let lb = index.raw(rule.left.index(), from, k);
            if lb == 0 || lb >= length {
                continue;
            }
            let lc = index.raw(rule.right.index(), k, to);
            if lc == 0 || lb + lc != length {
                continue;
            }
            extract_into(index, graph, grammar, term_of, rule.left, from, k, lb, out)?;
            extract_into(index, graph, grammar, term_of, rule.right, k, to, lc, out)?;
            return Ok(());
        }
    }
    Err(ExtractError::NoWitnessSplit {
        nt,
        from,
        to,
        length,
    })
}

/// The label word of a path, as grammar terminals (for CYK re-checking).
/// Returns `None` if some edge label is not a grammar terminal.
pub fn path_word(path: &[Edge], graph: &Graph, grammar: &Wcnf) -> Option<Vec<cfpq_grammar::Term>> {
    path.iter()
        .map(|e| grammar.symbols.get_term(graph.label_name(e.label)))
        .collect()
}

/// Validates that `path` is a well-formed graph path from `from` to `to`
/// and that its label word derives from `nt`. The Theorem-5 soundness
/// check, used pervasively in tests.
pub fn validate_witness(
    path: &[Edge],
    graph: &Graph,
    grammar: &Wcnf,
    nt: Nt,
    from: NodeId,
    to: NodeId,
) -> bool {
    if path.is_empty() {
        return false;
    }
    if path[0].from != from || path[path.len() - 1].to != to {
        return false;
    }
    // Contiguity and edge existence.
    for w in path.windows(2) {
        if w[0].to != w[1].from {
            return false;
        }
    }
    for e in path {
        if !graph
            .out_edges(e.from)
            .iter()
            .any(|&(l, v)| l == e.label && v == e.to)
        {
            return false;
        }
    }
    match path_word(path, graph, grammar) {
        Some(word) => grammar.derives(nt, &word),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpq_grammar::cnf::CnfOptions;
    use cfpq_grammar::Cfg;
    use cfpq_graph::generators;
    use cfpq_matrix::DenseEngine;

    fn wcnf(src: &str) -> Wcnf {
        Cfg::parse(src)
            .unwrap()
            .to_wcnf(CnfOptions::default())
            .unwrap()
    }

    #[test]
    fn lengths_on_chain() {
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["a", "a", "b", "b"]);
        let idx = solve_single_path(&graph, &g);
        assert_eq!(idx.length(s, 0, 4), Some(4));
        assert_eq!(idx.length(s, 1, 3), Some(2));
        assert_eq!(idx.length(s, 0, 3), None);
    }

    #[test]
    fn pair_sets_match_relational_solver() {
        let g = wcnf("S -> a S b | a b | S S");
        let graph = generators::two_cycles(3, 2);
        let sp = solve_single_path(&graph, &g);
        let rel = crate::relational::solve_on_engine(&DenseEngine, &graph, &g);
        for nt in 0..g.n_nts() {
            let nt = Nt(nt as u32);
            let sp_pairs: Vec<(u32, u32)> = sp
                .pairs_with_lengths(nt)
                .into_iter()
                .map(|(i, j, _)| (i, j))
                .collect();
            assert_eq!(sp_pairs, rel.pairs(nt), "nt {nt:?}");
        }
    }

    #[test]
    fn extraction_on_chain_yields_the_chain() {
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["a", "a", "b", "b"]);
        let idx = solve_single_path(&graph, &g);
        let path = extract_path(&idx, &graph, &g, s, 0, 4).unwrap();
        assert_eq!(path.len(), 4);
        assert!(validate_witness(&path, &graph, &g, s, 0, 4));
        let word = path_word(&path, &graph, &g).unwrap();
        let names: Vec<&str> = word.iter().map(|t| g.symbols.term_name(*t)).collect();
        assert_eq!(names, vec!["a", "a", "b", "b"]);
    }

    #[test]
    fn extraction_on_cyclic_graph_is_valid() {
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::two_cycles(2, 3);
        let idx = solve_single_path(&graph, &g);
        let pairs = idx.pairs_with_lengths(s);
        assert!(!pairs.is_empty());
        for (i, j, len) in pairs {
            let path = extract_path(&idx, &graph, &g, s, i, j)
                .unwrap_or_else(|e| panic!("extract ({i},{j}): {e}"));
            assert_eq!(path.len() as u32, len, "length matches ({i},{j})");
            assert!(
                validate_witness(&path, &graph, &g, s, i, j),
                "invalid witness for ({i},{j})"
            );
        }
    }

    #[test]
    fn witness_length_not_necessarily_minimal_but_valid() {
        // §5: the paper evaluates an arbitrary path, not a shortest one.
        // We only require validity; here the shortest S-witness from 0 to
        // 0 has length 2 (a b around the unit cycles), the index may
        // record any valid length ≥ 2 of matching parity.
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let mut graph = cfpq_graph::Graph::new(1);
        graph.add_edge_named(0, "a", 0);
        graph.add_edge_named(0, "b", 0);
        let idx = solve_single_path(&graph, &g);
        let len = idx.length(s, 0, 0).expect("S at (0,0)");
        assert!(len >= 2 && len.is_multiple_of(2));
        let path = extract_path(&idx, &graph, &g, s, 0, 0).unwrap();
        assert!(validate_witness(&path, &graph, &g, s, 0, 0));
    }

    #[test]
    fn extract_missing_pair_errors() {
        let g = wcnf("S -> a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["a", "b"]);
        let idx = solve_single_path(&graph, &g);
        assert_eq!(
            extract_path(&idx, &graph, &g, s, 1, 0),
            Err(ExtractError::NotInRelation)
        );
    }

    #[test]
    fn validate_rejects_malformed_paths() {
        let g = wcnf("S -> a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["a", "b"]);
        let a = graph.get_label("a").unwrap();
        let b = graph.get_label("b").unwrap();
        // Discontiguous.
        let bad = vec![
            Edge {
                from: 0,
                label: a,
                to: 1,
            },
            Edge {
                from: 0,
                label: b,
                to: 1,
            },
        ];
        assert!(!validate_witness(&bad, &graph, &g, s, 0, 1));
        // Nonexistent edge.
        let fake = vec![Edge {
            from: 1,
            label: a,
            to: 0,
        }];
        assert!(!validate_witness(&fake, &graph, &g, s, 1, 0));
        // Wrong endpoints.
        let good = vec![
            Edge {
                from: 0,
                label: a,
                to: 1,
            },
            Edge {
                from: 1,
                label: b,
                to: 2,
            },
        ];
        assert!(validate_witness(&good, &graph, &g, s, 0, 2));
        assert!(!validate_witness(&good, &graph, &g, s, 0, 1));
        // Empty path never validates (no ε-rules in weak CNF).
        assert!(!validate_witness(&[], &graph, &g, s, 0, 0));
    }
}
