//! Single-path query semantics (§5), on the engine pipeline.
//!
//! The closure computation is modified so that every nonterminal stored
//! in a cell carries the length of *some* witness path: terminal entries
//! get length 1, and an entry derived by `A → BC` from `(B, l_B)` at
//! `(i, k)` and `(C, l_C)` at `(k, j)` gets `l_A = l_B + l_C`. Crucially
//! (paper: "if some nonterminal A with an associated path length l₁ is in
//! a⁽ᵖ⁾ᵢⱼ then A is not added … with length l₂ for l₂ ≠ l₁"), lengths are
//! **first-write-wins** — never updated once set. This makes the witness
//! extraction of Theorem 5 terminate: both split lengths are strictly
//! smaller and remain valid forever because matrices only grow.
//!
//! That first-write-wins discipline is exactly the masked-kernel contract
//! of the relational pipeline, so since PR 4 the solver is no longer a
//! hand-rolled `O(n³)` sweep over flat length tables: [`SinglePathSolver`]
//! runs the same masked semi-naive fixpoint as
//! [`crate::relational::FixpointSolver`] — one length matrix
//! ([`cfpq_matrix::LenMat`]) per nonterminal, per-sweep Δ operands,
//! shared `(B, C)` products, and [`cfpq_matrix::LenEngine`] masked
//! kernels that only emit cells the closure does not hold yet — generic
//! over the paper's four representation × device engines. The original
//! triple loop survives as [`solve_single_path_oracle`], the reference
//! the property suite holds the engine pipeline to.
//!
//! # ε-witnesses (the nullable-diagonal fix)
//!
//! The weak-CNF grammars the solvers consume are ε-eliminated; the
//! nonterminals that *were* nullable are recorded in `Wcnf::nullable`.
//! With [`SolveOptions::nullable_diagonal`] set, the relational solver
//! reports `(A, m, m)` for every nullable `A` — and the single-path
//! index must agree ([`SinglePathIndex::contains`] is answered from the
//! same cells). The seed-era table encoded *absent* as `0`, which left
//! no representation for a present path of length 0; length matrices use
//! [`cfpq_matrix::NO_PATH`] (`u32::MAX`) as the absent sentinel instead,
//! and the initializer finishes by seeding `(A, m, m) = 0` for every
//! nullable `A` wherever the closure recorded no other witness (first
//! write wins). Because ε-elimination is complete (compensation rules
//! cover every erased occurrence), these ε-cells never need to act as
//! product operands — the kernels skip length-0 cells — which keeps every stored
//! split well-founded: extraction recurses on strictly smaller nonzero
//! lengths and resolves length 0 to the empty path and length 1 to a
//! graph edge.
//!
//! The extracted witness is re-derivable by construction; tests re-check
//! every extracted label string with the CYK oracle.

use cfpq_grammar::{Nt, Wcnf};
use cfpq_graph::{Edge, Graph, NodeId};
use cfpq_matrix::{DenseEngine, DenseLenMatrix, LenEngine, LenJob, LenMat, NO_PATH};
use std::collections::BTreeMap;

use crate::relational::{init_pairs, label_terminal_map, SolveOptions, SolveStats};

/// Length-annotated relational index: one length matrix per nonterminal;
/// a present cell `(A, i, j) = l` means `(i, j) ∈ R_A` with a witness
/// path of exactly `l` edges (`0` = the empty path of a nullable `A`).
#[derive(Clone, Debug)]
pub struct SinglePathIndex<M: LenMat> {
    /// Graph size |V|.
    pub n_nodes: usize,
    /// One `n × n` length matrix per nonterminal (crate-visible so the
    /// session layer can widen a cached closure when the node universe
    /// grows).
    pub(crate) lengths: Vec<M>,
    /// Fixpoint sweeps executed.
    pub iterations: usize,
    /// Kernel-work counters of the run (naive oracle runs count one
    /// product per rule per sweep).
    pub stats: SolveStats,
}

impl<M: LenMat> SinglePathIndex<M> {
    /// The witness length for `(A, i, j)`, if `(i, j) ∈ R_A`.
    pub fn length(&self, nt: Nt, i: u32, j: u32) -> Option<u32> {
        self.lengths[nt.index()].get(i, j)
    }

    /// True if `(i, j) ∈ R_A`.
    pub fn contains(&self, nt: Nt, i: u32, j: u32) -> bool {
        self.length(nt, i, j).is_some()
    }

    /// All pairs of `R_A` with their witness lengths, row-major.
    pub fn pairs_with_lengths(&self, nt: Nt) -> Vec<(u32, u32, u32)> {
        self.lengths[nt.index()].entries()
    }

    /// `R_A` as sorted pairs (the shape [`crate::relational::RelationalIndex::pairs`]
    /// returns, for direct comparison).
    pub fn pairs(&self, nt: Nt) -> Vec<(u32, u32)> {
        self.lengths[nt.index()].pairs()
    }

    /// `|R_A|`.
    pub fn count(&self, nt: Nt) -> usize {
        self.lengths[nt.index()].nnz()
    }

    /// The underlying length matrix of a nonterminal.
    pub fn matrix(&self, nt: Nt) -> &M {
        &self.lengths[nt.index()]
    }
}

/// The engine-generic §5 solver: a masked semi-naive fixpoint over
/// length matrices, mirroring [`crate::relational::FixpointSolver`].
///
/// ```
/// use cfpq_core::single_path::{extract_path, SinglePathSolver};
/// use cfpq_grammar::{cnf::CnfOptions, Cfg};
/// use cfpq_graph::generators;
/// use cfpq_matrix::SparseEngine;
///
/// let g = Cfg::parse("S -> a S b | a b").unwrap()
///     .to_wcnf(CnfOptions::default()).unwrap();
/// let s = g.symbols.get_nt("S").unwrap();
/// let graph = generators::word_chain(&["a", "a", "b", "b"]);
/// let idx = SinglePathSolver::new(&SparseEngine).solve(&graph, &g);
/// assert_eq!(idx.length(s, 0, 4), Some(4));
/// let path = extract_path(&idx, &graph, &g, s, 0, 4).unwrap();
/// assert_eq!(path.len(), 4);
/// ```
pub struct SinglePathSolver<'e, E: LenEngine> {
    engine: &'e E,
    options: SolveOptions,
}

impl<'e, E: LenEngine> SinglePathSolver<'e, E> {
    /// A solver on `engine` with default [`SolveOptions`].
    pub fn new(engine: &'e E) -> Self {
        Self {
            engine,
            options: SolveOptions::default(),
        }
    }

    /// Sets the solve options (ε-diagonal seeding).
    pub fn options(mut self, options: SolveOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs the §5 length-annotated closure: terminal seeds at length 1,
    /// masked semi-naive sweeps, then the ε-overlay (if enabled).
    pub fn solve(&self, graph: &Graph, grammar: &Wcnf) -> SinglePathIndex<E::LenMatrix> {
        let n = graph.n_nodes();
        let matrices: Vec<E::LenMatrix> = init_pairs(graph, grammar)
            .into_iter()
            .map(|pairs| {
                let entries: Vec<(u32, u32, u32)> =
                    pairs.into_iter().map(|(i, j)| (i, j, 1)).collect();
                self.engine.len_from_entries(n, &entries)
            })
            .collect();
        self.solve_from_matrices(matrices, n, grammar)
    }

    /// Runs the fixpoint from pre-seeded length matrices (the session
    /// layer seeds straight from its label matrices). The ε-overlay is
    /// applied here; callers only provide the length-1 base facts.
    pub fn solve_from_matrices(
        &self,
        mut matrices: Vec<E::LenMatrix>,
        n: usize,
        grammar: &Wcnf,
    ) -> SinglePathIndex<E::LenMatrix> {
        let mut stats = SolveStats::default();
        let iterations = self.delta_sweeps(&mut matrices, None, grammar, &mut stats);
        self.apply_epsilon_overlay(&mut matrices, n, grammar);
        SinglePathIndex {
            n_nodes: n,
            lengths: matrices,
            iterations,
            stats,
        }
    }

    /// Incrementally folds newly-discovered base facts (fresh graph
    /// edges, as length-1 entries) into a closed index, re-running only
    /// the semi-naive Δ loop — the single-path analogue of
    /// [`crate::relational::FixpointSolver::resume`]. Entries already
    /// present keep their recorded lengths (first-write-wins); the rest
    /// seed the Δ sweeps. Returns the stats of the resume portion alone;
    /// the index's cumulative counters are also advanced.
    pub fn resume(
        &self,
        index: &mut SinglePathIndex<E::LenMatrix>,
        grammar: &Wcnf,
        new_pairs: &[Vec<(u32, u32)>],
    ) -> SolveStats {
        let n_nts = grammar.n_nts();
        assert_eq!(new_pairs.len(), n_nts, "one pair list per nonterminal");
        let n = index.n_nodes;
        let mut delta: Vec<Option<E::LenMatrix>> = (0..n_nts).map(|_| None).collect();
        let mut any = false;
        for (a, pairs) in new_pairs.iter().enumerate() {
            if pairs.is_empty() {
                continue;
            }
            let entries: Vec<(u32, u32, u32)> = pairs.iter().map(|&(i, j)| (i, j, 1)).collect();
            let fresh = self.engine.len_set_absent(&mut index.lengths[a], &entries);
            if fresh.is_empty() {
                continue;
            }
            delta[a] = Some(self.engine.len_from_entries(n, &fresh));
            any = true;
        }
        let mut stats = SolveStats::default();
        if any {
            let sweeps = self.delta_sweeps(&mut index.lengths, Some(delta), grammar, &mut stats);
            index.iterations += sweeps;
            index.stats.products_computed += stats.products_computed;
            index.stats.products_skipped += stats.products_skipped;
            index
                .stats
                .sweep_nnz
                .extend(stats.sweep_nnz.iter().copied());
        }
        // Re-applied unconditionally: a session that grew the node
        // universe needs ε-cells on the new diagonal entries too.
        self.apply_epsilon_overlay(&mut index.lengths, n, grammar);
        stats
    }

    /// Seeds `(A, m, m) = 0` for every nullable `A` wherever no witness
    /// is recorded yet. Runs *after* the fixpoint: ε-elimination is
    /// complete, so composing through an ε-cell can never reach a pair
    /// the ε-free closure misses — and keeping ε-cells out of the sweeps
    /// keeps every stored split well-founded for extraction.
    fn apply_epsilon_overlay(&self, lengths: &mut [E::LenMatrix], n: usize, grammar: &Wcnf) {
        if !self.options.nullable_diagonal {
            return;
        }
        let diagonal: Vec<(u32, u32, u32)> = (0..n as u32).map(|m| (m, m, 0)).collect();
        for &nt in &grammar.nullable {
            self.engine
                .len_set_absent(&mut lengths[nt.index()], &diagonal);
        }
    }

    /// The masked semi-naive sweep loop, structurally identical to the
    /// Boolean `FixpointSolver::delta_sweeps`: distinct `(B, C)` operand
    /// pairs share one product per sweep, kernels with an empty Δ are
    /// skipped, and a product feeding exactly one LHS `A` runs masked
    /// against the accumulated `T_A` so it emits only unset cells —
    /// which under first-write-wins *is* the next Δ. `seed` is `None`
    /// for a cold solve (the freshly-seeded matrices are the first Δ) or
    /// explicit per-nonterminal deltas for [`SinglePathSolver::resume`].
    fn delta_sweeps(
        &self,
        full: &mut [E::LenMatrix],
        seed: Option<Vec<Option<E::LenMatrix>>>,
        grammar: &Wcnf,
        stats: &mut SolveStats,
    ) -> usize {
        let engine = self.engine;
        let n_nts = grammar.n_nts();

        // Distinct (B, C) operand pairs → the LHS nonterminals they feed.
        let mut by_pair: BTreeMap<(u32, u32), Vec<usize>> = BTreeMap::new();
        for rule in &grammar.binary_rules {
            let lhss = by_pair.entry((rule.left.0, rule.right.0)).or_default();
            if !lhss.contains(&rule.lhs.index()) {
                lhss.push(rule.lhs.index());
            }
        }
        let groups: Vec<((usize, usize), Vec<usize>)> = by_pair
            .into_iter()
            .map(|((b, c), lhss)| ((b as usize, c as usize), lhss))
            .collect();
        // What a rule-by-rule semi-naive loop launches per sweep.
        let per_sweep_potential = 2 * grammar.binary_rules.len();

        let (mut seed_from_full, mut delta): (bool, Vec<Option<E::LenMatrix>>) = match seed {
            None => (true, (0..n_nts).map(|_| None).collect()),
            Some(d) => {
                debug_assert_eq!(d.len(), n_nts);
                (false, d)
            }
        };
        let mut iterations = 0;
        loop {
            iterations += 1;
            let first = std::mem::take(&mut seed_from_full);

            let mut jobs: Vec<LenJob<'_, E::LenMatrix>> = Vec::new();
            let mut job_group: Vec<usize> = Vec::new();
            for (gi, ((b, c), lhss)) in groups.iter().enumerate() {
                let mask = match &lhss[..] {
                    &[a] => Some(&full[a]),
                    _ => None,
                };
                if first {
                    // Δ = T initially, so ΔB×C and B×ΔC coincide.
                    jobs.push((&full[*b], &full[*c], mask));
                    job_group.push(gi);
                } else {
                    if let Some(db) = &delta[*b] {
                        jobs.push((db, &full[*c], mask));
                        job_group.push(gi);
                    }
                    if let Some(dc) = &delta[*c] {
                        jobs.push((&full[*b], dc, mask));
                        job_group.push(gi);
                    }
                }
            }
            let products = engine.len_multiply_masked_batch(&jobs);
            stats.products_computed += jobs.len();
            stats.products_skipped += per_sweep_potential - jobs.len();

            // First-write-wins accumulation of each product into the
            // fresh candidates of every LHS of its group.
            let mut fresh: Vec<Option<E::LenMatrix>> = (0..n_nts).map(|_| None).collect();
            for (product, &gi) in products.into_iter().zip(&job_group) {
                for &a in &groups[gi].1 {
                    match &mut fresh[a] {
                        Some(acc) => {
                            engine.len_merge_absent(acc, &product);
                        }
                        None => fresh[a] = Some(product.clone()),
                    }
                }
            }

            // Fold fresh cells into the closure; the genuinely-new cells
            // (with their lengths) are the next Δ.
            let mut changed = false;
            for a in 0..n_nts {
                let Some(f) = fresh[a].take() else {
                    delta[a] = None;
                    continue;
                };
                let new_entries = engine.len_merge_absent(&mut full[a], &f);
                if new_entries.nnz() == 0 {
                    delta[a] = None;
                    continue;
                }
                delta[a] = Some(new_entries);
                changed = true;
            }
            stats
                .sweep_nnz
                .push(full.iter().map(LenMat::nnz).sum::<usize>());
            if !changed {
                break;
            }
        }
        iterations
    }
}

/// Runs the §5 length-annotated closure with default options on the
/// serial dense engine (back-compat entry point; pick a
/// [`SinglePathSolver`] for other engines or ε-diagonal seeding).
pub fn solve_single_path(graph: &Graph, grammar: &Wcnf) -> SinglePathIndex<DenseLenMatrix> {
    SinglePathSolver::new(&DenseEngine).solve(graph, grammar)
}

/// [`solve_single_path`] with explicit [`SolveOptions`].
pub fn solve_single_path_with(
    graph: &Graph,
    grammar: &Wcnf,
    options: SolveOptions,
) -> SinglePathIndex<DenseLenMatrix> {
    SinglePathSolver::new(&DenseEngine)
        .options(options)
        .solve(graph, grammar)
}

/// The seed-era naive `O(n³)` sweep over flat length tables, kept as the
/// reference oracle the engine pipeline is property-tested against (and
/// the ablation baseline of `benches/single_path.rs`). Fixed relative to
/// its original form: absent is [`NO_PATH`] (not `0`), so the ε-overlay
/// can store genuine length-0 witnesses.
pub fn solve_single_path_oracle(
    graph: &Graph,
    grammar: &Wcnf,
    options: SolveOptions,
) -> SinglePathIndex<DenseLenMatrix> {
    let n = graph.n_nodes();
    let n_nts = grammar.n_nts();
    let mut tabs: Vec<Vec<u32>> = vec![vec![NO_PATH; n * n]; n_nts];

    // Initialization: all terminal-rule entries have length 1.
    for (nt_index, pairs) in init_pairs(graph, grammar).into_iter().enumerate() {
        for (i, j) in pairs {
            tabs[nt_index][i as usize * n + j as usize] = 1;
        }
    }

    // Fixpoint sweeps. For each rule A -> BC and each (i, k) ∈ R_B,
    // (k, j) ∈ R_C: set l_A(i, j) = l_B + l_C if unset (first write
    // wins). ε-cells (length 0) are skipped as operands, exactly like
    // the engine kernels.
    let mut stats = SolveStats::default();
    let mut iterations = 0;
    loop {
        iterations += 1;
        let mut changed = false;
        for rule in &grammar.binary_rules {
            let (a, b, c) = (rule.lhs.index(), rule.left.index(), rule.right.index());
            stats.products_computed += 1;
            for i in 0..n {
                for k in 0..n {
                    let lb = tabs[b][i * n + k];
                    if lb == NO_PATH || lb == 0 {
                        continue;
                    }
                    for j in 0..n {
                        let lc = tabs[c][k * n + j];
                        if lc == NO_PATH || lc == 0 {
                            continue;
                        }
                        let cell = &mut tabs[a][i * n + j];
                        if *cell == NO_PATH {
                            *cell = lb + lc;
                            changed = true;
                        }
                    }
                }
            }
        }
        stats.sweep_nnz.push(
            tabs.iter()
                .map(|t| t.iter().filter(|&&l| l != NO_PATH).count())
                .sum(),
        );
        if !changed {
            break;
        }
    }

    // ε-overlay, identical to the engine pipeline's initializer.
    if options.nullable_diagonal {
        for &nt in &grammar.nullable {
            let tab = &mut tabs[nt.index()];
            for m in 0..n {
                let cell = &mut tab[m * n + m];
                if *cell == NO_PATH {
                    *cell = 0;
                }
            }
        }
    }

    SinglePathIndex {
        n_nodes: n,
        lengths: tabs
            .into_iter()
            .map(|vals| DenseLenMatrix::from_flat(n, vals))
            .collect(),
        iterations,
        stats,
    }
}

/// Errors from witness extraction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExtractError {
    /// `(A, i, j)` is not in the relational answer.
    NotInRelation,
    /// Internal inconsistency — the index should always admit a split;
    /// reaching this indicates index corruption.
    NoWitnessSplit {
        /// Nonterminal whose split failed.
        nt: Nt,
        /// Source node.
        from: NodeId,
        /// Target node.
        to: NodeId,
        /// Expected total length.
        length: u32,
    },
}

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractError::NotInRelation => write!(f, "pair is not in the relation"),
            ExtractError::NoWitnessSplit {
                nt,
                from,
                to,
                length,
            } => write!(
                f,
                "no witness split for {nt:?} ({from} -> {to}, length {length})"
            ),
        }
    }
}

impl std::error::Error for ExtractError {}

/// Extracts a witness path for `(A, i, j)` from the single-path index by
/// the "simple search" of §5: a length-0 entry is the empty path of a
/// nullable `A`; a length-1 entry is resolved to a matching edge; a
/// longer entry is split at any `k` with a rule `A → BC` such that
/// `l_B + l_C = l_A` with both parts nonzero, recursing on strictly
/// smaller lengths. (Stored nonzero cells always admit such a split:
/// kernels never compose through ε-cells, so every product cell was
/// written from two nonzero parts that remain valid forever.)
pub fn extract_path<M: LenMat>(
    index: &SinglePathIndex<M>,
    graph: &Graph,
    grammar: &Wcnf,
    nt: Nt,
    from: NodeId,
    to: NodeId,
) -> Result<Vec<Edge>, ExtractError> {
    let Some(total) = index.length(nt, from, to) else {
        return Err(ExtractError::NotInRelation);
    };
    let term_of = label_terminal_map(graph, grammar);
    let mut path = Vec::with_capacity(total as usize);
    extract_into(
        index, graph, grammar, &term_of, nt, from, to, total, &mut path,
    )?;
    Ok(path)
}

#[allow(clippy::too_many_arguments)]
fn extract_into<M: LenMat>(
    index: &SinglePathIndex<M>,
    graph: &Graph,
    grammar: &Wcnf,
    term_of: &[Option<cfpq_grammar::Term>],
    nt: Nt,
    from: NodeId,
    to: NodeId,
    length: u32,
    out: &mut Vec<Edge>,
) -> Result<(), ExtractError> {
    if length == 0 {
        // The ε-witness: only ever stored at (m, m) for nullable A.
        debug_assert!(from == to && grammar.nullable.contains(&nt));
        return Ok(());
    }
    if length == 1 {
        // Find an edge (from, x, to) with A -> x.
        for &(label, v) in graph.out_edges(from) {
            if v != to {
                continue;
            }
            let Some(term) = term_of[label.index()] else {
                continue;
            };
            if grammar
                .term_rules
                .iter()
                .any(|r| r.lhs == nt && r.term == term)
            {
                out.push(Edge { from, label, to });
                return Ok(());
            }
        }
        return Err(ExtractError::NoWitnessSplit {
            nt,
            from,
            to,
            length,
        });
    }
    // Split via some rule A -> BC and midpoint k with l_B + l_C = l_A,
    // both parts nonzero (ε-cells never participate in splits).
    for rule in &grammar.binary_rules {
        if rule.lhs != nt {
            continue;
        }
        for k in 0..index.n_nodes as u32 {
            let Some(lb) = index.length(rule.left, from, k) else {
                continue;
            };
            if lb == 0 || lb >= length {
                continue;
            }
            let lc = length - lb;
            if index.length(rule.right, k, to) != Some(lc) {
                continue;
            }
            extract_into(index, graph, grammar, term_of, rule.left, from, k, lb, out)?;
            extract_into(index, graph, grammar, term_of, rule.right, k, to, lc, out)?;
            return Ok(());
        }
    }
    Err(ExtractError::NoWitnessSplit {
        nt,
        from,
        to,
        length,
    })
}

/// The label word of a path, as grammar terminals (for CYK re-checking).
/// Returns `None` if some edge label is not a grammar terminal.
pub fn path_word(path: &[Edge], graph: &Graph, grammar: &Wcnf) -> Option<Vec<cfpq_grammar::Term>> {
    path.iter()
        .map(|e| grammar.symbols.get_term(graph.label_name(e.label)))
        .collect()
}

/// Validates that `path` is a well-formed graph path from `from` to `to`
/// and that its label word derives from `nt`. The Theorem-5 soundness
/// check, used pervasively in tests. The empty path is a valid witness
/// exactly for a nullable `nt` at a diagonal pair (`from == to`) — the
/// ε-match the `nullable_diagonal` option reports.
pub fn validate_witness(
    path: &[Edge],
    graph: &Graph,
    grammar: &Wcnf,
    nt: Nt,
    from: NodeId,
    to: NodeId,
) -> bool {
    if path.is_empty() {
        return from == to && grammar.nullable.contains(&nt);
    }
    if path[0].from != from || path[path.len() - 1].to != to {
        return false;
    }
    // Contiguity and edge existence.
    for w in path.windows(2) {
        if w[0].to != w[1].from {
            return false;
        }
    }
    for e in path {
        if !graph
            .out_edges(e.from)
            .iter()
            .any(|&(l, v)| l == e.label && v == e.to)
        {
            return false;
        }
    }
    match path_word(path, graph, grammar) {
        Some(word) => grammar.derives(nt, &word),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relational::solve_on_engine_with;
    use cfpq_grammar::cnf::CnfOptions;
    use cfpq_grammar::Cfg;
    use cfpq_graph::generators;
    use cfpq_matrix::{Device, ParDenseEngine, ParSparseEngine, SparseEngine};

    fn wcnf(src: &str) -> Wcnf {
        Cfg::parse(src)
            .unwrap()
            .to_wcnf(CnfOptions::default())
            .unwrap()
    }

    #[test]
    fn lengths_on_chain() {
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["a", "a", "b", "b"]);
        let idx = solve_single_path(&graph, &g);
        assert_eq!(idx.length(s, 0, 4), Some(4));
        assert_eq!(idx.length(s, 1, 3), Some(2));
        assert_eq!(idx.length(s, 0, 3), None);
    }

    #[test]
    fn pair_sets_match_relational_solver() {
        let g = wcnf("S -> a S b | a b | S S");
        let graph = generators::two_cycles(3, 2);
        let sp = solve_single_path(&graph, &g);
        let rel = crate::relational::solve_on_engine(&DenseEngine, &graph, &g);
        for nt in 0..g.n_nts() {
            let nt = Nt(nt as u32);
            assert_eq!(sp.pairs(nt), rel.pairs(nt), "nt {nt:?}");
        }
    }

    #[test]
    fn engine_pipeline_matches_oracle_on_every_engine() {
        let g = wcnf("S -> a S b | a b | S S");
        let graph = generators::two_cycles(3, 2);
        let oracle = solve_single_path_oracle(&graph, &g, SolveOptions::default());
        fn pairs_of<E: LenEngine>(e: &E, graph: &Graph, g: &Wcnf) -> Vec<Vec<(u32, u32)>> {
            let idx = SinglePathSolver::new(e).solve(graph, g);
            (0..g.n_nts()).map(|a| idx.pairs(Nt(a as u32))).collect()
        }
        let expect: Vec<Vec<(u32, u32)>> =
            (0..g.n_nts()).map(|a| oracle.pairs(Nt(a as u32))).collect();
        assert_eq!(pairs_of(&DenseEngine, &graph, &g), expect);
        assert_eq!(pairs_of(&SparseEngine, &graph, &g), expect);
        assert_eq!(
            pairs_of(&ParDenseEngine::new(Device::new(2)), &graph, &g),
            expect
        );
        assert_eq!(
            pairs_of(&ParSparseEngine::new(Device::new(3)), &graph, &g),
            expect
        );
    }

    #[test]
    fn nullable_diagonal_matches_relational_index() {
        // The PR-4 regression: on a grammar with erasable nonterminals,
        // the single-path index must agree with the relational index
        // solved under the same option — including the ε-diagonal.
        let g = wcnf("S -> a S b | eps");
        let graph = generators::two_cycles(2, 3);
        let options = SolveOptions {
            nullable_diagonal: true,
        };
        let rel = solve_on_engine_with(&SparseEngine, &graph, &g, options);
        for engine_pairs in [
            {
                let idx = SinglePathSolver::new(&SparseEngine)
                    .options(options)
                    .solve(&graph, &g);
                (0..g.n_nts())
                    .map(|a| idx.pairs(Nt(a as u32)))
                    .collect::<Vec<_>>()
            },
            {
                let idx = solve_single_path_oracle(&graph, &g, options);
                (0..g.n_nts())
                    .map(|a| idx.pairs(Nt(a as u32)))
                    .collect::<Vec<_>>()
            },
        ] {
            for nt in 0..g.n_nts() {
                let nt = Nt(nt as u32);
                assert_eq!(engine_pairs[nt.index()], rel.pairs(nt), "nt {nt:?}");
            }
        }
    }

    #[test]
    fn epsilon_witness_extracts_to_the_empty_path() {
        // Acyclic graph: the only diagonal matches are the ε-witnesses.
        let g = wcnf("S -> a S | eps");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::chain(2, "a");
        let idx = SinglePathSolver::new(&DenseEngine)
            .options(SolveOptions {
                nullable_diagonal: true,
            })
            .solve(&graph, &g);
        for m in 0..graph.n_nodes() as u32 {
            assert_eq!(idx.length(s, m, m), Some(0), "ε-witness at ({m},{m})");
            let path = extract_path(&idx, &graph, &g, s, m, m).unwrap();
            assert!(path.is_empty(), "the ε-witness is the empty path");
            assert!(validate_witness(&path, &graph, &g, s, m, m));
        }
        // Non-diagonal entries keep real witnesses under the option.
        let path = extract_path(&idx, &graph, &g, s, 0, 2).unwrap();
        assert_eq!(path.len(), 2);
        assert!(validate_witness(&path, &graph, &g, s, 0, 2));

        // On a cyclic graph a diagonal cell may instead keep a real
        // (first-written) witness; either way it extracts validly.
        let g2 = wcnf("S -> a S b | eps");
        let s2 = g2.symbols.get_nt("S").unwrap();
        let cyclic = generators::two_cycles(2, 3);
        let idx2 = SinglePathSolver::new(&DenseEngine)
            .options(SolveOptions {
                nullable_diagonal: true,
            })
            .solve(&cyclic, &g2);
        for m in 0..cyclic.n_nodes() as u32 {
            let len = idx2.length(s2, m, m).expect("diagonal present");
            let path = extract_path(&idx2, &cyclic, &g2, s2, m, m).unwrap();
            assert_eq!(path.len() as u32, len);
            assert!(validate_witness(&path, &cyclic, &g2, s2, m, m));
        }
    }

    #[test]
    fn resume_matches_cold_solve() {
        let g = wcnf("S -> a S b | a b");
        let full_graph = generators::word_chain(&["a", "a", "b", "b"]);
        let mut partial = cfpq_graph::Graph::new(5);
        for e in full_graph.edges().iter().take(3) {
            partial.add_edge_named(e.from, full_graph.label_name(e.label), e.to);
        }
        let solver = SinglePathSolver::new(&SparseEngine);
        let mut idx = solver.solve(&partial, &g);
        let cold = solver.solve(&full_graph, &g);

        let b_term = g.symbols.get_term("b").unwrap();
        let mut new_pairs = vec![Vec::new(); g.n_nts()];
        for nt in &g.nts_by_terminal()[b_term.index()] {
            new_pairs[nt.index()].push((3, 4));
        }
        let resume_stats = solver.resume(&mut idx, &g, &new_pairs);
        for nt in 0..g.n_nts() {
            let nt = Nt(nt as u32);
            assert_eq!(idx.pairs(nt), cold.pairs(nt), "repaired == from-scratch");
        }
        assert!(
            resume_stats.products_computed < cold.stats.products_computed,
            "resume {} vs cold {}",
            resume_stats.products_computed,
            cold.stats.products_computed
        );
        // Repaired witnesses are still extractable and valid.
        let s = g.symbols.get_nt("S").unwrap();
        let path = extract_path(&idx, &full_graph, &g, s, 0, 4).unwrap();
        assert!(validate_witness(&path, &full_graph, &g, s, 0, 4));
    }

    #[test]
    fn extraction_on_chain_yields_the_chain() {
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["a", "a", "b", "b"]);
        let idx = solve_single_path(&graph, &g);
        let path = extract_path(&idx, &graph, &g, s, 0, 4).unwrap();
        assert_eq!(path.len(), 4);
        assert!(validate_witness(&path, &graph, &g, s, 0, 4));
        let word = path_word(&path, &graph, &g).unwrap();
        let names: Vec<&str> = word.iter().map(|t| g.symbols.term_name(*t)).collect();
        assert_eq!(names, vec!["a", "a", "b", "b"]);
    }

    #[test]
    fn extraction_on_cyclic_graph_is_valid() {
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::two_cycles(2, 3);
        let idx = solve_single_path(&graph, &g);
        let pairs = idx.pairs_with_lengths(s);
        assert!(!pairs.is_empty());
        for (i, j, len) in pairs {
            let path = extract_path(&idx, &graph, &g, s, i, j)
                .unwrap_or_else(|e| panic!("extract ({i},{j}): {e}"));
            assert_eq!(path.len() as u32, len, "length matches ({i},{j})");
            assert!(
                validate_witness(&path, &graph, &g, s, i, j),
                "invalid witness for ({i},{j})"
            );
        }
    }

    #[test]
    fn witness_length_not_necessarily_minimal_but_valid() {
        // §5: the paper evaluates an arbitrary path, not a shortest one.
        // We only require validity; here the shortest S-witness from 0 to
        // 0 has length 2 (a b around the unit cycles), the index may
        // record any valid length ≥ 2 of matching parity.
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let mut graph = cfpq_graph::Graph::new(1);
        graph.add_edge_named(0, "a", 0);
        graph.add_edge_named(0, "b", 0);
        let idx = solve_single_path(&graph, &g);
        let len = idx.length(s, 0, 0).expect("S at (0,0)");
        assert!(len >= 2 && len.is_multiple_of(2));
        let path = extract_path(&idx, &graph, &g, s, 0, 0).unwrap();
        assert!(validate_witness(&path, &graph, &g, s, 0, 0));
    }

    #[test]
    fn extract_missing_pair_errors() {
        let g = wcnf("S -> a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["a", "b"]);
        let idx = solve_single_path(&graph, &g);
        assert_eq!(
            extract_path(&idx, &graph, &g, s, 1, 0),
            Err(ExtractError::NotInRelation)
        );
    }

    #[test]
    fn validate_rejects_malformed_paths() {
        let g = wcnf("S -> a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["a", "b"]);
        let a = graph.get_label("a").unwrap();
        let b = graph.get_label("b").unwrap();
        // Discontiguous.
        let bad = vec![
            Edge {
                from: 0,
                label: a,
                to: 1,
            },
            Edge {
                from: 0,
                label: b,
                to: 1,
            },
        ];
        assert!(!validate_witness(&bad, &graph, &g, s, 0, 1));
        // Nonexistent edge.
        let fake = vec![Edge {
            from: 1,
            label: a,
            to: 0,
        }];
        assert!(!validate_witness(&fake, &graph, &g, s, 1, 0));
        // Wrong endpoints.
        let good = vec![
            Edge {
                from: 0,
                label: a,
                to: 1,
            },
            Edge {
                from: 1,
                label: b,
                to: 2,
            },
        ];
        assert!(validate_witness(&good, &graph, &g, s, 0, 2));
        assert!(!validate_witness(&good, &graph, &g, s, 0, 1));
        // An empty path only validates for a nullable nonterminal on a
        // diagonal pair; S here is not nullable.
        assert!(!validate_witness(&[], &graph, &g, s, 0, 0));
        let nullable = wcnf("S -> a S | eps");
        let ns = nullable.symbols.get_nt("S").unwrap();
        assert!(validate_witness(&[], &graph, &nullable, ns, 0, 0));
        assert!(!validate_witness(&[], &graph, &nullable, ns, 0, 1));
    }
}
