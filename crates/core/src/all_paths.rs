//! Bounded all-path enumeration — the §7 future-work semantics.
//!
//! The all-path query semantics "requires presenting all possible paths
//! from node m to node n whose labeling is derived from a non-terminal A".
//! On cyclic graphs the full answer can be infinite (the paper cites
//! annotated grammars \[12\] as one mitigation); this module provides the
//! practical variant: enumerate all *distinct* witness paths up to a
//! length bound and a result limit, pruned by the relational index so
//! only productive splits are explored.
//!
//! ε-witnesses are first-class: when the relational index was solved
//! with `nullable_diagonal` enabled, a nullable `A` at a diagonal pair
//! `(m, m)` yields the empty path, and binary splits `A → BC` may erase
//! either side (`B` deriving ε at the source node, or `C` at the target
//! node) — pruned, like every other split, against the nullable-aware
//! relations. A recursion guard keeps the ε-splits terminating on rules
//! like `S → S S` with nullable `S`, where erasing one side leaves the
//! same enumeration state.

use crate::relational::{label_terminal_map, RelationalIndex};
use cfpq_grammar::{Nt, Wcnf};
use cfpq_graph::{Edge, Graph, NodeId};
use cfpq_matrix::BoolMat;
use std::collections::BTreeSet;

/// Enumeration limits.
#[derive(Clone, Copy, Debug)]
pub struct EnumLimits {
    /// Maximum path length in edges.
    pub max_len: usize,
    /// Maximum number of paths returned.
    pub max_paths: usize,
}

impl Default for EnumLimits {
    fn default() -> Self {
        Self {
            max_len: 16,
            max_paths: 64,
        }
    }
}

/// Enumerates distinct witness paths for `(nt, from, to)` within the
/// limits, in (length, lexicographic) order — the empty ε-witness first
/// where it applies. Requires the relational index for pruning: a split
/// `(B, i, k), (C, k, j)` is only explored if both pairs are in the
/// relations, so an index solved with `nullable_diagonal` also unlocks
/// the ε-side splits.
pub fn enumerate_paths<M: BoolMat>(
    index: &RelationalIndex<M>,
    graph: &Graph,
    grammar: &Wcnf,
    nt: Nt,
    from: NodeId,
    to: NodeId,
    limits: EnumLimits,
) -> Vec<Vec<Edge>> {
    if !index.contains(nt, from, to) {
        return Vec::new();
    }
    let term_of = label_terminal_map(graph, grammar);
    let mut seen: BTreeSet<Vec<(u32, u32, u32)>> = BTreeSet::new();
    let ctx = Ctx {
        index,
        graph,
        grammar,
        term_of: &term_of,
        limits,
    };
    let mut results = Vec::new();
    // The ε-witness: the empty path, reported only when the relations
    // are nullable-aware (the pair is in the index) and `nt` can erase.
    if from == to && grammar.nullable.contains(&nt) {
        ctx.emit(&[], &mut results, &mut seen);
    }
    // Iterative deepening so output is ordered by length and the search
    // never wastes budget on long paths before short ones are exhausted.
    let mut guard = Vec::new();
    for len in 1..=limits.max_len {
        ctx.collect(
            nt,
            from,
            to,
            len,
            &mut Vec::new(),
            &mut results,
            &mut seen,
            &mut guard,
        );
        if results.len() >= limits.max_paths {
            break;
        }
    }
    results.truncate(limits.max_paths);
    results
}

struct Ctx<'a, M: BoolMat> {
    index: &'a RelationalIndex<M>,
    graph: &'a Graph,
    grammar: &'a Wcnf,
    term_of: &'a [Option<cfpq_grammar::Term>],
    limits: EnumLimits,
}

/// One in-flight enumeration state; re-entering it along the same
/// recursion path (only possible through ε-side splits, which keep the
/// length) would loop forever while contributing no new paths.
type GuardKey = (Nt, NodeId, NodeId, usize);

impl<M: BoolMat> Ctx<'_, M> {
    /// Collects all paths of *exactly* `len ≥ 1` edges deriving `nt`
    /// between `from` and `to`, appending new distinct ones (with
    /// `prefix` prepended) to `results`.
    #[allow(clippy::too_many_arguments)]
    fn collect(
        &self,
        nt: Nt,
        from: NodeId,
        to: NodeId,
        len: usize,
        prefix: &mut Vec<Edge>,
        results: &mut Vec<Vec<Edge>>,
        seen: &mut BTreeSet<Vec<(u32, u32, u32)>>,
        guard: &mut Vec<GuardKey>,
    ) {
        if results.len() >= self.limits.max_paths {
            return;
        }
        let key = (nt, from, to, len);
        if guard.contains(&key) {
            return;
        }
        guard.push(key);
        self.collect_splits(nt, from, to, len, prefix, results, seen, guard);
        guard.pop();
    }

    #[allow(clippy::too_many_arguments)]
    fn collect_splits(
        &self,
        nt: Nt,
        from: NodeId,
        to: NodeId,
        len: usize,
        prefix: &mut Vec<Edge>,
        results: &mut Vec<Vec<Edge>>,
        seen: &mut BTreeSet<Vec<(u32, u32, u32)>>,
        guard: &mut Vec<GuardKey>,
    ) {
        if len == 1 {
            for &(label, v) in self.graph.out_edges(from) {
                if v != to {
                    continue;
                }
                let Some(term) = self.term_of[label.index()] else {
                    continue;
                };
                if self
                    .grammar
                    .term_rules
                    .iter()
                    .any(|r| r.lhs == nt && r.term == term)
                {
                    prefix.push(Edge { from, label, to });
                    self.emit(prefix, results, seen);
                    prefix.pop();
                    if results.len() >= self.limits.max_paths {
                        return;
                    }
                }
            }
            // A single-edge path may still come from a binary rule with
            // one side erased — fall through to the split loop.
        }
        for rule in &self.grammar.binary_rules {
            if rule.lhs != nt {
                continue;
            }
            // ε-side splits: the whole path comes from one side while
            // the other derives the empty word at the stationary node.
            // Only explored against nullable-aware relations (the
            // diagonal pair must be in the index).
            if self.grammar.nullable.contains(&rule.left)
                && self.index.contains(rule.left, from, from)
            {
                self.collect(rule.right, from, to, len, prefix, results, seen, guard);
            }
            if self.grammar.nullable.contains(&rule.right)
                && self.index.contains(rule.right, to, to)
            {
                self.collect(rule.left, from, to, len, prefix, results, seen, guard);
            }
            if len == 1 {
                continue; // no two-sided split of a single edge
            }
            for k in 0..self.index.n_nodes as u32 {
                if !self.index.contains(rule.left, from, k)
                    || !self.index.contains(rule.right, k, to)
                {
                    continue;
                }
                for left_len in 1..len {
                    let right_len = len - left_len;
                    // Enumerate left sub-paths; for each, extend right.
                    let mut left_paths = Vec::new();
                    let mut sub_seen = BTreeSet::new();
                    self.collect(
                        rule.left,
                        from,
                        k,
                        left_len,
                        &mut Vec::new(),
                        &mut left_paths,
                        &mut sub_seen,
                        guard,
                    );
                    for lp in left_paths {
                        let mut new_prefix = prefix.clone();
                        new_prefix.extend_from_slice(&lp);
                        let mut right_paths = Vec::new();
                        let mut right_seen = BTreeSet::new();
                        self.collect(
                            rule.right,
                            k,
                            to,
                            right_len,
                            &mut Vec::new(),
                            &mut right_paths,
                            &mut right_seen,
                            guard,
                        );
                        for rp in right_paths {
                            let mut full = new_prefix.clone();
                            full.extend_from_slice(&rp);
                            self.emit(&full, results, seen);
                            if results.len() >= self.limits.max_paths {
                                return;
                            }
                        }
                    }
                }
            }
        }
    }

    fn emit(
        &self,
        path: &[Edge],
        results: &mut Vec<Vec<Edge>>,
        seen: &mut BTreeSet<Vec<(u32, u32, u32)>>,
    ) {
        let key: Vec<(u32, u32, u32)> = path.iter().map(|e| (e.from, e.label.0, e.to)).collect();
        if seen.insert(key) {
            results.push(path.to_vec());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relational::{solve_on_engine, solve_on_engine_with, SolveOptions};
    use crate::single_path::validate_witness;
    use cfpq_grammar::cnf::CnfOptions;
    use cfpq_grammar::Cfg;
    use cfpq_graph::generators;
    use cfpq_matrix::DenseEngine;

    fn wcnf(src: &str) -> Wcnf {
        Cfg::parse(src)
            .unwrap()
            .to_wcnf(CnfOptions::default())
            .unwrap()
    }

    #[test]
    fn chain_has_exactly_one_path() {
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["a", "a", "b", "b"]);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let paths = enumerate_paths(&idx, &graph, &g, s, 0, 4, EnumLimits::default());
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 4);
    }

    #[test]
    fn cyclic_graph_yields_multiple_valid_paths() {
        // Self loops a and b at a single node: infinitely many witnesses;
        // the enumeration returns all up to the caps, each valid.
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let mut graph = cfpq_graph::Graph::new(1);
        graph.add_edge_named(0, "a", 0);
        graph.add_edge_named(0, "b", 0);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let limits = EnumLimits {
            max_len: 8,
            max_paths: 10,
        };
        let paths = enumerate_paths(&idx, &graph, &g, s, 0, 0, limits);
        // a b, a a b b, a a a b b b, a a a a b b b b → 4 distinct within 8.
        assert_eq!(paths.len(), 4);
        for p in &paths {
            assert!(validate_witness(p, &graph, &g, s, 0, 0), "path {p:?}");
        }
        // Ordered by length.
        let lens: Vec<usize> = paths.iter().map(Vec::len).collect();
        assert_eq!(lens, vec![2, 4, 6, 8]);
    }

    #[test]
    fn nullable_dyck_grammar_surfaces_epsilon_witnesses() {
        // The PR-4 regression: a Dyck-style grammar with an ε-rule. On a
        // nullable-aware index the diagonal pair yields the empty path
        // first, and every nonempty witness is still found — including
        // through derivations that erase one side of `S -> S S`.
        let g = wcnf("S -> ( S ) S | eps");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["(", ")", "(", ")"]);
        let idx = solve_on_engine_with(
            &DenseEngine,
            &graph,
            &g,
            SolveOptions {
                nullable_diagonal: true,
            },
        );
        // Diagonal: ε-witness plus nothing else at node 0 of length 0.
        let at_zero = enumerate_paths(&idx, &graph, &g, s, 0, 0, EnumLimits::default());
        assert_eq!(at_zero[0], Vec::<Edge>::new(), "ε-witness first");
        assert!(validate_witness(&at_zero[0], &graph, &g, s, 0, 0));
        // Full span: the bracket word ( ) ( ) is a witness of length 4.
        let full = enumerate_paths(&idx, &graph, &g, s, 0, 4, EnumLimits::default());
        assert!(
            full.iter().any(|p| p.len() == 4),
            "full-span witness found, got lengths {:?}",
            full.iter().map(Vec::len).collect::<Vec<_>>()
        );
        for p in &full {
            assert!(validate_witness(p, &graph, &g, s, 0, 4), "path {p:?}");
        }
        // Inner span ( over nodes 2..4 ): a single bracket pair.
        let inner = enumerate_paths(&idx, &graph, &g, s, 2, 4, EnumLimits::default());
        assert_eq!(inner.len(), 1);
        assert_eq!(inner[0].len(), 2);
    }

    #[test]
    fn epsilon_witness_requires_nullable_aware_relations() {
        // Without the diagonal option the index has no (S, m, m) entry,
        // so no ε-witness is reported — enumeration stays consistent
        // with the index it prunes against.
        let g = wcnf("S -> ( S ) | eps");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["(", ")"]);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        assert!(enumerate_paths(&idx, &graph, &g, s, 1, 1, EnumLimits::default()).is_empty());
        let aware = solve_on_engine_with(
            &DenseEngine,
            &graph,
            &g,
            SolveOptions {
                nullable_diagonal: true,
            },
        );
        let paths = enumerate_paths(&aware, &graph, &g, s, 1, 1, EnumLimits::default());
        assert_eq!(paths, vec![Vec::new()], "exactly the ε-witness");
    }

    #[test]
    fn ambiguous_grammar_finds_all_decompositions() {
        // Dyck-1 without eps on ( ) ( ): S spans (0,4) via S S and the
        // single bracketing; only one underlying path exists though.
        let g = wcnf("S -> S S | ( S ) | ( )");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["(", ")", "(", ")"]);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let paths = enumerate_paths(&idx, &graph, &g, s, 0, 4, EnumLimits::default());
        // The path is unique even though derivations are many — dedup.
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn respects_limits() {
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let mut graph = cfpq_graph::Graph::new(1);
        graph.add_edge_named(0, "a", 0);
        graph.add_edge_named(0, "b", 0);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let paths = enumerate_paths(
            &idx,
            &graph,
            &g,
            s,
            0,
            0,
            EnumLimits {
                max_len: 100,
                max_paths: 3,
            },
        );
        assert_eq!(paths.len(), 3);
    }

    #[test]
    fn missing_pair_is_empty() {
        let g = wcnf("S -> a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["a", "b"]);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        assert!(enumerate_paths(&idx, &graph, &g, s, 1, 0, EnumLimits::default()).is_empty());
    }
}
