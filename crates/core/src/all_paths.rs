//! Streaming all-path enumeration — the §7 future-work semantics.
//!
//! The all-path query semantics "requires presenting all possible paths
//! from node m to node n whose labeling is derived from a non-terminal A".
//! On cyclic graphs the full answer can be infinite (the paper cites
//! annotated grammars \[12\] as one mitigation); this module provides the
//! practical variant: stream all *distinct* witness paths in (length,
//! then lexicographic) order, bounded by a length cap and paged by
//! `offset`/`limit`, pruned by the relational index so only productive
//! splits are explored.
//!
//! The workhorse is the [`PathEnumerator`]: a memoized bottom-up
//! enumerator over per-`(nt, from, to, len)` *length classes*. Each class
//! — the sorted, deduplicated set of witness paths of exactly `len` edges
//! — is computed once and reused by every larger split that needs it, so
//! enumerating on a cyclic graph costs work proportional to the classes
//! actually materialized, not to the (exponential) number of derivation
//! trees the old re-entrant recursive walk re-explored per pivot and per
//! `(left_len, right_len)` split. Classes are computed lazily in length
//! order, so a page that fills early never touches longer lengths.
//!
//! ε-witnesses are first-class: when the relational index was solved
//! with `nullable_diagonal` enabled, a nullable `A` at a diagonal pair
//! `(m, m)` yields the empty path, and binary splits `A → BC` may erase
//! either side (`B` deriving ε at the source node, or `C` at the target
//! node) — pruned, like every other split, against the nullable-aware
//! relations. Erasing a side keeps `(from, to, len)` fixed and only
//! rewrites the nonterminal, so instead of the old recursion guard the
//! enumerator precomputes the ε-erasure *reachability* over nonterminals
//! per endpoint pair and unions the base classes of every reachable
//! nonterminal — no cyclic recursion can arise at all (two-sided splits
//! strictly decrease `len`).
//!
//! Truncation is never silent: every [`PathPage`] carries an
//! [`PathPage::exhausted`] flag stating whether enumeration proved that
//! no further path exists within the length bound beyond the returned
//! page.
//!
//! The pre-rewrite recursive walk survives as
//! [`enumerate_paths_eager`] — the reference oracle the fixed-seed
//! property suite and the `all-paths` bench compare the enumerator
//! against.

use crate::relational::{label_terminal_map, RelationalIndex};
use crate::session::GraphIndex;
use cfpq_grammar::{BinaryRule, Nt, Term, Wcnf};
use cfpq_graph::{Edge, Graph, Label, NodeId};
use cfpq_matrix::{BoolEngine, BoolMat};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// Enumeration limits of the one-shot [`enumerate_paths`] facade (the
/// paged API takes a [`PageRequest`]).
#[derive(Clone, Copy, Debug)]
pub struct EnumLimits {
    /// Maximum path length in edges.
    pub max_len: usize,
    /// Maximum number of paths returned.
    pub max_paths: usize,
}

impl Default for EnumLimits {
    fn default() -> Self {
        Self {
            max_len: 16,
            max_paths: 64,
        }
    }
}

/// One page of an all-path enumeration: skip `offset` paths in the
/// (length, lexicographic) stream, return at most `limit`, never explore
/// beyond `max_len` edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageRequest {
    /// Paths to skip before the page starts.
    pub offset: usize,
    /// Maximum paths in the page.
    pub limit: usize,
    /// Maximum path length in edges (the enumeration horizon — on cyclic
    /// graphs the stream is infinite without it).
    pub max_len: usize,
}

impl Default for PageRequest {
    fn default() -> Self {
        Self {
            offset: 0,
            limit: EnumLimits::default().max_paths,
            max_len: EnumLimits::default().max_len,
        }
    }
}

/// The result of one paged enumeration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathPage {
    /// The page's witness paths, in (length, then lexicographic by
    /// `(from, label, to)` edge triples) order.
    pub paths: Vec<Vec<Edge>>,
    /// `true` iff the enumeration *proved* there is no further path of
    /// length ≤ `max_len` beyond this page — i.e. the stream within the
    /// horizon ends here. `false` means the page was cut by `limit` (or
    /// a caller-imposed quota): more paths exist, ask for the next page.
    /// Paths longer than `max_len` are outside the horizon either way.
    pub exhausted: bool,
}

impl PathPage {
    /// An empty, non-exhausted page (the shape quota-limited callers
    /// return when a request's budget is already spent).
    pub fn truncated() -> Self {
        Self {
            paths: Vec::new(),
            exhausted: false,
        }
    }
}

/// A path as comparable raw triples `(from, label, to)` — the dedup and
/// ordering key of a length class.
type PathKey = Vec<(u32, u32, u32)>;

/// Memo key: `(nt, from, to, len)`.
type ClassKey = (u32, u32, u32, u32);

/// One terminal's slot in [`TermAdjacency`]: the graph label bound to
/// the terminal plus the sorted `(from, to)` pairs carrying it.
type TermEdges = Option<(Label, Vec<(u32, u32)>)>;

/// The terminal-labeled edge relation the enumerator walks: for each
/// grammar terminal, the graph label bound to it (by name) and the
/// sorted set of `(from, to)` pairs carrying that label. Built once per
/// graph state, from either a [`Graph`] or a session/service
/// [`GraphIndex`] (whose label matrices are the only edge storage the
/// upper layers keep).
#[derive(Clone, Debug)]
pub struct TermAdjacency {
    n_nodes: usize,
    /// Indexed by `Term::index()`; `None` when no graph label binds to
    /// the terminal.
    by_term: Vec<TermEdges>,
}

impl TermAdjacency {
    /// Builds the relation from a graph's edge list.
    pub fn from_graph(graph: &Graph, grammar: &Wcnf) -> Self {
        let term_of = label_terminal_map(graph, grammar);
        let mut by_term: Vec<TermEdges> = vec![None; grammar.n_terms()];
        for e in graph.edges() {
            if let Some(term) = term_of[e.label.index()] {
                by_term[term.index()]
                    .get_or_insert_with(|| (e.label, Vec::new()))
                    .1
                    .push((e.from, e.to));
            }
        }
        for entry in by_term.iter_mut().flatten() {
            entry.1.sort_unstable();
            entry.1.dedup();
        }
        Self {
            n_nodes: graph.n_nodes(),
            by_term,
        }
    }

    /// Builds the relation from a session/service [`GraphIndex`]'s label
    /// matrices. Emitted [`Edge::label`]s use the index's label ids
    /// (identical to the source graph's when the index was built with
    /// [`GraphIndex::build`] and labels arrived in graph order).
    pub fn from_index<E: BoolEngine>(index: &GraphIndex<E>, grammar: &Wcnf) -> Self {
        let mut by_term: Vec<TermEdges> = vec![None; grammar.n_terms()];
        for (l, (name, matrix)) in index.label_matrices().enumerate() {
            let Some(term) = grammar.symbols.get_term(name) else {
                continue;
            };
            let mut pairs = matrix.pairs();
            pairs.sort_unstable();
            by_term[term.index()] = Some((Label(l as u32), pairs));
        }
        Self {
            n_nodes: index.n_nodes(),
            by_term,
        }
    }

    /// Node-universe size.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The label of the `(i, term, j)` edge, if present.
    fn edge(&self, term: Term, i: u32, j: u32) -> Option<Label> {
        let (label, pairs) = self.by_term[term.index()].as_ref()?;
        pairs.binary_search(&(i, j)).ok().map(|_| *label)
    }
}

/// The lazy, deduplicating, paged all-path enumerator.
///
/// An enumerator is bound to one *(graph state, grammar)* pair — build
/// it with [`PathEnumerator::from_graph`] or
/// [`PathEnumerator::from_index`] — and serves any number of
/// [`PathEnumerator::page`] calls against the matching relational
/// closure, accumulating memoized length classes across calls: paging
/// deeper, re-querying other endpoint pairs, or re-reading earlier pages
/// reuses everything already computed. After the underlying graph
/// changes, the tables are stale (classes only ever *grow* with new
/// edges, but entries are exact-length sets, so any of them may grow) —
/// drop the enumerator and build a fresh one; the session layer does
/// exactly that on its repair path.
#[derive(Clone)]
pub struct PathEnumerator {
    adj: TermAdjacency,
    /// `nullable[nt]` — the nonterminal could derive ε in the source
    /// grammar (weak-CNF itself is ε-free; see [`Wcnf::nullable`]).
    nullable: Vec<bool>,
    /// Per nonterminal: terminals with a rule `nt → term`.
    terms_of: Vec<Vec<Term>>,
    rules: Arc<Vec<BinaryRule>>,
    /// Memoized full length classes: `(nt, i, j, len)` → sorted distinct
    /// paths of exactly `len` edges deriving `nt` between `i` and `j`.
    classes: HashMap<ClassKey, Arc<Vec<PathKey>>>,
    /// Memoized *base* classes: contributions not routed through an
    /// ε-erasure (terminal edges at `len == 1`, two-sided splits at
    /// `len ≥ 2`).
    bases: HashMap<ClassKey, Arc<Vec<PathKey>>>,
    /// Per endpoint pair `(i, j)`: the ε-erasure reachability over
    /// nonterminals (see [`PathEnumerator::eps_reach`]).
    eps: HashMap<(u32, u32), Arc<Vec<Vec<u32>>>>,
}

impl PathEnumerator {
    fn new(adj: TermAdjacency, grammar: &Wcnf) -> Self {
        let mut terms_of: Vec<Vec<Term>> = vec![Vec::new(); grammar.n_nts()];
        for r in &grammar.term_rules {
            terms_of[r.lhs.index()].push(r.term);
        }
        for v in &mut terms_of {
            v.sort_unstable();
            v.dedup();
        }
        let mut nullable = vec![false; grammar.n_nts()];
        for &nt in &grammar.nullable {
            nullable[nt.index()] = true;
        }
        Self {
            adj,
            nullable,
            terms_of,
            rules: Arc::new(grammar.binary_rules.clone()),
            classes: HashMap::new(),
            bases: HashMap::new(),
            eps: HashMap::new(),
        }
    }

    /// An enumerator over a graph's edge list.
    pub fn from_graph(graph: &Graph, grammar: &Wcnf) -> Self {
        Self::new(TermAdjacency::from_graph(graph, grammar), grammar)
    }

    /// An enumerator over a session/service [`GraphIndex`].
    pub fn from_index<E: BoolEngine>(index: &GraphIndex<E>, grammar: &Wcnf) -> Self {
        Self::new(TermAdjacency::from_index(index, grammar), grammar)
    }

    /// Memoized length classes currently materialized (an observability
    /// hook for tests and stats; grows monotonically per graph state).
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// Streams one page of distinct witness paths for `(nt, from, to)`:
    /// skip `req.offset` paths of the (length, lexicographic) stream,
    /// return up to `req.limit`, never explore beyond `req.max_len`
    /// edges. `index` must be the relational closure of the graph state
    /// this enumerator was built from (and decides ε-visibility: only a
    /// `nullable_diagonal` closure unlocks ε-witnesses and ε-side
    /// splits).
    pub fn page<M: BoolMat>(
        &mut self,
        index: &RelationalIndex<M>,
        nt: Nt,
        from: NodeId,
        to: NodeId,
        req: PageRequest,
    ) -> PathPage {
        let mut paths = Vec::new();
        let mut skip = req.offset;
        let mut exhausted = true;
        'lengths: for len in 0..=req.max_len {
            let class = self.class(index, nt, from, to, len);
            for key in class.iter() {
                if skip > 0 {
                    skip -= 1;
                    continue;
                }
                if paths.len() == req.limit {
                    // One path past the page proves the cut was real.
                    exhausted = false;
                    break 'lengths;
                }
                paths.push(decode(key));
            }
        }
        PathPage { paths, exhausted }
    }

    /// The full length class for `(nt, from, to)` at exactly `len`
    /// edges: every base class of every ε-erasure-reachable nonterminal,
    /// deduplicated and sorted. `len == 0` is the ε-witness, reported
    /// only when the diagonal pair is in the (nullable-aware) index.
    fn class<M: BoolMat>(
        &mut self,
        index: &RelationalIndex<M>,
        nt: Nt,
        from: u32,
        to: u32,
        len: usize,
    ) -> Arc<Vec<PathKey>> {
        let key = (nt.0, from, to, len as u32);
        if let Some(v) = self.classes.get(&key) {
            return Arc::clone(v);
        }
        let v = if len == 0 {
            if from == to && self.nullable[nt.index()] && index.contains(nt, from, to) {
                Arc::new(vec![Vec::new()])
            } else {
                Arc::new(Vec::new())
            }
        } else if !index.contains(nt, from, to) {
            // The closure is complete: no pair, no witness of any length.
            Arc::new(Vec::new())
        } else {
            let reach = self.eps_reach(index, from, to);
            let mut set: BTreeSet<PathKey> = BTreeSet::new();
            for &d in &reach[nt.index()] {
                let base = self.base_class(index, Nt(d), from, to, len);
                set.extend(base.iter().cloned());
            }
            Arc::new(set.into_iter().collect())
        };
        self.classes.insert(key, Arc::clone(&v));
        v
    }

    /// The ε-erasure-free contributions to a length class: terminal
    /// edges at `len == 1`, two-sided splits `d → BC` over every pivot
    /// at `len ≥ 2`. Both sides of a split are full classes of strictly
    /// smaller length, so the recursion terminates without any guard.
    fn base_class<M: BoolMat>(
        &mut self,
        index: &RelationalIndex<M>,
        d: Nt,
        from: u32,
        to: u32,
        len: usize,
    ) -> Arc<Vec<PathKey>> {
        let key = (d.0, from, to, len as u32);
        if let Some(v) = self.bases.get(&key) {
            return Arc::clone(v);
        }
        let mut set: BTreeSet<PathKey> = BTreeSet::new();
        if len == 1 {
            for t in 0..self.terms_of[d.index()].len() {
                let term = self.terms_of[d.index()][t];
                if let Some(label) = self.adj.edge(term, from, to) {
                    set.insert(vec![(from, label.0, to)]);
                }
            }
        } else {
            let rules = Arc::clone(&self.rules);
            for rule in rules.iter().filter(|r| r.lhs == d) {
                for k in 0..self.adj.n_nodes as u32 {
                    if !index.contains(rule.left, from, k) || !index.contains(rule.right, k, to) {
                        continue;
                    }
                    for left_len in 1..len {
                        let lefts = self.class(index, rule.left, from, k, left_len);
                        if lefts.is_empty() {
                            continue;
                        }
                        let rights = self.class(index, rule.right, k, to, len - left_len);
                        for lp in lefts.iter() {
                            for rp in rights.iter() {
                                let mut full = lp.clone();
                                full.extend_from_slice(rp);
                                set.insert(full);
                            }
                        }
                    }
                }
            }
        }
        let v: Arc<Vec<PathKey>> = Arc::new(set.into_iter().collect());
        self.bases.insert(key, Arc::clone(&v));
        v
    }

    /// ε-erasure reachability over nonterminals at endpoint pair
    /// `(i, j)`: `A` steps to `C` if a rule `A → BC` can erase its left
    /// side (`B` nullable with `(B, i, i)` in the index), and to `B` if
    /// it can erase its right side at `j`. An erasure keeps the
    /// endpoints *and the length* fixed and only rewrites the
    /// nonterminal, so the class of `A` is the union of the base classes
    /// of every nonterminal in `reach[A]` (which always contains `A`).
    /// This closed set is what replaces the old recursion guard: rules
    /// like `S → S S` with nullable `S` simply yield `S ∈ reach[S]`.
    fn eps_reach<M: BoolMat>(
        &mut self,
        index: &RelationalIndex<M>,
        i: u32,
        j: u32,
    ) -> Arc<Vec<Vec<u32>>> {
        if let Some(r) = self.eps.get(&(i, j)) {
            return Arc::clone(r);
        }
        let n_nts = self.terms_of.len();
        let mut succ: Vec<Vec<u32>> = vec![Vec::new(); n_nts];
        for rule in self.rules.iter() {
            if self.nullable[rule.left.index()] && index.contains(rule.left, i, i) {
                succ[rule.lhs.index()].push(rule.right.0);
            }
            if self.nullable[rule.right.index()] && index.contains(rule.right, j, j) {
                succ[rule.lhs.index()].push(rule.left.0);
            }
        }
        let reach: Vec<Vec<u32>> = (0..n_nts)
            .map(|a| {
                let mut seen = vec![false; n_nts];
                seen[a] = true;
                let mut stack = vec![a as u32];
                let mut out = Vec::new();
                while let Some(d) = stack.pop() {
                    out.push(d);
                    for &s in &succ[d as usize] {
                        if !seen[s as usize] {
                            seen[s as usize] = true;
                            stack.push(s);
                        }
                    }
                }
                out.sort_unstable();
                out
            })
            .collect();
        let arc = Arc::new(reach);
        self.eps.insert((i, j), Arc::clone(&arc));
        arc
    }
}

fn decode(key: &[(u32, u32, u32)]) -> Vec<Edge> {
    key.iter()
        .map(|&(from, label, to)| Edge {
            from,
            label: Label(label),
            to,
        })
        .collect()
}

/// One-shot facade over the [`PathEnumerator`]: the first
/// `limits.max_paths` distinct witness paths for `(nt, from, to)` within
/// `limits.max_len`, in (length, lexicographic) order — the empty
/// ε-witness first where it applies — plus the `exhausted` flag, so
/// capped results are distinguishable from complete ones. Requires the
/// relational index for pruning: a split `(B, i, k), (C, k, j)` is only
/// explored if both pairs are in the relations, so an index solved with
/// `nullable_diagonal` also unlocks the ε-side splits.
pub fn enumerate_paths<M: BoolMat>(
    index: &RelationalIndex<M>,
    graph: &Graph,
    grammar: &Wcnf,
    nt: Nt,
    from: NodeId,
    to: NodeId,
    limits: EnumLimits,
) -> PathPage {
    PathEnumerator::from_graph(graph, grammar).page(
        index,
        nt,
        from,
        to,
        PageRequest {
            offset: 0,
            limit: limits.max_paths,
            max_len: limits.max_len,
        },
    )
}

/// The pre-rewrite eager recursive walk, kept as the reference oracle
/// for the fixed-seed property suite and the eager-vs-lazy bench rows.
/// Unlike [`enumerate_paths`] it re-derives sub-paths from scratch at
/// every pivot and split (exponential on exactly the cyclic graphs the
/// module exists for), emits within-length results in edge-iteration
/// order, and truncates at `max_paths` — use the enumerator for
/// anything but oracle comparisons.
pub fn enumerate_paths_eager<M: BoolMat>(
    index: &RelationalIndex<M>,
    graph: &Graph,
    grammar: &Wcnf,
    nt: Nt,
    from: NodeId,
    to: NodeId,
    limits: EnumLimits,
) -> Vec<Vec<Edge>> {
    if !index.contains(nt, from, to) {
        return Vec::new();
    }
    let term_of = label_terminal_map(graph, grammar);
    let mut seen: BTreeSet<PathKey> = BTreeSet::new();
    let ctx = Ctx {
        index,
        graph,
        grammar,
        term_of: &term_of,
        limits,
    };
    let mut results = Vec::new();
    // The ε-witness: the empty path, reported only when the relations
    // are nullable-aware (the pair is in the index) and `nt` can erase.
    if from == to && grammar.nullable.contains(&nt) {
        ctx.emit(&[], &mut results, &mut seen);
    }
    // Iterative deepening so output is ordered by length and the search
    // never wastes budget on long paths before short ones are exhausted.
    let mut guard = HashSet::new();
    for len in 1..=limits.max_len {
        ctx.collect(
            nt,
            from,
            to,
            len,
            &mut Vec::new(),
            &mut results,
            &mut seen,
            &mut guard,
        );
        if results.len() >= limits.max_paths {
            break;
        }
    }
    results.truncate(limits.max_paths);
    results
}

struct Ctx<'a, M: BoolMat> {
    index: &'a RelationalIndex<M>,
    graph: &'a Graph,
    grammar: &'a Wcnf,
    term_of: &'a [Option<Term>],
    limits: EnumLimits,
}

/// One in-flight enumeration state of the eager walk; re-entering it
/// along the same recursion path (only possible through ε-side splits,
/// which keep the length) would loop forever while contributing no new
/// paths. Held in a hash set with insert/remove (push/pop) discipline —
/// the old `Vec` guard paid an O(depth) scan per entry.
type GuardKey = (Nt, NodeId, NodeId, usize);

impl<M: BoolMat> Ctx<'_, M> {
    /// Collects all paths of *exactly* `len ≥ 1` edges deriving `nt`
    /// between `from` and `to`, appending new distinct ones (with
    /// `prefix` prepended) to `results`.
    #[allow(clippy::too_many_arguments)]
    fn collect(
        &self,
        nt: Nt,
        from: NodeId,
        to: NodeId,
        len: usize,
        prefix: &mut Vec<Edge>,
        results: &mut Vec<Vec<Edge>>,
        seen: &mut BTreeSet<PathKey>,
        guard: &mut HashSet<GuardKey>,
    ) {
        if results.len() >= self.limits.max_paths {
            return;
        }
        let key = (nt, from, to, len);
        if !guard.insert(key) {
            return;
        }
        self.collect_splits(nt, from, to, len, prefix, results, seen, guard);
        guard.remove(&key);
    }

    #[allow(clippy::too_many_arguments)]
    fn collect_splits(
        &self,
        nt: Nt,
        from: NodeId,
        to: NodeId,
        len: usize,
        prefix: &mut Vec<Edge>,
        results: &mut Vec<Vec<Edge>>,
        seen: &mut BTreeSet<PathKey>,
        guard: &mut HashSet<GuardKey>,
    ) {
        if len == 1 {
            for &(label, v) in self.graph.out_edges(from) {
                if v != to {
                    continue;
                }
                let Some(term) = self.term_of[label.index()] else {
                    continue;
                };
                if self
                    .grammar
                    .term_rules
                    .iter()
                    .any(|r| r.lhs == nt && r.term == term)
                {
                    prefix.push(Edge { from, label, to });
                    self.emit(prefix, results, seen);
                    prefix.pop();
                    if results.len() >= self.limits.max_paths {
                        return;
                    }
                }
            }
            // A single-edge path may still come from a binary rule with
            // one side erased — fall through to the split loop.
        }
        for rule in &self.grammar.binary_rules {
            if rule.lhs != nt {
                continue;
            }
            // ε-side splits: the whole path comes from one side while
            // the other derives the empty word at the stationary node.
            // Only explored against nullable-aware relations (the
            // diagonal pair must be in the index).
            if self.grammar.nullable.contains(&rule.left)
                && self.index.contains(rule.left, from, from)
            {
                self.collect(rule.right, from, to, len, prefix, results, seen, guard);
            }
            if self.grammar.nullable.contains(&rule.right)
                && self.index.contains(rule.right, to, to)
            {
                self.collect(rule.left, from, to, len, prefix, results, seen, guard);
            }
            if len == 1 {
                continue; // no two-sided split of a single edge
            }
            for k in 0..self.index.n_nodes as u32 {
                if !self.index.contains(rule.left, from, k)
                    || !self.index.contains(rule.right, k, to)
                {
                    continue;
                }
                for left_len in 1..len {
                    let right_len = len - left_len;
                    // Enumerate left sub-paths; for each, extend right.
                    let mut left_paths = Vec::new();
                    let mut sub_seen = BTreeSet::new();
                    self.collect(
                        rule.left,
                        from,
                        k,
                        left_len,
                        &mut Vec::new(),
                        &mut left_paths,
                        &mut sub_seen,
                        guard,
                    );
                    for lp in left_paths {
                        let mut new_prefix = prefix.clone();
                        new_prefix.extend_from_slice(&lp);
                        let mut right_paths = Vec::new();
                        let mut right_seen = BTreeSet::new();
                        self.collect(
                            rule.right,
                            k,
                            to,
                            right_len,
                            &mut Vec::new(),
                            &mut right_paths,
                            &mut right_seen,
                            guard,
                        );
                        for rp in right_paths {
                            let mut full = new_prefix.clone();
                            full.extend_from_slice(&rp);
                            self.emit(&full, results, seen);
                            if results.len() >= self.limits.max_paths {
                                return;
                            }
                        }
                    }
                }
            }
        }
    }

    fn emit(&self, path: &[Edge], results: &mut Vec<Vec<Edge>>, seen: &mut BTreeSet<PathKey>) {
        let key: PathKey = path.iter().map(|e| (e.from, e.label.0, e.to)).collect();
        if seen.insert(key) {
            results.push(path.to_vec());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relational::{solve_on_engine, solve_on_engine_with, SolveOptions};
    use crate::single_path::validate_witness;
    use cfpq_grammar::cnf::CnfOptions;
    use cfpq_grammar::Cfg;
    use cfpq_graph::generators;
    use cfpq_matrix::DenseEngine;

    fn wcnf(src: &str) -> Wcnf {
        Cfg::parse(src)
            .unwrap()
            .to_wcnf(CnfOptions::default())
            .unwrap()
    }

    #[test]
    fn chain_has_exactly_one_path() {
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["a", "a", "b", "b"]);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let page = enumerate_paths(&idx, &graph, &g, s, 0, 4, EnumLimits::default());
        assert_eq!(page.paths.len(), 1);
        assert_eq!(page.paths[0].len(), 4);
        assert!(page.exhausted, "one path exists, and the page proves it");
    }

    #[test]
    fn cyclic_graph_yields_multiple_valid_paths() {
        // Self loops a and b at a single node: infinitely many witnesses;
        // the enumeration returns all up to the caps, each valid.
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let mut graph = cfpq_graph::Graph::new(1);
        graph.add_edge_named(0, "a", 0);
        graph.add_edge_named(0, "b", 0);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let limits = EnumLimits {
            max_len: 8,
            max_paths: 10,
        };
        let page = enumerate_paths(&idx, &graph, &g, s, 0, 0, limits);
        // a b, a a b b, a a a b b b, a a a a b b b b → 4 distinct within 8.
        assert_eq!(page.paths.len(), 4);
        assert!(page.exhausted, "nothing else exists within max_len 8");
        for p in &page.paths {
            assert!(validate_witness(p, &graph, &g, s, 0, 0), "path {p:?}");
        }
        // Ordered by length.
        let lens: Vec<usize> = page.paths.iter().map(Vec::len).collect();
        assert_eq!(lens, vec![2, 4, 6, 8]);
    }

    #[test]
    fn cyclic_stress_completes_where_eager_was_exponential() {
        // The acceptance stress: the `cyclic_graph_yields_multiple_valid_
        // paths` setup scaled to max_paths = 1000, max_len = 64. One
        // memoized class per (nt, len) — the eager walk re-derived each
        // from scratch per pivot and split.
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let mut graph = cfpq_graph::Graph::new(1);
        graph.add_edge_named(0, "a", 0);
        graph.add_edge_named(0, "b", 0);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let page = enumerate_paths(
            &idx,
            &graph,
            &g,
            s,
            0,
            0,
            EnumLimits {
                max_len: 64,
                max_paths: 1000,
            },
        );
        // One witness aⁿbⁿ per even length 2..=64.
        assert_eq!(page.paths.len(), 32);
        assert!(page.exhausted);
        for p in &page.paths {
            assert!(validate_witness(p, &graph, &g, s, 0, 0));
        }
    }

    #[test]
    fn nullable_dyck_grammar_surfaces_epsilon_witnesses() {
        // The PR-4 regression: a Dyck-style grammar with an ε-rule. On a
        // nullable-aware index the diagonal pair yields the empty path
        // first, and every nonempty witness is still found — including
        // through derivations that erase one side of `S -> S S`.
        let g = wcnf("S -> ( S ) S | eps");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["(", ")", "(", ")"]);
        let idx = solve_on_engine_with(
            &DenseEngine,
            &graph,
            &g,
            SolveOptions {
                nullable_diagonal: true,
            },
        );
        // Diagonal: ε-witness plus nothing else at node 0 of length 0.
        let at_zero = enumerate_paths(&idx, &graph, &g, s, 0, 0, EnumLimits::default());
        assert_eq!(at_zero.paths[0], Vec::<Edge>::new(), "ε-witness first");
        assert!(validate_witness(&at_zero.paths[0], &graph, &g, s, 0, 0));
        // Full span: the bracket word ( ) ( ) is a witness of length 4.
        let full = enumerate_paths(&idx, &graph, &g, s, 0, 4, EnumLimits::default());
        assert!(
            full.paths.iter().any(|p| p.len() == 4),
            "full-span witness found, got lengths {:?}",
            full.paths.iter().map(Vec::len).collect::<Vec<_>>()
        );
        for p in &full.paths {
            assert!(validate_witness(p, &graph, &g, s, 0, 4), "path {p:?}");
        }
        // Inner span ( over nodes 2..4 ): a single bracket pair.
        let inner = enumerate_paths(&idx, &graph, &g, s, 2, 4, EnumLimits::default());
        assert_eq!(inner.paths.len(), 1);
        assert_eq!(inner.paths[0].len(), 2);
    }

    #[test]
    fn epsilon_witness_requires_nullable_aware_relations() {
        // Without the diagonal option the index has no (S, m, m) entry,
        // so no ε-witness is reported — enumeration stays consistent
        // with the index it prunes against.
        let g = wcnf("S -> ( S ) | eps");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["(", ")"]);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let page = enumerate_paths(&idx, &graph, &g, s, 1, 1, EnumLimits::default());
        assert!(page.paths.is_empty());
        assert!(page.exhausted, "empty because nothing exists, not capped");
        let aware = solve_on_engine_with(
            &DenseEngine,
            &graph,
            &g,
            SolveOptions {
                nullable_diagonal: true,
            },
        );
        let page = enumerate_paths(&aware, &graph, &g, s, 1, 1, EnumLimits::default());
        assert_eq!(page.paths, vec![Vec::new()], "exactly the ε-witness");
    }

    #[test]
    fn ambiguous_grammar_finds_all_decompositions() {
        // Dyck-1 without eps on ( ) ( ): S spans (0,4) via S S and the
        // single bracketing; only one underlying path exists though.
        let g = wcnf("S -> S S | ( S ) | ( )");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["(", ")", "(", ")"]);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let page = enumerate_paths(&idx, &graph, &g, s, 0, 4, EnumLimits::default());
        // The path is unique even though derivations are many — dedup.
        assert_eq!(page.paths.len(), 1);
    }

    #[test]
    fn respects_limits_and_reports_truncation() {
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let mut graph = cfpq_graph::Graph::new(1);
        graph.add_edge_named(0, "a", 0);
        graph.add_edge_named(0, "b", 0);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let page = enumerate_paths(
            &idx,
            &graph,
            &g,
            s,
            0,
            0,
            EnumLimits {
                max_len: 100,
                max_paths: 3,
            },
        );
        assert_eq!(page.paths.len(), 3);
        // The old API could not answer "3 exist" vs "capped at 3".
        assert!(!page.exhausted, "cap was hit: more witnesses exist");
    }

    #[test]
    fn missing_pair_is_empty() {
        let g = wcnf("S -> a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["a", "b"]);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let page = enumerate_paths(&idx, &graph, &g, s, 1, 0, EnumLimits::default());
        assert!(page.paths.is_empty());
        assert!(page.exhausted);
    }

    #[test]
    fn within_length_order_is_lexicographic_and_deterministic() {
        // Two parallel two-edge routes 0→1→3 and 0→2→3 under
        // S -> a b: both length-2 witnesses must come out sorted by
        // their (from, label, to) triples regardless of edge insertion
        // or engine iteration order — the pinned paging contract.
        let g = wcnf("S -> a b");
        let s = g.symbols.get_nt("S").unwrap();
        let mut graph = cfpq_graph::Graph::new(4);
        // Inserted deliberately in "wrong" order.
        graph.add_edge_named(0, "a", 2);
        graph.add_edge_named(2, "b", 3);
        graph.add_edge_named(0, "a", 1);
        graph.add_edge_named(1, "b", 3);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let page = enumerate_paths(&idx, &graph, &g, s, 0, 3, EnumLimits::default());
        assert_eq!(page.paths.len(), 2);
        let keys: Vec<Vec<(u32, u32, u32)>> = page
            .paths
            .iter()
            .map(|p| p.iter().map(|e| (e.from, e.label.0, e.to)).collect())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "within-length order is lexicographic");
        // The 0→1→3 route sorts before 0→2→3.
        assert_eq!(page.paths[0][0].to, 1);
        assert_eq!(page.paths[1][0].to, 2);
    }

    #[test]
    fn pages_concatenate_to_the_full_stream() {
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let mut graph = cfpq_graph::Graph::new(1);
        graph.add_edge_named(0, "a", 0);
        graph.add_edge_named(0, "b", 0);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let mut enumerator = PathEnumerator::from_graph(&graph, &g);
        let full = enumerator.page(
            &idx,
            s,
            0,
            0,
            PageRequest {
                offset: 0,
                limit: 100,
                max_len: 12,
            },
        );
        assert!(full.exhausted);
        let mut stitched = Vec::new();
        let mut offset = 0;
        loop {
            let page = enumerator.page(
                &idx,
                s,
                0,
                0,
                PageRequest {
                    offset,
                    limit: 2,
                    max_len: 12,
                },
            );
            let n = page.paths.len();
            stitched.extend(page.paths);
            offset += n;
            if page.exhausted {
                break;
            }
        }
        assert_eq!(stitched, full.paths);
    }

    #[test]
    fn deep_nullable_chain_terminates_quickly() {
        // The guard-scan regression (and the blowup it hid): a deeply
        // nullable `S -> S S | a | eps` on a long a-chain. The ε-erasure
        // reach set resolves `S ∈ reach[S]` once per endpoint pair; no
        // re-entrant recursion, no O(depth²) guard scans.
        let g = wcnf("S -> S S | a | eps");
        let s = g.symbols.get_nt("S").unwrap();
        let labels = vec!["a"; 24];
        let graph = generators::word_chain(&labels);
        let idx = solve_on_engine_with(
            &DenseEngine,
            &graph,
            &g,
            SolveOptions {
                nullable_diagonal: true,
            },
        );
        let page = enumerate_paths(
            &idx,
            &graph,
            &g,
            s,
            0,
            24,
            EnumLimits {
                max_len: 24,
                max_paths: 4,
            },
        );
        // Exactly one witness exists (the chain itself) …
        assert_eq!(page.paths.len(), 1);
        assert_eq!(page.paths[0].len(), 24);
        assert!(page.exhausted);
        // … and the eager oracle agrees on a shallower prefix (running
        // it at depth 24 is exactly the blowup this PR removes).
        let eager = enumerate_paths_eager(
            &idx,
            &graph,
            &g,
            s,
            0,
            6,
            EnumLimits {
                max_len: 6,
                max_paths: 4,
            },
        );
        let lazy = enumerate_paths(
            &idx,
            &graph,
            &g,
            s,
            0,
            6,
            EnumLimits {
                max_len: 6,
                max_paths: 4,
            },
        );
        let key = |p: &Vec<Edge>| {
            p.iter()
                .map(|e| (e.from, e.label.0, e.to))
                .collect::<Vec<_>>()
        };
        let mut eager_sorted = eager;
        eager_sorted.sort_by_key(&key);
        assert_eq!(eager_sorted, lazy.paths);
    }

    #[test]
    fn eager_oracle_matches_enumerator_on_cyclic_setup() {
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let mut graph = cfpq_graph::Graph::new(1);
        graph.add_edge_named(0, "a", 0);
        graph.add_edge_named(0, "b", 0);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let limits = EnumLimits {
            max_len: 10,
            max_paths: 100,
        };
        let eager = enumerate_paths_eager(&idx, &graph, &g, s, 0, 0, limits);
        let lazy = enumerate_paths(&idx, &graph, &g, s, 0, 0, limits);
        assert_eq!(eager.len(), lazy.paths.len());
        let key = |p: &Vec<Edge>| {
            p.iter()
                .map(|e| (e.from, e.label.0, e.to))
                .collect::<Vec<_>>()
        };
        let eager_keys: BTreeSet<_> = eager.iter().map(key).collect();
        let lazy_keys: BTreeSet<_> = lazy.paths.iter().map(key).collect();
        assert_eq!(eager_keys, lazy_keys);
    }
}
