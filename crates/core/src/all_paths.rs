//! Bounded all-path enumeration — the §7 future-work semantics.
//!
//! The all-path query semantics "requires presenting all possible paths
//! from node m to node n whose labeling is derived from a non-terminal A".
//! On cyclic graphs the full answer can be infinite (the paper cites
//! annotated grammars \[12\] as one mitigation); this module provides the
//! practical variant: enumerate all *distinct* witness paths up to a
//! length bound and a result limit, pruned by the relational index so
//! only productive splits are explored.

use crate::relational::{label_terminal_map, RelationalIndex};
use cfpq_grammar::{Nt, Wcnf};
use cfpq_graph::{Edge, Graph, NodeId};
use cfpq_matrix::BoolMat;
use std::collections::BTreeSet;

/// Enumeration limits.
#[derive(Clone, Copy, Debug)]
pub struct EnumLimits {
    /// Maximum path length in edges.
    pub max_len: usize,
    /// Maximum number of paths returned.
    pub max_paths: usize,
}

impl Default for EnumLimits {
    fn default() -> Self {
        Self {
            max_len: 16,
            max_paths: 64,
        }
    }
}

/// Enumerates distinct witness paths for `(nt, from, to)` within the
/// limits, in (length, lexicographic) order. Requires the relational
/// index for pruning: a split `(B, i, k), (C, k, j)` is only explored if
/// both pairs are in the relations.
pub fn enumerate_paths<M: BoolMat>(
    index: &RelationalIndex<M>,
    graph: &Graph,
    grammar: &Wcnf,
    nt: Nt,
    from: NodeId,
    to: NodeId,
    limits: EnumLimits,
) -> Vec<Vec<Edge>> {
    if !index.contains(nt, from, to) {
        return Vec::new();
    }
    let term_of = label_terminal_map(graph, grammar);
    let mut seen: BTreeSet<Vec<(u32, u32, u32)>> = BTreeSet::new();
    let ctx = Ctx {
        index,
        graph,
        grammar,
        term_of: &term_of,
        limits,
    };
    let mut results = Vec::new();
    // Iterative deepening so output is ordered by length and the search
    // never wastes budget on long paths before short ones are exhausted.
    for len in 1..=limits.max_len {
        let mut batch = Vec::new();
        ctx.collect(
            nt,
            from,
            to,
            len,
            &mut Vec::new(),
            &mut batch,
            &mut results,
            &mut seen,
        );
        if results.len() >= limits.max_paths {
            break;
        }
    }
    results.truncate(limits.max_paths);
    results
}

struct Ctx<'a, M: BoolMat> {
    index: &'a RelationalIndex<M>,
    graph: &'a Graph,
    grammar: &'a Wcnf,
    term_of: &'a [Option<cfpq_grammar::Term>],
    limits: EnumLimits,
}

impl<M: BoolMat> Ctx<'_, M> {
    /// Collects all paths of *exactly* `len` edges deriving `nt` between
    /// `from` and `to`, appending new distinct ones to `results`.
    #[allow(clippy::too_many_arguments)]
    fn collect(
        &self,
        nt: Nt,
        from: NodeId,
        to: NodeId,
        len: usize,
        prefix: &mut Vec<Edge>,
        scratch: &mut Vec<Edge>,
        results: &mut Vec<Vec<Edge>>,
        seen: &mut BTreeSet<Vec<(u32, u32, u32)>>,
    ) {
        let _ = scratch;
        if results.len() >= self.limits.max_paths {
            return;
        }
        if len == 1 {
            for &(label, v) in self.graph.out_edges(from) {
                if v != to {
                    continue;
                }
                let Some(term) = self.term_of[label.index()] else {
                    continue;
                };
                if self
                    .grammar
                    .term_rules
                    .iter()
                    .any(|r| r.lhs == nt && r.term == term)
                {
                    prefix.push(Edge { from, label, to });
                    self.emit(prefix, results, seen);
                    prefix.pop();
                    if results.len() >= self.limits.max_paths {
                        return;
                    }
                }
            }
            return;
        }
        for rule in &self.grammar.binary_rules {
            if rule.lhs != nt {
                continue;
            }
            for k in 0..self.index.n_nodes as u32 {
                if !self.index.contains(rule.left, from, k)
                    || !self.index.contains(rule.right, k, to)
                {
                    continue;
                }
                for left_len in 1..len {
                    let right_len = len - left_len;
                    // Enumerate left sub-paths; for each, extend right.
                    let mut left_paths = Vec::new();
                    let mut sub_seen = BTreeSet::new();
                    self.collect(
                        rule.left,
                        from,
                        k,
                        left_len,
                        &mut Vec::new(),
                        &mut Vec::new(),
                        &mut left_paths,
                        &mut sub_seen,
                    );
                    for lp in left_paths {
                        let mut new_prefix = prefix.clone();
                        new_prefix.extend_from_slice(&lp);
                        let mut right_paths = Vec::new();
                        let mut right_seen = BTreeSet::new();
                        self.collect(
                            rule.right,
                            k,
                            to,
                            right_len,
                            &mut Vec::new(),
                            &mut Vec::new(),
                            &mut right_paths,
                            &mut right_seen,
                        );
                        for rp in right_paths {
                            let mut full = new_prefix.clone();
                            full.extend_from_slice(&rp);
                            self.emit(&full, results, seen);
                            if results.len() >= self.limits.max_paths {
                                return;
                            }
                        }
                    }
                }
            }
        }
    }

    fn emit(
        &self,
        path: &[Edge],
        results: &mut Vec<Vec<Edge>>,
        seen: &mut BTreeSet<Vec<(u32, u32, u32)>>,
    ) {
        let key: Vec<(u32, u32, u32)> = path.iter().map(|e| (e.from, e.label.0, e.to)).collect();
        if seen.insert(key) {
            results.push(path.to_vec());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relational::solve_on_engine;
    use crate::single_path::validate_witness;
    use cfpq_grammar::cnf::CnfOptions;
    use cfpq_grammar::Cfg;
    use cfpq_graph::generators;
    use cfpq_matrix::DenseEngine;

    fn wcnf(src: &str) -> Wcnf {
        Cfg::parse(src)
            .unwrap()
            .to_wcnf(CnfOptions::default())
            .unwrap()
    }

    #[test]
    fn chain_has_exactly_one_path() {
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["a", "a", "b", "b"]);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let paths = enumerate_paths(&idx, &graph, &g, s, 0, 4, EnumLimits::default());
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 4);
    }

    #[test]
    fn cyclic_graph_yields_multiple_valid_paths() {
        // Self loops a and b at a single node: infinitely many witnesses;
        // the enumeration returns all up to the caps, each valid.
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let mut graph = cfpq_graph::Graph::new(1);
        graph.add_edge_named(0, "a", 0);
        graph.add_edge_named(0, "b", 0);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let limits = EnumLimits {
            max_len: 8,
            max_paths: 10,
        };
        let paths = enumerate_paths(&idx, &graph, &g, s, 0, 0, limits);
        // a b, a a b b, a a a b b b, a a a a b b b b → 4 distinct within 8.
        assert_eq!(paths.len(), 4);
        for p in &paths {
            assert!(validate_witness(p, &graph, &g, s, 0, 0), "path {p:?}");
        }
        // Ordered by length.
        let lens: Vec<usize> = paths.iter().map(Vec::len).collect();
        assert_eq!(lens, vec![2, 4, 6, 8]);
    }

    #[test]
    fn ambiguous_grammar_finds_all_decompositions() {
        // Dyck-1 without eps on ( ) ( ): S spans (0,4) via S S and the
        // single bracketing; only one underlying path exists though.
        let g = wcnf("S -> S S | ( S ) | ( )");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["(", ")", "(", ")"]);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let paths = enumerate_paths(&idx, &graph, &g, s, 0, 4, EnumLimits::default());
        // The path is unique even though derivations are many — dedup.
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn respects_limits() {
        let g = wcnf("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        let mut graph = cfpq_graph::Graph::new(1);
        graph.add_edge_named(0, "a", 0);
        graph.add_edge_named(0, "b", 0);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        let paths = enumerate_paths(
            &idx,
            &graph,
            &g,
            s,
            0,
            0,
            EnumLimits {
                max_len: 100,
                max_paths: 3,
            },
        );
        assert_eq!(paths.len(), 3);
    }

    #[test]
    fn missing_pair_is_empty() {
        let g = wcnf("S -> a b");
        let s = g.symbols.get_nt("S").unwrap();
        let graph = generators::word_chain(&["a", "b"]);
        let idx = solve_on_engine(&DenseEngine, &graph, &g);
        assert!(enumerate_paths(&idx, &graph, &g, s, 1, 0, EnumLimits::default()).is_empty());
    }
}
