//! The engine layer for serving *many* queries over *one* evolving
//! graph: a persistent label-matrix index, prepared queries, and
//! incremental edge updates.
//!
//! Algorithm 1's setup phase decomposes the graph into one Boolean
//! adjacency matrix per edge label (lines 6–7). The one-shot facade
//! ([`crate::query::solve`]) used to redo that decomposition — plus the
//! grammar's CNF normalization — on every call. This module inverts the
//! call graph, following the "one algorithm to evaluate them all"
//! architecture (Shemetova et al., arXiv:2103.14688): the graph lives as
//! a persistent [`GraphIndex`], grammars are normalized once into
//! [`PreparedQuery`]s, and a [`CfpqSession`] evaluates any number of
//! prepared queries against the index, caching each query's closure.
//!
//! The payoff is incremental evaluation: [`CfpqSession::add_edges`]
//! inserts edges into the label matrices in place (via
//! [`BoolEngine::union_pairs`], growing the node universe when an edge
//! names an unseen node id) and, on the next evaluation of a
//! previously-solved query, *repairs* the cached closure through
//! [`FixpointSolver::resume`] — the semi-naive Δ loop seeded with only
//! the new entries — instead of re-solving from scratch. On the
//! evaluation datasets this computes strictly fewer products than a cold
//! solve (asserted by `reproduce --smoke` and benchmarked in
//! `benches/incremental.rs`).
//!
//! Sessions also speak the **unified compiled-query pipeline**:
//! [`CfpqSession::prepare_regular`] lowers an NFA-form RPQ (and
//! [`CfpqSession::prepare_rsm`] a CFG's RSM boxes) through
//! [`crate::compile::CompiledQuery`] into a state grammar this same
//! machinery evaluates — so regular queries get the cached closures,
//! semi-naive repair, and engine genericity for free, with the old
//! `solve_regular` surviving only as a differential oracle.
//!
//! Since PR 4 sessions also serve the paper's **single-path semantics
//! (§5)**: [`CfpqSession::prepare_single_path`] registers a grammar for
//! length-annotated evaluation, [`CfpqSession::evaluate_single_path`]
//! caches its length closure (cold-solved on the
//! [`cfpq_matrix::LenEngine`] kernels, repaired semi-naively after edge
//! updates), and witness extraction
//! ([`crate::single_path::extract_path`]) works unchanged on the cached
//! index.
//!
//! ```
//! use cfpq_core::session::CfpqSession;
//! use cfpq_grammar::Cfg;
//! use cfpq_graph::Graph;
//! use cfpq_matrix::SparseEngine;
//!
//! let mut graph = Graph::new(5);
//! graph.add_edge_named(0, "a", 1);
//! graph.add_edge_named(1, "a", 2);
//! graph.add_edge_named(2, "b", 3);
//! let mut session = CfpqSession::new(SparseEngine, &graph);
//! let q = session
//!     .prepare(&Cfg::parse("S -> a S b | a b").unwrap())
//!     .unwrap();
//! // Over the truncated chain only the inner `ab` matches.
//! assert_eq!(session.evaluate(q).start_pairs(), &[(1, 3)]);
//! // Complete the chain: a²b² now matches too, via an incremental
//! // repair of the cached closure rather than a cold re-solve.
//! session.add_edges(&[(3, "b", 4)]);
//! assert_eq!(session.evaluate(q).start_pairs(), &[(0, 4), (1, 3)]);
//! assert!(session.last_run(q).unwrap().incremental);
//! ```

use crate::all_paths::{PageRequest, PathEnumerator, PathPage};
use crate::query::{relations_map, QueryAnswer};
use crate::relational::{FixpointSolver, RelationalIndex, SolveOptions, SolveStats, Strategy};
use crate::single_path::{SinglePathIndex, SinglePathSolver};
use cfpq_grammar::cnf::CnfOptions;
use cfpq_grammar::symbol::Interner;
use cfpq_grammar::{Cfg, GrammarError, Nt, Term, Wcnf};
use cfpq_graph::{Graph, NodeId};
use cfpq_matrix::{BoolEngine, BoolMat, LenEngine, LenMat};
use std::collections::BTreeMap;

/// The persistent matrix form of a graph: one Boolean adjacency matrix
/// per edge label, built once and updated in place as edges arrive.
///
/// This is the artifact Algorithm 1's initialization (lines 6–7)
/// produces implicitly and then throws away; materialized, it is shared
/// by every query evaluated against the graph. Generic over all four
/// [`BoolEngine`]s, so the index inherits the paper's representation ×
/// device matrix.
///
/// The node universe starts at the build graph's size and grows on
/// demand: [`GraphIndex::add_edges`] accepts new labels *and* new node
/// ids, widening every label matrix (dense rebuild / CSR row append)
/// before inserting. Sessions pick the growth up lazily — a cached
/// closure is widened the same way before its next repair.
pub struct GraphIndex<E: BoolEngine> {
    engine: E,
    n_nodes: usize,
    labels: Interner,
    matrices: Vec<E::Matrix>,
    n_edges: usize,
}

impl<E: BoolEngine + Clone> Clone for GraphIndex<E> {
    fn clone(&self) -> Self {
        Self {
            engine: self.engine.clone(),
            n_nodes: self.n_nodes,
            labels: self.labels.clone(),
            matrices: self.matrices.clone(),
            n_edges: self.n_edges,
        }
    }
}

/// The record of one [`GraphIndex::add_edges`] batch: which `(from, to)`
/// pairs were genuinely new, per label index. Sessions keep these as the
/// update log that incremental re-evaluation consumes.
#[derive(Clone, Debug)]
pub struct EdgeBatch {
    /// `(label index, new pairs)` — only labels that gained entries.
    new_by_label: Vec<(u32, Vec<(u32, u32)>)>,
    /// Edges actually inserted (previously absent from the index).
    pub inserted: usize,
    /// Edges skipped because the index (or this same batch) already held
    /// them.
    pub duplicates: usize,
}

impl EdgeBatch {
    /// The genuinely-new `(from, to)` pairs this batch inserted, grouped
    /// by index-local label id (only labels that gained entries appear)
    /// — the update-log record that [`batch_seed_pairs`] translates into
    /// per-nonterminal repair seeds.
    pub fn new_by_label(&self) -> &[(u32, Vec<(u32, u32)>)] {
        &self.new_by_label
    }
}

impl<E: BoolEngine> GraphIndex<E> {
    /// Decomposes `graph` into per-label adjacency matrices on `engine`.
    pub fn build(engine: E, graph: &Graph) -> Self {
        Self::build_where(engine, graph, |_| true)
    }

    /// [`GraphIndex::build`] restricted to the labels `keep` accepts:
    /// only those get a matrix, and edges on other labels are not
    /// indexed (nor counted by [`GraphIndex::n_edges`]). This is what
    /// the one-shot `solve` facade uses — it knows the single grammar it
    /// will ever evaluate, so labels that grammar never mentions (e.g.
    /// RDF padding predicates) would be dead weight, n²-bit dead weight
    /// on the dense engines. Long-lived sessions serving unknown future
    /// grammars should index everything ([`GraphIndex::build`]).
    pub fn build_where(engine: E, graph: &Graph, mut keep: impl FnMut(&str) -> bool) -> Self {
        let n = graph.n_nodes();
        let mut labels = Interner::new();
        // Kept graph-label index → index-local label id.
        let mut local: Vec<Option<u32>> = vec![None; graph.n_labels()];
        for (l, name) in graph.labels() {
            if keep(name) {
                local[l.index()] = Some(labels.intern(name));
            }
        }
        let mut pairs_by_label: Vec<Vec<(u32, u32)>> = vec![Vec::new(); labels.len()];
        let mut n_edges = 0usize;
        for e in graph.edges() {
            if let Some(l) = local[e.label.index()] {
                pairs_by_label[l as usize].push((e.from, e.to));
                n_edges += 1;
            }
        }
        let matrices = pairs_by_label
            .iter()
            .map(|pairs| engine.from_pairs(n, pairs))
            .collect();
        Self {
            engine,
            n_nodes: n,
            labels,
            matrices,
            n_edges,
        }
    }

    /// The engine the matrices live on.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Matrix dimension `|V|`. Starts at the build graph's node count
    /// and **grows** when [`GraphIndex::add_edges`] receives an edge
    /// naming an unseen node id (it never shrinks) — the same implicit
    /// growth contract as [`Graph::add_edge`]'s `ensure_node` behaviour.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of labels with a materialized matrix.
    pub fn n_labels(&self) -> usize {
        self.labels.len()
    }

    /// Total stored edges across all label matrices.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// The adjacency matrix of a label, if the label exists.
    pub fn adjacency(&self, label: &str) -> Option<&E::Matrix> {
        self.labels.get(label).map(|l| &self.matrices[l as usize])
    }

    /// Iterates `(name, matrix)` for every label.
    pub fn label_matrices(&self) -> impl Iterator<Item = (&str, &E::Matrix)> {
        self.labels
            .iter()
            .map(|(l, name)| (name, &self.matrices[l as usize]))
    }

    /// Inserts a batch of edges in place, interning unseen labels on the
    /// fly and growing the node universe to cover previously-unseen node
    /// ids (every label matrix is widened first, so no insertion can go
    /// out of bounds).
    ///
    /// Duplicate-edge semantics match [`Graph::add_edge`] exactly: the
    /// edge set is a *set* keyed on `(from, label, to)`, so re-inserting
    /// a present edge is a no-op — where `add_edge` reports this by
    /// returning `false`, a batch insert reports it in
    /// [`EdgeBatch::duplicates`] (which also counts repeats *within* the
    /// same batch). The returned [`EdgeBatch`] records exactly the new
    /// entries per label, which is what incremental re-solves seed from.
    pub fn add_edges(&mut self, edges: &[(NodeId, &str, NodeId)]) -> EdgeBatch {
        if let Some(max_id) = edges.iter().map(|&(u, _, v)| u.max(v)).max() {
            let needed = max_id as usize + 1;
            if needed > self.n_nodes {
                for m in &mut self.matrices {
                    self.engine.grow(m, needed);
                }
                self.n_nodes = needed;
            }
        }
        let mut new_by_label: BTreeMap<u32, Vec<(u32, u32)>> = BTreeMap::new();
        let mut batch_seen: std::collections::HashSet<(u32, u32, u32)> =
            std::collections::HashSet::with_capacity(edges.len());
        let mut duplicates = 0usize;
        for &(u, name, v) in edges {
            let l = self.labels.intern(name);
            while self.matrices.len() <= l as usize {
                self.matrices.push(self.engine.zeros(self.n_nodes));
            }
            if self.matrices[l as usize].get(u, v) || !batch_seen.insert((l, u, v)) {
                duplicates += 1;
                continue;
            }
            new_by_label.entry(l).or_default().push((u, v));
        }
        let mut inserted = 0usize;
        let new_by_label: Vec<(u32, Vec<(u32, u32)>)> = new_by_label.into_iter().collect();
        for (l, pairs) in &new_by_label {
            self.engine
                .union_pairs(&mut self.matrices[*l as usize], pairs);
            inserted += pairs.len();
        }
        self.n_edges += inserted;
        EdgeBatch {
            new_by_label,
            inserted,
            duplicates,
        }
    }

    /// `label index → grammar terminal` binding by name (labels the
    /// grammar never mentions bind to `None` and are ignored). Public so
    /// layers above the session — the `cfpq-service` snapshot cache —
    /// can translate [`EdgeBatch`] logs into repair seeds themselves.
    pub fn term_bindings(&self, wcnf: &Wcnf) -> Vec<Option<Term>> {
        self.labels
            .iter()
            .map(|(_, name)| wcnf.symbols.get_term(name))
            .collect()
    }

    /// The per-nonterminal seed matrices of a cold solve: every label
    /// matrix union-ed into the `T_A` of each nonterminal with a rule
    /// `A → label`, plus the ε-diagonal when `options` ask for it. This
    /// is Algorithm 1's initialization (lines 6–7) read straight off the
    /// index instead of the edge list.
    pub fn seed_matrices(&self, wcnf: &Wcnf, options: SolveOptions) -> Vec<E::Matrix> {
        let n = self.n_nodes;
        let bindings = self.term_bindings(wcnf);
        let by_term = wcnf.nts_by_terminal();
        let mut seeds: Vec<Option<E::Matrix>> = (0..wcnf.n_nts()).map(|_| None).collect();
        for (label, term) in bindings.iter().enumerate() {
            let Some(term) = term else { continue };
            for nt in &by_term[term.index()] {
                let m = &self.matrices[label];
                match &mut seeds[nt.index()] {
                    Some(acc) => {
                        self.engine.union_in_place(acc, m);
                    }
                    None => seeds[nt.index()] = Some(m.clone()),
                }
            }
        }
        let mut matrices: Vec<E::Matrix> = seeds
            .into_iter()
            .map(|m| m.unwrap_or_else(|| self.engine.zeros(n)))
            .collect();
        if options.nullable_diagonal {
            let diagonal: Vec<(u32, u32)> = (0..n as u32).map(|m| (m, m)).collect();
            for &nt in &wcnf.nullable {
                self.engine
                    .union_pairs(&mut matrices[nt.index()], &diagonal);
            }
        }
        matrices
    }

    /// The per-nonterminal length-1 seed matrices of a cold single-path
    /// solve (the §5 analogue of [`GraphIndex::seed_matrices`]; the
    /// ε-overlay is applied by the solver, not here).
    pub fn seed_length_matrices(&self, wcnf: &Wcnf) -> Vec<<E as LenEngine>::LenMatrix>
    where
        E: LenEngine,
    {
        let n = self.n_nodes;
        let bindings = self.term_bindings(wcnf);
        let by_term = wcnf.nts_by_terminal();
        let mut entries: Vec<Vec<(u32, u32, u32)>> = vec![Vec::new(); wcnf.n_nts()];
        for (label, term) in bindings.iter().enumerate() {
            let Some(term) = term else { continue };
            let pairs = self.matrices[label].pairs();
            for nt in &by_term[term.index()] {
                entries[nt.index()].extend(pairs.iter().map(|&(i, j)| (i, j, 1)));
            }
        }
        entries
            .into_iter()
            .map(|e| self.engine.len_from_entries(n, &e))
            .collect()
    }
}

/// A grammar compiled for repeated evaluation: the weak-CNF
/// normalization runs once, here, instead of once per `solve` call. The
/// label→terminal binding is resolved against the session's index at
/// evaluation time (so labels added later still bind).
#[derive(Clone, Debug)]
pub struct PreparedQuery {
    wcnf: Wcnf,
    strategy: Strategy,
    options: SolveOptions,
}

impl PreparedQuery {
    /// Normalizes `grammar` to weak CNF (the expensive, once-per-query
    /// step) with the default strategy and options.
    pub fn new(grammar: &Cfg) -> Result<Self, GrammarError> {
        Ok(Self::from_wcnf(grammar.to_wcnf(CnfOptions::default())?))
    }

    /// Wraps an already-normalized grammar.
    pub fn from_wcnf(wcnf: Wcnf) -> Self {
        Self {
            wcnf,
            strategy: Strategy::default(),
            options: SolveOptions::default(),
        }
    }

    /// Selects the fixpoint strategy for this query's evaluations.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the solve options (ε-diagonal seeding).
    pub fn options(mut self, options: SolveOptions) -> Self {
        self.options = options;
        self
    }

    /// The normalized grammar.
    pub fn wcnf(&self) -> &Wcnf {
        &self.wcnf
    }

    /// The start nonterminal's name.
    pub fn start_name(&self) -> &str {
        self.wcnf.symbols.nt_name(self.wcnf.start)
    }
}

/// Handle to a (relational) query registered in a [`CfpqSession`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QueryId(usize);

/// Handle to a single-path query registered in a [`CfpqSession`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SinglePathId(usize);

/// Handle to an all-path query registered in a [`CfpqSession`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AllPathsId(usize);

/// Typed failure of the fallible session entry points
/// ([`CfpqSession::try_evaluate`] and friends). The session is
/// single-caller, so the only runtime failure is handle confusion —
/// but layers that serve many callers (the service crate) need it as a
/// value, not a panic: a request must be rejectable without unwinding
/// the thread that carries everyone else's work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// The handle's index is out of range for this session — it was
    /// forged, or belongs to a different session.
    UnknownQuery {
        /// The offending raw id.
        id: usize,
        /// How many queries of that kind this session holds.
        registered: usize,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownQuery { id, registered } => {
                write!(
                    f,
                    "query {id} is not registered in this session (have {registered})"
                )
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// What the most recent evaluation of a query actually did: a cold solve
/// or an incremental repair, and how much kernel work it launched. This
/// is the observable behind the incremental-beats-cold acceptance check.
#[derive(Clone, Debug)]
pub struct RunInfo {
    /// Kernel-work counters of that run alone (not cumulative).
    pub stats: SolveStats,
    /// Fixpoint sweeps of that run alone.
    pub sweeps: usize,
    /// `true` if the run repaired a cached closure via
    /// [`FixpointSolver::resume`]; `false` for a cold solve.
    pub incremental: bool,
}

/// Per-query cached state: the prepared grammar, the solved closure (if
/// any), and how much of the session's edge log it has absorbed.
#[derive(Clone)]
struct QueryState<M: Clone> {
    query: PreparedQuery,
    solved: Option<RelationalIndex<M>>,
    /// Index into the session's batch log: batches before this are
    /// reflected in `solved`.
    watermark: usize,
    last_run: Option<RunInfo>,
    /// Materialized answer of `solved`; dropped whenever the closure is
    /// re-solved or repaired, so fully-cached evaluations only pay a
    /// clone instead of re-extracting every relation from the matrices.
    answer: Option<QueryAnswer>,
}

/// Per-single-path-query cached state: the prepared grammar, the solved
/// length closure (if any), and the batch-log watermark.
#[derive(Clone)]
struct SpQueryState<M: LenMat> {
    query: PreparedQuery,
    solved: Option<SinglePathIndex<M>>,
    watermark: usize,
    last_run: Option<RunInfo>,
}

/// Per-all-path-query cached state: the prepared grammar, the solved
/// relational closure (the pruning oracle), the batch-log watermark, and
/// the memoized enumeration tables — valid for exactly the graph state
/// the closure reflects, so cold solves and repairs rebuild them while
/// page-after-page reads on a quiet graph keep accumulating reuse.
#[derive(Clone)]
struct ApQueryState<M: Clone> {
    query: PreparedQuery,
    solved: Option<RelationalIndex<M>>,
    watermark: usize,
    last_run: Option<RunInfo>,
    enumerator: Option<PathEnumerator>,
}

/// A multi-query evaluation session over one [`GraphIndex`]: prepare
/// grammars once, evaluate them many times, feed edges in between.
///
/// Evaluation is lazy and cached: the first [`CfpqSession::evaluate`] of
/// a query runs a cold solve seeded straight from the index's label
/// matrices; subsequent evaluations return the cached closure, unless
/// [`CfpqSession::add_edges`] grew the graph in between — then the
/// cached closure is *repaired* semi-naively from exactly the new edges
/// ([`FixpointSolver::resume`]), which on real workloads launches far
/// fewer matrix products than a cold solve (see `BENCH_pr3.json`).
pub struct CfpqSession<E: BoolEngine + LenEngine> {
    index: GraphIndex<E>,
    /// Log of accepted edge batches; `QueryState::watermark` points into
    /// this.
    batches: Vec<EdgeBatch>,
    queries: Vec<QueryState<E::Matrix>>,
    /// Prepared single-path queries with their cached length closures.
    sp_queries: Vec<SpQueryState<E::LenMatrix>>,
    /// Prepared all-path queries with their cached closures and
    /// memoized enumeration tables.
    ap_queries: Vec<ApQueryState<E::Matrix>>,
}

impl<E: BoolEngine + LenEngine + Clone> Clone for CfpqSession<E> {
    fn clone(&self) -> Self {
        Self {
            index: self.index.clone(),
            batches: self.batches.clone(),
            queries: self.queries.clone(),
            sp_queries: self.sp_queries.clone(),
            ap_queries: self.ap_queries.clone(),
        }
    }
}

/// Translates pending edge batches into per-nonterminal seed pairs
/// under the given label→terminal bindings (`bindings[label] = term`,
/// `by_term[term] = nonterminals with a rule A → term`). Shared by the
/// relational and single-path repair paths — in sessions *and* in the
/// `cfpq-service` epoch builder — so every consumer of an update log
/// derives identical repair seeds and the semantics cannot drift.
pub fn batch_seed_pairs(
    batches: &[EdgeBatch],
    bindings: &[Option<Term>],
    by_term: &[Vec<Nt>],
    wcnf: &Wcnf,
) -> Vec<Vec<(u32, u32)>> {
    let mut new_pairs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); wcnf.n_nts()];
    for batch in batches {
        for (label, pairs) in &batch.new_by_label {
            let Some(term) = bindings[*label as usize] else {
                continue;
            };
            for nt in &by_term[term.index()] {
                new_pairs[nt.index()].extend_from_slice(pairs);
            }
        }
    }
    new_pairs
}

/// Cold-solves a prepared (relational) query against an index: seed
/// matrices straight from the label matrices, then the configured
/// fixpoint strategy. This is the one code path behind
/// [`CfpqSession::evaluate`]'s first call *and* every `cfpq-service`
/// epoch-cache miss.
pub fn solve_prepared<E: BoolEngine>(
    index: &GraphIndex<E>,
    query: &PreparedQuery,
) -> RelationalIndex<E::Matrix> {
    let mut sp = cfpq_obs::span("query.cold");
    let wcnf = query.wcnf();
    let matrices = index.seed_matrices(wcnf, query.options);
    let solved = FixpointSolver::new(&index.engine)
        .strategy(query.strategy)
        .options(query.options)
        .solve_from_matrices(matrices, index.n_nodes, wcnf);
    if sp.is_recording() {
        sp.attr_u64("n_nodes", index.n_nodes as u64);
        sp.attr_u64("sweeps", solved.iterations as u64);
    }
    solved
}

/// Repairs a closed relational closure in place for freshly-inserted
/// seed pairs: widens the cached matrices if the node universe grew to
/// `n` (seeding the new ε-diagonal cells when the query asks for the
/// nullable diagonal), then resumes the semi-naive Δ loop. Returns the
/// stats of the repair alone. Shared by [`CfpqSession::evaluate`] and
/// the `cfpq-service` epoch builder.
pub fn repair_prepared<E: BoolEngine>(
    engine: &E,
    query: &PreparedQuery,
    solved: &mut RelationalIndex<E::Matrix>,
    mut new_pairs: Vec<Vec<(u32, u32)>>,
    n: usize,
) -> SolveStats {
    let mut sp = cfpq_obs::span("query.repair");
    let wcnf = query.wcnf();
    if solved.n_nodes < n {
        let old_n = solved.n_nodes;
        for m in &mut solved.matrices {
            engine.grow(m, n);
        }
        solved.n_nodes = n;
        if query.options.nullable_diagonal {
            for &nt in &wcnf.nullable {
                new_pairs[nt.index()].extend((old_n as u32..n as u32).map(|m| (m, m)));
            }
        }
    }
    let stats = FixpointSolver::new(engine)
        .strategy(query.strategy)
        .options(query.options)
        .resume(solved, wcnf, &new_pairs);
    if sp.is_recording() {
        sp.attr_u64("n_nodes", n as u64);
        sp.attr_u64("products", stats.products_computed as u64);
    }
    stats
}

/// Cold-solves a prepared query under single-path (§5) semantics: the
/// length-1 seeds come straight from the label matrices, the masked
/// semi-naive length closure does the rest. The single code path behind
/// session and service single-path cache misses.
pub fn solve_prepared_single_path<E: BoolEngine + LenEngine>(
    index: &GraphIndex<E>,
    query: &PreparedQuery,
) -> SinglePathIndex<E::LenMatrix> {
    let wcnf = query.wcnf();
    let matrices = index.seed_length_matrices(wcnf);
    SinglePathSolver::new(&index.engine)
        .options(query.options)
        .solve_from_matrices(matrices, index.n_nodes, wcnf)
}

/// Repairs a closed single-path closure in place for freshly-inserted
/// seed pairs — the §5 analogue of [`repair_prepared`]: widen the
/// cached length matrices if the universe grew to `n` (the resume's
/// ε-overlay covers the new diagonal cells), then resume the length Δ
/// loop. First-write-wins means entries that survive keep their
/// recorded witness lengths.
pub fn repair_prepared_single_path<E: BoolEngine + LenEngine>(
    engine: &E,
    query: &PreparedQuery,
    solved: &mut SinglePathIndex<E::LenMatrix>,
    new_pairs: Vec<Vec<(u32, u32)>>,
    n: usize,
) -> SolveStats {
    if solved.n_nodes < n {
        for m in &mut solved.lengths {
            engine.len_grow(m, n);
        }
        solved.n_nodes = n;
    }
    SinglePathSolver::new(engine)
        .options(query.options)
        .resume(solved, query.wcnf(), &new_pairs)
}

impl<E: BoolEngine + LenEngine> CfpqSession<E> {
    /// Indexes `graph` on `engine` and opens a session over it.
    pub fn new(engine: E, graph: &Graph) -> Self {
        Self::over(GraphIndex::build(engine, graph))
    }

    /// Opens a session over an already-built index.
    pub fn over(index: GraphIndex<E>) -> Self {
        Self {
            index,
            batches: Vec::new(),
            queries: Vec::new(),
            sp_queries: Vec::new(),
            ap_queries: Vec::new(),
        }
    }

    /// The underlying label-matrix index.
    pub fn index(&self) -> &GraphIndex<E> {
        &self.index
    }

    /// Normalizes `grammar` and registers it for evaluation.
    pub fn prepare(&mut self, grammar: &Cfg) -> Result<QueryId, GrammarError> {
        Ok(self.prepare_query(PreparedQuery::new(grammar)?))
    }

    /// Registers an already-normalized grammar for evaluation.
    pub fn prepare_wcnf(&mut self, wcnf: Wcnf) -> QueryId {
        self.prepare_query(PreparedQuery::from_wcnf(wcnf))
    }

    /// Compiles an NFA-form regular path query onto the unified RSM
    /// pipeline ([`crate::compile::CompiledQuery::from_nfa`]) and
    /// registers it. The query evaluates through the same
    /// [`FixpointSolver`] path as every CFPQ — masked semi-naive sweeps
    /// against the index's materialized label matrices, cached closure,
    /// incremental repair after [`CfpqSession::add_edges`]. The answer's
    /// start relation (`Rpq`) holds exactly
    /// [`crate::regular::solve_regular`]'s pairs.
    ///
    /// ```
    /// use cfpq_core::regular::Nfa;
    /// use cfpq_core::session::CfpqSession;
    /// use cfpq_graph::Graph;
    /// use cfpq_matrix::SparseEngine;
    ///
    /// let mut graph = Graph::new(4);
    /// graph.add_edge_named(0, "a", 1);
    /// graph.add_edge_named(1, "a", 2);
    /// graph.add_edge_named(2, "b", 3);
    /// let mut session = CfpqSession::new(SparseEngine, &graph);
    /// let rpq = session.prepare_regular(&Nfa::star_then("a", "b")); // a* b
    /// assert_eq!(session.evaluate(rpq).start_pairs(), &[(0, 3), (1, 3), (2, 3)]);
    /// session.add_edges(&[(3, "a", 0)]);                            // graph grows
    /// assert_eq!(session.evaluate(rpq).start_count(), 4);           // + (3, 3), repaired
    /// assert!(session.last_run(rpq).unwrap().incremental);
    /// ```
    pub fn prepare_regular(&mut self, nfa: &crate::regular::Nfa) -> QueryId {
        self.prepare_query(crate::compile::CompiledQuery::from_nfa(nfa).into_prepared())
    }

    /// Compiles a context-free query through its RSM boxes
    /// ([`crate::compile::CompiledQuery::from_cfg`]) instead of the
    /// direct weak-CNF normalization, and registers it. Nullable
    /// nonterminals follow the RSM ε-convention (diagonal matches), as
    /// with `nullable_diagonal` on the [`CfpqSession::prepare`] path.
    pub fn prepare_rsm(&mut self, grammar: &Cfg) -> Result<QueryId, GrammarError> {
        Ok(self.prepare_query(crate::compile::CompiledQuery::from_cfg(grammar)?.into_prepared()))
    }

    /// Registers a fully-configured [`PreparedQuery`].
    pub fn prepare_query(&mut self, query: PreparedQuery) -> QueryId {
        let _sp = cfpq_obs::span("session.prepare");
        self.queries.push(QueryState {
            query,
            solved: None,
            watermark: 0,
            last_run: None,
            answer: None,
        });
        QueryId(self.queries.len() - 1)
    }

    /// Inserts a batch of edges into the index (growing the node
    /// universe if an edge names an unseen node id); returns how many
    /// were genuinely new. Cached query closures are *not* recomputed
    /// here — each query repairs itself lazily on its next
    /// [`CfpqSession::evaluate`] / [`CfpqSession::evaluate_single_path`]
    /// call.
    pub fn add_edges(&mut self, edges: &[(NodeId, &str, NodeId)]) -> usize {
        let batch = self.index.add_edges(edges);
        let inserted = batch.inserted;
        // The log only exists to repair already-solved closures: with no
        // solved query, cold solves read the index directly, so nothing
        // needs the batch.
        let any_solved = self.queries.iter().any(|q| q.solved.is_some())
            || self.sp_queries.iter().any(|q| q.solved.is_some())
            || self.ap_queries.iter().any(|q| q.solved.is_some());
        if inserted > 0 && any_solved {
            self.batches.push(batch);
        }
        inserted
    }

    /// Drops log batches every solved query has already absorbed, so a
    /// long-lived session's memory tracks the graph, not the total
    /// number of `add_edges` calls ever made. Unevaluated queries don't
    /// pin the log (their eventual cold solve reads the index directly).
    fn compact_batches(&mut self) {
        let consumed = self
            .queries
            .iter()
            .filter(|q| q.solved.is_some())
            .map(|q| q.watermark)
            .chain(
                self.sp_queries
                    .iter()
                    .filter(|q| q.solved.is_some())
                    .map(|q| q.watermark),
            )
            .chain(
                self.ap_queries
                    .iter()
                    .filter(|q| q.solved.is_some())
                    .map(|q| q.watermark),
            )
            .min()
            .unwrap_or(self.batches.len());
        if consumed == 0 {
            return;
        }
        self.batches.drain(..consumed);
        for q in &mut self.queries {
            q.watermark = q.watermark.saturating_sub(consumed);
        }
        for q in &mut self.sp_queries {
            q.watermark = q.watermark.saturating_sub(consumed);
        }
        for q in &mut self.ap_queries {
            q.watermark = q.watermark.saturating_sub(consumed);
        }
    }

    /// Evaluates a prepared query against the current graph, reusing the
    /// cached closure when nothing changed and repairing it semi-naively
    /// when edges arrived since the last evaluation.
    ///
    /// # Panics
    ///
    /// If `id` does not belong to this session. Multi-caller layers
    /// should use [`CfpqSession::try_evaluate`] so a forged handle is a
    /// value error instead of an unwind.
    pub fn evaluate(&mut self, id: QueryId) -> QueryAnswer {
        self.try_evaluate(id)
            .expect("query not registered in this session")
    }

    /// [`CfpqSession::evaluate`] with the handle check surfaced as a
    /// typed [`SessionError`] instead of a panic.
    pub fn try_evaluate(&mut self, id: QueryId) -> Result<QueryAnswer, SessionError> {
        if id.0 >= self.queries.len() {
            return Err(SessionError::UnknownQuery {
                id: id.0,
                registered: self.queries.len(),
            });
        }
        let mut sp = cfpq_obs::span("session.evaluate");
        let state = &mut self.queries[id.0];
        let wcnf = &state.query.wcnf;
        let n = self.index.n_nodes;

        match &mut state.solved {
            None => {
                // Cold solve, seeded straight from the label matrices.
                let solved = solve_prepared(&self.index, &state.query);
                state.last_run = Some(RunInfo {
                    stats: solved.stats.clone(),
                    sweeps: solved.iterations,
                    incremental: false,
                });
                state.solved = Some(solved);
                state.watermark = self.batches.len();
                state.answer = None;
                sp.attr_str("outcome", "cold");
            }
            Some(solved) => {
                if state.watermark < self.batches.len() {
                    let bindings = self.index.term_bindings(wcnf);
                    let by_term = wcnf.nts_by_terminal();
                    let new_pairs = batch_seed_pairs(
                        &self.batches[state.watermark..],
                        &bindings,
                        &by_term,
                        wcnf,
                    );
                    let stats =
                        repair_prepared(&self.index.engine, &state.query, solved, new_pairs, n);
                    state.last_run = Some(RunInfo {
                        sweeps: stats.sweep_nnz.len(),
                        stats,
                        incremental: true,
                    });
                    state.watermark = self.batches.len();
                    state.answer = None;
                    sp.attr_str("outcome", "repair");
                } else {
                    sp.attr_str("outcome", "cached");
                }
            }
        }

        if state.answer.is_none() {
            let solved = state.solved.as_ref().expect("closure just materialized");
            state.answer = Some(QueryAnswer::from_parts(
                self.index.engine.name(),
                n,
                solved.iterations,
                state.query.start_name().to_owned(),
                relations_map(wcnf, solved),
            ));
        }
        // A cache hit costs a refcount bump (the relations live behind an
        // `Arc`), not a deep copy.
        let answer = state.answer.clone().expect("answer just materialized");
        self.compact_batches();
        Ok(answer)
    }

    /// The closed relational index of a query, if it has been evaluated.
    pub fn solved_index(&self, id: QueryId) -> Option<&RelationalIndex<E::Matrix>> {
        self.queries[id.0].solved.as_ref()
    }

    /// What the last [`CfpqSession::evaluate`] of this query actually
    /// did (cold vs incremental, and its kernel-work counters). `None`
    /// until the first evaluation.
    pub fn last_run(&self, id: QueryId) -> Option<&RunInfo> {
        self.queries[id.0].last_run.as_ref()
    }

    /// Normalizes `grammar` and registers it for single-path (§5)
    /// evaluation: the session will keep a length-annotated closure for
    /// it, cold-solved once and repaired incrementally after
    /// [`CfpqSession::add_edges`].
    pub fn prepare_single_path(&mut self, grammar: &Cfg) -> Result<SinglePathId, GrammarError> {
        Ok(self.prepare_single_path_query(PreparedQuery::new(grammar)?))
    }

    /// Registers a fully-configured [`PreparedQuery`] for single-path
    /// evaluation (the [`Strategy`] knob is ignored — the length closure
    /// always runs the masked semi-naive pipeline; [`SolveOptions`]
    /// apply as usual).
    pub fn prepare_single_path_query(&mut self, query: PreparedQuery) -> SinglePathId {
        self.sp_queries.push(SpQueryState {
            query,
            solved: None,
            watermark: 0,
            last_run: None,
        });
        SinglePathId(self.sp_queries.len() - 1)
    }

    /// Evaluates a prepared single-path query: the first call runs a
    /// cold length closure seeded straight from the label matrices;
    /// subsequent calls return the cached closure, repairing it through
    /// [`SinglePathSolver::resume`] when edges arrived in between —
    /// first-write-wins means entries that survive an update keep their
    /// recorded witness lengths, so only genuinely new information
    /// launches length kernels. Witness extraction
    /// ([`crate::single_path::extract_path`]) works unchanged on the
    /// returned index.
    ///
    /// # Panics
    ///
    /// If `id` does not belong to this session. Multi-caller layers
    /// should use [`CfpqSession::try_evaluate_single_path`].
    pub fn evaluate_single_path(&mut self, id: SinglePathId) -> &SinglePathIndex<E::LenMatrix> {
        self.try_evaluate_single_path(id)
            .expect("query not registered in this session")
    }

    /// [`CfpqSession::evaluate_single_path`] with the handle check
    /// surfaced as a typed [`SessionError`] instead of a panic.
    pub fn try_evaluate_single_path(
        &mut self,
        id: SinglePathId,
    ) -> Result<&SinglePathIndex<E::LenMatrix>, SessionError> {
        if id.0 >= self.sp_queries.len() {
            return Err(SessionError::UnknownQuery {
                id: id.0,
                registered: self.sp_queries.len(),
            });
        }
        let state = &mut self.sp_queries[id.0];
        let wcnf = &state.query.wcnf;
        let n = self.index.n_nodes;

        match &mut state.solved {
            None => {
                // Cold solve: length-1 seeds straight from the label
                // matrices.
                let solved = solve_prepared_single_path(&self.index, &state.query);
                state.last_run = Some(RunInfo {
                    stats: solved.stats.clone(),
                    sweeps: solved.iterations,
                    incremental: false,
                });
                state.solved = Some(solved);
                state.watermark = self.batches.len();
            }
            Some(solved) => {
                if state.watermark < self.batches.len() {
                    let bindings = self.index.term_bindings(wcnf);
                    let by_term = wcnf.nts_by_terminal();
                    let new_pairs = batch_seed_pairs(
                        &self.batches[state.watermark..],
                        &bindings,
                        &by_term,
                        wcnf,
                    );
                    let stats = repair_prepared_single_path(
                        &self.index.engine,
                        &state.query,
                        solved,
                        new_pairs,
                        n,
                    );
                    state.last_run = Some(RunInfo {
                        sweeps: stats.sweep_nnz.len(),
                        stats,
                        incremental: true,
                    });
                    state.watermark = self.batches.len();
                }
            }
        }
        self.compact_batches();
        Ok(self.sp_queries[id.0]
            .solved
            .as_ref()
            .expect("closure just materialized"))
    }

    /// The solved single-path index of a query, if it has been
    /// evaluated (without forcing an evaluation).
    pub fn single_path_index(&self, id: SinglePathId) -> Option<&SinglePathIndex<E::LenMatrix>> {
        self.sp_queries[id.0].solved.as_ref()
    }

    /// What the last [`CfpqSession::evaluate_single_path`] of this query
    /// actually did. `None` until the first evaluation.
    pub fn last_single_path_run(&self, id: SinglePathId) -> Option<&RunInfo> {
        self.sp_queries[id.0].last_run.as_ref()
    }

    /// Normalizes `grammar` and registers it for all-path (§7)
    /// enumeration: the session keeps a relational closure for pruning
    /// plus the memoized enumeration tables, both repaired/rebuilt
    /// lazily after [`CfpqSession::add_edges`].
    pub fn prepare_all_paths(&mut self, grammar: &Cfg) -> Result<AllPathsId, GrammarError> {
        Ok(self.prepare_all_paths_query(PreparedQuery::new(grammar)?))
    }

    /// Registers a fully-configured [`PreparedQuery`] for all-path
    /// enumeration. Solve it with `nullable_diagonal` enabled if the
    /// grammar has ε-rules and ε-witnesses should surface.
    pub fn prepare_all_paths_query(&mut self, query: PreparedQuery) -> AllPathsId {
        self.ap_queries.push(ApQueryState {
            query,
            solved: None,
            watermark: 0,
            last_run: None,
            enumerator: None,
        });
        AllPathsId(self.ap_queries.len() - 1)
    }

    /// Streams one page of distinct witness paths for the query's start
    /// nonterminal between `from` and `to`, in (length, lexicographic)
    /// order — see [`crate::all_paths::PathEnumerator::page`].
    ///
    /// The first call cold-solves the query's relational closure (the
    /// pruning oracle) and builds fresh enumeration tables; later calls
    /// reuse both, repairing the closure semi-naively and rebuilding the
    /// tables only when [`CfpqSession::add_edges`] grew the graph in
    /// between — so a repaired session serves exactly the pages a
    /// from-scratch session would. On a quiet graph, consecutive pages
    /// (or queries on other endpoint pairs) keep extending the same
    /// memoized tables.
    ///
    /// # Panics
    ///
    /// If `id` does not belong to this session.
    pub fn enumerate_paths(
        &mut self,
        id: AllPathsId,
        from: NodeId,
        to: NodeId,
        page: PageRequest,
    ) -> PathPage {
        let state = &mut self.ap_queries[id.0];
        let wcnf = &state.query.wcnf;
        let n = self.index.n_nodes;

        match &mut state.solved {
            None => {
                let solved = solve_prepared(&self.index, &state.query);
                state.last_run = Some(RunInfo {
                    stats: solved.stats.clone(),
                    sweeps: solved.iterations,
                    incremental: false,
                });
                state.solved = Some(solved);
                state.watermark = self.batches.len();
                state.enumerator = Some(PathEnumerator::from_index(&self.index, wcnf));
            }
            Some(solved) => {
                if state.watermark < self.batches.len() {
                    let bindings = self.index.term_bindings(wcnf);
                    let by_term = wcnf.nts_by_terminal();
                    let new_pairs = batch_seed_pairs(
                        &self.batches[state.watermark..],
                        &bindings,
                        &by_term,
                        wcnf,
                    );
                    let stats =
                        repair_prepared(&self.index.engine, &state.query, solved, new_pairs, n);
                    state.last_run = Some(RunInfo {
                        sweeps: stats.sweep_nnz.len(),
                        stats,
                        incremental: true,
                    });
                    state.watermark = self.batches.len();
                    // The memoized length classes are exact-length sets
                    // over the *old* edge relation — any of them may have
                    // grown, so rebuild rather than patch.
                    state.enumerator = Some(PathEnumerator::from_index(&self.index, wcnf));
                }
            }
        }

        let nt = wcnf.start;
        let solved = state.solved.as_ref().expect("closure just materialized");
        let result = state
            .enumerator
            .as_mut()
            .expect("enumerator just materialized")
            .page(solved, nt, from, to, page);
        self.compact_batches();
        result
    }

    /// The closed relational index backing an all-path query, if it has
    /// been enumerated at least once.
    pub fn all_paths_index(&self, id: AllPathsId) -> Option<&RelationalIndex<E::Matrix>> {
        self.ap_queries[id.0].solved.as_ref()
    }

    /// What the last [`CfpqSession::enumerate_paths`] of this query
    /// actually did to the closure (cold vs incremental repair). `None`
    /// until the first enumeration.
    pub fn last_all_paths_run(&self, id: AllPathsId) -> Option<&RunInfo> {
        self.ap_queries[id.0].last_run.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{solve, Backend};
    use cfpq_grammar::queries;
    use cfpq_graph::generators;
    use cfpq_matrix::{DenseEngine, Device, ParDenseEngine, ParSparseEngine, SparseEngine};

    #[test]
    fn session_matches_one_shot_solve() {
        let grammar = queries::query1();
        let graph = generators::paper_example();
        let reference = solve(&graph, &grammar, Backend::Sparse).unwrap();
        let mut session = CfpqSession::new(SparseEngine, &graph);
        let id = session.prepare(&grammar).unwrap();
        let answer = session.evaluate(id);
        assert_eq!(answer.start_pairs(), reference.start_pairs());
        assert_eq!(answer.iterations, reference.iterations);
        assert_eq!(answer.backend, "sparse");
        assert!(!session.last_run(id).unwrap().incremental);
    }

    #[test]
    fn one_index_serves_many_queries() {
        let graph = cfpq_graph::ontology::dataset("skos").unwrap().to_graph();
        let mut session = CfpqSession::new(SparseEngine, &graph);
        let q1 = session.prepare(&queries::query1()).unwrap();
        let q2 = session.prepare(&queries::query2()).unwrap();
        let a1 = session.evaluate(q1);
        let a2 = session.evaluate(q2);
        assert_eq!(
            a1.start_count(),
            solve(&graph, &queries::query1(), Backend::Sparse)
                .unwrap()
                .start_count()
        );
        assert_eq!(
            a2.start_count(),
            solve(&graph, &queries::query2(), Backend::Sparse)
                .unwrap()
                .start_count()
        );
        // Re-evaluating without updates reuses the cache: the run info
        // still describes the original cold solve.
        let again = session.evaluate(q1);
        assert_eq!(again.start_pairs(), a1.start_pairs());
        assert!(!session.last_run(q1).unwrap().incremental);
    }

    #[test]
    fn add_edges_repairs_instead_of_resolving() {
        // Build the paper graph minus one edge, solve, then insert the
        // missing edge: the repaired answer must equal the full-graph
        // answer, at lower product cost than the full cold solve.
        let grammar = queries::query1();
        let full = generators::paper_example();
        let mut partial = Graph::new(full.n_nodes());
        let removed = *full.edges().last().unwrap();
        for e in full.edges().iter().take(full.n_edges() - 1) {
            partial.add_edge_named(e.from, full.label_name(e.label), e.to);
        }
        let mut session = CfpqSession::new(SparseEngine, &partial);
        let id = session.prepare(&grammar).unwrap();
        session.evaluate(id);

        let inserted =
            session.add_edges(&[(removed.from, full.label_name(removed.label), removed.to)]);
        assert_eq!(inserted, 1);
        let repaired = session.evaluate(id);
        assert_eq!(repaired.start_pairs(), &[(0, 0), (0, 2), (1, 2)]);

        let run = session.last_run(id).unwrap();
        assert!(run.incremental);
        let cold = solve(&full, &grammar, Backend::Sparse).unwrap();
        assert_eq!(repaired.start_pairs(), cold.start_pairs());
    }

    #[test]
    fn duplicate_and_unknown_label_edges_are_harmless() {
        let grammar = queries::query1();
        let graph = generators::paper_example();
        let mut session = CfpqSession::new(DenseEngine, &graph);
        let id = session.prepare(&grammar).unwrap();
        let before = session.evaluate(id);
        // A duplicate of an existing edge and an edge on a label the
        // grammar never mentions: neither changes the answer.
        let e = graph.edges()[0];
        assert_eq!(
            session.add_edges(&[(e.from, graph.label_name(e.label), e.to)]),
            0
        );
        assert_eq!(session.add_edges(&[(0, "unrelated", 2)]), 1);
        let after = session.evaluate(id);
        assert_eq!(after.start_pairs(), before.start_pairs());
        assert_eq!(session.index().n_edges(), graph.n_edges() + 1);
    }

    #[test]
    fn incremental_works_on_all_engines() {
        let grammar = cfpq_grammar::Cfg::parse("S -> a S b | a b").unwrap();
        let chain = generators::word_chain(&["a", "a", "b", "b"]);
        let expect = solve(&chain, &grammar, Backend::Sparse).unwrap();

        fn check<E: BoolEngine + LenEngine>(
            engine: E,
            chain: &Graph,
            grammar: &cfpq_grammar::Cfg,
        ) -> Vec<(u32, u32)> {
            let mut partial = Graph::new(chain.n_nodes());
            for e in chain.edges().iter().take(2) {
                partial.add_edge_named(e.from, chain.label_name(e.label), e.to);
            }
            let mut session = CfpqSession::new(engine, &partial);
            let id = session.prepare(grammar).unwrap();
            session.evaluate(id);
            for e in chain.edges().iter().skip(2) {
                session.add_edges(&[(e.from, chain.label_name(e.label), e.to)]);
            }
            session.evaluate(id).start_pairs().to_vec()
        }

        assert_eq!(check(DenseEngine, &chain, &grammar), expect.start_pairs());
        assert_eq!(check(SparseEngine, &chain, &grammar), expect.start_pairs());
        assert_eq!(
            check(ParDenseEngine::new(Device::new(2)), &chain, &grammar),
            expect.start_pairs()
        );
        assert_eq!(
            check(ParSparseEngine::new(Device::new(3)), &chain, &grammar),
            expect.start_pairs()
        );
    }

    #[test]
    fn nullable_diagonal_respected_in_sessions() {
        let grammar = cfpq_grammar::Cfg::parse("S -> a S | eps").unwrap();
        let graph = generators::chain(2, "a");
        let mut session = CfpqSession::new(SparseEngine, &graph);
        let id =
            session.prepare_query(PreparedQuery::new(&grammar).unwrap().options(SolveOptions {
                nullable_diagonal: true,
            }));
        let answer = session.evaluate(id);
        assert_eq!(
            answer.start_pairs(),
            &[(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)]
        );
    }

    #[test]
    fn batch_log_is_compacted_once_absorbed() {
        // The edge log must track outstanding repairs, not the lifetime
        // count of add_edges calls.
        let grammar = cfpq_grammar::Cfg::parse("S -> a S b | a b").unwrap();
        let chain = generators::word_chain(&["a", "a", "b", "b"]);
        let mut partial = Graph::new(chain.n_nodes());
        for e in chain.edges().iter().take(1) {
            partial.add_edge_named(e.from, chain.label_name(e.label), e.to);
        }
        let mut session = CfpqSession::new(SparseEngine, &partial);
        let id = session.prepare(&grammar).unwrap();
        // Batches before the first solve are not even logged: the cold
        // solve reads the index directly.
        let e = &chain.edges()[1];
        session.add_edges(&[(e.from, chain.label_name(e.label), e.to)]);
        assert!(session.batches.is_empty(), "no solved query, no log");
        session.evaluate(id);
        // Logged while pending, drained once every solved query caught up.
        for e in chain.edges().iter().skip(2) {
            session.add_edges(&[(e.from, chain.label_name(e.label), e.to)]);
        }
        assert_eq!(session.batches.len(), 2);
        let answer = session.evaluate(id);
        assert!(session.batches.is_empty(), "absorbed batches are drained");
        assert_eq!(session.queries[id.0].watermark, 0);
        let scratch = solve(&chain, &grammar, Backend::Sparse).unwrap();
        assert_eq!(answer.start_pairs(), scratch.start_pairs());
    }

    #[test]
    fn unseen_node_ids_grow_the_index() {
        // The PR-4 regression: an edge naming a node id ≥ n_nodes used to
        // hit an assert!; it now widens the matrices and participates in
        // query answers like any other edge.
        let grammar = cfpq_grammar::Cfg::parse("S -> a S b | a b").unwrap();
        let chain = generators::word_chain(&["a", "a", "b", "b"]);
        let mut truncated = Graph::new(4);
        for e in chain.edges().iter().take(3) {
            truncated.add_edge_named(e.from, chain.label_name(e.label), e.to);
        }
        for engine_run in 0..2 {
            let mut session = CfpqSession::new(SparseEngine, &truncated);
            let id = session.prepare(&grammar).unwrap();
            if engine_run == 1 {
                // Also exercise the repair path: solve before growing.
                session.evaluate(id);
            }
            assert_eq!(session.index().n_nodes(), 4);
            // Node 4 is unseen: the final b-edge grows the universe.
            assert_eq!(session.add_edges(&[(3, "b", 4)]), 1);
            assert_eq!(session.index().n_nodes(), 5);
            let answer = session.evaluate(id);
            assert_eq!(answer.start_pairs(), &[(0, 4), (1, 3)]);
            assert_eq!(
                session.last_run(id).unwrap().incremental,
                engine_run == 1,
                "growth repairs a solved closure, cold-solves an unsolved one"
            );
        }
        // Dense engines rebuild at the wider word stride.
        let mut dense = CfpqSession::new(DenseEngine, &truncated);
        let id = dense.prepare(&grammar).unwrap();
        dense.evaluate(id);
        // Grow far enough to change the dense words-per-row.
        assert_eq!(dense.add_edges(&[(3, "b", 4), (4, "a", 99)]), 2);
        assert_eq!(dense.index().n_nodes(), 100);
        assert_eq!(dense.evaluate(id).start_pairs(), &[(0, 4), (1, 3)]);
    }

    #[test]
    fn growth_seeds_the_nullable_diagonal_of_new_nodes() {
        let grammar = cfpq_grammar::Cfg::parse("S -> a S | eps").unwrap();
        let graph = generators::chain(1, "a");
        let mut session = CfpqSession::new(SparseEngine, &graph);
        let id =
            session.prepare_query(PreparedQuery::new(&grammar).unwrap().options(SolveOptions {
                nullable_diagonal: true,
            }));
        session.evaluate(id);
        session.add_edges(&[(1, "a", 2)]);
        let answer = session.evaluate(id);
        assert_eq!(
            answer.start_pairs(),
            &[(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)],
            "new node 2 gets its ε-diagonal entry"
        );
    }

    #[test]
    fn single_path_session_matches_one_shot_solver() {
        use crate::single_path::{extract_path, validate_witness, SinglePathSolver};
        let grammar = queries::query1();
        let wcnf = grammar
            .to_wcnf(cfpq_grammar::cnf::CnfOptions::default())
            .unwrap();
        let graph = generators::paper_example();
        let reference = SinglePathSolver::new(&SparseEngine).solve(&graph, &wcnf);
        let mut session = CfpqSession::new(SparseEngine, &graph);
        let id = session.prepare_single_path(&grammar).unwrap();
        let idx = session.evaluate_single_path(id);
        for nt in 0..wcnf.n_nts() {
            let nt = cfpq_grammar::Nt(nt as u32);
            assert_eq!(idx.pairs(nt), reference.pairs(nt));
        }
        // Witness extraction works unchanged on the session's index.
        let s = wcnf.symbols.get_nt("S").unwrap();
        for (i, j, len) in idx.pairs_with_lengths(s) {
            let path = extract_path(idx, &graph, &wcnf, s, i, j).unwrap();
            assert_eq!(path.len() as u32, len);
            assert!(validate_witness(&path, &graph, &wcnf, s, i, j));
        }
        assert!(!session.last_single_path_run(id).unwrap().incremental);
    }

    #[test]
    fn single_path_add_edges_repairs_with_fewer_products() {
        use crate::single_path::{extract_path, validate_witness, SinglePathSolver};
        let grammar = cfpq_grammar::Cfg::parse("S -> a S b | a b").unwrap();
        let wcnf = grammar
            .to_wcnf(cfpq_grammar::cnf::CnfOptions::default())
            .unwrap();
        let chain = generators::word_chain(&["a", "a", "b", "b"]);
        let mut partial = Graph::new(chain.n_nodes());
        for e in chain.edges().iter().take(3) {
            partial.add_edge_named(e.from, chain.label_name(e.label), e.to);
        }
        let mut session = CfpqSession::new(SparseEngine, &partial);
        let id = session.prepare_single_path(&grammar).unwrap();
        session.evaluate_single_path(id);

        session.add_edges(&[(3, "b", 4)]);
        let cold = SinglePathSolver::new(&SparseEngine).solve(&chain, &wcnf);
        let idx = session.evaluate_single_path(id);
        for nt in 0..wcnf.n_nts() {
            let nt = cfpq_grammar::Nt(nt as u32);
            assert_eq!(idx.pairs(nt), cold.pairs(nt), "repaired == from-scratch");
        }
        let s = wcnf.symbols.get_nt("S").unwrap();
        let path = extract_path(idx, &chain, &wcnf, s, 0, 4).unwrap();
        assert!(validate_witness(&path, &chain, &wcnf, s, 0, 4));
        let run = session.last_single_path_run(id).unwrap();
        assert!(run.incremental);
        assert!(
            run.stats.products_computed < cold.stats.products_computed,
            "repair {} vs cold {}",
            run.stats.products_computed,
            cold.stats.products_computed
        );
    }

    #[test]
    fn single_path_repair_handles_growth_and_nullable_diagonal() {
        let grammar = cfpq_grammar::Cfg::parse("S -> a S | eps").unwrap();
        let graph = generators::chain(1, "a");
        let mut session = CfpqSession::new(DenseEngine, &graph);
        let id = session.prepare_single_path_query(PreparedQuery::new(&grammar).unwrap().options(
            SolveOptions {
                nullable_diagonal: true,
            },
        ));
        session.evaluate_single_path(id);
        // Node 2 is unseen: the repair must widen the cached length
        // matrices and seed the new ε-diagonal cell.
        session.add_edges(&[(1, "a", 2)]);
        let idx = session.evaluate_single_path(id);
        let s = grammar.start.unwrap();
        assert_eq!(
            idx.pairs(s),
            vec![(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)]
        );
        assert_eq!(idx.length(s, 2, 2), Some(0), "new node's ε-witness");
        assert_eq!(idx.length(s, 0, 2), Some(2));
    }

    #[test]
    fn relational_and_single_path_queries_share_one_session() {
        let graph = generators::paper_example();
        let mut session = CfpqSession::new(SparseEngine, &graph);
        let rel = session.prepare(&queries::query1()).unwrap();
        let sp = session.prepare_single_path(&queries::query1()).unwrap();
        let start = session.sp_queries[sp.0].query.wcnf.start;
        let answer = session.evaluate(rel);
        assert_eq!(
            answer.start_pairs(),
            session.evaluate_single_path(sp).pairs(start)
        );
        // An update repairs both caches lazily; the log drains once both
        // absorbed it.
        session.add_edges(&[(1, "subClassOf", 0)]);
        let answer = session.evaluate(rel);
        assert_eq!(session.batches.len(), 1, "single-path still pending");
        let pairs = session.evaluate_single_path(sp).pairs(start);
        assert_eq!(answer.start_pairs(), pairs);
        assert!(session.batches.is_empty(), "both absorbed, log drained");
    }

    #[test]
    fn all_paths_session_repairs_and_matches_from_scratch() {
        let grammar = Cfg::parse("S -> a S b | a b").unwrap();
        let mut graph = Graph::new(5);
        graph.add_edge_named(0, "a", 1);
        graph.add_edge_named(1, "a", 2);
        graph.add_edge_named(2, "b", 3);
        let mut session = CfpqSession::new(SparseEngine, &graph);
        let q = session.prepare_all_paths(&grammar).unwrap();
        // Truncated chain: only the inner `ab` span has a witness.
        let page = session.enumerate_paths(q, 1, 3, PageRequest::default());
        assert_eq!(page.paths.len(), 1);
        assert!(page.exhausted);
        assert!(!session.last_all_paths_run(q).unwrap().incremental);
        // Complete the chain: the closure repairs, the tables rebuild.
        session.add_edges(&[(3, "b", 4)]);
        let outer = session.enumerate_paths(q, 0, 4, PageRequest::default());
        assert!(session.last_all_paths_run(q).unwrap().incremental);
        assert_eq!(outer.paths.len(), 1);
        assert_eq!(outer.paths[0].len(), 4);
        // A from-scratch session over the final graph serves the same
        // page — repair must not change what is enumerated.
        let mut full = Graph::new(5);
        for (f, l, t) in [(0, "a", 1), (1, "a", 2), (2, "b", 3), (3, "b", 4)] {
            full.add_edge_named(f, l, t);
        }
        let mut fresh = CfpqSession::new(SparseEngine, &full);
        let q2 = fresh.prepare_all_paths(&grammar).unwrap();
        assert_eq!(
            fresh.enumerate_paths(q2, 0, 4, PageRequest::default()),
            outer
        );
        // The log drained once the only query absorbed it.
        assert!(session.batches.is_empty());
    }

    #[test]
    fn regular_queries_ride_the_session_pipeline() {
        use crate::regular::{solve_regular, Nfa};
        // Truncated a*b graph: solve, then extend and check the repair
        // path serves exactly what the oracle computes from scratch.
        let mut graph = Graph::new(4);
        graph.add_edge_named(0, "a", 1);
        graph.add_edge_named(1, "a", 2);
        graph.add_edge_named(2, "b", 3);
        let nfa = Nfa::star_then("a", "b");
        let mut session = CfpqSession::new(SparseEngine, &graph);
        let id = session.prepare_regular(&nfa);
        let answer = session.evaluate(id);
        assert_eq!(
            answer.start_pairs(),
            solve_regular(&SparseEngine, &graph, &nfa).pairs()
        );
        let run = session.last_run(id).unwrap();
        assert!(!run.incremental);
        assert!(run.stats.products_computed > 0, "SolveStats populated");

        // New edge (and a new node): the cached closure repairs.
        session.add_edges(&[(0, "b", 4)]);
        let mut grown = Graph::new(5);
        for e in graph.edges() {
            grown.add_edge_named(e.from, graph.label_name(e.label), e.to);
        }
        grown.add_edge_named(0, "b", 4);
        let repaired = session.evaluate(id);
        assert_eq!(
            repaired.start_pairs(),
            solve_regular(&SparseEngine, &grown, &nfa).pairs()
        );
        assert!(session.last_run(id).unwrap().incremental);
    }

    #[test]
    fn rsm_prepared_cfpq_matches_wcnf_path() {
        let grammar = Cfg::parse("S -> a S b | a b").unwrap();
        let graph = generators::word_chain(&["a", "a", "b", "b"]);
        let mut session = CfpqSession::new(SparseEngine, &graph);
        let rsm_id = session.prepare_rsm(&grammar).unwrap();
        let cnf_id = session.prepare(&grammar).unwrap();
        let rsm_answer = session.evaluate(rsm_id);
        let cnf_answer = session.evaluate(cnf_id);
        assert_eq!(
            rsm_answer.pairs("S").unwrap(),
            cnf_answer.start_pairs(),
            "RSM-form and WCNF-form CFPQ agree on the start relation"
        );
    }

    #[test]
    fn graph_index_exposes_label_matrices() {
        let graph = generators::word_chain(&["a", "b"]);
        let index = GraphIndex::build(SparseEngine, &graph);
        assert_eq!(index.n_nodes(), 3);
        assert_eq!(index.n_labels(), 2);
        assert_eq!(index.n_edges(), 2);
        assert_eq!(index.adjacency("a").unwrap().pairs(), vec![(0, 1)]);
        assert_eq!(index.adjacency("b").unwrap().pairs(), vec![(1, 2)]);
        assert!(index.adjacency("nope").is_none());
        let names: Vec<&str> = index.label_matrices().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
