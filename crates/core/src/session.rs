//! The engine layer for serving *many* queries over *one* evolving
//! graph: a persistent label-matrix index, prepared queries, and
//! incremental edge updates.
//!
//! Algorithm 1's setup phase decomposes the graph into one Boolean
//! adjacency matrix per edge label (lines 6–7). The one-shot facade
//! ([`crate::query::solve`]) used to redo that decomposition — plus the
//! grammar's CNF normalization — on every call. This module inverts the
//! call graph, following the "one algorithm to evaluate them all"
//! architecture (Shemetova et al., arXiv:2103.14688): the graph lives as
//! a persistent [`GraphIndex`], grammars are normalized once into
//! [`PreparedQuery`]s, and a [`CfpqSession`] evaluates any number of
//! prepared queries against the index, caching each query's closure.
//!
//! The payoff is incremental evaluation: [`CfpqSession::add_edges`]
//! inserts edges into the label matrices in place (via
//! [`BoolEngine::union_pairs`]) and, on the next evaluation of a
//! previously-solved query, *repairs* the cached closure through
//! [`FixpointSolver::resume`] — the semi-naive Δ loop seeded with only
//! the new entries — instead of re-solving from scratch. On the
//! evaluation datasets this computes strictly fewer products than a cold
//! solve (asserted by `reproduce --smoke` and benchmarked in
//! `benches/incremental.rs`).
//!
//! ```
//! use cfpq_core::session::CfpqSession;
//! use cfpq_grammar::Cfg;
//! use cfpq_graph::Graph;
//! use cfpq_matrix::SparseEngine;
//!
//! let mut graph = Graph::new(5);
//! graph.add_edge_named(0, "a", 1);
//! graph.add_edge_named(1, "a", 2);
//! graph.add_edge_named(2, "b", 3);
//! let mut session = CfpqSession::new(SparseEngine, &graph);
//! let q = session
//!     .prepare(&Cfg::parse("S -> a S b | a b").unwrap())
//!     .unwrap();
//! // Over the truncated chain only the inner `ab` matches.
//! assert_eq!(session.evaluate(q).start_pairs(), &[(1, 3)]);
//! // Complete the chain: a²b² now matches too, via an incremental
//! // repair of the cached closure rather than a cold re-solve.
//! session.add_edges(&[(3, "b", 4)]);
//! assert_eq!(session.evaluate(q).start_pairs(), &[(0, 4), (1, 3)]);
//! assert!(session.last_run(q).unwrap().incremental);
//! ```

use crate::query::{relations_map, QueryAnswer};
use crate::relational::{FixpointSolver, RelationalIndex, SolveOptions, SolveStats, Strategy};
use cfpq_grammar::cnf::CnfOptions;
use cfpq_grammar::symbol::Interner;
use cfpq_grammar::{Cfg, GrammarError, Term, Wcnf};
use cfpq_graph::{Graph, NodeId};
use cfpq_matrix::{BoolEngine, BoolMat};
use std::collections::BTreeMap;

/// The persistent matrix form of a graph: one Boolean adjacency matrix
/// per edge label, built once and updated in place as edges arrive.
///
/// This is the artifact Algorithm 1's initialization (lines 6–7)
/// produces implicitly and then throws away; materialized, it is shared
/// by every query evaluated against the graph. Generic over all four
/// [`BoolEngine`]s, so the index inherits the paper's representation ×
/// device matrix.
///
/// The node set is fixed at build time (`n × n` matrices cannot grow);
/// [`GraphIndex::add_edges`] accepts new *labels* freely but panics on a
/// node id `>= n_nodes`. Build the index from a graph sized for the
/// expected node universe.
pub struct GraphIndex<E: BoolEngine> {
    engine: E,
    n_nodes: usize,
    labels: Interner,
    matrices: Vec<E::Matrix>,
    n_edges: usize,
}

impl<E: BoolEngine + Clone> Clone for GraphIndex<E> {
    fn clone(&self) -> Self {
        Self {
            engine: self.engine.clone(),
            n_nodes: self.n_nodes,
            labels: self.labels.clone(),
            matrices: self.matrices.clone(),
            n_edges: self.n_edges,
        }
    }
}

/// The record of one [`GraphIndex::add_edges`] batch: which `(from, to)`
/// pairs were genuinely new, per label index. Sessions keep these as the
/// update log that incremental re-evaluation consumes.
#[derive(Clone, Debug)]
pub struct EdgeBatch {
    /// `(label index, new pairs)` — only labels that gained entries.
    new_by_label: Vec<(u32, Vec<(u32, u32)>)>,
    /// Edges actually inserted (previously absent from the index).
    pub inserted: usize,
    /// Edges skipped because the index (or this same batch) already held
    /// them.
    pub duplicates: usize,
}

impl<E: BoolEngine> GraphIndex<E> {
    /// Decomposes `graph` into per-label adjacency matrices on `engine`.
    pub fn build(engine: E, graph: &Graph) -> Self {
        Self::build_where(engine, graph, |_| true)
    }

    /// [`GraphIndex::build`] restricted to the labels `keep` accepts:
    /// only those get a matrix, and edges on other labels are not
    /// indexed (nor counted by [`GraphIndex::n_edges`]). This is what
    /// the one-shot `solve` facade uses — it knows the single grammar it
    /// will ever evaluate, so labels that grammar never mentions (e.g.
    /// RDF padding predicates) would be dead weight, n²-bit dead weight
    /// on the dense engines. Long-lived sessions serving unknown future
    /// grammars should index everything ([`GraphIndex::build`]).
    pub fn build_where(engine: E, graph: &Graph, mut keep: impl FnMut(&str) -> bool) -> Self {
        let n = graph.n_nodes();
        let mut labels = Interner::new();
        // Kept graph-label index → index-local label id.
        let mut local: Vec<Option<u32>> = vec![None; graph.n_labels()];
        for (l, name) in graph.labels() {
            if keep(name) {
                local[l.index()] = Some(labels.intern(name));
            }
        }
        let mut pairs_by_label: Vec<Vec<(u32, u32)>> = vec![Vec::new(); labels.len()];
        let mut n_edges = 0usize;
        for e in graph.edges() {
            if let Some(l) = local[e.label.index()] {
                pairs_by_label[l as usize].push((e.from, e.to));
                n_edges += 1;
            }
        }
        let matrices = pairs_by_label
            .iter()
            .map(|pairs| engine.from_pairs(n, pairs))
            .collect();
        Self {
            engine,
            n_nodes: n,
            labels,
            matrices,
            n_edges,
        }
    }

    /// The engine the matrices live on.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Matrix dimension `|V|` (fixed at build time).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of labels with a materialized matrix.
    pub fn n_labels(&self) -> usize {
        self.labels.len()
    }

    /// Total stored edges across all label matrices.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// The adjacency matrix of a label, if the label exists.
    pub fn adjacency(&self, label: &str) -> Option<&E::Matrix> {
        self.labels.get(label).map(|l| &self.matrices[l as usize])
    }

    /// Iterates `(name, matrix)` for every label.
    pub fn label_matrices(&self) -> impl Iterator<Item = (&str, &E::Matrix)> {
        self.labels
            .iter()
            .map(|(l, name)| (name, &self.matrices[l as usize]))
    }

    /// Inserts a batch of edges in place, interning unseen labels on the
    /// fly. Already-present edges are skipped (the index is a set, like
    /// [`Graph`]); the returned [`EdgeBatch`] records exactly the new
    /// entries per label, which is what incremental re-solves seed from.
    ///
    /// # Panics
    ///
    /// If an endpoint is `>= n_nodes()` — the matrix dimension is fixed
    /// at build time.
    pub fn add_edges(&mut self, edges: &[(NodeId, &str, NodeId)]) -> EdgeBatch {
        let mut new_by_label: BTreeMap<u32, Vec<(u32, u32)>> = BTreeMap::new();
        let mut batch_seen: std::collections::HashSet<(u32, u32, u32)> =
            std::collections::HashSet::with_capacity(edges.len());
        let mut duplicates = 0usize;
        for &(u, name, v) in edges {
            assert!(
                (u as usize) < self.n_nodes && (v as usize) < self.n_nodes,
                "edge ({u}, {name}, {v}) out of bounds: GraphIndex is fixed at {} nodes",
                self.n_nodes
            );
            let l = self.labels.intern(name);
            while self.matrices.len() <= l as usize {
                self.matrices.push(self.engine.zeros(self.n_nodes));
            }
            if self.matrices[l as usize].get(u, v) || !batch_seen.insert((l, u, v)) {
                duplicates += 1;
                continue;
            }
            new_by_label.entry(l).or_default().push((u, v));
        }
        let mut inserted = 0usize;
        let new_by_label: Vec<(u32, Vec<(u32, u32)>)> = new_by_label.into_iter().collect();
        for (l, pairs) in &new_by_label {
            self.engine
                .union_pairs(&mut self.matrices[*l as usize], pairs);
            inserted += pairs.len();
        }
        self.n_edges += inserted;
        EdgeBatch {
            new_by_label,
            inserted,
            duplicates,
        }
    }

    /// `label index → grammar terminal` binding by name (labels the
    /// grammar never mentions bind to `None` and are ignored).
    fn term_bindings(&self, wcnf: &Wcnf) -> Vec<Option<Term>> {
        self.labels
            .iter()
            .map(|(_, name)| wcnf.symbols.get_term(name))
            .collect()
    }
}

/// A grammar compiled for repeated evaluation: the weak-CNF
/// normalization runs once, here, instead of once per `solve` call. The
/// label→terminal binding is resolved against the session's index at
/// evaluation time (so labels added later still bind).
#[derive(Clone, Debug)]
pub struct PreparedQuery {
    wcnf: Wcnf,
    strategy: Strategy,
    options: SolveOptions,
}

impl PreparedQuery {
    /// Normalizes `grammar` to weak CNF (the expensive, once-per-query
    /// step) with the default strategy and options.
    pub fn new(grammar: &Cfg) -> Result<Self, GrammarError> {
        Ok(Self::from_wcnf(grammar.to_wcnf(CnfOptions::default())?))
    }

    /// Wraps an already-normalized grammar.
    pub fn from_wcnf(wcnf: Wcnf) -> Self {
        Self {
            wcnf,
            strategy: Strategy::default(),
            options: SolveOptions::default(),
        }
    }

    /// Selects the fixpoint strategy for this query's evaluations.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the solve options (ε-diagonal seeding).
    pub fn options(mut self, options: SolveOptions) -> Self {
        self.options = options;
        self
    }

    /// The normalized grammar.
    pub fn wcnf(&self) -> &Wcnf {
        &self.wcnf
    }

    /// The start nonterminal's name.
    pub fn start_name(&self) -> &str {
        self.wcnf.symbols.nt_name(self.wcnf.start)
    }
}

/// Handle to a query registered in a [`CfpqSession`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QueryId(usize);

/// What the most recent evaluation of a query actually did: a cold solve
/// or an incremental repair, and how much kernel work it launched. This
/// is the observable behind the incremental-beats-cold acceptance check.
#[derive(Clone, Debug)]
pub struct RunInfo {
    /// Kernel-work counters of that run alone (not cumulative).
    pub stats: SolveStats,
    /// Fixpoint sweeps of that run alone.
    pub sweeps: usize,
    /// `true` if the run repaired a cached closure via
    /// [`FixpointSolver::resume`]; `false` for a cold solve.
    pub incremental: bool,
}

/// Per-query cached state: the prepared grammar, the solved closure (if
/// any), and how much of the session's edge log it has absorbed.
#[derive(Clone)]
struct QueryState<M: Clone> {
    query: PreparedQuery,
    solved: Option<RelationalIndex<M>>,
    /// Index into the session's batch log: batches before this are
    /// reflected in `solved`.
    watermark: usize,
    last_run: Option<RunInfo>,
    /// Materialized answer of `solved`; dropped whenever the closure is
    /// re-solved or repaired, so fully-cached evaluations only pay a
    /// clone instead of re-extracting every relation from the matrices.
    answer: Option<QueryAnswer>,
}

/// A multi-query evaluation session over one [`GraphIndex`]: prepare
/// grammars once, evaluate them many times, feed edges in between.
///
/// Evaluation is lazy and cached: the first [`CfpqSession::evaluate`] of
/// a query runs a cold solve seeded straight from the index's label
/// matrices; subsequent evaluations return the cached closure, unless
/// [`CfpqSession::add_edges`] grew the graph in between — then the
/// cached closure is *repaired* semi-naively from exactly the new edges
/// ([`FixpointSolver::resume`]), which on real workloads launches far
/// fewer matrix products than a cold solve (see `BENCH_pr3.json`).
pub struct CfpqSession<E: BoolEngine> {
    index: GraphIndex<E>,
    /// Log of accepted edge batches; `QueryState::watermark` points into
    /// this.
    batches: Vec<EdgeBatch>,
    queries: Vec<QueryState<E::Matrix>>,
}

impl<E: BoolEngine + Clone> Clone for CfpqSession<E> {
    fn clone(&self) -> Self {
        Self {
            index: self.index.clone(),
            batches: self.batches.clone(),
            queries: self.queries.clone(),
        }
    }
}

impl<E: BoolEngine> CfpqSession<E> {
    /// Indexes `graph` on `engine` and opens a session over it.
    pub fn new(engine: E, graph: &Graph) -> Self {
        Self::over(GraphIndex::build(engine, graph))
    }

    /// Opens a session over an already-built index.
    pub fn over(index: GraphIndex<E>) -> Self {
        Self {
            index,
            batches: Vec::new(),
            queries: Vec::new(),
        }
    }

    /// The underlying label-matrix index.
    pub fn index(&self) -> &GraphIndex<E> {
        &self.index
    }

    /// Normalizes `grammar` and registers it for evaluation.
    pub fn prepare(&mut self, grammar: &Cfg) -> Result<QueryId, GrammarError> {
        Ok(self.prepare_query(PreparedQuery::new(grammar)?))
    }

    /// Registers an already-normalized grammar for evaluation.
    pub fn prepare_wcnf(&mut self, wcnf: Wcnf) -> QueryId {
        self.prepare_query(PreparedQuery::from_wcnf(wcnf))
    }

    /// Registers a fully-configured [`PreparedQuery`].
    pub fn prepare_query(&mut self, query: PreparedQuery) -> QueryId {
        self.queries.push(QueryState {
            query,
            solved: None,
            watermark: 0,
            last_run: None,
            answer: None,
        });
        QueryId(self.queries.len() - 1)
    }

    /// Inserts a batch of edges into the index; returns how many were
    /// genuinely new. Cached query closures are *not* recomputed here —
    /// each query repairs itself lazily on its next
    /// [`CfpqSession::evaluate`] call.
    ///
    /// # Panics
    ///
    /// If an endpoint is `>= index().n_nodes()` (the matrix dimension is
    /// fixed at build time).
    pub fn add_edges(&mut self, edges: &[(NodeId, &str, NodeId)]) -> usize {
        let batch = self.index.add_edges(edges);
        let inserted = batch.inserted;
        // The log only exists to repair already-solved closures: with no
        // solved query, cold solves read the index directly, so nothing
        // needs the batch.
        if inserted > 0 && self.queries.iter().any(|q| q.solved.is_some()) {
            self.batches.push(batch);
        }
        inserted
    }

    /// Drops log batches every solved query has already absorbed, so a
    /// long-lived session's memory tracks the graph, not the total
    /// number of `add_edges` calls ever made. Unevaluated queries don't
    /// pin the log (their eventual cold solve reads the index directly).
    fn compact_batches(&mut self) {
        let consumed = self
            .queries
            .iter()
            .filter(|q| q.solved.is_some())
            .map(|q| q.watermark)
            .min()
            .unwrap_or(self.batches.len());
        if consumed == 0 {
            return;
        }
        self.batches.drain(..consumed);
        for q in &mut self.queries {
            q.watermark = q.watermark.saturating_sub(consumed);
        }
    }

    /// Evaluates a prepared query against the current graph, reusing the
    /// cached closure when nothing changed and repairing it semi-naively
    /// when edges arrived since the last evaluation.
    ///
    /// # Panics
    ///
    /// If `id` does not belong to this session.
    pub fn evaluate(&mut self, id: QueryId) -> QueryAnswer {
        let state = &mut self.queries[id.0];
        let wcnf = &state.query.wcnf;
        let n = self.index.n_nodes;
        let bindings = self.index.term_bindings(wcnf);
        let by_term = wcnf.nts_by_terminal();
        let solver = FixpointSolver::new(&self.index.engine)
            .strategy(state.query.strategy)
            .options(state.query.options);

        match &mut state.solved {
            None => {
                // Cold solve, seeded straight from the label matrices.
                let mut seeds: Vec<Option<E::Matrix>> = (0..wcnf.n_nts()).map(|_| None).collect();
                for (label, term) in bindings.iter().enumerate() {
                    let Some(term) = term else { continue };
                    for nt in &by_term[term.index()] {
                        let m = &self.index.matrices[label];
                        match &mut seeds[nt.index()] {
                            Some(acc) => {
                                self.index.engine.union_in_place(acc, m);
                            }
                            None => seeds[nt.index()] = Some(m.clone()),
                        }
                    }
                }
                let mut matrices: Vec<E::Matrix> = seeds
                    .into_iter()
                    .map(|m| m.unwrap_or_else(|| self.index.engine.zeros(n)))
                    .collect();
                if state.query.options.nullable_diagonal {
                    let diagonal: Vec<(u32, u32)> = (0..n as u32).map(|m| (m, m)).collect();
                    for &nt in &wcnf.nullable {
                        self.index
                            .engine
                            .union_pairs(&mut matrices[nt.index()], &diagonal);
                    }
                }
                let solved = solver.solve_from_matrices(matrices, n, wcnf);
                state.last_run = Some(RunInfo {
                    stats: solved.stats.clone(),
                    sweeps: solved.iterations,
                    incremental: false,
                });
                state.solved = Some(solved);
                state.watermark = self.batches.len();
                state.answer = None;
            }
            Some(solved) => {
                if state.watermark < self.batches.len() {
                    // Translate the pending edge batches into per-
                    // nonterminal seed pairs and repair the closure.
                    let mut new_pairs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); wcnf.n_nts()];
                    for batch in &self.batches[state.watermark..] {
                        for (label, pairs) in &batch.new_by_label {
                            let Some(term) = bindings[*label as usize] else {
                                continue;
                            };
                            for nt in &by_term[term.index()] {
                                new_pairs[nt.index()].extend_from_slice(pairs);
                            }
                        }
                    }
                    let stats = solver.resume(solved, wcnf, &new_pairs);
                    state.last_run = Some(RunInfo {
                        sweeps: stats.sweep_nnz.len(),
                        stats,
                        incremental: true,
                    });
                    state.watermark = self.batches.len();
                    state.answer = None;
                }
            }
        }

        if state.answer.is_none() {
            let solved = state.solved.as_ref().expect("closure just materialized");
            state.answer = Some(QueryAnswer::from_parts(
                self.index.engine.name(),
                n,
                solved.iterations,
                state.query.start_name().to_owned(),
                relations_map(wcnf, solved),
            ));
        }
        // A cache hit costs a refcount bump (the relations live behind an
        // `Arc`), not a deep copy.
        let answer = state.answer.clone().expect("answer just materialized");
        self.compact_batches();
        answer
    }

    /// The closed relational index of a query, if it has been evaluated.
    pub fn solved_index(&self, id: QueryId) -> Option<&RelationalIndex<E::Matrix>> {
        self.queries[id.0].solved.as_ref()
    }

    /// What the last [`CfpqSession::evaluate`] of this query actually
    /// did (cold vs incremental, and its kernel-work counters). `None`
    /// until the first evaluation.
    pub fn last_run(&self, id: QueryId) -> Option<&RunInfo> {
        self.queries[id.0].last_run.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{solve, Backend};
    use cfpq_grammar::queries;
    use cfpq_graph::generators;
    use cfpq_matrix::{DenseEngine, Device, ParDenseEngine, ParSparseEngine, SparseEngine};

    #[test]
    fn session_matches_one_shot_solve() {
        let grammar = queries::query1();
        let graph = generators::paper_example();
        let reference = solve(&graph, &grammar, Backend::Sparse).unwrap();
        let mut session = CfpqSession::new(SparseEngine, &graph);
        let id = session.prepare(&grammar).unwrap();
        let answer = session.evaluate(id);
        assert_eq!(answer.start_pairs(), reference.start_pairs());
        assert_eq!(answer.iterations, reference.iterations);
        assert_eq!(answer.backend, "sparse");
        assert!(!session.last_run(id).unwrap().incremental);
    }

    #[test]
    fn one_index_serves_many_queries() {
        let graph = cfpq_graph::ontology::dataset("skos").unwrap().to_graph();
        let mut session = CfpqSession::new(SparseEngine, &graph);
        let q1 = session.prepare(&queries::query1()).unwrap();
        let q2 = session.prepare(&queries::query2()).unwrap();
        let a1 = session.evaluate(q1);
        let a2 = session.evaluate(q2);
        assert_eq!(
            a1.start_count(),
            solve(&graph, &queries::query1(), Backend::Sparse)
                .unwrap()
                .start_count()
        );
        assert_eq!(
            a2.start_count(),
            solve(&graph, &queries::query2(), Backend::Sparse)
                .unwrap()
                .start_count()
        );
        // Re-evaluating without updates reuses the cache: the run info
        // still describes the original cold solve.
        let again = session.evaluate(q1);
        assert_eq!(again.start_pairs(), a1.start_pairs());
        assert!(!session.last_run(q1).unwrap().incremental);
    }

    #[test]
    fn add_edges_repairs_instead_of_resolving() {
        // Build the paper graph minus one edge, solve, then insert the
        // missing edge: the repaired answer must equal the full-graph
        // answer, at lower product cost than the full cold solve.
        let grammar = queries::query1();
        let full = generators::paper_example();
        let mut partial = Graph::new(full.n_nodes());
        let removed = *full.edges().last().unwrap();
        for e in full.edges().iter().take(full.n_edges() - 1) {
            partial.add_edge_named(e.from, full.label_name(e.label), e.to);
        }
        let mut session = CfpqSession::new(SparseEngine, &partial);
        let id = session.prepare(&grammar).unwrap();
        session.evaluate(id);

        let inserted =
            session.add_edges(&[(removed.from, full.label_name(removed.label), removed.to)]);
        assert_eq!(inserted, 1);
        let repaired = session.evaluate(id);
        assert_eq!(repaired.start_pairs(), &[(0, 0), (0, 2), (1, 2)]);

        let run = session.last_run(id).unwrap();
        assert!(run.incremental);
        let cold = solve(&full, &grammar, Backend::Sparse).unwrap();
        assert_eq!(repaired.start_pairs(), cold.start_pairs());
    }

    #[test]
    fn duplicate_and_unknown_label_edges_are_harmless() {
        let grammar = queries::query1();
        let graph = generators::paper_example();
        let mut session = CfpqSession::new(DenseEngine, &graph);
        let id = session.prepare(&grammar).unwrap();
        let before = session.evaluate(id);
        // A duplicate of an existing edge and an edge on a label the
        // grammar never mentions: neither changes the answer.
        let e = graph.edges()[0];
        assert_eq!(
            session.add_edges(&[(e.from, graph.label_name(e.label), e.to)]),
            0
        );
        assert_eq!(session.add_edges(&[(0, "unrelated", 2)]), 1);
        let after = session.evaluate(id);
        assert_eq!(after.start_pairs(), before.start_pairs());
        assert_eq!(session.index().n_edges(), graph.n_edges() + 1);
    }

    #[test]
    fn incremental_works_on_all_engines() {
        let grammar = cfpq_grammar::Cfg::parse("S -> a S b | a b").unwrap();
        let chain = generators::word_chain(&["a", "a", "b", "b"]);
        let expect = solve(&chain, &grammar, Backend::Sparse).unwrap();

        fn check<E: BoolEngine>(
            engine: E,
            chain: &Graph,
            grammar: &cfpq_grammar::Cfg,
        ) -> Vec<(u32, u32)> {
            let mut partial = Graph::new(chain.n_nodes());
            for e in chain.edges().iter().take(2) {
                partial.add_edge_named(e.from, chain.label_name(e.label), e.to);
            }
            let mut session = CfpqSession::new(engine, &partial);
            let id = session.prepare(grammar).unwrap();
            session.evaluate(id);
            for e in chain.edges().iter().skip(2) {
                session.add_edges(&[(e.from, chain.label_name(e.label), e.to)]);
            }
            session.evaluate(id).start_pairs().to_vec()
        }

        assert_eq!(check(DenseEngine, &chain, &grammar), expect.start_pairs());
        assert_eq!(check(SparseEngine, &chain, &grammar), expect.start_pairs());
        assert_eq!(
            check(ParDenseEngine::new(Device::new(2)), &chain, &grammar),
            expect.start_pairs()
        );
        assert_eq!(
            check(ParSparseEngine::new(Device::new(3)), &chain, &grammar),
            expect.start_pairs()
        );
    }

    #[test]
    fn nullable_diagonal_respected_in_sessions() {
        let grammar = cfpq_grammar::Cfg::parse("S -> a S | eps").unwrap();
        let graph = generators::chain(2, "a");
        let mut session = CfpqSession::new(SparseEngine, &graph);
        let id =
            session.prepare_query(PreparedQuery::new(&grammar).unwrap().options(SolveOptions {
                nullable_diagonal: true,
            }));
        let answer = session.evaluate(id);
        assert_eq!(
            answer.start_pairs(),
            &[(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)]
        );
    }

    #[test]
    fn batch_log_is_compacted_once_absorbed() {
        // The edge log must track outstanding repairs, not the lifetime
        // count of add_edges calls.
        let grammar = cfpq_grammar::Cfg::parse("S -> a S b | a b").unwrap();
        let chain = generators::word_chain(&["a", "a", "b", "b"]);
        let mut partial = Graph::new(chain.n_nodes());
        for e in chain.edges().iter().take(1) {
            partial.add_edge_named(e.from, chain.label_name(e.label), e.to);
        }
        let mut session = CfpqSession::new(SparseEngine, &partial);
        let id = session.prepare(&grammar).unwrap();
        // Batches before the first solve are not even logged: the cold
        // solve reads the index directly.
        let e = &chain.edges()[1];
        session.add_edges(&[(e.from, chain.label_name(e.label), e.to)]);
        assert!(session.batches.is_empty(), "no solved query, no log");
        session.evaluate(id);
        // Logged while pending, drained once every solved query caught up.
        for e in chain.edges().iter().skip(2) {
            session.add_edges(&[(e.from, chain.label_name(e.label), e.to)]);
        }
        assert_eq!(session.batches.len(), 2);
        let answer = session.evaluate(id);
        assert!(session.batches.is_empty(), "absorbed batches are drained");
        assert_eq!(session.queries[id.0].watermark, 0);
        let scratch = solve(&chain, &grammar, Backend::Sparse).unwrap();
        assert_eq!(answer.start_pairs(), scratch.start_pairs());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_node_panics() {
        let graph = generators::chain(2, "a");
        let mut session = CfpqSession::new(SparseEngine, &graph);
        session.add_edges(&[(0, "a", 99)]);
    }

    #[test]
    fn graph_index_exposes_label_matrices() {
        let graph = generators::word_chain(&["a", "b"]);
        let index = GraphIndex::build(SparseEngine, &graph);
        assert_eq!(index.n_nodes(), 3);
        assert_eq!(index.n_labels(), 2);
        assert_eq!(index.n_edges(), 2);
        assert_eq!(index.adjacency("a").unwrap().pairs(), vec![(0, 1)]);
        assert_eq!(index.adjacency("b").unwrap().pairs(), vec![(1, 2)]);
        assert!(index.adjacency("nope").is_none());
        let names: Vec<&str> = index.label_matrices().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
