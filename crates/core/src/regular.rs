//! Regular path queries (RPQ): the [`Nfa`] query form and the reference
//! evaluator.
//!
//! §3 positions CFPQ as the strictly-more-expressive sibling of the
//! regular language constrained path querying of [2, 8, 16, 21]. The
//! *production* RPQ path no longer lives here: an [`Nfa`] is compiled
//! through [`crate::compile::CompiledQuery`] into the same RSM/Kronecker
//! lowering CFPQ uses, and evaluated by the [`crate::relational::FixpointSolver`]
//! pipeline — masked semi-naive sweeps against the session's
//! [`crate::session::GraphIndex`] label matrices, with incremental
//! repair after edge updates and service scheduling on top.
//!
//! [`solve_regular`] below survives only as the **differential oracle**
//! for that pipeline: a deliberately independent, hand-rolled product-graph
//! fixpoint (unmasked, full recompute each round, label matrices rebuilt
//! from the graph on every call) whose answer the compiled path must
//! reproduce byte-for-byte. Property suites triangulate all three
//! formulations: this oracle, the compiled pipeline, and the equivalent
//! regular grammar under Algorithm 1.

use cfpq_graph::{Graph, Label};
use cfpq_matrix::BoolEngine;
use std::collections::HashMap;

/// A nondeterministic finite automaton over edge-label names.
#[derive(Clone, Debug, Default)]
pub struct Nfa {
    n_states: u32,
    start: Vec<u32>,
    accept: Vec<u32>,
    /// (from_state, label name, to_state)
    transitions: Vec<(u32, String, u32)>,
}

impl Nfa {
    /// Creates an NFA with `n_states` states.
    pub fn new(n_states: u32) -> Self {
        Self {
            n_states,
            ..Self::default()
        }
    }

    /// Number of states.
    pub fn n_states(&self) -> u32 {
        self.n_states
    }

    /// Marks a start state.
    pub fn start(&mut self, q: u32) -> &mut Self {
        assert!(q < self.n_states);
        self.start.push(q);
        self
    }

    /// Marks an accepting state.
    pub fn accept(&mut self, q: u32) -> &mut Self {
        assert!(q < self.n_states);
        self.accept.push(q);
        self
    }

    /// Adds the transition `from --label--> to`.
    pub fn transition(&mut self, from: u32, label: &str, to: u32) -> &mut Self {
        assert!(from < self.n_states && to < self.n_states);
        self.transitions.push((from, label.to_owned(), to));
        self
    }

    /// The start states.
    pub fn starts(&self) -> &[u32] {
        &self.start
    }

    /// The accepting states.
    pub fn accepts(&self) -> &[u32] {
        &self.accept
    }

    /// All transitions `(from, label, to)`, in insertion order.
    pub fn transitions(&self) -> &[(u32, String, u32)] {
        &self.transitions
    }

    /// `a+` — one or more repetitions of a single label.
    pub fn plus(label: &str) -> Nfa {
        let mut n = Nfa::new(2);
        n.start(0)
            .accept(1)
            .transition(0, label, 1)
            .transition(1, label, 1);
        n
    }

    /// `a* b` — any number of `a`s then one `b`.
    pub fn star_then(star: &str, then: &str) -> Nfa {
        let mut n = Nfa::new(2);
        n.start(0)
            .accept(1)
            .transition(0, star, 0)
            .transition(0, then, 1);
        n
    }

    /// Concatenation of single labels: `l1 l2 … lk`.
    pub fn word(labels: &[&str]) -> Nfa {
        let mut n = Nfa::new(labels.len() as u32 + 1);
        n.start(0).accept(labels.len() as u32);
        for (i, l) in labels.iter().enumerate() {
            n.transition(i as u32, l, i as u32 + 1);
        }
        n
    }
}

/// Evaluates the RPQ: all pairs `(i, j)` such that some path `iπj` spells
/// a word accepted by the NFA (non-empty paths only, matching the CFPQ
/// convention of dropping ε).
///
/// **Oracle only.** This is the old standalone evaluator, kept as an
/// independent cross-check for the compiled pipeline
/// ([`crate::compile::CompiledQuery::from_nfa`]); production callers
/// should prepare the NFA through a session or the service instead,
/// which reuses materialized label matrices and repairs incrementally.
///
/// Representation: `reach[q]` is the Boolean matrix of node pairs
/// reachable while moving the automaton from a start state to state `q`.
/// Fixpoint: `reach[q'] |= reach[q] × M_x` for every transition
/// `q --x--> q'`; seeds are `M_x` for transitions out of start states.
pub fn solve_regular<E: BoolEngine>(engine: &E, graph: &Graph, nfa: &Nfa) -> E::Matrix {
    let n = graph.n_nodes();

    // Label adjacency matrices, built once.
    let mut label_ids: HashMap<&str, Label> = HashMap::new();
    for (label, name) in graph.labels() {
        label_ids.insert(name, label);
    }
    let mut label_matrix: HashMap<String, E::Matrix> = HashMap::new();
    for (_, name, _) in &nfa.transitions {
        if label_matrix.contains_key(name) {
            continue;
        }
        let pairs: Vec<(u32, u32)> = match label_ids.get(name.as_str()) {
            Some(&l) => graph.edges_with_label(l).collect(),
            None => Vec::new(),
        };
        label_matrix.insert(name.clone(), engine.from_pairs(n, &pairs));
    }

    let mut reach: Vec<E::Matrix> = (0..nfa.n_states).map(|_| engine.zeros(n)).collect();
    // Seed: first step out of any start state.
    for (q, name, q2) in &nfa.transitions {
        if nfa.start.contains(q) {
            let seeded = label_matrix[name].clone();
            engine.union_in_place(&mut reach[*q2 as usize], &seeded);
        }
    }
    // Fixpoint propagation.
    loop {
        let mut changed = false;
        for (q, name, q2) in &nfa.transitions {
            let product = engine.multiply(&reach[*q as usize], &label_matrix[name]);
            changed |= engine.union_in_place(&mut reach[*q2 as usize], &product);
        }
        if !changed {
            break;
        }
    }

    // Union of accepting states' matrices.
    let mut answer = engine.zeros(n);
    for &q in &nfa.accept {
        let m = reach[q as usize].clone();
        engine.union_in_place(&mut answer, &m);
    }
    answer
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relational::solve_on_engine;
    use cfpq_grammar::cnf::CnfOptions;
    use cfpq_grammar::Cfg;
    use cfpq_graph::generators;
    use cfpq_matrix::{DenseEngine, SparseEngine};

    #[test]
    fn a_plus_on_chain() {
        let graph = generators::chain(4, "a");
        let m = solve_regular(&DenseEngine, &graph, &Nfa::plus("a"));
        // all (i, j) with i < j
        let mut expect = Vec::new();
        for i in 0..5u32 {
            for j in i + 1..5u32 {
                expect.push((i, j));
            }
        }
        assert_eq!(m.pairs(), expect);
    }

    #[test]
    fn word_query() {
        let graph = generators::word_chain(&["a", "b", "a"]);
        let m = solve_regular(&SparseEngine, &graph, &Nfa::word(&["a", "b"]));
        assert_eq!(m.pairs(), vec![(0, 2)]);
    }

    #[test]
    fn star_then_on_branching_graph() {
        let mut graph = cfpq_graph::Graph::new(4);
        graph.add_edge_named(0, "a", 1);
        graph.add_edge_named(1, "a", 2);
        graph.add_edge_named(2, "b", 3);
        graph.add_edge_named(0, "b", 3);
        let m = solve_regular(&DenseEngine, &graph, &Nfa::star_then("a", "b"));
        // a^0 b: (0,3) and (2,3); a^1 b: (1,3); a^2 b: (0,3).
        assert_eq!(m.pairs(), vec![(0, 3), (1, 3), (2, 3)]);
    }

    #[test]
    fn cycles_terminate() {
        let graph = generators::cycle(3, "a");
        let m = solve_regular(&SparseEngine, &graph, &Nfa::plus("a"));
        // a+ on a cycle relates every ordered pair (including loops).
        assert_eq!(m.nnz(), 9);
    }

    #[test]
    fn missing_label_yields_empty() {
        let graph = generators::chain(3, "a");
        let m = solve_regular(&DenseEngine, &graph, &Nfa::plus("zzz"));
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn regular_grammar_and_nfa_agree() {
        // The differential oracle: S -> a S | a  (= a+) via Algorithm 1
        // must equal the NFA evaluation.
        let cfg = Cfg::parse("S -> a S | a").unwrap();
        let wcnf = cfg.to_wcnf(CnfOptions::default()).unwrap();
        let s = wcnf.symbols.get_nt("S").unwrap();
        for seed in 0..6u64 {
            let graph = generators::random_graph(7, 15, &["a", "b"], seed);
            let cf = solve_on_engine(&SparseEngine, &graph, &wcnf);
            let re = solve_regular(&SparseEngine, &graph, &Nfa::plus("a"));
            assert_eq!(cf.pairs(s), re.pairs(), "seed {seed}");
        }
    }

    #[test]
    fn engines_agree_on_rpq() {
        let graph = generators::random_graph(9, 25, &["a", "b"], 3);
        let nfa = Nfa::star_then("a", "b");
        let d = solve_regular(&DenseEngine, &graph, &nfa);
        let s = solve_regular(&SparseEngine, &graph, &nfa);
        assert_eq!(d.pairs(), s.pairs());
    }
}
