//! # cfpq-core
//!
//! The primary contribution of Azimov & Grigorev (EDBT 2018): context-free
//! path query evaluation by matrix multiplication.
//!
//! * [`relational`] — **Algorithm 1**: relational-semantics CFPQ reduced
//!   to the transitive closure `a_cf`, decomposed into per-nonterminal
//!   Boolean matrices and executed on any [`cfpq_matrix::BoolEngine`]
//!   backend (dense/sparse × serial/device-parallel), plus the
//!   paper-literal set-matrix solver with per-iteration snapshots
//!   (Fig. 6–8) and a semi-naive *delta* variant for the ablation benches.
//! * [`single_path`] — §5: the length-annotated closure on the
//!   [`cfpq_matrix::LenEngine`] kernels (masked semi-naive, engine
//!   generic, with the naive flat-table oracle kept for cross-checking)
//!   and witness-path extraction (Theorem 5 machinery).
//! * [`all_paths`] — bounded all-path enumeration, the §7 future-work
//!   semantics, built on top of the relational index.
//! * [`conjunctive`] — the §7 conjecture: Algorithm 1 "trivially
//!   generalized" to conjunctive grammars, computing an upper
//!   approximation of conjunctive reachability.
//! * [`compile`] — the unified compiled-query layer: NFA-form RPQs and
//!   CFGs both lower through RSM boxes ([`cfpq_grammar::rsm`]) into a
//!   weak-CNF state grammar the [`relational`] fixpoint evaluates
//!   unchanged (the "one algorithm to evaluate them all" reduction).
//! * [`regular`] — the [`regular::Nfa`] query form (§3's baseline
//!   formalism) and the hand-rolled product-graph evaluator
//!   [`regular::solve_regular`], kept purely as a differential oracle
//!   for the compiled pipeline.
//! * [`session`] — the engine layer for serving many queries over one
//!   evolving graph: a persistent [`session::GraphIndex`] of per-label
//!   adjacency matrices, [`session::PreparedQuery`] caching the CNF
//!   normalization, and [`session::CfpqSession`] with incremental
//!   `add_edges` repair via the semi-naive Δ loop.
//! * [`query`] — the high-level API tying grammars, graphs and backends
//!   together ([`query::solve`], [`query::Backend`]); each matrix
//!   backend is a one-shot session.

pub mod all_paths;
pub mod compile;
pub mod conjunctive;
pub mod query;
pub mod regular;
pub mod relational;
pub mod session;
pub mod single_path;

pub use compile::{CompiledQuery, QueryKind};
pub use query::{solve, solve_with, Backend, QueryAnswer};
pub use regular::{solve_regular, Nfa};
pub use relational::{
    solve_on_engine, solve_set_matrix, FixpointSolver, RelationalIndex, SolveStats, Strategy,
};
pub use session::{
    CfpqSession, EdgeBatch, GraphIndex, PreparedQuery, QueryId, RunInfo, SessionError, SinglePathId,
};
pub use single_path::{
    solve_single_path, solve_single_path_oracle, solve_single_path_with, SinglePathIndex,
    SinglePathSolver,
};
