//! Weak Chomsky Normal Form — the grammar shape consumed by every solver.
//!
//! Following Hellings \[11\] and §2 of the paper, a grammar in *weak* CNF has
//! only productions of the forms
//!
//! * `A → B C` with `A, B, C ∈ N` ([`BinaryRule`]), and
//! * `A → x` with `x ∈ Σ` ([`TermRule`]).
//!
//! ε-rules are omitted entirely (only empty paths `mπm` would match ε); the
//! set of nonterminals that *were* nullable before ε-elimination is kept in
//! [`Wcnf::nullable`] so callers can optionally add diagonal matches.

use crate::symbol::{Nt, SymbolTable, Term};
use std::collections::BTreeSet;
use std::fmt;

/// A terminal production `lhs → term`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TermRule {
    /// Left-hand side nonterminal.
    pub lhs: Nt,
    /// The produced terminal.
    pub term: Term,
}

/// A binary production `lhs → left right`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BinaryRule {
    /// Left-hand side nonterminal.
    pub lhs: Nt,
    /// First RHS nonterminal.
    pub left: Nt,
    /// Second RHS nonterminal.
    pub right: Nt,
}

/// A grammar in weak Chomsky Normal Form.
#[derive(Clone, Debug)]
pub struct Wcnf {
    /// Symbol names (shared with the source grammar, possibly extended with
    /// synthetic nonterminals created during normalization).
    pub symbols: SymbolTable,
    /// All `A → x` rules.
    pub term_rules: Vec<TermRule>,
    /// All `A → BC` rules.
    pub binary_rules: Vec<BinaryRule>,
    /// Start nonterminal (queries may override it as long as the chosen
    /// nonterminal exists in this grammar).
    pub start: Nt,
    /// Nonterminals that could derive ε in the source grammar. The empty
    /// word corresponds to the trivial path `mπm`; solvers may optionally
    /// report `(A, m, m)` for nullable `A`.
    pub nullable: BTreeSet<Nt>,
}

impl Wcnf {
    /// Number of nonterminals (`|N|`).
    pub fn n_nts(&self) -> usize {
        self.symbols.n_nts()
    }

    /// Number of terminals (`|Σ|`).
    pub fn n_terms(&self) -> usize {
        self.symbols.n_terms()
    }

    /// Nonterminals `A` with a rule `A → term`, grouped: index the result
    /// by `term.index()`.
    pub fn nts_by_terminal(&self) -> Vec<Vec<Nt>> {
        let mut by_term: Vec<Vec<Nt>> = vec![Vec::new(); self.n_terms()];
        for r in &self.term_rules {
            by_term[r.term.index()].push(r.lhs);
        }
        for v in &mut by_term {
            v.sort_unstable();
            v.dedup();
        }
        by_term
    }

    /// Binary rules grouped by `left` nonterminal: index by `left.index()`
    /// to get `(lhs, right)` pairs. Useful for worklist solvers.
    pub fn rules_by_left(&self) -> Vec<Vec<(Nt, Nt)>> {
        let mut by_left: Vec<Vec<(Nt, Nt)>> = vec![Vec::new(); self.n_nts()];
        for r in &self.binary_rules {
            by_left[r.left.index()].push((r.lhs, r.right));
        }
        by_left
    }

    /// Binary rules grouped by `right` nonterminal: index by
    /// `right.index()` to get `(lhs, left)` pairs.
    pub fn rules_by_right(&self) -> Vec<Vec<(Nt, Nt)>> {
        let mut by_right: Vec<Vec<(Nt, Nt)>> = vec![Vec::new(); self.n_nts()];
        for r in &self.binary_rules {
            by_right[r.right.index()].push((r.lhs, r.left));
        }
        by_right
    }

    /// The element product `N1 · N2 = {A | A → BC ∈ P, B ∈ N1, C ∈ N2}` of
    /// §2, on nonterminal sets represented as sorted vectors.
    pub fn set_product(&self, n1: &[Nt], n2: &[Nt]) -> Vec<Nt> {
        let mut out = Vec::new();
        for r in &self.binary_rules {
            if n1.contains(&r.left) && n2.contains(&r.right) {
                out.push(r.lhs);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// True if the grammar derives `word` from `start` (delegates to CYK).
    /// Intended for tests and witness validation; O(|word|³·|P|).
    pub fn derives(&self, start: Nt, word: &[Term]) -> bool {
        crate::cyk::cyk_recognize(self, start, word)
    }

    /// Pretty-prints the grammar with symbol names.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for r in &self.binary_rules {
            out.push_str(&format!(
                "{} -> {} {}\n",
                self.symbols.nt_name(r.lhs),
                self.symbols.nt_name(r.left),
                self.symbols.nt_name(r.right)
            ));
        }
        for r in &self.term_rules {
            out.push_str(&format!(
                "{} -> {}\n",
                self.symbols.nt_name(r.lhs),
                self.symbols.term_name(r.term)
            ));
        }
        out
    }
}

impl fmt::Display for Wcnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::cnf::CnfOptions;

    fn abc() -> Wcnf {
        Cfg::parse("S -> A B\nA -> a\nB -> b")
            .unwrap()
            .to_wcnf(CnfOptions::default())
            .unwrap()
    }

    #[test]
    fn grouping_by_terminal() {
        let g = abc();
        let a = g.symbols.get_term("a").unwrap();
        let by_t = g.nts_by_terminal();
        assert_eq!(by_t[a.index()], vec![g.symbols.get_nt("A").unwrap()]);
    }

    #[test]
    fn grouping_by_left_and_right() {
        let g = abc();
        let a = g.symbols.get_nt("A").unwrap();
        let b = g.symbols.get_nt("B").unwrap();
        let s = g.symbols.get_nt("S").unwrap();
        assert_eq!(g.rules_by_left()[a.index()], vec![(s, b)]);
        assert_eq!(g.rules_by_right()[b.index()], vec![(s, a)]);
        assert!(g.rules_by_left()[s.index()].is_empty());
    }

    #[test]
    fn set_product_matches_paper_definition() {
        let g = abc();
        let a = g.symbols.get_nt("A").unwrap();
        let b = g.symbols.get_nt("B").unwrap();
        let s = g.symbols.get_nt("S").unwrap();
        assert_eq!(g.set_product(&[a], &[b]), vec![s]);
        assert!(g.set_product(&[b], &[a]).is_empty());
        assert!(g.set_product(&[], &[b]).is_empty());
    }
}
