//! Static grammar analysis: the classic decidable properties a query
//! planner wants before evaluating a CFPQ — is the query language empty,
//! which nonterminals can ever match, which symbols are dead weight.
//!
//! All analyses run on the general [`Cfg`] (ε/unit/long rules included)
//! with standard monotone fixpoints.

use crate::cfg::{Cfg, Symbol};
use crate::symbol::Nt;
use std::collections::HashSet;

/// The result of [`analyze`].
#[derive(Clone, Debug)]
pub struct GrammarAnalysis {
    /// Nonterminals that derive at least one terminal string (possibly ε).
    pub productive: HashSet<Nt>,
    /// Nonterminals reachable from the start symbol (empty if none set).
    pub reachable: HashSet<Nt>,
    /// Nonterminals deriving ε.
    pub nullable: HashSet<Nt>,
    /// True iff `L(G_start)` is empty (no start symbol counts as empty).
    pub language_is_empty: bool,
}

/// Runs all analyses.
pub fn analyze(cfg: &Cfg) -> GrammarAnalysis {
    let productive = productive_set(cfg);
    let reachable = match cfg.start {
        Some(s) => reachable_set(cfg, s),
        None => HashSet::new(),
    };
    let nullable = nullable_set(cfg);
    let language_is_empty = match cfg.start {
        Some(s) => !productive.contains(&s),
        None => true,
    };
    GrammarAnalysis {
        productive,
        reachable,
        nullable,
        language_is_empty,
    }
}

/// Nonterminals that derive some terminal string (the "generating" set).
pub fn productive_set(cfg: &Cfg) -> HashSet<Nt> {
    let mut productive: HashSet<Nt> = HashSet::new();
    let mut changed = true;
    while changed {
        changed = false;
        for p in &cfg.productions {
            if productive.contains(&p.lhs) {
                continue;
            }
            let all_ok = p.rhs.iter().all(|s| match s {
                Symbol::T(_) => true,
                Symbol::N(n) => productive.contains(n),
            });
            if all_ok {
                productive.insert(p.lhs);
                changed = true;
            }
        }
    }
    productive
}

/// Nonterminals reachable from `start` through production right-hand
/// sides.
pub fn reachable_set(cfg: &Cfg, start: Nt) -> HashSet<Nt> {
    let mut reachable = HashSet::new();
    let mut stack = vec![start];
    while let Some(nt) = stack.pop() {
        if !reachable.insert(nt) {
            continue;
        }
        for p in &cfg.productions {
            if p.lhs != nt {
                continue;
            }
            for s in &p.rhs {
                if let Symbol::N(n) = s {
                    if !reachable.contains(n) {
                        stack.push(*n);
                    }
                }
            }
        }
    }
    reachable
}

/// Nonterminals deriving ε (on the general grammar).
pub fn nullable_set(cfg: &Cfg) -> HashSet<Nt> {
    let mut nullable: HashSet<Nt> = HashSet::new();
    let mut changed = true;
    while changed {
        changed = false;
        for p in &cfg.productions {
            if nullable.contains(&p.lhs) {
                continue;
            }
            let all_nullable = p.rhs.iter().all(|s| match s {
                Symbol::T(_) => false,
                Symbol::N(n) => nullable.contains(n),
            });
            if all_nullable {
                nullable.insert(p.lhs);
                changed = true;
            }
        }
    }
    nullable
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;

    #[test]
    fn empty_language_detected() {
        // S only reaches U which never terminates.
        let g = Cfg::parse("S -> U a\nU -> U b").unwrap();
        let a = analyze(&g);
        assert!(a.language_is_empty);
        assert!(a.productive.is_empty());
    }

    #[test]
    fn productive_and_reachable() {
        let g = Cfg::parse("S -> A b\nA -> a\nDead -> Dead Dead\nIsland -> x").unwrap();
        let a = analyze(&g);
        let nt = |n: &str| g.symbols.get_nt(n).unwrap();
        assert!(!a.language_is_empty);
        assert!(a.productive.contains(&nt("S")));
        assert!(a.productive.contains(&nt("A")));
        assert!(a.productive.contains(&nt("Island")));
        assert!(!a.productive.contains(&nt("Dead")));
        assert!(a.reachable.contains(&nt("S")));
        assert!(a.reachable.contains(&nt("A")));
        assert!(!a.reachable.contains(&nt("Island")));
    }

    #[test]
    fn nullable_on_general_grammar() {
        let g = Cfg::parse("S -> A B\nA -> eps | a\nB -> A A").unwrap();
        let a = analyze(&g);
        let nt = |n: &str| g.symbols.get_nt(n).unwrap();
        assert!(a.nullable.contains(&nt("S")));
        assert!(a.nullable.contains(&nt("A")));
        assert!(a.nullable.contains(&nt("B")));
        let g2 = Cfg::parse("S -> a S | a").unwrap();
        assert!(analyze(&g2).nullable.is_empty());
    }

    #[test]
    fn nullable_agrees_with_cnf_pipeline() {
        use crate::cnf::CnfOptions;
        for src in [
            "S -> A B\nA -> eps | a\nB -> b",
            "S -> a S b | eps",
            "S -> A\nA -> B\nB -> eps",
        ] {
            let g = Cfg::parse(src).unwrap();
            let direct = nullable_set(&g);
            let wcnf = g.to_wcnf(CnfOptions::default()).unwrap();
            let via_pipeline: HashSet<Nt> = wcnf.nullable.iter().copied().collect();
            // The pipeline may add synthetic nonterminals; restrict to the
            // original namespace.
            let original: HashSet<Nt> = via_pipeline
                .into_iter()
                .filter(|n| n.index() < g.symbols.n_nts())
                .collect();
            assert_eq!(direct, original, "grammar:\n{src}");
        }
    }

    #[test]
    fn no_start_is_empty() {
        let cfg = Cfg::new();
        assert!(analyze(&cfg).language_is_empty);
    }
}
