//! CYK string recognition over weak-CNF grammars.
//!
//! The Cocke–Younger–Kasami algorithm [13, 28] is the dynamic-programming
//! ancestor of both Valiant's algorithm and the paper's Algorithm 1. It is
//! used throughout this repository as the *oracle*: every path witness and
//! every string-level cross-check is validated against CYK.

use crate::symbol::{Nt, Term};
use crate::wcnf::Wcnf;

/// The full CYK table: `table[span][start]` is the set of nonterminals
/// deriving `word[start .. start + span + 1]`, as a bitset over `Nt`
/// indices (`u64` words).
pub struct CykTable {
    n_nts: usize,
    words_per_set: usize,
    len: usize,
    /// Row-major: `(span, start)` → bitset.
    bits: Vec<u64>,
}

impl CykTable {
    /// Builds the CYK table for `word` under grammar `g`.
    pub fn build(g: &Wcnf, word: &[Term]) -> Self {
        let n = word.len();
        let n_nts = g.n_nts();
        let wps = n_nts.div_ceil(64).max(1);
        let mut t = CykTable {
            n_nts,
            words_per_set: wps,
            len: n,
            bits: vec![0u64; n * n * wps],
        };
        if n == 0 {
            return t;
        }
        let by_term = g.nts_by_terminal();
        for (i, &w) in word.iter().enumerate() {
            if let Some(nts) = by_term.get(w.index()) {
                for &nt in nts {
                    t.set(0, i, nt);
                }
            }
        }
        for span in 1..n {
            for start in 0..n - span {
                // Split word[start..start+span+1] at every midpoint.
                for mid in 0..span {
                    // left = (mid, start), right = (span-mid-1, start+mid+1)
                    for r in &g.binary_rules {
                        if t.get(mid, start, r.left)
                            && t.get(span - mid - 1, start + mid + 1, r.right)
                        {
                            t.set(span, start, r.lhs);
                        }
                    }
                }
            }
        }
        t
    }

    #[inline]
    fn offset(&self, span: usize, start: usize) -> usize {
        (span * self.len + start) * self.words_per_set
    }

    /// True if `nt` derives `word[start .. start + span + 1]`.
    #[inline]
    pub fn get(&self, span: usize, start: usize, nt: Nt) -> bool {
        let o = self.offset(span, start);
        let i = nt.index();
        debug_assert!(i < self.n_nts);
        self.bits[o + i / 64] >> (i % 64) & 1 == 1
    }

    #[inline]
    fn set(&mut self, span: usize, start: usize, nt: Nt) {
        let o = self.offset(span, start);
        let i = nt.index();
        self.bits[o + i / 64] |= 1 << (i % 64);
    }

    /// All nonterminals deriving the whole word.
    pub fn roots(&self) -> Vec<Nt> {
        if self.len == 0 {
            return Vec::new();
        }
        (0..self.n_nts)
            .map(|i| Nt(i as u32))
            .filter(|&nt| self.get(self.len - 1, 0, nt))
            .collect()
    }
}

/// True if `start ⇒* word` under `g`. The empty word is accepted iff
/// `start` is recorded nullable (ε was eliminated during normalization).
pub fn cyk_recognize(g: &Wcnf, start: Nt, word: &[Term]) -> bool {
    if word.is_empty() {
        return g.nullable.contains(&start);
    }
    let t = CykTable::build(g, word);
    t.get(word.len() - 1, 0, start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::cnf::CnfOptions;

    fn g(src: &str) -> Wcnf {
        Cfg::parse(src)
            .unwrap()
            .to_wcnf(CnfOptions::default())
            .unwrap()
    }

    fn w(g: &Wcnf, names: &[&str]) -> Vec<Term> {
        names
            .iter()
            .map(|n| g.symbols.get_term(n).unwrap())
            .collect()
    }

    #[test]
    fn anbn() {
        let g = g("S -> a S b | a b");
        let s = g.symbols.get_nt("S").unwrap();
        assert!(cyk_recognize(&g, s, &w(&g, &["a", "b"])));
        assert!(cyk_recognize(&g, s, &w(&g, &["a", "a", "b", "b"])));
        assert!(!cyk_recognize(&g, s, &w(&g, &["a", "b", "b"])));
        assert!(!cyk_recognize(&g, s, &w(&g, &["b", "a"])));
        assert!(!cyk_recognize(&g, s, &[]));
    }

    #[test]
    fn empty_word_and_nullable() {
        let g = g("S -> a S | eps");
        let s = g.symbols.get_nt("S").unwrap();
        assert!(cyk_recognize(&g, s, &[]));
        assert!(cyk_recognize(&g, s, &w(&g, &["a", "a", "a"])));
    }

    #[test]
    fn single_terminal() {
        let g = g("S -> a");
        let s = g.symbols.get_nt("S").unwrap();
        assert!(cyk_recognize(&g, s, &w(&g, &["a"])));
        assert!(!cyk_recognize(&g, s, &w(&g, &["a", "a"])));
    }

    #[test]
    fn roots_reports_all_deriving_nts() {
        let g = g("S -> A B\nA -> a\nB -> b\nC -> A B");
        let word = w(&g, &["a", "b"]);
        let t = CykTable::build(&g, &word);
        let mut roots = t.roots();
        roots.sort_unstable();
        let mut expect = vec![
            g.symbols.get_nt("S").unwrap(),
            g.symbols.get_nt("C").unwrap(),
        ];
        expect.sort_unstable();
        assert_eq!(roots, expect);
    }

    #[test]
    fn ambiguous_grammar() {
        // Dyck-1; "(()())" has several derivations but recognition is set-based.
        let g = g("S -> ( S ) S | eps");
        let s = g.symbols.get_nt("S").unwrap();
        assert!(cyk_recognize(
            &g,
            s,
            &w(&g, &["(", "(", ")", "(", ")", ")"])
        ));
        assert!(!cyk_recognize(&g, s, &w(&g, &["(", "(", ")", ")", ")"])));
    }

    #[test]
    fn many_nonterminals_crosses_word_boundary() {
        // Force > 64 nonterminals so the bitset spans two u64 words.
        let mut src = String::from("S -> A0 B\nB -> b\n");
        for i in 0..70 {
            src.push_str(&format!("A{i} -> a\n"));
        }
        let g = g(&src);
        assert!(g.n_nts() > 64);
        let s = g.symbols.get_nt("S").unwrap();
        assert!(cyk_recognize(&g, s, &w(&g, &["a", "b"])));
    }
}
