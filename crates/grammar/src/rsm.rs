//! Recursive state machines (RSM) — the unified query IR.
//!
//! Follow-on work to the paper (Shemetova et al., "One Algorithm to
//! Evaluate Them All", arXiv:2103.14688) evaluates *both* regular and
//! context-free path queries through one linear-algebra algorithm over
//! recursive state machines: one finite automaton ("box") per
//! nonterminal whose transitions are labeled with terminals or
//! nonterminal calls. A regular query is the degenerate RSM with a
//! single box and no calls; a context-free grammar becomes one box per
//! nonterminal with prefix-shared (trie) production paths, so
//! `S → subClassOf_r S subClassOf | subClassOf_r subClassOf` shares the
//! initial `subClassOf_r` transition.
//!
//! This module owns the IR itself: [`RsmBox`], [`Rsm::from_cfg`] (the
//! trie construction, promoted out of `cfpq-baselines`), and the
//! [`Rsm::nullable_boxes`] fixpoint. Lowering an RSM onto the matrix
//! pipeline lives in `cfpq-core::compile`; the worklist evaluator kept
//! as a differential oracle lives in `cfpq-baselines::rsm`.

use crate::cfg::{Cfg, Symbol};
use std::collections::HashMap;

/// A state inside a box (dense per-box index).
pub type StateId = u32;

/// One box: the automaton for a single nonterminal.
///
/// Trie-built boxes ([`RsmBox::add_production`]) always enter at state
/// `0`; boxes converted from an NFA may have any number of entry states.
#[derive(Clone, Debug, Default)]
pub struct RsmBox {
    /// Number of states.
    pub n_states: u32,
    /// Entry states (state `0` for trie-built boxes).
    pub entries: Vec<StateId>,
    /// Accepting states (ends of production paths).
    pub finals: Vec<StateId>,
    /// Transitions `state --symbol--> state`, in insertion order.
    pub transitions: Vec<(StateId, Symbol, StateId)>,
    /// Per-state successor map over the *first* transition inserted for
    /// each `(state, symbol)` — the trie edge [`RsmBox::add_production`]
    /// extends. Keeping it indexed makes trie construction linear in the
    /// grammar size instead of quadratic (the old implementation re-ran
    /// `transitions.iter().find(...)` for every RHS symbol).
    succ: Vec<HashMap<Symbol, StateId>>,
}

impl RsmBox {
    /// A trie box: one entry state, nothing accepted yet.
    pub fn new() -> Self {
        Self::with_states(1).entry(0)
    }

    /// A box with `n_states` unconnected states and no entries/finals.
    pub fn with_states(n_states: u32) -> Self {
        Self {
            n_states,
            entries: Vec::new(),
            finals: Vec::new(),
            transitions: Vec::new(),
            succ: vec![HashMap::new(); n_states as usize],
        }
    }

    /// Marks `state` as an entry (builder style).
    pub fn entry(mut self, state: StateId) -> Self {
        self.mark_entry(state);
        self
    }

    /// Marks `state` as an entry.
    pub fn mark_entry(&mut self, state: StateId) {
        assert!(state < self.n_states, "entry state out of range");
        if !self.entries.contains(&state) {
            self.entries.push(state);
        }
    }

    /// Marks `state` as accepting.
    pub fn mark_final(&mut self, state: StateId) {
        assert!(state < self.n_states, "final state out of range");
        if !self.finals.contains(&state) {
            self.finals.push(state);
        }
    }

    /// Adds the transition `from --sym--> to`. The first transition per
    /// `(from, sym)` also becomes the trie edge subsequent
    /// [`RsmBox::add_production`] calls extend.
    pub fn add_transition(&mut self, from: StateId, sym: Symbol, to: StateId) {
        assert!(
            from < self.n_states && to < self.n_states,
            "transition state out of range"
        );
        self.transitions.push((from, sym, to));
        self.succ[from as usize].entry(sym).or_insert(to);
    }

    /// Adds one production's RHS as a path from state `0`, sharing
    /// existing prefixes (trie construction). An empty RHS marks the
    /// entry final. Each symbol is one map lookup, so building a box is
    /// linear in the total RHS length.
    pub fn add_production(&mut self, rhs: &[Symbol]) {
        let mut state: StateId = 0;
        for &sym in rhs {
            state = match self.succ[state as usize].get(&sym) {
                Some(&t) => t,
                None => {
                    let t = self.n_states;
                    self.n_states += 1;
                    self.succ.push(HashMap::new());
                    self.transitions.push((state, sym, t));
                    self.succ[state as usize].insert(sym, t);
                    t
                }
            };
        }
        self.mark_final(state);
    }

    /// Outgoing transitions of `state`, in insertion order.
    pub fn from_state(&self, state: StateId) -> impl Iterator<Item = (Symbol, StateId)> + '_ {
        self.transitions
            .iter()
            .filter(move |(s, _, _)| *s == state)
            .map(|(_, sym, t)| (*sym, *t))
    }

    /// True if `state` accepts.
    pub fn is_final(&self, state: StateId) -> bool {
        self.finals.contains(&state)
    }

    /// True if `state` is an entry.
    pub fn is_entry(&self, state: StateId) -> bool {
        self.entries.contains(&state)
    }
}

/// A recursive state machine: one box per nonterminal.
#[derive(Clone, Debug)]
pub struct Rsm {
    /// `boxes[A.index()]` is A's automaton.
    pub boxes: Vec<RsmBox>,
    /// Total state count (diagnostic; tries shrink this vs. one path per
    /// production).
    pub total_states: usize,
}

impl Rsm {
    /// Builds prefix-shared boxes from a grammar.
    pub fn from_cfg(cfg: &Cfg) -> Self {
        let n_nts = cfg.symbols.n_nts();
        let mut boxes = vec![RsmBox::new(); n_nts];
        for p in &cfg.productions {
            boxes[p.lhs.index()].add_production(&p.rhs);
        }
        Self::from_boxes(boxes)
    }

    /// Wraps explicitly-constructed boxes (`boxes[i]` is nonterminal
    /// `i`'s automaton).
    pub fn from_boxes(boxes: Vec<RsmBox>) -> Self {
        let total_states = boxes.iter().map(|b| b.n_states as usize).sum();
        Self {
            boxes,
            total_states,
        }
    }

    /// Which boxes accept ε: a box is nullable iff some final state is
    /// reachable from an entry using only calls to nullable boxes
    /// (terminal transitions always consume an edge). Computed as a
    /// fixpoint because nullability feeds through calls transitively.
    pub fn nullable_boxes(&self) -> Vec<bool> {
        let mut nullable = vec![false; self.boxes.len()];
        loop {
            let mut changed = false;
            for (b, bx) in self.boxes.iter().enumerate() {
                if nullable[b] {
                    continue;
                }
                // BFS over ε-transitions (= calls to nullable boxes).
                let mut reach = vec![false; bx.n_states as usize];
                let mut work: Vec<StateId> = bx.entries.clone();
                for &e in &bx.entries {
                    reach[e as usize] = true;
                }
                while let Some(q) = work.pop() {
                    for &(from, sym, to) in &bx.transitions {
                        if from != q || reach[to as usize] {
                            continue;
                        }
                        if let Symbol::N(c) = sym {
                            if nullable[c.index()] {
                                reach[to as usize] = true;
                                work.push(to);
                            }
                        }
                    }
                }
                if bx.finals.iter().any(|&f| reach[f as usize]) {
                    nullable[b] = true;
                    changed = true;
                }
            }
            if !changed {
                return nullable;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trie_construction_shares_prefixes_linearly() {
        let cfg = Cfg::parse("S -> a b c | a b d | a e").unwrap();
        let rsm = Rsm::from_cfg(&cfg);
        let b = &rsm.boxes[0];
        // Paths: a-b-{c,d} shares `a b`, `a e` shares `a`.
        assert_eq!(b.n_states, 6, "entry + a + ab + abc + abd + ae");
        assert_eq!(b.from_state(0).count(), 1, "one shared `a` edge");
        assert_eq!(b.finals.len(), 3);
        assert_eq!(b.entries, vec![0]);
    }

    #[test]
    fn first_transition_wins_for_trie_extension() {
        // add_transition then add_production: the production reuses the
        // first (state, symbol) edge, matching the old linear-scan
        // semantics.
        let cfg = Cfg::parse("S -> a b | a c").unwrap();
        let a = Symbol::T(cfg.symbols.get_term("a").unwrap());
        let mut bx = RsmBox::new();
        bx.add_production(&[a]);
        let before = bx.n_states;
        bx.add_production(&[a]);
        assert_eq!(bx.n_states, before, "same RHS adds no states");
    }

    #[test]
    fn nullable_boxes_flow_through_calls() {
        // A -> B B, B -> eps: A is transitively nullable.
        let cfg = Cfg::parse("A -> B B\nB -> eps | b").unwrap();
        let rsm = Rsm::from_cfg(&cfg);
        let a = cfg.symbols.get_nt("A").unwrap();
        let b = cfg.symbols.get_nt("B").unwrap();
        let nullable = rsm.nullable_boxes();
        assert!(nullable[a.index()]);
        assert!(nullable[b.index()]);
    }

    #[test]
    fn non_nullable_terminal_paths() {
        let cfg = Cfg::parse("S -> a S | a").unwrap();
        let rsm = Rsm::from_cfg(&cfg);
        assert_eq!(rsm.nullable_boxes(), vec![false]);
    }
}
