//! General context-free grammars and the grammar text DSL.
//!
//! A [`Cfg`] holds arbitrary productions `A → α` with `α ∈ (N ∪ Σ)*`
//! (including ε). The text DSL accepts grammars such as the paper's Q1
//! (Fig. 10):
//!
//! ```text
//! S -> subClassOf_r S subClassOf
//! S -> type_r S type
//! S -> subClassOf_r subClassOf
//! S -> type_r type
//! ```
//!
//! Symbols appearing on the left of `->` in *any* rule are nonterminals;
//! every other symbol is a terminal. `|` separates alternatives, `eps`
//! (or `ε`) denotes the empty string, and `#` starts a comment.

use crate::symbol::{Nt, SymbolTable, Term};
use std::collections::HashSet;
use std::fmt;

/// One symbol on the right-hand side of a production.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Symbol {
    /// A terminal (edge label).
    T(Term),
    /// A nonterminal.
    N(Nt),
}

/// A production `lhs → rhs`. An empty `rhs` denotes `lhs → ε`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Production {
    /// Left-hand side nonterminal.
    pub lhs: Nt,
    /// Right-hand side sentential form (empty = ε).
    pub rhs: Vec<Symbol>,
}

/// Errors produced while parsing or validating grammars.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GrammarError {
    /// A rule line is malformed (missing `->`, empty LHS, …).
    Syntax {
        /// 1-based line number in the source text.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// The named start nonterminal does not occur in the grammar.
    UnknownStart(String),
    /// The grammar has no productions.
    Empty,
}

impl fmt::Display for GrammarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarError::Syntax { line, message } => {
                write!(f, "grammar syntax error on line {line}: {message}")
            }
            GrammarError::UnknownStart(s) => write!(f, "unknown start nonterminal `{s}`"),
            GrammarError::Empty => write!(f, "grammar has no productions"),
        }
    }
}

impl std::error::Error for GrammarError {}

/// A general context-free grammar over interned symbols.
#[derive(Clone, Debug, Default)]
pub struct Cfg {
    /// Symbol names for terminals and nonterminals.
    pub symbols: SymbolTable,
    /// All productions, in declaration order.
    pub productions: Vec<Production>,
    /// The designated start nonterminal, if any. Following Hellings \[11\]
    /// and the paper, grammars may omit the start symbol: CFPQ queries name
    /// the start nonterminal per query.
    pub start: Option<Nt>,
}

impl Cfg {
    /// Creates an empty grammar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses the grammar DSL described in the module docs. The start
    /// nonterminal defaults to the LHS of the first rule.
    ///
    /// ```
    /// use cfpq_grammar::Cfg;
    /// let g = Cfg::parse("S -> a S b | a b").unwrap();
    /// assert_eq!(g.productions.len(), 2);
    /// assert_eq!(g.start, g.symbols.get_nt("S"));
    /// ```
    pub fn parse(text: &str) -> Result<Self, GrammarError> {
        // Pass 1: every LHS name is a nonterminal.
        let mut lhs_names: HashSet<&str> = HashSet::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let (lhs, _) = split_rule(line, lineno + 1)?;
            lhs_names.insert(lhs);
        }
        if lhs_names.is_empty() {
            return Err(GrammarError::Empty);
        }

        let mut cfg = Cfg::new();
        // Pass 2: build productions.
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let (lhs_name, rhs_text) = split_rule(line, lineno + 1)?;
            let lhs = cfg.symbols.nt(lhs_name);
            if cfg.start.is_none() {
                cfg.start = Some(lhs);
            }
            for alt in rhs_text.split('|') {
                let alt = alt.trim();
                let mut rhs = Vec::new();
                if !(alt.is_empty() || alt == "eps" || alt == "ε") {
                    for tok in alt.split_whitespace() {
                        if lhs_names.contains(tok) {
                            rhs.push(Symbol::N(cfg.symbols.nt(tok)));
                        } else {
                            rhs.push(Symbol::T(cfg.symbols.term(tok)));
                        }
                    }
                }
                cfg.productions.push(Production { lhs, rhs });
            }
        }
        Ok(cfg)
    }

    /// Parses the DSL and sets the start nonterminal to `start`.
    pub fn parse_with_start(text: &str, start: &str) -> Result<Self, GrammarError> {
        let mut cfg = Self::parse(text)?;
        match cfg.symbols.get_nt(start) {
            Some(nt) => {
                cfg.start = Some(nt);
                Ok(cfg)
            }
            None => Err(GrammarError::UnknownStart(start.to_owned())),
        }
    }

    /// Adds a production from symbol names; names already used as
    /// nonterminals stay nonterminals, otherwise `rhs` names present in
    /// `nonterminals` are created as nonterminals and the rest as terminals.
    pub fn add_rule(&mut self, lhs: &str, rhs: &[&str], nonterminals: &[&str]) {
        let lhs = self.symbols.nt(lhs);
        if self.start.is_none() {
            self.start = Some(lhs);
        }
        let rhs = rhs
            .iter()
            .map(|name| {
                if nonterminals.contains(name) || self.symbols.get_nt(name).is_some() {
                    Symbol::N(self.symbols.nt(name))
                } else {
                    Symbol::T(self.symbols.term(name))
                }
            })
            .collect();
        self.productions.push(Production { lhs, rhs });
    }

    /// All nonterminals with at least one production.
    pub fn defined_nts(&self) -> HashSet<Nt> {
        self.productions.iter().map(|p| p.lhs).collect()
    }

    /// Renders the grammar in (roughly) the DSL syntax.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for p in &self.productions {
            out.push_str(self.symbols.nt_name(p.lhs));
            out.push_str(" -> ");
            if p.rhs.is_empty() {
                out.push_str("eps");
            } else {
                let parts: Vec<&str> = p
                    .rhs
                    .iter()
                    .map(|s| match s {
                        Symbol::T(t) => self.symbols.term_name(*t),
                        Symbol::N(n) => self.symbols.nt_name(*n),
                    })
                    .collect();
                out.push_str(&parts.join(" "));
            }
            out.push('\n');
        }
        out
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn split_rule(line: &str, lineno: usize) -> Result<(&str, &str), GrammarError> {
    let Some((lhs, rhs)) = line.split_once("->") else {
        return Err(GrammarError::Syntax {
            line: lineno,
            message: format!("missing `->` in `{line}`"),
        });
    };
    let lhs = lhs.trim();
    if lhs.is_empty() || lhs.split_whitespace().count() != 1 {
        return Err(GrammarError::Syntax {
            line: lineno,
            message: "left-hand side must be a single nonterminal".into(),
        });
    }
    Ok((lhs, rhs.trim()))
}

impl fmt::Display for Cfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_grammar() {
        let g = Cfg::parse("S -> a S b | a b").unwrap();
        assert_eq!(g.productions.len(), 2);
        let s = g.symbols.get_nt("S").unwrap();
        assert_eq!(g.start, Some(s));
        let a = g.symbols.get_term("a").unwrap();
        let b = g.symbols.get_term("b").unwrap();
        assert_eq!(
            g.productions[0].rhs,
            vec![Symbol::T(a), Symbol::N(s), Symbol::T(b)]
        );
        assert_eq!(g.productions[1].rhs, vec![Symbol::T(a), Symbol::T(b)]);
    }

    #[test]
    fn parse_epsilon_and_comments() {
        let g = Cfg::parse("# Dyck language\nS -> ( S ) S | eps  # alternatives\n").unwrap();
        assert_eq!(g.productions.len(), 2);
        assert!(g.productions[1].rhs.is_empty());
    }

    #[test]
    fn parse_unicode_epsilon() {
        let g = Cfg::parse("S -> ε").unwrap();
        assert!(g.productions[0].rhs.is_empty());
    }

    #[test]
    fn lhs_everywhere_is_nonterminal() {
        // `B` is used before its defining rule appears; it must still be a
        // nonterminal in the first rule.
        let g = Cfg::parse("S -> B a\nB -> b").unwrap();
        let b_nt = g.symbols.get_nt("B").unwrap();
        assert_eq!(g.productions[0].rhs[0], Symbol::N(b_nt));
        assert!(matches!(g.productions[0].rhs[1], Symbol::T(_)));
    }

    #[test]
    fn missing_arrow_is_error() {
        let err = Cfg::parse("S a b").unwrap_err();
        assert!(matches!(err, GrammarError::Syntax { line: 1, .. }));
    }

    #[test]
    fn multi_symbol_lhs_is_error() {
        let err = Cfg::parse("S T -> a").unwrap_err();
        assert!(matches!(err, GrammarError::Syntax { .. }));
    }

    #[test]
    fn empty_grammar_is_error() {
        assert_eq!(
            Cfg::parse("# only comments\n").unwrap_err(),
            GrammarError::Empty
        );
    }

    #[test]
    fn parse_with_start_overrides() {
        let g = Cfg::parse_with_start("S -> B\nB -> b", "B").unwrap();
        assert_eq!(g.start, g.symbols.get_nt("B"));
        assert!(matches!(
            Cfg::parse_with_start("S -> a", "Z"),
            Err(GrammarError::UnknownStart(_))
        ));
    }

    #[test]
    fn to_text_roundtrip() {
        let src = "S -> a S b\nS -> eps\n";
        let g = Cfg::parse(src).unwrap();
        let g2 = Cfg::parse(&g.to_text()).unwrap();
        assert_eq!(g.productions.len(), g2.productions.len());
        assert_eq!(g.to_text(), g2.to_text());
    }

    #[test]
    fn add_rule_builder() {
        let mut g = Cfg::new();
        g.add_rule("S", &["a", "S"], &["S"]);
        g.add_rule("S", &["a"], &["S"]);
        assert_eq!(g.productions.len(), 2);
        assert_eq!(g.start, g.symbols.get_nt("S"));
        assert!(matches!(g.productions[0].rhs[1], Symbol::N(_)));
    }
}

impl Cfg {
    /// Enumerates every word of length ≤ `max_len` derivable from
    /// `start`, by breadth-first expansion of sentential forms. This is a
    /// brute-force membership oracle for *general* grammars (ε-rules,
    /// unit rules, long rules) used to differential-test the CNF
    /// pipeline; exponential in general, so keep `max_len` small.
    pub fn bounded_language(
        &self,
        start: Nt,
        max_len: usize,
    ) -> std::collections::BTreeSet<Vec<Term>> {
        use std::collections::{BTreeSet, HashSet, VecDeque};
        let mut words: BTreeSet<Vec<Term>> = BTreeSet::new();
        let mut seen: HashSet<Vec<Symbol>> = HashSet::new();
        let mut queue: VecDeque<Vec<Symbol>> = VecDeque::new();
        queue.push_back(vec![Symbol::N(start)]);
        seen.insert(queue[0].clone());
        while let Some(form) = queue.pop_front() {
            // Count terminals; prune forms that can only grow too long.
            let n_terms = form.iter().filter(|s| matches!(s, Symbol::T(_))).count();
            if n_terms > max_len {
                continue;
            }
            match form.iter().position(|s| matches!(s, Symbol::N(_))) {
                None => {
                    let word: Vec<Term> = form
                        .iter()
                        .map(|s| match s {
                            Symbol::T(t) => *t,
                            Symbol::N(_) => unreachable!(),
                        })
                        .collect();
                    if word.len() <= max_len {
                        words.insert(word);
                    }
                }
                Some(pos) => {
                    let Symbol::N(nt) = form[pos] else {
                        unreachable!()
                    };
                    for p in &self.productions {
                        if p.lhs != nt {
                            continue;
                        }
                        let mut next = Vec::with_capacity(form.len() + p.rhs.len());
                        next.extend_from_slice(&form[..pos]);
                        next.extend_from_slice(&p.rhs);
                        next.extend_from_slice(&form[pos + 1..]);
                        // Prune: nonterminals derive at least ε, terminals
                        // are permanent, so terminal count is monotone.
                        let nt_count = next.iter().filter(|s| matches!(s, Symbol::N(_))).count();
                        let t_count = next.len() - nt_count;
                        if t_count > max_len || next.len() > max_len + 8 {
                            continue;
                        }
                        if seen.insert(next.clone()) {
                            queue.push_back(next);
                        }
                    }
                }
            }
        }
        words
    }
}

#[cfg(test)]
mod bounded_language_tests {
    use super::*;

    #[test]
    fn anbn_enumeration() {
        let g = Cfg::parse("S -> a S b | a b").unwrap();
        let s = g.symbols.get_nt("S").unwrap();
        let words = g.bounded_language(s, 6);
        let a = g.symbols.get_term("a").unwrap();
        let b = g.symbols.get_term("b").unwrap();
        let expect: std::collections::BTreeSet<Vec<Term>> =
            [vec![a, b], vec![a, a, b, b], vec![a, a, a, b, b, b]]
                .into_iter()
                .collect();
        assert_eq!(words, expect);
    }

    #[test]
    fn epsilon_is_enumerated() {
        let g = Cfg::parse("S -> a S | eps").unwrap();
        let s = g.symbols.get_nt("S").unwrap();
        let words = g.bounded_language(s, 3);
        assert_eq!(words.len(), 4); // ε, a, aa, aaa
        assert!(words.contains(&vec![]));
    }

    #[test]
    fn unit_and_long_rules() {
        let g = Cfg::parse("S -> A\nA -> B\nB -> a b c").unwrap();
        let s = g.symbols.get_nt("S").unwrap();
        let words = g.bounded_language(s, 4);
        assert_eq!(words.len(), 1);
    }
}
