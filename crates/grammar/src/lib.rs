//! # cfpq-grammar
//!
//! Context-free grammar infrastructure for context-free path querying
//! (CFPQ), as required by Azimov & Grigorev, *"Context-Free Path Querying by
//! Matrix Multiplication"* (EDBT 2018).
//!
//! The crate provides:
//!
//! * interned grammar symbols ([`Term`], [`Nt`], [`SymbolTable`]),
//! * a general CFG representation ([`Cfg`]) with a small text DSL
//!   ([`Cfg::parse`]),
//! * the full Chomsky-normal-form pipeline ([`cnf`]) producing the *weak*
//!   CNF used by the paper (`A → BC` / `A → x`, ε-rules dropped but
//!   recorded) as [`Wcnf`],
//! * a CYK recognizer over strings ([`cyk`]) used as a testing oracle,
//! * deterministic random grammar/word generators ([`random`]) for
//!   property-based testing,
//! * recursive state machines ([`rsm`]): the unified compiled-query IR
//!   with trie-shared boxes ([`Rsm::from_cfg`]) that both CFGs and
//!   NFA-form regular queries lower through (see
//!   `cfpq-core::compile`), and
//! * the grammars of the paper's evaluation section ([`queries`]): the
//!   same-generation queries Q1 (Fig. 10) and Q2 (Fig. 11), the worked
//!   example grammar of §4.3 (Fig. 3/4) and a library of classic
//!   context-free languages (Dyck, `aⁿbⁿ`, …).
//!
//! All types are deliberately free of graph/matrix concerns; the solver
//! crates consume [`Wcnf`] only.

pub mod analysis;
pub mod cfg;
pub mod cnf;
pub mod cyk;
pub mod queries;
pub mod random;
pub mod rsm;
pub mod symbol;
pub mod wcnf;

pub use cfg::{Cfg, GrammarError, Production, Symbol};
pub use cnf::CnfOptions;
pub use rsm::{Rsm, RsmBox, StateId};
pub use symbol::{Nt, SymbolTable, Term};
pub use wcnf::{BinaryRule, TermRule, Wcnf};
