//! Interned grammar symbols.
//!
//! Terminals and nonterminals are represented by dense `u32` identifiers so
//! that solver code can index arrays and bitsets directly; the
//! [`SymbolTable`] maps identifiers back to their human-readable names.

use std::collections::HashMap;
use std::fmt;

/// A terminal symbol (an edge label in CFPQ), identified by a dense index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Term(pub u32);

/// A nonterminal symbol, identified by a dense index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Nt(pub u32);

impl Term {
    /// The index as a `usize`, for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Nt {
    /// The index as a `usize`, for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A string interner mapping names to dense indices and back.
///
/// Used for both terminal and nonterminal namespaces (separately).
#[derive(Clone, Debug, Default)]
pub struct Interner {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its index (existing or fresh).
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Returns the name for `id`, if it exists.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no names are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }
}

/// Symbol table holding the terminal and nonterminal namespaces of a
/// grammar. Cloned freely (names are small); the CNF pipeline extends the
/// nonterminal namespace with fresh synthetic names.
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    terms: Interner,
    nts: Interner,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a terminal name.
    pub fn term(&mut self, name: &str) -> Term {
        Term(self.terms.intern(name))
    }

    /// Interns a nonterminal name.
    pub fn nt(&mut self, name: &str) -> Nt {
        Nt(self.nts.intern(name))
    }

    /// Looks up a terminal by name without interning.
    pub fn get_term(&self, name: &str) -> Option<Term> {
        self.terms.get(name).map(Term)
    }

    /// Looks up a nonterminal by name without interning.
    pub fn get_nt(&self, name: &str) -> Option<Nt> {
        self.nts.get(name).map(Nt)
    }

    /// Name of a terminal; `"?t<id>"` if unknown.
    pub fn term_name(&self, t: Term) -> &str {
        self.terms.name(t.0).unwrap_or("?term")
    }

    /// Name of a nonterminal; `"?n<id>"` if unknown.
    pub fn nt_name(&self, n: Nt) -> &str {
        self.nts.name(n.0).unwrap_or("?nt")
    }

    /// Number of terminals.
    pub fn n_terms(&self) -> usize {
        self.terms.len()
    }

    /// Number of nonterminals.
    pub fn n_nts(&self) -> usize {
        self.nts.len()
    }

    /// Creates a fresh nonterminal whose name does not collide with any
    /// existing one. `hint` seeds the name (e.g. `"S'"`, `"T#a"`).
    pub fn fresh_nt(&mut self, hint: &str) -> Nt {
        if self.nts.get(hint).is_none() {
            return self.nt(hint);
        }
        let mut i = 1u32;
        loop {
            let candidate = format!("{hint}#{i}");
            if self.nts.get(&candidate).is_none() {
                return self.nt(&candidate);
            }
            i += 1;
        }
    }

    /// Iterates over terminal `(Term, name)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (Term, &str)> {
        self.terms.iter().map(|(i, n)| (Term(i), n))
    }

    /// Iterates over nonterminal `(Nt, name)` pairs.
    pub fn nts(&self) -> impl Iterator<Item = (Nt, &str)> {
        self.nts.iter().map(|(i, n)| (Nt(i), n))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Nt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_ne!(a, b);
        assert_eq!(i.intern("a"), a);
        assert_eq!(i.len(), 2);
        assert_eq!(i.name(a), Some("a"));
        assert_eq!(i.get("b"), Some(b));
        assert_eq!(i.get("c"), None);
    }

    #[test]
    fn table_separates_namespaces() {
        let mut t = SymbolTable::new();
        let term = t.term("S");
        let nt = t.nt("S");
        assert_eq!(term.0, 0);
        assert_eq!(nt.0, 0);
        assert_eq!(t.term_name(term), "S");
        assert_eq!(t.nt_name(nt), "S");
        assert_eq!(t.n_terms(), 1);
        assert_eq!(t.n_nts(), 1);
    }

    #[test]
    fn fresh_nt_avoids_collisions() {
        let mut t = SymbolTable::new();
        t.nt("X");
        let f1 = t.fresh_nt("X");
        let f2 = t.fresh_nt("X");
        assert_ne!(f1, f2);
        assert_eq!(t.nt_name(f1), "X#1");
        assert_eq!(t.nt_name(f2), "X#2");
        let f3 = t.fresh_nt("Y");
        assert_eq!(t.nt_name(f3), "Y");
    }

    #[test]
    fn iter_order_is_index_order() {
        let mut t = SymbolTable::new();
        t.term("a");
        t.term("b");
        let names: Vec<&str> = t.terms().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.name(0), None);
    }
}
