//! Built-in grammars: the paper's evaluation queries and a library of
//! classic context-free languages used by tests, examples and benches.
//!
//! Naming convention for inverse edge labels: the paper writes `p⁻¹`; this
//! repository writes `p_r` (e.g. `subClassOf_r`), matching how the graph
//! loader materializes reverse edges.

use crate::cfg::Cfg;

/// Query 1 of §6 (Fig. 10) — and the worked example of §4.3 (Fig. 3):
/// the classical *same-generation* query over `subClassOf`/`type` edges.
///
/// ```text
/// S → subClassOf_r S subClassOf
/// S → type_r S type
/// S → subClassOf_r subClassOf
/// S → type_r type
/// ```
pub fn query1() -> Cfg {
    Cfg::parse(
        "S -> subClassOf_r S subClassOf\n\
         S -> type_r S type\n\
         S -> subClassOf_r subClassOf\n\
         S -> type_r type\n",
    )
    .expect("query1 grammar is well-formed")
}

/// Query 2 of §6 (Fig. 11) — concepts on *adjacent* layers.
///
/// ```text
/// S → B subClassOf
/// S → subClassOf
/// B → subClassOf_r B subClassOf
/// B → subClassOf_r subClassOf
/// ```
pub fn query2() -> Cfg {
    Cfg::parse(
        "S -> B subClassOf\n\
         S -> subClassOf\n\
         B -> subClassOf_r B subClassOf\n\
         B -> subClassOf_r subClassOf\n",
    )
    .expect("query2 grammar is well-formed")
}

/// The hand-normalized grammar of Fig. 4 (§4.3), written directly in weak
/// CNF with the paper's nonterminal names `S, S1..S6`. Used by the
/// paper-exactness tests, which replay the worked example with the exact
/// figure-level nonterminal identities.
pub fn fig4_normal_form() -> Cfg {
    Cfg::parse_with_start(
        "S -> S1 S5\n\
         S -> S3 S6\n\
         S -> S1 S2\n\
         S -> S3 S4\n\
         S5 -> S S2\n\
         S6 -> S S4\n\
         S1 -> subClassOf_r\n\
         S2 -> subClassOf\n\
         S3 -> type_r\n\
         S4 -> type\n",
        "S",
    )
    .expect("fig4 grammar is well-formed")
}

/// Dyck language with one bracket pair, *without* the empty word:
/// `S → S S | ( S ) | ( )`. CFL-reachability workloads (static analysis
/// motivation in §3) use this shape.
pub fn dyck1() -> Cfg {
    Cfg::parse("S -> S S | ( S ) | ( )").expect("dyck1 grammar is well-formed")
}

/// Dyck language with two bracket pairs `()` and `[]`, without ε.
pub fn dyck2() -> Cfg {
    Cfg::parse("S -> S S | ( S ) | ( ) | [ S ] | [ ]").expect("dyck2 grammar is well-formed")
}

/// `{ aⁿ bⁿ | n ≥ 1 }` — the canonical non-regular language.
pub fn an_bn() -> Cfg {
    Cfg::parse("S -> a S b | a b").expect("an_bn grammar is well-formed")
}

/// Generic same-generation query over a single hierarchy label `p`:
/// `S → p_r S p | p_r p`. The "layered" navigation pattern of the
/// bioinformatics motivation.
pub fn same_generation(label: &str) -> Cfg {
    Cfg::parse(&format!("S -> {label}_r S {label}\nS -> {label}_r {label}"))
        .expect("same_generation grammar is well-formed")
}

/// A small ambiguous expression grammar, exercising heavy CNF rewriting
/// (unit rules, long rules and terminal lifting all at once).
pub fn arithmetic() -> Cfg {
    Cfg::parse(
        "E -> E + T | T\n\
         T -> T * F | F\n\
         F -> ( E ) | id\n",
    )
    .expect("arithmetic grammar is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::CnfOptions;

    #[test]
    fn query_grammars_parse_and_normalize() {
        for g in [query1(), query2(), dyck1(), dyck2(), an_bn(), arithmetic()] {
            let w = g.to_wcnf(CnfOptions::default()).unwrap();
            assert!(!w.binary_rules.is_empty());
            assert!(!w.term_rules.is_empty());
        }
    }

    #[test]
    fn query1_has_four_terminals() {
        let g = query1();
        assert_eq!(g.symbols.n_terms(), 4);
        assert_eq!(g.symbols.n_nts(), 1);
        assert_eq!(g.productions.len(), 4);
    }

    #[test]
    fn query2_has_two_nonterminals() {
        let g = query2();
        assert_eq!(g.symbols.n_nts(), 2);
        assert_eq!(g.symbols.n_terms(), 2);
    }

    #[test]
    fn fig4_is_already_weak_cnf() {
        let g = fig4_normal_form();
        let w = g.to_wcnf(CnfOptions::default()).unwrap();
        // Normalization must be a no-op: 6 binary + 4 terminal rules, 7 nts.
        assert_eq!(w.binary_rules.len(), 6);
        assert_eq!(w.term_rules.len(), 4);
        assert_eq!(w.n_nts(), 7);
    }

    #[test]
    fn fig4_language_equals_query1_language() {
        // G'_S is equivalent to G_S (§4.3). Spot-check on short words.
        let w1 = query1().to_wcnf(CnfOptions::default()).unwrap();
        let w2 = fig4_normal_form().to_wcnf(CnfOptions::default()).unwrap();
        let s1 = w1.symbols.get_nt("S").unwrap();
        let s2 = w2.symbols.get_nt("S").unwrap();
        let words: &[&[&str]] = &[
            &["subClassOf_r", "subClassOf"],
            &["type_r", "type"],
            &["subClassOf_r", "type_r", "type", "subClassOf"],
            &["subClassOf_r", "subClassOf", "subClassOf"],
            &["type_r", "subClassOf"],
            &[],
        ];
        for word in words {
            let w1_word: Vec<_> = word
                .iter()
                .map(|n| w1.symbols.get_term(n).unwrap())
                .collect();
            let w2_word: Vec<_> = word
                .iter()
                .map(|n| w2.symbols.get_term(n).unwrap())
                .collect();
            assert_eq!(
                w1.derives(s1, &w1_word),
                w2.derives(s2, &w2_word),
                "disagree on {word:?}"
            );
        }
    }

    #[test]
    fn same_generation_parametrized() {
        let g = same_generation("broaderTransitive");
        assert!(g.symbols.get_term("broaderTransitive").is_some());
        assert!(g.symbols.get_term("broaderTransitive_r").is_some());
    }
}
