//! Deterministic random grammar and word generators for property tests.
//!
//! Cross-implementation equivalence testing (DESIGN.md §7) needs many
//! random-but-reproducible weak-CNF grammars and, for string-level oracles,
//! words that are *guaranteed members* of the generated language (sampled
//! by random derivation with a size budget).

use crate::symbol::{Nt, SymbolTable, Term};
use crate::wcnf::{BinaryRule, TermRule, Wcnf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Parameters for [`random_wcnf`].
#[derive(Clone, Copy, Debug)]
pub struct RandomGrammarConfig {
    /// Number of nonterminals (≥ 1).
    pub n_nts: usize,
    /// Number of terminals (≥ 1).
    pub n_terms: usize,
    /// Number of binary rules to attempt (duplicates are merged).
    pub n_binary: usize,
    /// Number of terminal rules to attempt (duplicates are merged).
    pub n_term_rules: usize,
}

impl Default for RandomGrammarConfig {
    fn default() -> Self {
        Self {
            n_nts: 4,
            n_terms: 3,
            n_binary: 6,
            n_term_rules: 4,
        }
    }
}

/// Generates a random weak-CNF grammar. Every nonterminal is guaranteed at
/// least one terminal rule so that all nonterminals generate, which keeps
/// random CFPQ instances non-trivial.
pub fn random_wcnf(seed: u64, cfg: RandomGrammarConfig) -> Wcnf {
    assert!(cfg.n_nts >= 1 && cfg.n_terms >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut symbols = SymbolTable::new();
    for i in 0..cfg.n_nts {
        symbols.nt(&format!("N{i}"));
    }
    for i in 0..cfg.n_terms {
        symbols.term(&format!("t{i}"));
    }

    let mut term_rules: BTreeSet<(u32, u32)> = BTreeSet::new();
    // Guarantee every nonterminal generates something.
    for a in 0..cfg.n_nts {
        let t = rng.gen_range(0..cfg.n_terms);
        term_rules.insert((a as u32, t as u32));
    }
    for _ in 0..cfg.n_term_rules {
        let a = rng.gen_range(0..cfg.n_nts);
        let t = rng.gen_range(0..cfg.n_terms);
        term_rules.insert((a as u32, t as u32));
    }

    let mut binary_rules: BTreeSet<(u32, u32, u32)> = BTreeSet::new();
    for _ in 0..cfg.n_binary {
        let a = rng.gen_range(0..cfg.n_nts) as u32;
        let b = rng.gen_range(0..cfg.n_nts) as u32;
        let c = rng.gen_range(0..cfg.n_nts) as u32;
        binary_rules.insert((a, b, c));
    }

    Wcnf {
        symbols,
        term_rules: term_rules
            .into_iter()
            .map(|(a, t)| TermRule {
                lhs: Nt(a),
                term: Term(t),
            })
            .collect(),
        binary_rules: binary_rules
            .into_iter()
            .map(|(a, b, c)| BinaryRule {
                lhs: Nt(a),
                left: Nt(b),
                right: Nt(c),
            })
            .collect(),
        start: Nt(0),
        nullable: BTreeSet::new(),
    }
}

/// Samples a word from `L(G_start)` by randomized leftmost derivation with
/// a budget on expansion steps. Returns `None` when the budget is exhausted
/// before the sentential form becomes terminal (the caller retries with a
/// different seed).
pub fn sample_word(g: &Wcnf, start: Nt, max_expansions: usize, seed: u64) -> Option<Vec<Term>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let by_lhs: Vec<(Vec<&TermRule>, Vec<&BinaryRule>)> = (0..g.n_nts())
        .map(|i| {
            let nt = Nt(i as u32);
            (
                g.term_rules.iter().filter(|r| r.lhs == nt).collect(),
                g.binary_rules.iter().filter(|r| r.lhs == nt).collect(),
            )
        })
        .collect();

    let mut word: Vec<Term> = Vec::new();
    // Stack of nonterminals still to expand (rightmost on top → leftmost
    // derivation order when popping).
    let mut stack = vec![start];
    let mut expansions = 0usize;
    while let Some(nt) = stack.pop() {
        expansions += 1;
        if expansions > max_expansions {
            return None;
        }
        let (terms, bins) = &by_lhs[nt.index()];
        if terms.is_empty() && bins.is_empty() {
            return None; // dead nonterminal
        }
        // Bias towards terminal rules as the budget runs out so that
        // derivations tend to terminate.
        let near_budget = expansions * 2 > max_expansions;
        let choose_term =
            !terms.is_empty() && (bins.is_empty() || near_budget || rng.gen_bool(0.55));
        if choose_term {
            let r = terms[rng.gen_range(0..terms.len())];
            word.push(r.term);
        } else {
            let r = bins[rng.gen_range(0..bins.len())];
            stack.push(r.right);
            stack.push(r.left);
        }
    }
    Some(word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cyk::cyk_recognize;

    #[test]
    fn generation_is_deterministic() {
        let a = random_wcnf(7, RandomGrammarConfig::default());
        let b = random_wcnf(7, RandomGrammarConfig::default());
        assert_eq!(a.term_rules, b.term_rules);
        assert_eq!(a.binary_rules, b.binary_rules);
        let c = random_wcnf(8, RandomGrammarConfig::default());
        assert!(c.term_rules != a.term_rules || c.binary_rules != a.binary_rules);
    }

    #[test]
    fn every_nonterminal_has_a_terminal_rule() {
        for seed in 0..20 {
            let g = random_wcnf(seed, RandomGrammarConfig::default());
            for i in 0..g.n_nts() {
                assert!(
                    g.term_rules.iter().any(|r| r.lhs == Nt(i as u32)),
                    "N{i} lacks a terminal rule (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn sampled_words_are_in_the_language() {
        // The fundamental soundness property of the sampler, checked with
        // the CYK oracle across many seeds.
        let mut produced = 0;
        for seed in 0..60 {
            let g = random_wcnf(seed, RandomGrammarConfig::default());
            if let Some(word) = sample_word(&g, g.start, 40, seed ^ 0xabcd) {
                produced += 1;
                assert!(
                    cyk_recognize(&g, g.start, &word),
                    "sampled word not recognized (seed {seed}, word {word:?})"
                );
            }
        }
        assert!(
            produced > 20,
            "sampler should usually succeed, got {produced}"
        );
    }

    #[test]
    fn sample_respects_budget() {
        let g = random_wcnf(3, RandomGrammarConfig::default());
        for seed in 0..10 {
            if let Some(w) = sample_word(&g, g.start, 10, seed) {
                // A word needs at least one expansion per symbol.
                assert!(w.len() <= 10);
            }
        }
    }
}
