//! Chomsky-normal-form pipeline: `Cfg → Wcnf`.
//!
//! The paper (§2) works with grammars containing only `A → BC` and `A → x`
//! rules and *no* ε-rules ("weak CNF"); §4.3 demonstrates the normalization
//! on the same-generation query (Fig. 3 → Fig. 4). This module implements
//! the standard pipeline in the safe order:
//!
//! 1. **TERM** — lift terminals out of rules with |rhs| ≥ 2
//!    (`A → a B` becomes `A → Tₐ B`, `Tₐ → a`);
//! 2. **BIN** — binarize rules with |rhs| ≥ 3;
//! 3. **DEL** — eliminate ε-rules (recording the nullable set);
//! 4. **UNIT** — eliminate unit rules `A → B`;
//! 5. optional **USELESS** — drop non-generating and unreachable
//!    nonterminals (off by default: relational CFPQ semantics reports
//!    `R_A` for *every* nonterminal, so dropping symbols changes the
//!    observable answer set).
//!
//! Applied to Fig. 3 the pipeline reproduces a grammar isomorphic to
//! Fig. 4 (verified in the tests below).

use crate::cfg::{Cfg, GrammarError, Production, Symbol};
use crate::symbol::{Nt, Term};
use crate::wcnf::{BinaryRule, TermRule, Wcnf};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Options controlling normalization.
#[derive(Clone, Copy, Debug, Default)]
pub struct CnfOptions {
    /// Remove non-generating and (from `start`) unreachable nonterminals
    /// after normalization. Default `false`: the paper's relational
    /// semantics answers queries for every nonterminal of the grammar.
    pub remove_useless: bool,
}

impl Cfg {
    /// Normalizes this grammar to weak CNF. Fails with
    /// [`GrammarError::Empty`] if the grammar has no productions or no
    /// start nonterminal.
    pub fn to_wcnf(&self, options: CnfOptions) -> Result<Wcnf, GrammarError> {
        if self.productions.is_empty() {
            return Err(GrammarError::Empty);
        }
        let start = self.start.ok_or(GrammarError::Empty)?;

        let mut symbols = self.symbols.clone();
        let mut rules: Vec<Production> = self.productions.clone();

        // --- TERM: lift terminals out of long rules -----------------------
        let mut lifted: HashMap<Term, Nt> = HashMap::new();
        for p in &mut rules {
            if p.rhs.len() < 2 {
                continue;
            }
            for sym in &mut p.rhs {
                if let Symbol::T(t) = *sym {
                    let nt = *lifted.entry(t).or_insert_with(|| {
                        let name = format!("T<{}>", symbols.term_name(t));
                        symbols.fresh_nt(&name)
                    });
                    *sym = Symbol::N(nt);
                }
            }
        }
        for (t, nt) in &lifted {
            rules.push(Production {
                lhs: *nt,
                rhs: vec![Symbol::T(*t)],
            });
        }

        // --- BIN: binarize long rules -------------------------------------
        let mut binarized: Vec<Production> = Vec::with_capacity(rules.len());
        for p in rules {
            if p.rhs.len() <= 2 {
                binarized.push(p);
                continue;
            }
            // A -> X1 X2 ... Xk   becomes   A -> X1 Y1, Y1 -> X2 Y2, ...
            let lhs_name = symbols.nt_name(p.lhs).to_owned();
            let mut current_lhs = p.lhs;
            let k = p.rhs.len();
            for i in 0..k - 2 {
                let fresh = symbols.fresh_nt(&format!("{lhs_name}·{}", i + 1));
                binarized.push(Production {
                    lhs: current_lhs,
                    rhs: vec![p.rhs[i], Symbol::N(fresh)],
                });
                current_lhs = fresh;
            }
            binarized.push(Production {
                lhs: current_lhs,
                rhs: vec![p.rhs[k - 2], p.rhs[k - 1]],
            });
        }
        let mut rules = binarized;

        // --- DEL: eliminate epsilon rules ----------------------------------
        let nullable = nullable_set(&rules);
        let mut no_eps: HashSet<(Nt, Vec<Symbol>)> = HashSet::new();
        for p in &rules {
            match p.rhs.len() {
                0 => {}
                1 => {
                    no_eps.insert((p.lhs, p.rhs.clone()));
                }
                2 => {
                    no_eps.insert((p.lhs, p.rhs.clone()));
                    let (x, y) = (p.rhs[0], p.rhs[1]);
                    if is_nullable(&nullable, x) {
                        no_eps.insert((p.lhs, vec![y]));
                    }
                    if is_nullable(&nullable, y) {
                        no_eps.insert((p.lhs, vec![x]));
                    }
                    // Both nullable => A -> eps variant, dropped by design.
                }
                _ => unreachable!("rules are binarized"),
            }
        }
        rules = no_eps
            .into_iter()
            .map(|(lhs, rhs)| Production { lhs, rhs })
            .collect();

        // --- UNIT: eliminate unit rules ------------------------------------
        // unit_pairs[a] = set of b such that a =>* b via unit rules.
        let n_nts = symbols.n_nts();
        let mut unit_reach: Vec<HashSet<Nt>> = (0..n_nts)
            .map(|i| {
                let mut s = HashSet::new();
                s.insert(Nt(i as u32));
                s
            })
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for p in &rules {
                if let [Symbol::N(b)] = p.rhs.as_slice() {
                    let b = *b;
                    let reachable: Vec<Nt> = unit_reach[b.index()].iter().copied().collect();
                    for reach_a in unit_reach.iter_mut() {
                        if reach_a.contains(&p.lhs) {
                            for c in &reachable {
                                changed |= reach_a.insert(*c);
                            }
                        }
                    }
                }
            }
        }

        let mut final_rules: HashSet<(Nt, Vec<Symbol>)> = HashSet::new();
        for p in &rules {
            let is_unit = matches!(p.rhs.as_slice(), [Symbol::N(_)]);
            if is_unit {
                continue;
            }
            // For every A that unit-reaches p.lhs, add A -> p.rhs.
            for (a, reach_a) in unit_reach.iter().enumerate() {
                if reach_a.contains(&p.lhs) {
                    final_rules.insert((Nt(a as u32), p.rhs.clone()));
                }
            }
        }

        // --- Split into term/binary rule lists -----------------------------
        let mut term_rules = Vec::new();
        let mut binary_rules = Vec::new();
        for (lhs, rhs) in final_rules {
            match rhs.as_slice() {
                [Symbol::T(t)] => term_rules.push(TermRule { lhs, term: *t }),
                [Symbol::N(b), Symbol::N(c)] => binary_rules.push(BinaryRule {
                    lhs,
                    left: *b,
                    right: *c,
                }),
                other => unreachable!("non-CNF rule survived pipeline: {other:?}"),
            }
        }
        term_rules.sort_unstable_by_key(|r| (r.lhs, r.term));
        binary_rules.sort_unstable_by_key(|r| (r.lhs, r.left, r.right));

        let nullable_nts: BTreeSet<Nt> = nullable.iter().copied().collect();
        let mut wcnf = Wcnf {
            symbols,
            term_rules,
            binary_rules,
            start,
            nullable: nullable_nts,
        };
        if options.remove_useless {
            remove_useless(&mut wcnf);
        }
        Ok(wcnf)
    }
}

fn is_nullable(nullable: &HashSet<Nt>, sym: Symbol) -> bool {
    match sym {
        Symbol::N(n) => nullable.contains(&n),
        Symbol::T(_) => false,
    }
}

/// Computes the set of nonterminals deriving ε via the classic fixpoint.
fn nullable_set(rules: &[Production]) -> HashSet<Nt> {
    let mut nullable: HashSet<Nt> = HashSet::new();
    let mut changed = true;
    while changed {
        changed = false;
        for p in rules {
            if nullable.contains(&p.lhs) {
                continue;
            }
            if p.rhs.iter().all(|s| is_nullable(&nullable, *s)) {
                nullable.insert(p.lhs);
                changed = true;
            }
        }
    }
    nullable
}

/// Removes non-generating nonterminals and nonterminals unreachable from
/// `wcnf.start`. Mutates rule lists in place; symbol names are retained
/// (ids stay stable, which matrix solvers rely on).
fn remove_useless(wcnf: &mut Wcnf) {
    // Generating: can derive some terminal string.
    let mut generating: HashSet<Nt> = wcnf.term_rules.iter().map(|r| r.lhs).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for r in &wcnf.binary_rules {
            if !generating.contains(&r.lhs)
                && generating.contains(&r.left)
                && generating.contains(&r.right)
            {
                generating.insert(r.lhs);
                changed = true;
            }
        }
    }
    wcnf.binary_rules.retain(|r| {
        generating.contains(&r.lhs) && generating.contains(&r.left) && generating.contains(&r.right)
    });

    // Reachable from start over remaining rules.
    let mut reachable: HashSet<Nt> = HashSet::new();
    let mut stack = vec![wcnf.start];
    while let Some(nt) = stack.pop() {
        if !reachable.insert(nt) {
            continue;
        }
        for r in &wcnf.binary_rules {
            if r.lhs == nt {
                stack.push(r.left);
                stack.push(r.right);
            }
        }
    }
    wcnf.binary_rules.retain(|r| reachable.contains(&r.lhs));
    wcnf.term_rules
        .retain(|r| reachable.contains(&r.lhs) && generating.contains(&r.lhs));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cyk::cyk_recognize;

    fn wcnf(src: &str) -> Wcnf {
        Cfg::parse(src)
            .unwrap()
            .to_wcnf(CnfOptions::default())
            .unwrap()
    }

    #[test]
    fn already_normal_grammar_is_untouched() {
        let g = wcnf("S -> A B\nA -> a\nB -> b");
        assert_eq!(g.binary_rules.len(), 1);
        assert_eq!(g.term_rules.len(), 2);
        assert!(g.nullable.is_empty());
    }

    #[test]
    fn term_lifting() {
        let g = wcnf("S -> a B\nB -> b");
        // S -> T<a> B, T<a> -> a, B -> b
        assert_eq!(g.binary_rules.len(), 1);
        assert_eq!(g.term_rules.len(), 2);
        let ta = g.symbols.get_nt("T<a>").expect("lifted nonterminal exists");
        assert_eq!(g.binary_rules[0].left, ta);
    }

    #[test]
    fn binarization_of_long_rule() {
        let g = wcnf("S -> a b c d");
        // 3 binary rules chained + 4 lifted terminal rules.
        assert_eq!(g.binary_rules.len(), 3);
        assert_eq!(g.term_rules.len(), 4);
        let s = g.symbols.get_nt("S").unwrap();
        assert!(g.derives(s, &word(&g, &["a", "b", "c", "d"])));
        assert!(!g.derives(s, &word(&g, &["a", "b", "c"])));
    }

    #[test]
    fn epsilon_elimination_records_nullable() {
        let g = wcnf("S -> A B\nA -> a | eps\nB -> b");
        let a = g.symbols.get_nt("A").unwrap();
        let s = g.symbols.get_nt("S").unwrap();
        assert!(g.nullable.contains(&a));
        assert!(!g.nullable.contains(&s));
        // S must now derive both "ab" and "b".
        assert!(g.derives(s, &word(&g, &["a", "b"])));
        assert!(g.derives(s, &word(&g, &["b"])));
        assert!(!g.derives(s, &word(&g, &["a"])));
    }

    #[test]
    fn fully_nullable_start() {
        let g = wcnf("S -> A A\nA -> a | eps");
        let s = g.symbols.get_nt("S").unwrap();
        assert!(g.nullable.contains(&s));
        assert!(g.derives(s, &word(&g, &["a"])));
        assert!(g.derives(s, &word(&g, &["a", "a"])));
    }

    #[test]
    fn unit_rule_elimination() {
        let g = wcnf("S -> A\nA -> B\nB -> a b");
        let s = g.symbols.get_nt("S").unwrap();
        assert!(g.derives(s, &word(&g, &["a", "b"])));
        // No unit productions survive by construction (Wcnf has no unary
        // nonterminal rules at all), so just check S inherited B's rules.
        assert!(g.binary_rules.iter().any(|r| r.lhs == s));
    }

    #[test]
    fn unit_cycle_terminates() {
        let g = wcnf("S -> A\nA -> S | a");
        let s = g.symbols.get_nt("S").unwrap();
        assert!(g.derives(s, &word(&g, &["a"])));
        assert!(!g.derives(s, &word(&g, &["a", "a"])));
    }

    #[test]
    fn fig3_normalizes_to_fig4_shape() {
        // Paper §4.3: the same-generation query grammar (Fig. 3) normalizes
        // to 6 binary rules, 4 terminal rules and 7 nonterminals (Fig. 4).
        let g = crate::queries::query1();
        let w = g.to_wcnf(CnfOptions::default()).unwrap();
        assert_eq!(w.binary_rules.len(), 6, "Fig. 4 has 6 binary rules");
        assert_eq!(w.term_rules.len(), 4, "Fig. 4 has 4 terminal rules");
        assert_eq!(w.n_nts(), 7, "Fig. 4 has N' = {{S, S1..S6}}");
        assert!(w.nullable.is_empty());
    }

    #[test]
    fn language_preserved_on_dyck() {
        let g = Cfg::parse("S -> ( S ) S | eps").unwrap();
        let w = g.to_wcnf(CnfOptions::default()).unwrap();
        let s = w.symbols.get_nt("S").unwrap();
        assert!(w.nullable.contains(&s));
        for (text, expect) in [
            (vec!["(", ")"], true),
            (vec!["(", "(", ")", ")"], true),
            (vec!["(", ")", "(", ")"], true),
            (vec!["(", "(", ")"], false),
            (vec![")", "("], false),
        ] {
            assert_eq!(
                cyk_recognize(&w, s, &word(&w, &text)),
                expect,
                "word {text:?}"
            );
        }
    }

    #[test]
    fn remove_useless_drops_dead_symbols() {
        let g = Cfg::parse("S -> a | D E\nD -> d\nU -> u\nE -> E E")
            .unwrap()
            .to_wcnf(CnfOptions {
                remove_useless: true,
            })
            .unwrap();
        // E never generates; U unreachable. Only S -> a survives.
        assert!(g.binary_rules.is_empty());
        assert_eq!(g.term_rules.len(), 1);
    }

    #[test]
    fn grammar_without_start_fails() {
        let cfg = Cfg::new();
        assert!(cfg.to_wcnf(CnfOptions::default()).is_err());
    }

    fn word(g: &Wcnf, names: &[&str]) -> Vec<Term> {
        names
            .iter()
            .map(|n| {
                g.symbols
                    .get_term(n)
                    .unwrap_or_else(|| panic!("terminal {n}"))
            })
            .collect()
    }
}
