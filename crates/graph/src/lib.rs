//! # cfpq-graph
//!
//! Edge-labeled directed graphs for context-free path querying, plus the
//! dataset substrate of the paper's evaluation (§6):
//!
//! * [`Graph`] — the core labeled digraph with per-label edge access
//!   (what the matrix solvers initialize from) and per-node adjacency
//!   (what the GLL/Hellings baselines traverse),
//! * [`triples`] — an RDF-like triple text format; following §6, each
//!   triple `(o, p, s)` materializes the edges `(o, p, s)` and
//!   `(s, p_r, o)`,
//! * [`generators`] — chains, cycles, grids, complete graphs, the classic
//!   two-cycle worst case, and seeded random graphs,
//! * [`ontology`] — the synthetic stand-ins for the paper's RDF ontology
//!   datasets (skos … pizza) with **exact** triple counts, and the
//!   `g1/g2/g3` repeated graphs (8 disjoint copies of funding/wine/pizza).

pub mod generators;
pub mod graph;
pub mod ontology;
pub mod triples;

pub use graph::{Edge, Graph, Label, NodeId};
pub use triples::TripleSet;
