//! RDF-like triple sets and their conversion to CFPQ graphs.
//!
//! §6 of the paper: *"each RDF file from a dataset was converted to an
//! edge-labeled directed graph as follows. For each triple (o, p, s) from
//! an RDF file, we added edges (o, p, s) and (s, p⁻¹, o) to the graph."*
//!
//! [`TripleSet`] models the RDF file (named subjects/objects, named
//! predicates); [`TripleSet::to_graph`] performs exactly that conversion,
//! spelling the inverse predicate `p⁻¹` as `p_r`.

use crate::graph::Graph;
use cfpq_grammar::symbol::Interner;
use std::fmt;

/// Suffix used for inverse predicates (`p⁻¹` in the paper).
pub const INVERSE_SUFFIX: &str = "_r";

/// A set of `(subject, predicate, object)` triples with interned names.
#[derive(Clone, Debug, Default)]
pub struct TripleSet {
    nodes: Interner,
    predicates: Interner,
    triples: Vec<(u32, u32, u32)>,
}

/// Errors from the triple text parser.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TripleParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for TripleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "triple parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TripleParseError {}

impl TripleSet {
    /// Creates an empty triple set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triples (the `#triples` column of Tables 1 and 2).
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True if there are no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Number of distinct subject/object names.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Adds the triple `(subject, predicate, object)` by name.
    pub fn add(&mut self, subject: &str, predicate: &str, object: &str) {
        let s = self.nodes.intern(subject);
        let p = self.predicates.intern(predicate);
        let o = self.nodes.intern(object);
        self.triples.push((s, p, o));
    }

    /// Parses the whitespace-separated `subject predicate object` line
    /// format (one triple per line, `#` comments).
    pub fn parse(text: &str) -> Result<Self, TripleParseError> {
        let mut set = TripleSet::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = match raw.find('#') {
                Some(i) => &raw[..i],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(s), Some(p), Some(o), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(TripleParseError {
                    line: lineno + 1,
                    message: format!("expected `subject predicate object`, got `{line}`"),
                });
            };
            set.add(s, p, o);
        }
        Ok(set)
    }

    /// Serializes to the line format parsed by [`TripleSet::parse`].
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for &(s, p, o) in &self.triples {
            out.push_str(self.nodes.name(s).unwrap_or("?"));
            out.push(' ');
            out.push_str(self.predicates.name(p).unwrap_or("?"));
            out.push(' ');
            out.push_str(self.nodes.name(o).unwrap_or("?"));
            out.push('\n');
        }
        out
    }

    /// Converts to a CFPQ graph per §6: each triple `(o, p, s)` yields the
    /// edges `(o, p, s)` and `(s, p_r, o)`. Node ids follow the interning
    /// order of names.
    ///
    /// ```
    /// use cfpq_graph::TripleSet;
    /// let t = TripleSet::parse("cat subClassOf animal").unwrap();
    /// let g = t.to_graph();
    /// assert_eq!(g.n_edges(), 2); // forward + inverse
    /// assert!(g.get_label("subClassOf_r").is_some());
    /// ```
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new(self.nodes.len());
        // Intern forward labels first so forward/inverse label ids are
        // stable regardless of triple order.
        let labels: Vec<_> = self
            .predicates
            .iter()
            .map(|(_, name)| {
                let fwd = g.label(name);
                let inv = g.label(&format!("{name}{INVERSE_SUFFIX}"));
                (fwd, inv)
            })
            .collect();
        for &(s, p, o) in &self.triples {
            let (fwd, inv) = labels[p as usize];
            g.add_edge(s, fwd, o);
            g.add_edge(o, inv, s);
        }
        g
    }

    /// Iterates over triples as name triples.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, &str)> {
        self.triples.iter().map(move |&(s, p, o)| {
            (
                self.nodes.name(s).unwrap_or("?"),
                self.predicates.name(p).unwrap_or("?"),
                self.nodes.name(o).unwrap_or("?"),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_roundtrip() {
        let t = TripleSet::parse("c1 subClassOf c0\ni0 type c1 # instance\n").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.n_nodes(), 3);
        let t2 = TripleSet::parse(&t.to_text()).unwrap();
        assert_eq!(t2.len(), 2);
        assert_eq!(t.to_text(), t2.to_text());
    }

    #[test]
    fn malformed_line_is_error() {
        let err = TripleSet::parse("a b\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = TripleSet::parse("a b c d\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn to_graph_adds_both_directions() {
        let t = TripleSet::parse("x subClassOf y\n").unwrap();
        let g = t.to_graph();
        assert_eq!(g.n_nodes(), 2);
        assert_eq!(g.n_edges(), 2, "each triple produces two edges (§6)");
        let fwd = g.get_label("subClassOf").unwrap();
        let inv = g.get_label("subClassOf_r").unwrap();
        assert_eq!(g.edges_with_label(fwd).collect::<Vec<_>>(), vec![(0, 1)]);
        assert_eq!(g.edges_with_label(inv).collect::<Vec<_>>(), vec![(1, 0)]);
    }

    #[test]
    fn node_ids_follow_interning_order() {
        let t = TripleSet::parse("a p b\nb p c\n").unwrap();
        let g = t.to_graph();
        let p = g.get_label("p").unwrap();
        assert_eq!(
            g.edges_with_label(p).collect::<Vec<_>>(),
            vec![(0, 1), (1, 2)]
        );
    }

    #[test]
    fn self_loop_triple() {
        let t = TripleSet::parse("n p n\n").unwrap();
        let g = t.to_graph();
        assert_eq!(g.n_nodes(), 1);
        assert_eq!(g.n_edges(), 2); // forward + inverse self-loops
    }
}
