//! Synthetic graph generators for tests and benchmarks.
//!
//! Besides generic shapes (chains, cycles, grids), this module provides the
//! classic CFPQ stress instances: the *two-cycle* graph (the standard
//! worst-case family in the CFPQ literature — a cycle of `a`-edges and a
//! cycle of `b`-edges sharing one node, queried with `S → a S b | a b`) and
//! a word-to-chain encoder used to cross-check graph solvers against string
//! parsers (CYK, Valiant).

use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A directed chain `0 →ˡ 1 →ˡ … →ˡ n` (n edges, n+1 nodes).
pub fn chain(n_edges: usize, label: &str) -> Graph {
    let mut g = Graph::new(n_edges + 1);
    let l = g.label(label);
    for i in 0..n_edges as NodeId {
        g.add_edge(i, l, i + 1);
    }
    g
}

/// Encodes a word as a chain: edge `i → i+1` carries the i-th symbol. Node
/// `0` is the word start; CFPQ answers `(A, 0, n)` correspond exactly to
/// CYK derivations of the full word — the bridge between Algorithm 1 and
/// Valiant's string setting.
pub fn word_chain(word: &[&str]) -> Graph {
    let mut g = Graph::new(word.len() + 1);
    for (i, w) in word.iter().enumerate() {
        g.add_edge_named(i as NodeId, w, i as NodeId + 1);
    }
    g
}

/// A directed cycle of `n` nodes with a single label.
pub fn cycle(n: usize, label: &str) -> Graph {
    assert!(n >= 1);
    let mut g = Graph::new(n);
    let l = g.label(label);
    for i in 0..n as NodeId {
        g.add_edge(i, l, (i + 1) % n as NodeId);
    }
    g
}

/// The standard CFPQ worst-case family: a cycle of `n_a` `a`-edges and a
/// cycle of `n_b` `b`-edges sharing node 0. With the grammar
/// `S → a S b | a b` the answer relation is dense when
/// `gcd`-aligned, forcing many fixpoint iterations.
pub fn two_cycles(n_a: usize, n_b: usize) -> Graph {
    assert!(n_a >= 1 && n_b >= 1);
    // The cycles share node 0, so only n_b - 1 fresh nodes are needed.
    let mut g = Graph::new(n_a + n_b - 1);
    let a = g.label("a");
    let b = g.label("b");
    // a-cycle: 0 → 1 → … → n_a-1 → 0
    for i in 0..n_a as NodeId {
        g.add_edge(i, a, (i + 1) % n_a as NodeId);
    }
    // b-cycle: 0 → n_a → n_a+1 → … → 0
    let base = n_a as NodeId;
    if n_b == 1 {
        g.add_edge(0, b, 0);
    } else {
        g.add_edge(0, b, base);
        for i in 0..(n_b - 2) as NodeId {
            g.add_edge(base + i, b, base + i + 1);
        }
        g.add_edge(base + (n_b - 2) as NodeId, b, 0);
    }
    g
}

/// A complete directed graph (no self loops) with one label.
pub fn complete(n: usize, label: &str) -> Graph {
    let mut g = Graph::new(n);
    let l = g.label(label);
    for i in 0..n as NodeId {
        for j in 0..n as NodeId {
            if i != j {
                g.add_edge(i, l, j);
            }
        }
    }
    g
}

/// A `rows × cols` grid: `right`-labeled edges along rows, `down`-labeled
/// edges along columns.
pub fn grid(rows: usize, cols: usize, right: &str, down: &str) -> Graph {
    let mut g = Graph::new(rows * cols);
    let r = g.label(right);
    let d = g.label(down);
    let id = |i: usize, j: usize| (i * cols + j) as NodeId;
    for i in 0..rows {
        for j in 0..cols {
            if j + 1 < cols {
                g.add_edge(id(i, j), r, id(i, j + 1));
            }
            if i + 1 < rows {
                g.add_edge(id(i, j), d, id(i + 1, j));
            }
        }
    }
    g
}

/// A complete binary tree of the given `depth` with `down`-labeled edges
/// from parents to children and `up`-labeled reverse edges.
pub fn binary_tree(depth: usize, down: &str, up: &str) -> Graph {
    let n = (1usize << (depth + 1)) - 1;
    let mut g = Graph::new(n);
    let d = g.label(down);
    let u = g.label(up);
    for i in 0..n {
        for child in [2 * i + 1, 2 * i + 2] {
            if child < n {
                g.add_edge(i as NodeId, d, child as NodeId);
                g.add_edge(child as NodeId, u, i as NodeId);
            }
        }
    }
    g
}

/// A seeded Erdős–Rényi-style random multigraph: `n_edges` edges drawn
/// uniformly over `nodes × labels × nodes` (duplicates removed).
pub fn random_graph(n_nodes: usize, n_edges: usize, labels: &[&str], seed: u64) -> Graph {
    assert!(n_nodes >= 1 && !labels.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n_nodes);
    let label_ids: Vec<_> = labels.iter().map(|l| g.label(l)).collect();
    let mut seen = std::collections::HashSet::new();
    let mut attempts = 0;
    while seen.len() < n_edges && attempts < n_edges * 20 {
        attempts += 1;
        let u = rng.gen_range(0..n_nodes) as NodeId;
        let v = rng.gen_range(0..n_nodes) as NodeId;
        let l = label_ids[rng.gen_range(0..label_ids.len())];
        if seen.insert((u, l, v)) {
            g.add_edge(u, l, v);
        }
    }
    g
}

/// A seeded clustered multigraph: `n_blocks` disjoint clusters of
/// `block_size` nodes each, with `edges_per_node` random intra-cluster
/// edges per node per label (duplicates dropped). With `block_size` a
/// multiple of the 64-bit tile width, every cluster's closure lands in a
/// handful of dense tiles while the global matrix stays block-diagonal —
/// the regime the tiled backend is built for, and the generator behind
/// the `scale` reproduction scenario (≥100k nodes at 1600 × 64).
pub fn clustered_blocks(
    n_blocks: usize,
    block_size: usize,
    edges_per_node: usize,
    labels: &[&str],
    seed: u64,
) -> Graph {
    assert!(n_blocks >= 1 && block_size >= 1 && !labels.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n_blocks * block_size);
    let label_ids: Vec<_> = labels.iter().map(|l| g.label(l)).collect();
    let mut seen = std::collections::HashSet::new();
    for block in 0..n_blocks {
        let base = block * block_size;
        for u in base..base + block_size {
            for &l in &label_ids {
                for _ in 0..edges_per_node {
                    let v = (base + rng.gen_range(0..block_size)) as NodeId;
                    if seen.insert((u as NodeId, l, v)) {
                        g.add_edge(u as NodeId, l, v);
                    }
                }
            }
        }
    }
    g
}

/// The worked-example graph of the paper, Fig. 5: three nodes with
///
/// ```text
/// 0 --subClassOf_r--> 0     (self loop)
/// 0 --type_r--------> 1
/// 1 --type_r--------> 2
/// 2 --subClassOf----> 0
/// 2 --type----------> 2     (self loop)
/// ```
///
/// (Reconstructed cell-by-cell from the initial matrix T₀ of Fig. 6.)
pub fn paper_example() -> Graph {
    let mut g = Graph::new(3);
    g.add_edge_named(0, "subClassOf_r", 0);
    g.add_edge_named(0, "type_r", 1);
    g.add_edge_named(1, "type_r", 2);
    g.add_edge_named(2, "subClassOf", 0);
    g.add_edge_named(2, "type", 2);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let g = chain(4, "a");
        assert_eq!(g.n_nodes(), 5);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.out_edges(4).len(), 0);
    }

    #[test]
    fn word_chain_preserves_order() {
        let g = word_chain(&["a", "b", "a"]);
        assert_eq!(g.n_nodes(), 4);
        let a = g.get_label("a").unwrap();
        assert_eq!(
            g.edges_with_label(a).collect::<Vec<_>>(),
            vec![(0, 1), (2, 3)]
        );
    }

    #[test]
    fn cycle_wraps() {
        let g = cycle(3, "a");
        let a = g.get_label("a").unwrap();
        assert_eq!(
            g.edges_with_label(a).collect::<Vec<_>>(),
            vec![(0, 1), (1, 2), (2, 0)]
        );
    }

    #[test]
    fn two_cycles_shares_node_zero() {
        let g = two_cycles(3, 2);
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.n_edges(), 5);
        let b = g.get_label("b").unwrap();
        let edges: Vec<_> = g.edges_with_label(b).collect();
        assert_eq!(edges, vec![(0, 3), (3, 0)]);
    }

    #[test]
    fn two_cycles_unit_b() {
        let g = two_cycles(2, 1);
        let b = g.get_label("b").unwrap();
        assert_eq!(g.edges_with_label(b).collect::<Vec<_>>(), vec![(0, 0)]);
    }

    #[test]
    fn complete_edge_count() {
        let g = complete(4, "x");
        assert_eq!(g.n_edges(), 12);
    }

    #[test]
    fn grid_edge_count() {
        let g = grid(3, 4, "r", "d");
        // rows*(cols-1) right + (rows-1)*cols down
        assert_eq!(g.n_edges(), 3 * 3 + 2 * 4);
    }

    #[test]
    fn binary_tree_edges() {
        let g = binary_tree(2, "down", "up");
        assert_eq!(g.n_nodes(), 7);
        assert_eq!(g.n_edges(), 12); // 6 down + 6 up
    }

    #[test]
    fn random_graph_is_deterministic() {
        let a = random_graph(10, 25, &["x", "y"], 42);
        let b = random_graph(10, 25, &["x", "y"], 42);
        assert_eq!(a.edges(), b.edges());
        assert_eq!(a.n_edges(), 25);
    }

    #[test]
    fn clustered_blocks_stay_inside_their_cluster() {
        let g = clustered_blocks(5, 8, 3, &["a", "b"], 7);
        assert_eq!(g.n_nodes(), 40);
        assert!(g.n_edges() > 0);
        for e in g.edges() {
            assert_eq!(e.from / 8, e.to / 8, "edge {e:?} crosses a cluster");
        }
        let h = clustered_blocks(5, 8, 3, &["a", "b"], 7);
        assert_eq!(g.edges(), h.edges(), "same seed, same graph");
    }

    #[test]
    fn paper_example_matches_t0() {
        let g = paper_example();
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.n_edges(), 5);
        // Spot-check the two self loops of Fig. 6.
        let sub_r = g.get_label("subClassOf_r").unwrap();
        let ty = g.get_label("type").unwrap();
        assert_eq!(g.edges_with_label(sub_r).collect::<Vec<_>>(), vec![(0, 0)]);
        assert_eq!(g.edges_with_label(ty).collect::<Vec<_>>(), vec![(2, 2)]);
    }
}
